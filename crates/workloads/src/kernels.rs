//! Microbenchmark kernels.
//!
//! [`ReadKernel`] reproduces the Figure 1 experiment: a read-only stream
//! whose memory-side cache hit rate is controlled to a target value, used
//! to measure delivered bandwidth as a function of hit rate.

use mem_sim::trace::{OpKind, TraceOp, TraceSource};

use crate::rng::SplitMix64;

/// A read-only trace with a controlled cache hit rate.
///
/// With probability `hit_rate` the kernel re-reads a block from a small
/// warm region (resident in the memory-side cache after warmup); otherwise
/// it reads the next block of an endless cold stream (guaranteed miss).
/// Gaps are zero: the kernel demands as much bandwidth as the core can
/// generate, exactly like the paper's "simple read bandwidth kernel".
#[derive(Debug, Clone)]
pub struct ReadKernel {
    base: u64,
    warm_blocks: u64,
    warm_cursor: u64,
    cold_cursor: u64,
    hit_rate: f64,
    warming: u64,
    rng: SplitMix64,
}

impl ReadKernel {
    /// Creates a kernel targeting `hit_rate` in `[0, 1]`, with a warm
    /// region of `warm_bytes` placed at `base`. The first pass streams the
    /// warm region once to install it in the cache.
    ///
    /// # Panics
    ///
    /// Panics if `hit_rate` is outside `[0, 1]` or the warm region is
    /// smaller than one block.
    pub fn new(base: u64, warm_bytes: u64, hit_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&hit_rate), "hit rate in [0, 1]");
        assert!(warm_bytes >= 64);
        let warm_blocks = warm_bytes / 64;
        Self {
            base,
            warm_blocks,
            warm_cursor: 0,
            cold_cursor: 0,
            hit_rate,
            warming: warm_blocks,
            rng: SplitMix64::new(seed),
        }
    }

    /// The target hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.hit_rate
    }
}

impl TraceSource for ReadKernel {
    fn next_op(&mut self) -> TraceOp {
        let block = if self.warming > 0 {
            // Warmup pass: install the warm region.
            self.warming -= 1;
            let b = self.warm_cursor;
            self.warm_cursor = (self.warm_cursor + 1) % self.warm_blocks;
            b
        } else if self.rng.chance(self.hit_rate) {
            let b = self.warm_cursor;
            self.warm_cursor = (self.warm_cursor + 1) % self.warm_blocks;
            b
        } else {
            // Cold stream: fresh blocks beyond the warm region, never
            // repeated, so they always miss.
            self.cold_cursor += 1;
            self.warm_blocks + self.cold_cursor
        };
        TraceOp {
            gap: 0,
            kind: OpKind::Read,
            addr: self.base + block * 64,
            pc: 0x600000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_streams_warm_region_first() {
        let mut k = ReadKernel::new(0, 64 * 10, 0.5, 1);
        for i in 0..10 {
            assert_eq!(k.next_op().addr, i * 64);
        }
    }

    #[test]
    fn hit_fraction_matches_target() {
        let mut k = ReadKernel::new(0, 64 * 100, 0.7, 1);
        for _ in 0..100 {
            k.next_op(); // warmup
        }
        let warm_limit = 64 * 100;
        let warm = (0..20_000)
            .filter(|_| k.next_op().addr < warm_limit)
            .count();
        let f = warm as f64 / 20_000.0;
        assert!((f - 0.7).abs() < 0.02, "warm fraction {f}");
    }

    #[test]
    fn cold_blocks_never_repeat() {
        let mut k = ReadKernel::new(0, 64 * 4, 0.0, 1);
        for _ in 0..4 {
            k.next_op();
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(k.next_op().addr), "cold stream must not repeat");
        }
    }

    #[test]
    fn full_hit_rate_stays_warm() {
        let mut k = ReadKernel::new(0, 64 * 8, 1.0, 1);
        for _ in 0..1000 {
            assert!(k.next_op().addr < 64 * 8);
        }
    }

    #[test]
    #[should_panic(expected = "hit rate in [0, 1]")]
    fn invalid_hit_rate_rejected() {
        let _ = ReadKernel::new(0, 64, 1.5, 1);
    }
}
