//! # workloads — synthetic clones of the paper's benchmark suite
//!
//! The paper evaluates DAP on one-billion-instruction snippets of
//! seventeen SPEC CPU 2006 / HPCG / Parboil applications, run in rate-8
//! mode and in 27 heterogeneous eight-way mixes. SPEC binaries and traces
//! cannot ship with this reproduction, so this crate provides *parameterized
//! synthetic clones*: deterministic trace generators whose footprint,
//! memory intensity (gap between memory operations), read/write mix, and
//! locality structure (streaming vs pointer-chasing vs hot-set) are tuned
//! so that each clone lands in the same qualitative class the paper
//! measures — the same bandwidth-sensitivity split (Fig. 4), comparable L3
//! MPKI ordering, and comparable memory-side cache hit rates.
//!
//! DAP's behaviour depends only on the memory access stream, so clones
//! that reproduce those stream statistics exercise the policy the same way
//! the originals do. Footprints are scaled by
//! [`mem_sim::CAPACITY_SCALE`] in lockstep with the cache capacities.
//!
//! ```
//! use workloads::{spec, rate_mode};
//! let mcf = spec("mcf").expect("known benchmark");
//! let traces = rate_mode(mcf, 8); // eight copies in disjoint regions
//! assert_eq!(traces.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod kernels;
pub mod mixes;
pub mod requests;
pub mod rng;
pub mod spec;
pub mod tracefile;

pub use generator::CloneTrace;
pub use kernels::ReadKernel;
pub use mixes::{all_44_workloads, heterogeneous_mixes, rate_mix, rate_mode, Mix};
pub use requests::{Request, RequestStream};
pub use spec::{
    all_specs, bandwidth_insensitive, bandwidth_sensitive, spec, Sensitivity, WorkloadSpec,
};
pub use tracefile::{record, TraceFile, TraceFileError, MAX_ADDR_BITS};
