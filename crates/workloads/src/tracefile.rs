//! Trace recording and replay.
//!
//! Synthetic generators are convenient, but downstream users often have
//! real access traces. This module defines a compact binary trace format
//! (21 bytes per record, little-endian) that any [`TraceSource`] can be
//! recorded into and replayed from — replay loops at end-of-file so a
//! finite capture can drive arbitrarily long simulations.
//!
//! Format: 8-byte magic `DAPTRACE`, then records of
//! `(gap: u32, kind: u8, addr: u64, pc: u64)`.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use mem_sim::trace::{OpKind, TraceOp, TraceSource};

const MAGIC: &[u8; 8] = b"DAPTRACE";
const RECORD_BYTES: usize = 4 + 1 + 8 + 8;

/// Records `n` operations from `source` into the file at `path`,
/// creating any missing parent directories first.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn record(source: &mut dyn TraceSource, n: u64, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    for _ in 0..n {
        let op = source.next_op();
        w.write_all(&op.gap.to_le_bytes())?;
        w.write_all(&[match op.kind {
            OpKind::Read => 0u8,
            OpKind::Write => 1,
        }])?;
        w.write_all(&op.addr.to_le_bytes())?;
        w.write_all(&op.pc.to_le_bytes())?;
    }
    w.flush()
}

/// A replayable trace file, loaded into memory and looped endlessly.
#[derive(Debug, Clone)]
pub struct TraceFile {
    ops: Vec<TraceOp>,
    cursor: usize,
}

impl TraceFile {
    /// Loads a trace from disk.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read, has a bad magic, is
    /// truncated mid-record, or contains no records.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a DAPTRACE file",
            ));
        }
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        if bytes.len() % RECORD_BYTES != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated trace record",
            ));
        }
        let ops: Vec<TraceOp> = bytes
            .chunks_exact(RECORD_BYTES)
            .map(|c| TraceOp {
                gap: u32::from_le_bytes(c[0..4].try_into().expect("chunk size")),
                kind: if c[4] == 0 {
                    OpKind::Read
                } else {
                    OpKind::Write
                },
                addr: u64::from_le_bytes(c[5..13].try_into().expect("chunk size")),
                pc: u64::from_le_bytes(c[13..21].try_into().expect("chunk size")),
            })
            .collect();
        if ops.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty trace"));
        }
        Ok(Self { ops, cursor: 0 })
    }

    /// Number of recorded operations (one loop iteration).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false: `open` rejects empty traces.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for TraceFile {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CloneTrace;
    use crate::spec::spec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dap_tracefile_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn record_creates_missing_parent_directories() {
        let dir = tmp("nested_dirs");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("a/b/trace.dap");
        let mut gen = CloneTrace::new(spec("mcf").unwrap(), 0x1000_0000, 0);
        record(&mut gen, 5, &path).unwrap();
        assert_eq!(TraceFile::open(&path).unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_trip_preserves_operations() {
        let path = tmp("roundtrip");
        let mut gen = CloneTrace::new(spec("mcf").unwrap(), 0x1000_0000, 0);
        let mut reference = gen.clone();
        record(&mut gen, 500, &path).unwrap();
        let mut replay = TraceFile::open(&path).unwrap();
        assert_eq!(replay.len(), 500);
        for _ in 0..500 {
            assert_eq!(replay.next_op(), reference.next_op());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_loops_at_end() {
        let path = tmp("loops");
        let mut gen = CloneTrace::new(spec("libquantum").unwrap(), 0, 0);
        record(&mut gen, 10, &path).unwrap();
        let mut replay = TraceFile::open(&path).unwrap();
        let first: Vec<_> = (0..10).map(|_| replay.next_op()).collect();
        let second: Vec<_> = (0..10).map(|_| replay.next_op()).collect();
        assert_eq!(first, second);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTATRACE").unwrap();
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_record() {
        let path = tmp("truncated");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&[0u8; 10]); // not a multiple of 21
        std::fs::write(&path, bytes).unwrap();
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_empty_trace() {
        let path = tmp("empty");
        std::fs::write(&path, MAGIC).unwrap();
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn recorded_trace_drives_a_simulation() {
        let path = tmp("simulate");
        let mut gen = CloneTrace::new(spec("hpcg").unwrap(), 0x1000_0000, 0);
        record(&mut gen, 5_000, &path).unwrap();
        let replay = TraceFile::open(&path).unwrap();
        let mut sys = mem_sim::System::new(
            mem_sim::SystemConfig::sectored_dram_cache(1),
            vec![Box::new(replay)],
        );
        let r = sys.run(10_000);
        assert_eq!(r.per_core[0].instructions, 10_000);
        std::fs::remove_file(path).ok();
    }
}
