//! Trace recording and replay.
//!
//! Synthetic generators are convenient, but downstream users often have
//! real access traces. This module defines a compact binary trace format
//! (21 bytes per record, little-endian) that any [`TraceSource`] can be
//! recorded into and replayed from — replay loops at end-of-file so a
//! finite capture can drive arbitrarily long simulations.
//!
//! Format: 8-byte magic `DAPTRACE`, then records of
//! `(gap: u32, kind: u8, addr: u64, pc: u64)`.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use mem_sim::trace::{OpKind, TraceOp, TraceSource};

const MAGIC: &[u8; 8] = b"DAPTRACE";
const RECORD_BYTES: usize = 4 + 1 + 8 + 8;

/// Widest physical address a trace record may carry. The simulator
/// models up to 48-bit physical address spaces; anything wider is a
/// corrupt or mis-encoded record, not a real access.
pub const MAX_ADDR_BITS: u32 = 48;

/// A malformed trace file, located precisely: every variant that refers
/// to file content names the record number (1-based, the binary format's
/// analogue of a line number) and the absolute byte offset where the
/// problem starts.
#[derive(Debug)]
pub enum TraceFileError {
    /// The file could not be opened or read.
    Io {
        /// The file being loaded.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The file does not start with the `DAPTRACE` magic.
    BadMagic {
        /// The file being loaded.
        path: PathBuf,
    },
    /// The file ends partway through a record.
    Truncated {
        /// The file being loaded.
        path: PathBuf,
        /// 1-based index of the incomplete record.
        record: u64,
        /// Byte offset where the incomplete record starts.
        offset: u64,
        /// Bytes present of the [`RECORD_BYTES`]-byte record.
        got: usize,
    },
    /// A record's kind byte is neither 0 (read) nor 1 (write).
    BadKind {
        /// The file being loaded.
        path: PathBuf,
        /// 1-based index of the malformed record.
        record: u64,
        /// Byte offset of the kind byte.
        offset: u64,
        /// The value found there.
        value: u8,
    },
    /// A record's address exceeds [`MAX_ADDR_BITS`] bits.
    AddressOutOfRange {
        /// The file being loaded.
        path: PathBuf,
        /// 1-based index of the malformed record.
        record: u64,
        /// Byte offset of the address field.
        offset: u64,
        /// The out-of-range address.
        addr: u64,
    },
    /// The file holds no records at all.
    Empty {
        /// The file being loaded.
        path: PathBuf,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            TraceFileError::BadMagic { path } => {
                write!(f, "{}: not a DAPTRACE file", path.display())
            }
            TraceFileError::Truncated {
                path,
                record,
                offset,
                got,
            } => write!(
                f,
                "{}: record {record} at byte {offset} is truncated \
                 ({got} of {RECORD_BYTES} bytes)",
                path.display()
            ),
            TraceFileError::BadKind {
                path,
                record,
                offset,
                value,
            } => write!(
                f,
                "{}: record {record} at byte {offset} has invalid kind \
                 byte {value} (expected 0 = read or 1 = write)",
                path.display()
            ),
            TraceFileError::AddressOutOfRange {
                path,
                record,
                offset,
                addr,
            } => write!(
                f,
                "{}: record {record} at byte {offset} has address \
                 {addr:#x}, beyond the {MAX_ADDR_BITS}-bit physical space",
                path.display()
            ),
            TraceFileError::Empty { path } => {
                write!(f, "{}: trace holds no records", path.display())
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Records `n` operations from `source` into the file at `path`,
/// creating any missing parent directories first.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn record(source: &mut dyn TraceSource, n: u64, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    for _ in 0..n {
        let op = source.next_op();
        w.write_all(&op.gap.to_le_bytes())?;
        w.write_all(&[match op.kind {
            OpKind::Read => 0u8,
            OpKind::Write => 1,
        }])?;
        w.write_all(&op.addr.to_le_bytes())?;
        w.write_all(&op.pc.to_le_bytes())?;
    }
    w.flush()
}

/// A replayable trace file, loaded into memory and looped endlessly.
#[derive(Debug, Clone)]
pub struct TraceFile {
    ops: Vec<TraceOp>,
    cursor: usize,
}

impl TraceFile {
    /// Loads a trace from disk, validating every record.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFileError`] if the file cannot be read, has a bad
    /// magic, is truncated mid-record, contains a record with an invalid
    /// kind byte or an address beyond [`MAX_ADDR_BITS`] bits, or holds no
    /// records. Content errors name the record number and byte offset.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let path = path.as_ref();
        let io_err = |source| TraceFileError::Io {
            path: path.to_path_buf(),
            source,
        };
        let mut r = BufReader::new(File::open(path).map_err(io_err)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(io_err)?;
        if &magic != MAGIC {
            return Err(TraceFileError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes).map_err(io_err)?;
        let mut ops = Vec::with_capacity(bytes.len() / RECORD_BYTES);
        for (index, c) in bytes.chunks(RECORD_BYTES).enumerate() {
            let record = index as u64 + 1;
            let offset = MAGIC.len() as u64 + index as u64 * RECORD_BYTES as u64;
            if c.len() < RECORD_BYTES {
                return Err(TraceFileError::Truncated {
                    path: path.to_path_buf(),
                    record,
                    offset,
                    got: c.len(),
                });
            }
            let kind = match c[4] {
                0 => OpKind::Read,
                1 => OpKind::Write,
                value => {
                    return Err(TraceFileError::BadKind {
                        path: path.to_path_buf(),
                        record,
                        offset: offset + 4,
                        value,
                    })
                }
            };
            // invariant: `c` comes from chunks_exact(RECORD_BYTES), so
            // these fixed slices always have the converted width.
            let addr = u64::from_le_bytes(c[5..13].try_into().expect("chunk size"));
            if addr >> MAX_ADDR_BITS != 0 {
                return Err(TraceFileError::AddressOutOfRange {
                    path: path.to_path_buf(),
                    record,
                    offset: offset + 5,
                    addr,
                });
            }
            ops.push(TraceOp {
                gap: u32::from_le_bytes(c[0..4].try_into().expect("chunk size")),
                kind,
                addr,
                pc: u64::from_le_bytes(c[13..21].try_into().expect("chunk size")),
            });
        }
        if ops.is_empty() {
            return Err(TraceFileError::Empty {
                path: path.to_path_buf(),
            });
        }
        Ok(Self { ops, cursor: 0 })
    }

    /// Number of recorded operations (one loop iteration).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false: `open` rejects empty traces.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl TraceSource for TraceFile {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CloneTrace;
    use crate::spec::spec;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dap_tracefile_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn record_creates_missing_parent_directories() {
        let dir = tmp("nested_dirs");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("a/b/trace.dap");
        let mut gen = CloneTrace::new(spec("mcf").unwrap(), 0x1000_0000, 0);
        record(&mut gen, 5, &path).unwrap();
        assert_eq!(TraceFile::open(&path).unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_trip_preserves_operations() {
        let path = tmp("roundtrip");
        let mut gen = CloneTrace::new(spec("mcf").unwrap(), 0x1000_0000, 0);
        let mut reference = gen.clone();
        record(&mut gen, 500, &path).unwrap();
        let mut replay = TraceFile::open(&path).unwrap();
        assert_eq!(replay.len(), 500);
        for _ in 0..500 {
            assert_eq!(replay.next_op(), reference.next_op());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_loops_at_end() {
        let path = tmp("loops");
        let mut gen = CloneTrace::new(spec("libquantum").unwrap(), 0, 0);
        record(&mut gen, 10, &path).unwrap();
        let mut replay = TraceFile::open(&path).unwrap();
        let first: Vec<_> = (0..10).map(|_| replay.next_op()).collect();
        let second: Vec<_> = (0..10).map(|_| replay.next_op()).collect();
        assert_eq!(first, second);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTATRACE").unwrap();
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_record() {
        let path = tmp("truncated");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&[0u8; RECORD_BYTES]); // one whole record
        bytes.extend_from_slice(&[0u8; 10]); // then a partial one
        std::fs::write(&path, bytes).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        match &err {
            TraceFileError::Truncated {
                path: p,
                record,
                offset,
                got,
            } => {
                assert_eq!(p, &path);
                assert_eq!(*record, 2);
                assert_eq!(*offset, 8 + RECORD_BYTES as u64);
                assert_eq!(*got, 10);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        let text = err.to_string();
        assert!(text.contains("record 2"), "{text}");
        assert!(text.contains("byte 29"), "{text}");
        std::fs::remove_file(path).ok();
    }

    /// Builds one valid record, letting tests perturb single fields.
    fn raw_record(gap: u32, kind: u8, addr: u64, pc: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_BYTES);
        out.extend_from_slice(&gap.to_le_bytes());
        out.push(kind);
        out.extend_from_slice(&addr.to_le_bytes());
        out.extend_from_slice(&pc.to_le_bytes());
        out
    }

    #[test]
    fn rejects_invalid_kind_byte_with_location() {
        let path = tmp("badkind");
        let mut bytes = MAGIC.to_vec();
        bytes.extend(raw_record(1, 0, 0x100, 0x400));
        bytes.extend(raw_record(1, 7, 0x140, 0x404));
        std::fs::write(&path, bytes).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        match err {
            TraceFileError::BadKind {
                record,
                offset,
                value,
                ..
            } => {
                assert_eq!(record, 2);
                assert_eq!(offset, 8 + RECORD_BYTES as u64 + 4);
                assert_eq!(value, 7);
            }
            other => panic!("expected BadKind, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_out_of_range_address_with_typed_error() {
        let path = tmp("badaddr");
        let bad_addr = 1u64 << MAX_ADDR_BITS;
        let mut bytes = MAGIC.to_vec();
        bytes.extend(raw_record(1, 0, 0x100, 0x400));
        bytes.extend(raw_record(1, 1, bad_addr, 0x404));
        std::fs::write(&path, bytes).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        match err {
            TraceFileError::AddressOutOfRange {
                record,
                offset,
                addr,
                ..
            } => {
                assert_eq!(record, 2);
                assert_eq!(offset, 8 + RECORD_BYTES as u64 + 5);
                assert_eq!(addr, bad_addr);
            }
            other => panic!("expected AddressOutOfRange, got {other:?}"),
        }
        // The widest in-range address still loads.
        let path2 = tmp("maxaddr");
        let mut ok = MAGIC.to_vec();
        ok.extend(raw_record(1, 1, (1u64 << MAX_ADDR_BITS) - 1, 0));
        std::fs::write(&path2, ok).unwrap();
        assert_eq!(TraceFile::open(&path2).unwrap().len(), 1);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(path2).ok();
    }

    #[test]
    fn errors_name_the_file_path() {
        let path = tmp("named");
        std::fs::write(&path, MAGIC).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        assert!(matches!(err, TraceFileError::Empty { .. }));
        assert!(err.to_string().contains(&path.display().to_string()));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_empty_trace() {
        let path = tmp("empty");
        std::fs::write(&path, MAGIC).unwrap();
        assert!(TraceFile::open(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn recorded_trace_drives_a_simulation() {
        let path = tmp("simulate");
        let mut gen = CloneTrace::new(spec("hpcg").unwrap(), 0x1000_0000, 0);
        record(&mut gen, 5_000, &path).unwrap();
        let replay = TraceFile::open(&path).unwrap();
        let mut sys = mem_sim::System::new(
            mem_sim::SystemConfig::sectored_dram_cache(1),
            vec![Box::new(replay)],
        );
        let r = sys.run(10_000);
        assert_eq!(r.per_core[0].instructions, 10_000);
        std::fs::remove_file(path).ok();
    }
}
