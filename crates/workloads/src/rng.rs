//! In-tree deterministic pseudo-random number generation.
//!
//! The workspace builds hermetically — no crates.io dependencies — so the
//! seeded randomness that the workload generators and the property tests
//! need comes from this module instead of the `rand` crate. The generator
//! is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit counter fed
//! through a finalizing mixer. It is tiny, passes BigCrush, and — most
//! importantly here — its output sequence is a pure function of the seed,
//! so every workload trace and every "property" test case is reproducible
//! across platforms and Rust versions (unlike `HashMap` iteration or
//! `StdRng`, whose algorithm is not stable across `rand` major versions).
//!
//! ```
//! use workloads::rng::SplitMix64;
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// A deterministic 64-bit PRNG with SplitMix64 output mixing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Every seed — including 0 —
    /// yields a full-period, well-mixed sequence.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds from arbitrary bytes (FNV-1a folded into the seed), so
    /// callers can derive independent streams from names and indices.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)` via the multiply-shift reduction
    /// (Lemire); bias is below 2^-64 per draw, far under any tolerance the
    /// statistical tests use.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(u64::from(hi - lo) + 1) as u32
    }

    /// A uniform index in `[0, n)` for slice indexing.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + self.next_f64() * (hi - lo)
    }

    /// A Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence_matches_splitmix64() {
        // Published SplitMix64 test vector for seed 1234567.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(r.next_u64(), 0x2C73_F084_5854_0FA5);
        assert_eq!(r.next_u64(), 0x883E_BCE5_A3F2_7C77);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn from_bytes_distinguishes_names() {
        let a = SplitMix64::from_bytes(b"mcf\x00\x00").state;
        let b = SplitMix64::from_bytes(b"mcf\x01\x00").state;
        assert_ne!(a, b);
    }

    #[test]
    fn f64_stays_in_unit_interval_with_sane_mean() {
        let mut r = SplitMix64::new(99);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn inclusive_range_covers_both_ends() {
        let mut r = SplitMix64::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_inclusive_u32(4, 6) {
                4 => lo_seen = true,
                6 => hi_seen = true,
                5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let _ = SplitMix64::new(0).below(0);
    }
}
