//! The clone trace generator.
//!
//! A [`CloneTrace`] realizes a [`WorkloadSpec`] as a deterministic stream
//! of [`TraceOp`]s. Per memory operation it draws (seeded, reproducible):
//!
//! * a *region*: hot set (small, SRAM-friendly), pointer chase (uniform
//!   random block in the footprint — poor sector utilization), or one of
//!   the sequential stream engines;
//! * a kind: store with probability `write_fraction` (chases are loads);
//! * a gap around `gap_mean`.
//!
//! Synthetic program counters distinguish the engines so PC-indexed
//! predictors (the Alloy hit/miss predictor) see realistic behaviour.

use mem_sim::trace::{OpKind, TraceOp, TraceSource};
use mem_sim::{BLOCK_BYTES, CAPACITY_SCALE};

use crate::rng::SplitMix64;
use crate::spec::WorkloadSpec;

/// Hot-region size (paper-equivalent bytes, scaled like the footprint).
const HOT_BYTES: u64 = 24 << 20;

/// A deterministic trace generator for one benchmark clone instance.
#[derive(Debug, Clone)]
pub struct CloneTrace {
    base: u64,
    footprint_blocks: u64,
    hot_blocks: u64,
    gap_mean: u32,
    write_fraction: f64,
    chase_fraction: f64,
    hot_fraction: f64,
    stream_cursors: Vec<u64>,
    rng: SplitMix64,
    pc_base: u64,
}

impl CloneTrace {
    /// Builds the clone for `spec`, placing its footprint at `base` and
    /// seeding determinism from the spec name and `instance` (the core
    /// index in rate mode).
    pub fn new(spec: &WorkloadSpec, base: u64, instance: u64) -> Self {
        let footprint_bytes = (spec.footprint_mb << 20) / CAPACITY_SCALE;
        let footprint_blocks = (footprint_bytes / BLOCK_BYTES).max(1024);
        let hot_blocks = (HOT_BYTES / CAPACITY_SCALE / BLOCK_BYTES)
            .min(footprint_blocks / 4)
            .max(64);
        let mut seed = Vec::with_capacity(spec.name.len() + 8);
        seed.extend_from_slice(spec.name.as_bytes());
        seed.extend_from_slice(&instance.to_le_bytes());
        let mut rng = SplitMix64::from_bytes(&seed);
        // Stream engines start at staggered positions through the footprint.
        let stream_cursors = (0..spec.streams)
            .map(|_| rng.below(footprint_blocks))
            .collect();
        Self {
            base,
            footprint_blocks,
            hot_blocks,
            gap_mean: spec.gap_mean,
            write_fraction: spec.write_fraction,
            chase_fraction: spec.chase_fraction,
            hot_fraction: spec.hot_fraction,
            stream_cursors,
            rng,
            pc_base: 0x40_0000 + instance * 0x10_0000,
        }
    }

    /// The scaled footprint in blocks.
    pub fn footprint_blocks(&self) -> u64 {
        self.footprint_blocks
    }

    fn addr_of(&self, block: u64) -> u64 {
        self.base + block * BLOCK_BYTES
    }
}

impl TraceSource for CloneTrace {
    fn next_op(&mut self) -> TraceOp {
        let gap = if self.gap_mean == 0 {
            0
        } else {
            // Uniform in [gap/2, 3*gap/2]: mean preserved, bursts possible.
            self.rng
                .range_inclusive_u32(self.gap_mean / 2, self.gap_mean + self.gap_mean / 2)
        };
        let r: f64 = self.rng.next_f64();
        let (block, pc, force_read) = if r < self.hot_fraction {
            // Hot set: small region, lands in the SRAM hierarchy.
            (self.rng.below(self.hot_blocks), self.pc_base + 0x100, false)
        } else if r < self.hot_fraction + (1.0 - self.hot_fraction) * self.chase_fraction {
            // Pointer chase: random block, load only. Real irregular codes
            // concentrate reuse on a warm subset, so 60% of chases land in
            // the first eighth of the footprint — this is what gives
            // memory-side caches smaller than the footprint their paper-like
            // intermediate hit rates.
            let block = if self.rng.chance(0.6) {
                self.rng.below((self.footprint_blocks / 8).max(1))
            } else {
                self.rng.below(self.footprint_blocks)
            };
            (block, self.pc_base + 0x200, true)
        } else {
            // One of the stream engines advances sequentially.
            let s = self.rng.index(self.stream_cursors.len());
            let b = self.stream_cursors[s];
            self.stream_cursors[s] = (b + 1) % self.footprint_blocks;
            (b, self.pc_base + 0x300 + s as u64 * 8, false)
        };
        let kind = if !force_read && self.rng.chance(self.write_fraction) {
            OpKind::Write
        } else {
            OpKind::Read
        };
        TraceOp {
            gap,
            kind,
            addr: self.addr_of(block),
            pc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec;

    #[test]
    fn deterministic_per_instance() {
        let s = spec("mcf").unwrap();
        let mut a = CloneTrace::new(s, 0x1000_0000, 0);
        let mut b = CloneTrace::new(s, 0x1000_0000, 0);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn instances_differ() {
        let s = spec("mcf").unwrap();
        let mut a = CloneTrace::new(s, 0, 0);
        let mut b = CloneTrace::new(s, 0, 1);
        let same = (0..100)
            .filter(|_| a.next_op().addr == b.next_op().addr)
            .count();
        assert!(
            same < 50,
            "different instances must diverge: {same} identical"
        );
    }

    #[test]
    fn stays_within_footprint() {
        let s = spec("libquantum").unwrap();
        let mut t = CloneTrace::new(s, 0x5000_0000, 0);
        let limit = 0x5000_0000 + t.footprint_blocks() * 64;
        for _ in 0..10_000 {
            let op = t.next_op();
            assert!(op.addr >= 0x5000_0000 && op.addr < limit);
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let s = spec("parboil-lbm").unwrap(); // 45% writes, no chase
        let mut t = CloneTrace::new(s, 0, 0);
        let writes = (0..20_000)
            .filter(|_| t.next_op().kind == OpKind::Write)
            .count();
        let f = writes as f64 / 20_000.0;
        assert!((f - 0.45).abs() < 0.03, "write fraction {f}");
    }

    #[test]
    fn chase_ops_are_loads() {
        let s = spec("omnetpp").unwrap(); // 90% chase
        let mut t = CloneTrace::new(s, 0, 0);
        let writes = (0..20_000)
            .filter(|_| t.next_op().kind == OpKind::Write)
            .count();
        // At most ~10% non-chase ops can be writes (0.2 write fraction on
        // the remaining ~19%).
        assert!((writes as f64 / 20_000.0) < 0.08);
    }

    #[test]
    fn gap_mean_close_to_spec() {
        let s = spec("sjeng").unwrap();
        let mut t = CloneTrace::new(s, 0, 0);
        let total: u64 = (0..10_000).map(|_| u64::from(t.next_op().gap)).sum();
        let mean = total as f64 / 10_000.0;
        assert!(
            (mean - f64::from(s.gap_mean)).abs() < 0.5,
            "gap mean {mean}"
        );
    }

    #[test]
    fn streaming_clone_produces_sequential_runs() {
        let s = spec("libquantum").unwrap(); // 1 stream, no hot set
        let mut t = CloneTrace::new(s, 0, 0);
        let mut sequential = 0;
        let mut prev = t.next_op().block();
        for _ in 0..1000 {
            let b = t.next_op().block();
            if b == prev + 1 {
                sequential += 1;
            }
            prev = b;
        }
        assert!(
            sequential > 900,
            "libquantum must stream: {sequential}/1000 sequential"
        );
    }
}
