//! The seventeen benchmark clone specifications.
//!
//! Parameters are chosen from the qualitative behaviour the paper reports:
//! the twelve bandwidth-sensitive snippets have an average L3 MPKI of 20.4
//! and speed up when DRAM-cache bandwidth doubles; the five insensitive
//! ones average 11.6 MPKI and do not. `omnetpp` and `astar.BigLakes` have
//! poor sector utilization (high tag-cache miss rates, Fig. 5); `mcf` is a
//! pointer-chaser; `libquantum`/`hpcg`/`parboil-lbm` are streaming;
//! `parboil-lbm`'s heavy write mix keeps its baseline main-memory CAS
//! fraction high (Fig. 8).

/// Whether the paper classifies the benchmark as bandwidth-sensitive
/// (Fig. 4: gains from doubling the DRAM-cache bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sensitivity {
    /// Gains >5% from doubled memory-side cache bandwidth.
    BandwidthSensitive,
    /// Insensitive to memory-side cache bandwidth.
    BandwidthInsensitive,
}

/// The parameters of one benchmark clone.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Paper-equivalent footprint in MB (scaled down at trace-build time).
    pub footprint_mb: u64,
    /// Mean non-memory instructions between memory operations.
    pub gap_mean: u32,
    /// Fraction of memory operations that are stores.
    pub write_fraction: f64,
    /// Fraction of loads that are dependent pointer chases (random blocks,
    /// poor sector utilization).
    pub chase_fraction: f64,
    /// Concurrent sequential streams (strided engines).
    pub streams: u32,
    /// Fraction of accesses landing in a small hot region (SRAM-friendly).
    pub hot_fraction: f64,
    /// Bandwidth-sensitivity class from Fig. 4.
    pub sensitivity: Sensitivity,
}

use Sensitivity::{BandwidthInsensitive as Insens, BandwidthSensitive as Sens};

/// All seventeen clones, in the paper's alphabetical figure order.
const SPECS: [WorkloadSpec; 17] = [
    WorkloadSpec {
        name: "astar.BigLakes",
        footprint_mb: 256,
        gap_mean: 4,
        write_fraction: 0.15,
        chase_fraction: 0.65,
        streams: 2,
        hot_fraction: 0.30,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "bwaves",
        footprint_mb: 256,
        gap_mean: 34,
        write_fraction: 0.20,
        chase_fraction: 0.05,
        streams: 6,
        hot_fraction: 0.35,
        sensitivity: Insens,
    },
    WorkloadSpec {
        name: "bzip2.combined",
        footprint_mb: 192,
        gap_mean: 3,
        write_fraction: 0.30,
        chase_fraction: 0.20,
        streams: 3,
        hot_fraction: 0.25,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "cactusADM",
        footprint_mb: 224,
        gap_mean: 40,
        write_fraction: 0.25,
        chase_fraction: 0.05,
        streams: 4,
        hot_fraction: 0.40,
        sensitivity: Insens,
    },
    WorkloadSpec {
        name: "gcc.expr",
        footprint_mb: 224,
        gap_mean: 3,
        write_fraction: 0.35,
        chase_fraction: 0.25,
        streams: 3,
        hot_fraction: 0.20,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "gcc.s04",
        footprint_mb: 288,
        gap_mean: 3,
        write_fraction: 0.35,
        chase_fraction: 0.30,
        streams: 3,
        hot_fraction: 0.15,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "gobmk.score2",
        footprint_mb: 160,
        gap_mean: 4,
        write_fraction: 0.25,
        chase_fraction: 0.35,
        streams: 2,
        hot_fraction: 0.30,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "hpcg",
        footprint_mb: 352,
        gap_mean: 2,
        write_fraction: 0.15,
        chase_fraction: 0.10,
        streams: 6,
        hot_fraction: 0.10,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "leslie3D",
        footprint_mb: 240,
        gap_mean: 36,
        write_fraction: 0.25,
        chase_fraction: 0.05,
        streams: 5,
        hot_fraction: 0.35,
        sensitivity: Insens,
    },
    WorkloadSpec {
        name: "libquantum",
        footprint_mb: 192,
        gap_mean: 2,
        write_fraction: 0.25,
        chase_fraction: 0.0,
        streams: 1,
        hot_fraction: 0.0,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "mcf",
        footprint_mb: 384,
        gap_mean: 3,
        write_fraction: 0.10,
        chase_fraction: 0.75,
        streams: 1,
        hot_fraction: 0.20,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "milc",
        footprint_mb: 224,
        gap_mean: 38,
        write_fraction: 0.25,
        chase_fraction: 0.10,
        streams: 4,
        hot_fraction: 0.30,
        sensitivity: Insens,
    },
    WorkloadSpec {
        name: "omnetpp",
        footprint_mb: 320,
        gap_mean: 3,
        write_fraction: 0.20,
        chase_fraction: 0.90,
        streams: 1,
        hot_fraction: 0.10,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "parboil-histo",
        footprint_mb: 192,
        gap_mean: 32,
        write_fraction: 0.35,
        chase_fraction: 0.15,
        streams: 2,
        hot_fraction: 0.40,
        sensitivity: Insens,
    },
    WorkloadSpec {
        name: "parboil-lbm",
        footprint_mb: 256,
        gap_mean: 2,
        write_fraction: 0.45,
        chase_fraction: 0.0,
        streams: 8,
        hot_fraction: 0.0,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "sjeng",
        footprint_mb: 224,
        gap_mean: 4,
        write_fraction: 0.20,
        chase_fraction: 0.50,
        streams: 2,
        hot_fraction: 0.25,
        sensitivity: Sens,
    },
    WorkloadSpec {
        name: "soplex.ref",
        footprint_mb: 288,
        gap_mean: 3,
        write_fraction: 0.20,
        chase_fraction: 0.30,
        streams: 4,
        hot_fraction: 0.15,
        sensitivity: Sens,
    },
];

/// All seventeen clone specifications.
pub fn all_specs() -> &'static [WorkloadSpec] {
    &SPECS
}

/// Looks up a clone by its paper name.
pub fn spec(name: &str) -> Option<&'static WorkloadSpec> {
    SPECS.iter().find(|s| s.name == name)
}

/// The twelve bandwidth-sensitive clones (Fig. 4's classification).
pub fn bandwidth_sensitive() -> Vec<&'static WorkloadSpec> {
    SPECS.iter().filter(|s| s.sensitivity == Sens).collect()
}

/// The five bandwidth-insensitive clones.
pub fn bandwidth_insensitive() -> Vec<&'static WorkloadSpec> {
    SPECS.iter().filter(|s| s.sensitivity == Insens).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_specs_with_papers_split() {
        assert_eq!(all_specs().len(), 17);
        assert_eq!(bandwidth_sensitive().len(), 12);
        assert_eq!(bandwidth_insensitive().len(), 5);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all_specs().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(spec("mcf").unwrap().name, "mcf");
        assert!(
            spec("mcf").unwrap().chase_fraction > 0.5,
            "mcf is a pointer chaser"
        );
        assert!(spec("nonexistent").is_none());
    }

    #[test]
    fn sensitive_clones_are_memory_intensive() {
        // Every bandwidth-sensitive clone must have a materially lower gap
        // than every insensitive clone — that is what makes it saturate the
        // cache channels in rate-8 mode.
        let max_sens_gap = bandwidth_sensitive()
            .iter()
            .map(|s| s.gap_mean)
            .max()
            .unwrap();
        let min_insens_gap = bandwidth_insensitive()
            .iter()
            .map(|s| s.gap_mean)
            .min()
            .unwrap();
        assert!(max_sens_gap < min_insens_gap);
    }

    #[test]
    fn parameters_are_sane() {
        for s in all_specs() {
            assert!(s.footprint_mb >= 128, "{}: footprint too small", s.name);
            assert!((0.0..=1.0).contains(&s.write_fraction));
            assert!((0.0..=1.0).contains(&s.chase_fraction));
            assert!((0.0..=1.0).contains(&s.hot_fraction));
            assert!(s.streams >= 1);
        }
    }
}
