//! Rate-N and heterogeneous multi-programmed mixes (Section V).
//!
//! The paper evaluates 44 eight-way workloads: seventeen homogeneous
//! rate-8 mixes (one per benchmark) and 27 heterogeneous mixes, roughly
//! half combining similarly bandwidth-sensitive snippets and half mixing
//! dissimilar ones.

use mem_sim::trace::TraceSource;

use crate::generator::CloneTrace;
use crate::rng::SplitMix64;
use crate::spec::{all_specs, bandwidth_insensitive, bandwidth_sensitive, WorkloadSpec};

/// Address-space stride between cores' footprints (~64 GB apart — cores
/// never share data in rate or mixed mode, as in the paper). The stride is
/// deliberately *not* a power of two: a 4 KB-aligned odd sector offset
/// (785 sectors) so that different cores' footprints do not alias onto the
/// same cache sets, as real (page-randomized) physical address layouts do
/// not.
const CORE_STRIDE: u64 = (1 << 36) + 0x31_1000;

/// One multi-programmed mix: a name and one benchmark clone per core.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix label (for reports).
    pub name: String,
    /// Constituent benchmark specs, one per core.
    pub specs: Vec<&'static WorkloadSpec>,
}

impl Mix {
    /// Builds the trace set for this mix.
    pub fn traces(&self) -> Vec<Box<dyn TraceSource>> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Box::new(CloneTrace::new(
                    s,
                    0x1000_0000 + (i as u64) * CORE_STRIDE,
                    i as u64,
                )) as Box<dyn TraceSource>
            })
            .collect()
    }

    /// Whether every constituent is bandwidth-sensitive.
    pub fn is_homogeneous_sensitive(&self) -> bool {
        self.specs
            .iter()
            .all(|s| s.sensitivity == crate::spec::Sensitivity::BandwidthSensitive)
    }
}

/// `cores` copies of one benchmark in disjoint address regions (the
/// paper's rate-N mode).
pub fn rate_mode(spec: &'static WorkloadSpec, cores: usize) -> Vec<Box<dyn TraceSource>> {
    (0..cores)
        .map(|i| {
            Box::new(CloneTrace::new(
                spec,
                0x1000_0000 + (i as u64) * CORE_STRIDE,
                i as u64,
            )) as Box<dyn TraceSource>
        })
        .collect()
}

/// A rate-mode [`Mix`] descriptor for a single benchmark.
pub fn rate_mix(spec: &'static WorkloadSpec, cores: usize) -> Mix {
    Mix {
        name: spec.name.to_string(),
        specs: vec![spec; cores],
    }
}

/// The 27 heterogeneous eight-way mixes: 13 "similar" mixes drawn from the
/// bandwidth-sensitive pool and 14 "dissimilar" mixes drawing half from
/// each pool — matching the paper's roughly half-and-half construction.
/// Deterministic: the same mixes are produced on every call.
pub fn heterogeneous_mixes() -> Vec<Mix> {
    let sens = bandwidth_sensitive();
    let insens = bandwidth_insensitive();
    let mut rng = SplitMix64::new(0xDA92017 ^ 0xA5A5);
    let mut mixes = Vec::with_capacity(27);
    for m in 0..27 {
        let similar = m < 13;
        let mut specs = Vec::with_capacity(8);
        for slot in 0..8 {
            let s = if similar || slot % 2 == 0 {
                sens[rng.index(sens.len())]
            } else {
                insens[rng.index(insens.len())]
            };
            specs.push(s);
        }
        mixes.push(Mix {
            name: format!("mix{:02}", m + 1),
            specs,
        });
    }
    mixes
}

/// All 44 workloads of Fig. 12: 12 bandwidth-sensitive rate-8, 5
/// bandwidth-insensitive rate-8, and the 27 heterogeneous mixes.
pub fn all_44_workloads(cores: usize) -> Vec<Mix> {
    let mut out = Vec::with_capacity(44);
    for s in all_specs() {
        if s.sensitivity == crate::spec::Sensitivity::BandwidthSensitive {
            out.push(rate_mix(s, cores));
        }
    }
    for s in all_specs() {
        if s.sensitivity == crate::spec::Sensitivity::BandwidthInsensitive {
            out.push(rate_mix(s, cores));
        }
    }
    out.extend(heterogeneous_mixes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_mode_builds_one_trace_per_core() {
        let traces = rate_mode(crate::spec::spec("hpcg").unwrap(), 8);
        assert_eq!(traces.len(), 8);
    }

    #[test]
    fn heterogeneous_mixes_are_27_and_deterministic() {
        let a = heterogeneous_mixes();
        let b = heterogeneous_mixes();
        assert_eq!(a.len(), 27);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            let xn: Vec<_> = x.specs.iter().map(|s| s.name).collect();
            let yn: Vec<_> = y.specs.iter().map(|s| s.name).collect();
            assert_eq!(xn, yn);
        }
    }

    #[test]
    fn similar_and_dissimilar_mixes_split() {
        let mixes = heterogeneous_mixes();
        let similar = mixes
            .iter()
            .filter(|m| m.is_homogeneous_sensitive())
            .count();
        assert_eq!(
            similar, 13,
            "first 13 mixes draw only from the sensitive pool"
        );
    }

    #[test]
    fn forty_four_workloads_total() {
        let all = all_44_workloads(8);
        assert_eq!(all.len(), 44);
        assert!(all.iter().all(|m| m.specs.len() == 8));
        // First twelve are the bandwidth-sensitive rate mixes.
        assert!(all[..12].iter().all(Mix::is_homogeneous_sensitive));
    }

    #[test]
    fn mix_traces_use_disjoint_address_regions() {
        let mix = &heterogeneous_mixes()[0];
        let mut traces = mix.traces();
        let mut firsts: Vec<u64> = traces.iter_mut().map(|t| t.next_op().addr).collect();
        firsts.sort_unstable();
        for w in firsts.windows(2) {
            assert!(w[1] - w[0] > 1 << 30, "cores must not share footprints");
        }
    }
}
