//! Service-request adapter: workload clones as daemon traffic.
//!
//! The clone generators in this crate produce *memory access* streams
//! for the cycle-accurate simulator. The `dapd` daemon and its load
//! generator instead consume *service requests* — `(tenant, bytes)`
//! pairs. [`RequestStream`] derives such a stream deterministically from
//! a [`WorkloadSpec`]: request sizes follow the clone's burstiness
//! (streaming clones issue long multi-block transfers, pointer-chasing
//! clones issue single blocks) and tenants interleave round-robin with a
//! seeded jitter so no tenant owns a fixed arithmetic lane.

use crate::rng::SplitMix64;
use crate::spec::WorkloadSpec;

/// One service request against the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Tenant issuing the request.
    pub tenant: u16,
    /// Transfer size in bytes (a whole number of 64-byte blocks).
    pub bytes: u32,
}

/// Cache-block granularity of every request.
pub const BLOCK_BYTES: u32 = 64;

/// A deterministic, endless stream of service requests shaped by a
/// workload clone's parameters.
#[derive(Debug, Clone)]
pub struct RequestStream {
    rng: SplitMix64,
    tenants: u16,
    /// Maximum burst length in blocks for streaming transfers.
    max_burst: u32,
    /// Probability a request is a single-block (chase-like) access.
    single_block: f64,
    next_tenant: u16,
}

impl RequestStream {
    /// Builds a stream for `tenants` tenants from a clone's parameters.
    ///
    /// Streaming-heavy clones (many concurrent streams, few chases) get
    /// large bursts; chase-heavy clones degenerate to single blocks.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero.
    pub fn from_spec(spec: &WorkloadSpec, tenants: u16, seed: u64) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        Self {
            rng: SplitMix64::new(seed ^ 0xDA9D_5EED),
            tenants,
            // One block per concurrent stream engine, at least 4: mcf's
            // sparse chases still batch a little, lbm's 18 streams
            // produce ~1 KiB transfers.
            max_burst: spec.streams.max(4),
            single_block: spec.chase_fraction,
            next_tenant: 0,
        }
    }

    /// The next request (the stream never ends).
    pub fn next_request(&mut self) -> Request {
        let tenant = self.next_tenant;
        self.next_tenant = (self.next_tenant + 1) % self.tenants;
        let blocks = if self.rng.next_f64() < self.single_block {
            1
        } else {
            1 + self.rng.below(u64::from(self.max_burst)) as u32
        };
        Request {
            tenant,
            bytes: blocks * BLOCK_BYTES,
        }
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let s = spec("mcf").unwrap();
        let a: Vec<Request> = RequestStream::from_spec(s, 2, 7).take(100).collect();
        let b: Vec<Request> = RequestStream::from_spec(s, 2, 7).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<Request> = RequestStream::from_spec(s, 2, 8).take(100).collect();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn tenants_round_robin() {
        let s = spec("mcf").unwrap();
        let reqs: Vec<Request> = RequestStream::from_spec(s, 3, 1).take(9).collect();
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.tenant, (i % 3) as u16);
        }
    }

    #[test]
    fn sizes_are_block_multiples_and_bounded() {
        let s = spec("parboil-lbm").unwrap();
        for r in RequestStream::from_spec(s, 2, 42).take(10_000) {
            assert_eq!(r.bytes % BLOCK_BYTES, 0);
            assert!(r.bytes >= BLOCK_BYTES);
            assert!(r.bytes <= (s.streams.max(4) + 1) * BLOCK_BYTES);
        }
    }

    #[test]
    fn chase_heavy_clones_issue_smaller_requests() {
        let chase = spec("mcf").unwrap(); // 60% chases
        let stream = spec("parboil-lbm").unwrap(); // 0% chases, 18 streams
        let mean = |s, seed| {
            let total: u64 = RequestStream::from_spec(s, 1, seed)
                .take(10_000)
                .map(|r| u64::from(r.bytes))
                .sum();
            total as f64 / 10_000.0
        };
        assert!(
            mean(chase, 1) < mean(stream, 1),
            "mcf mean {} vs parboil-lbm mean {}",
            mean(chase, 1),
            mean(stream, 1)
        );
    }
}
