//! Advisory whole-file locking over `flock(2)`.
//!
//! The sharded design-space explorer (`experiments::shard`) has N
//! independent **processes** appending to shared JSONL files (the lease
//! log and checkpoint manifests). In-process mutexes cannot serialize
//! those appends; `flock(2)` can, and — crucially for a crash-tolerant
//! design — the kernel releases a flock automatically when its holder
//! dies, *including* death by `SIGKILL`. A lock-file scheme would need
//! stale-lock heuristics for exactly the failure the explorer is built
//! to survive.
//!
//! The workspace is hermetic (no registry dependencies, so no `libc`
//! crate) and the crates that need locking forbid `unsafe`; this crate
//! is the one tiny, auditable exception: a single `extern "C"` shim for
//! `flock`, which links against the C library the Rust standard library
//! already links on Unix targets.
//!
//! Locks are **advisory**: every writer of a shared file must take the
//! lock through this crate for the serialization to hold. On non-Unix
//! targets the guard is a no-op (the explorer's multi-process mode is
//! documented as Unix-only; single-process use needs no locking).

#![warn(missing_docs)]

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    /// `flock(2)` operation: exclusive lock.
    pub const LOCK_EX: c_int = 2;
    /// `flock(2)` operation: unlock.
    pub const LOCK_UN: c_int = 8;

    extern "C" {
        pub fn flock(fd: c_int, operation: c_int) -> c_int;
    }
}

/// An exclusive advisory lock on a [`File`], released on drop (and by
/// the kernel if the process dies first — even by `SIGKILL`).
///
/// `flock` locks belong to the *open file description*: taking the lock
/// again through the same `File` (or a clone of it) does not deadlock,
/// but the first unlock releases the description's lock entirely — so
/// never nest two guards over the same `File`.
#[derive(Debug)]
pub struct FlockGuard<'a> {
    #[cfg_attr(not(unix), allow(dead_code))]
    file: &'a File,
}

impl<'a> FlockGuard<'a> {
    /// Takes an exclusive lock on `file`, blocking until the current
    /// holder (if any) releases it or dies.
    ///
    /// # Errors
    ///
    /// The underlying `flock` error. `EINTR` is retried internally.
    #[cfg(unix)]
    pub fn exclusive(file: &'a File) -> io::Result<Self> {
        use std::os::fd::AsRawFd;
        loop {
            // SAFETY: `file.as_raw_fd()` is a valid open descriptor for
            // the lifetime of `file`, which the guard borrows; flock
            // neither reads nor writes caller memory.
            let rc = unsafe { sys::flock(file.as_raw_fd(), sys::LOCK_EX) };
            if rc == 0 {
                return Ok(Self { file });
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// No-op fallback: non-Unix targets get no cross-process exclusion.
    #[cfg(not(unix))]
    pub fn exclusive(file: &'a File) -> io::Result<Self> {
        Ok(Self { file })
    }
}

impl Drop for FlockGuard<'_> {
    fn drop(&mut self) {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            // SAFETY: same descriptor the guard locked; unlock cannot
            // touch caller memory. Errors on unlock are unreportable
            // from drop and the kernel releases on close regardless.
            let _ = unsafe { sys::flock(self.file.as_raw_fd(), sys::LOCK_UN) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn lock_unlock_round_trip() {
        let dir = std::env::temp_dir().join(format!("dap-flock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lock.txt");
        let file = File::create(&path).unwrap();
        {
            let _guard = FlockGuard::exclusive(&file).unwrap();
            // `Write for &File`: writing through the shared borrow the
            // guard also holds.
            (&file).write_all(b"locked write\n").unwrap();
        }
        // Re-acquiring after release must succeed immediately.
        let _guard = FlockGuard::exclusive(&file).unwrap();
        drop(_guard);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn lock_excludes_a_second_process() {
        // A child process that takes the lock and sleeps must delay this
        // process's acquisition by at least the sleep. Uses `flock(1)`
        // (util-linux) so the child's lock is a real flock on the file.
        let dir = std::env::temp_dir().join(format!("dap-flock-x-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.txt");
        let file = File::create(&path).unwrap();
        let mut child = match std::process::Command::new("flock")
            .arg(&path)
            .args(["-c", "sleep 0.5"])
            .spawn()
        {
            Ok(child) => child,
            // Environment without flock(1): exclusion is still covered
            // by the lease-log chaos tests; skip here.
            Err(_) => return,
        };
        // Give the child time to actually take the lock.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let start = std::time::Instant::now();
        let guard = FlockGuard::exclusive(&file).unwrap();
        let waited = start.elapsed();
        drop(guard);
        let status = child.wait().unwrap();
        assert!(status.success());
        assert!(
            waited >= std::time::Duration::from_millis(100),
            "acquisition returned in {waited:?} while the child held the lock"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
