//! A counting Bloom filter, as SBD uses to identify write-intensive pages.

/// A counting Bloom filter over `u64` keys with 4 hash functions and
/// saturating 8-bit counters. Supports periodic halving ("aging") so stale
/// write counts decay.
#[derive(Debug, Clone)]
pub struct CountingBloom {
    counters: Vec<u8>,
    mask: u64,
}

impl CountingBloom {
    /// Creates a filter with `slots` counters (rounded up to a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "need at least one counter");
        let n = slots.next_power_of_two();
        Self {
            counters: vec![0; n],
            mask: (n - 1) as u64,
        }
    }

    fn hashes(&self, key: u64) -> [usize; 4] {
        let mut h = key.wrapping_mul(0x9E3779B97F4A7C15);
        let mut out = [0usize; 4];
        for slot in &mut out {
            h ^= h >> 29;
            h = h.wrapping_mul(0xBF58476D1CE4E5B9);
            *slot = (h & self.mask) as usize;
        }
        out
    }

    /// Increments the key's count (saturating).
    pub fn increment(&mut self, key: u64) {
        for i in self.hashes(key) {
            self.counters[i] = self.counters[i].saturating_add(1);
        }
    }

    /// Estimated count for the key (an upper bound, as in any counting
    /// Bloom filter).
    pub fn estimate(&self, key: u64) -> u8 {
        self.hashes(key)
            .iter()
            .map(|&i| self.counters[i])
            .min()
            .unwrap_or(0)
    }

    /// Halves every counter (aging).
    pub fn age(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut b = CountingBloom::new(1024);
        for _ in 0..5 {
            b.increment(42);
        }
        assert!(b.estimate(42) >= 5);
    }

    #[test]
    fn unseen_keys_estimate_low() {
        let mut b = CountingBloom::new(4096);
        for k in 0..50 {
            b.increment(k);
        }
        // A fresh key should not look heavily written.
        assert!(b.estimate(0xDEAD_BEEF) < 3);
    }

    #[test]
    fn aging_halves() {
        let mut b = CountingBloom::new(1024);
        for _ in 0..8 {
            b.increment(7);
        }
        let before = b.estimate(7);
        b.age();
        assert_eq!(b.estimate(7), before / 2);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut b = CountingBloom::new(64);
        for _ in 0..300 {
            b.increment(1);
        }
        assert_eq!(b.estimate(1), 255);
    }
}
