//! BATMAN: Bandwidth-Aware Tiered-Memory Management (Chou et al.), as
//! characterized in Section VI-A4 of the DAP paper.
//!
//! BATMAN modulates the DRAM-cache *hit rate* toward the bandwidth-optimal
//! target `T = B_MS$ / (B_MS$ + B_MM)` by disabling cache sets: a disabled
//! set behaves as a miss and is never filled, pushing a fraction of
//! accesses to main memory. When a set is disabled its dirty blocks must
//! be flushed. The DAP paper's critique — disabled sets may not intersect
//! the hot region, cold sets take long to re-warm, and partitioning
//! happens even when the cache has bandwidth headroom — all emerge from
//! this mechanism.

use mem_sim::clock::Cycle;
use mem_sim::{Observation, Partitioner};

/// Demand accesses per adjustment epoch.
const EPOCH: u64 = 8192;
/// Hysteresis around the target hit rate.
const DEADBAND: f64 = 0.02;
/// Fraction of all sets adjusted per epoch step.
const STEP_FRACTION: u64 = 64;

/// The BATMAN policy.
#[derive(Debug, Clone)]
pub struct Batman {
    target: f64,
    total_sets: u64,
    disabled: u64,
    epoch_demand: u64,
    epoch_misses: u64,
    newly_disabled: Vec<u64>,
}

impl Batman {
    /// Creates BATMAN for a cache with `total_sets` directory sets and the
    /// given cache/memory bandwidths (GB/s) defining the target hit rate.
    ///
    /// # Panics
    ///
    /// Panics if bandwidths are not positive or `total_sets` is zero.
    pub fn new(total_sets: u64, cache_gbps: f64, mm_gbps: f64) -> Self {
        assert!(total_sets > 0, "cache must have sets");
        assert!(
            cache_gbps > 0.0 && mm_gbps > 0.0,
            "bandwidths must be positive"
        );
        Self {
            target: cache_gbps / (cache_gbps + mm_gbps),
            total_sets,
            disabled: 0,
            epoch_demand: 0,
            epoch_misses: 0,
            newly_disabled: Vec::new(),
        }
    }

    /// The target hit rate `B_MS$ / (B_MS$ + B_MM)`.
    pub fn target_hit_rate(&self) -> f64 {
        self.target
    }

    /// Currently disabled set count.
    pub fn disabled_sets(&self) -> u64 {
        self.disabled
    }

    fn adjust(&mut self) {
        let hit_rate = 1.0 - self.epoch_misses as f64 / self.epoch_demand as f64;
        let step = (self.total_sets / STEP_FRACTION).max(1);
        if hit_rate > self.target + DEADBAND {
            // Too many hits: disable more sets to push traffic to memory.
            let new_disabled = (self.disabled + step).min(self.total_sets / 2);
            for s in self.disabled..new_disabled {
                self.newly_disabled.push(s);
            }
            self.disabled = new_disabled;
        } else if hit_rate < self.target - DEADBAND {
            // Too many misses: re-enable sets (they re-warm over time).
            self.disabled = self.disabled.saturating_sub(step);
        }
        self.epoch_demand = 0;
        self.epoch_misses = 0;
    }
}

impl Partitioner for Batman {
    fn observe(&mut self, event: Observation, _now: Cycle) {
        match event {
            Observation::DemandRead | Observation::WriteDemand => {
                self.epoch_demand += 1;
                if self.epoch_demand >= EPOCH {
                    self.adjust();
                }
            }
            Observation::ReadMiss => self.epoch_misses += 1,
            _ => {}
        }
    }

    fn set_enabled(&mut self, set: u64, _now: Cycle) -> bool {
        set >= self.disabled
    }

    fn take_newly_disabled_sets(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.newly_disabled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_epoch(b: &mut Batman, misses_per_epoch: u64) {
        for i in 0..EPOCH {
            if i < misses_per_epoch {
                b.observe(Observation::ReadMiss, 0);
            }
            b.observe(Observation::DemandRead, 0);
        }
    }

    #[test]
    fn target_is_bandwidth_ratio() {
        let b = Batman::new(1024, 102.4, 38.4);
        assert!((b.target_hit_rate() - 102.4 / 140.8).abs() < 1e-12);
    }

    #[test]
    fn high_hit_rate_disables_sets() {
        let mut b = Batman::new(1024, 102.4, 38.4);
        drive_epoch(&mut b, 0); // 100% hit rate
        assert!(b.disabled_sets() > 0);
        let newly = b.take_newly_disabled_sets();
        assert_eq!(newly.len() as u64, b.disabled_sets());
        assert!(!b.set_enabled(0, 0));
        assert!(b.set_enabled(1023, 0));
    }

    #[test]
    fn low_hit_rate_reenables_sets() {
        let mut b = Batman::new(1024, 102.4, 38.4);
        drive_epoch(&mut b, 0);
        let disabled = b.disabled_sets();
        drive_epoch(&mut b, EPOCH); // 0% hit rate
        assert!(b.disabled_sets() < disabled);
    }

    #[test]
    fn hit_rate_near_target_is_stable() {
        let mut b = Batman::new(1024, 102.4, 38.4);
        // 72.7% hit rate ~ target: no adjustment.
        let misses = (EPOCH as f64 * (1.0 - b.target_hit_rate())) as u64;
        drive_epoch(&mut b, misses);
        assert_eq!(b.disabled_sets(), 0);
    }

    #[test]
    fn never_disables_more_than_half() {
        let mut b = Batman::new(1024, 102.4, 38.4);
        for _ in 0..500 {
            drive_epoch(&mut b, 0);
        }
        assert!(b.disabled_sets() <= 512);
    }

    #[test]
    fn disabled_sets_reported_once() {
        let mut b = Batman::new(1024, 102.4, 38.4);
        drive_epoch(&mut b, 0);
        let first = b.take_newly_disabled_sets();
        assert!(!first.is_empty());
        assert!(b.take_newly_disabled_sets().is_empty());
    }
}
