//! # policies — related access-partitioning proposals
//!
//! The baselines the paper compares DAP against in Section VI-A4 /
//! Fig. 11, implemented as [`mem_sim::Partitioner`]s:
//!
//! * [`Sbd`] — Self-Balancing Dispatch (Sim et al., MICRO 2012): steers
//!   reads to whichever source has the lowest expected latency, kept safe
//!   by a mostly-clean cache (write-through by default, a Dirty List of
//!   write-intensive pages tracked by counting Bloom filters). The
//!   [`SbdVariant::WriteThroughOnly`] flavour is the paper's SBD-WT, which
//!   never force-cleans evicted Dirty List pages.
//! * [`Batman`] — Bandwidth-Aware Tiered-Memory Management (Chou et al.):
//!   disables cache sets until the observed hit rate matches the
//!   bandwidth-optimal target `B_MS$ / (B_MS$ + B_MM)`.
//!
//! BEAR is not a partitioner — it is an Alloy-cache optimization — and is
//! modeled inside `mem_sim::mscache::AlloyCache` (presence bits +
//! reuse-aware fill bypass).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batman;
pub mod bloom;
pub mod sbd;

pub use batman::Batman;
pub use bloom::CountingBloom;
pub use sbd::{Sbd, SbdVariant};
