//! Self-Balancing Dispatch (Sim et al., MICRO 2012), as characterized in
//! Section VI-A4 of the DAP paper.
//!
//! SBD steers each read to the bandwidth source with the lowest *expected
//! latency* (queue depth plus service time). Steering a read to main
//! memory is only correct if the cached copy is not dirty, so SBD keeps
//! the cache *mostly clean*: pages are written through by default, and a
//! bank of counting Bloom filters promotes write-intensive pages into a
//! bounded Dirty List that operates in writeback mode. When a page falls
//! out of the Dirty List it must be *cleaned* — its dirty blocks read from
//! the cache and written to main memory — which is the forced write-out
//! traffic the DAP paper identifies as SBD's weakness. The SBD-WT variant
//! skips the forced cleaning.

use mem_sim::clock::Cycle;
use mem_sim::{Observation, Partitioner, ReadContext, ReadRoute, WriteRoute};
use std::collections::HashMap;

use crate::bloom::CountingBloom;

/// Which SBD flavour to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbdVariant {
    /// Original SBD: evicted Dirty List pages are force-cleaned.
    Original,
    /// SBD-WT: no forced cleaning; relies on write-through alone.
    WriteThroughOnly,
}

/// Pages (4 KB) per Dirty List. The paper's SBD holds 2048 pages against
/// a 4 GB cache (0.2% of capacity); this reproduction scales capacities by
/// 64x (see `mem_sim::CAPACITY_SCALE`), so the Dirty List scales too —
/// otherwise it would cover 12% of the cache and its forced write-outs
/// (SBD's weakness in the paper) would never occur.
const DIRTY_LIST_CAPACITY: usize = 32;
/// Writes (estimated) before a page is considered write-intensive.
const PROMOTE_THRESHOLD: u8 = 8;
/// Bloom aging period in observed writes.
const AGE_PERIOD: u64 = 64 * 1024;
/// Service-latency estimates (CPU cycles) added to the queue estimates.
const CACHE_SERVICE: Cycle = 60;
const MM_SERVICE: Cycle = 95;

/// The SBD policy.
#[derive(Debug, Clone)]
pub struct Sbd {
    variant: SbdVariant,
    bloom: CountingBloom,
    dirty_list: HashMap<u64, u64>,
    clock: u64,
    writes_seen: u64,
    pending_cleans: Vec<u64>,
    // Global hit-rate tracker standing in for SBD's hit predictor.
    demand_reads: u64,
    read_misses: u64,
    steered: u64,
}

impl Sbd {
    /// Creates the policy.
    pub fn new(variant: SbdVariant) -> Self {
        Self {
            variant,
            bloom: CountingBloom::new(64 * 1024),
            dirty_list: HashMap::new(),
            clock: 0,
            writes_seen: 0,
            pending_cleans: Vec::new(),
            demand_reads: 0,
            read_misses: 0,
            steered: 0,
        }
    }

    /// Which variant this instance runs.
    pub fn variant(&self) -> SbdVariant {
        self.variant
    }

    /// Reads steered to main memory so far.
    pub fn steered(&self) -> u64 {
        self.steered
    }

    /// Pages currently in the Dirty List.
    pub fn dirty_list_len(&self) -> usize {
        self.dirty_list.len()
    }

    fn page_of(block: u64) -> u64 {
        block >> 6 // 64 blocks = 4 KB pages
    }

    fn predicted_hit(&self) -> bool {
        if self.demand_reads < 1000 {
            return true; // optimistic until trained
        }
        self.read_misses * 2 < self.demand_reads
    }

    fn promote(&mut self, page: u64) {
        self.clock += 1;
        let clock = self.clock;
        self.dirty_list.insert(page, clock);
        if self.dirty_list.len() > DIRTY_LIST_CAPACITY {
            // Evict the oldest page.
            if let Some((&victim, _)) = self.dirty_list.iter().min_by_key(|(_, &t)| t) {
                self.dirty_list.remove(&victim);
                if self.variant == SbdVariant::Original {
                    self.pending_cleans.push(victim);
                }
            }
        }
    }
}

impl Partitioner for Sbd {
    fn observe(&mut self, event: Observation, _now: Cycle) {
        match event {
            Observation::DemandRead => self.demand_reads += 1,
            Observation::ReadMiss => self.read_misses += 1,
            _ => {}
        }
    }

    fn route_read(&mut self, ctx: &ReadContext) -> ReadRoute {
        let page = Self::page_of(ctx.block);
        if self.dirty_list.contains_key(&page) {
            return ReadRoute::Lookup; // possibly dirty: must use the cache
        }
        let cache_expected = ctx.cache_wait + CACHE_SERVICE;
        let mm_expected = ctx.mm_wait + MM_SERVICE;
        if !self.predicted_hit() || mm_expected < cache_expected {
            self.steered += 1;
            ReadRoute::SteerMainMemory
        } else {
            ReadRoute::Lookup
        }
    }

    fn route_write(&mut self, block: u64, _now: Cycle, hit: bool) -> WriteRoute {
        self.writes_seen += 1;
        if self.writes_seen.is_multiple_of(AGE_PERIOD) {
            self.bloom.age();
        }
        let page = Self::page_of(block);
        self.bloom.increment(page);
        if self.dirty_list.contains_key(&page) {
            // Refresh recency and stay in writeback mode.
            self.clock += 1;
            let clock = self.clock;
            self.dirty_list.insert(page, clock);
            return WriteRoute::Cache;
        }
        if self.bloom.estimate(page) >= PROMOTE_THRESHOLD {
            self.promote(page);
            return WriteRoute::Cache;
        }
        // Mostly-clean: write through so reads stay steerable.
        if hit {
            WriteRoute::Both
        } else {
            WriteRoute::MainMemory
        }
    }

    fn take_sectors_to_clean(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_cleans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(block: u64, cache_wait: Cycle, mm_wait: Cycle) -> ReadContext {
        ReadContext {
            block,
            core: 0,
            now: 0,
            cache_wait,
            mm_wait,
        }
    }

    #[test]
    fn steers_to_mm_when_cache_queues_are_long() {
        let mut sbd = Sbd::new(SbdVariant::Original);
        assert_eq!(sbd.route_read(&ctx(0, 1000, 0)), ReadRoute::SteerMainMemory);
    }

    #[test]
    fn prefers_cache_when_it_is_faster() {
        let mut sbd = Sbd::new(SbdVariant::Original);
        assert_eq!(sbd.route_read(&ctx(0, 0, 0)), ReadRoute::Lookup);
    }

    #[test]
    fn dirty_list_pages_always_use_the_cache() {
        let mut sbd = Sbd::new(SbdVariant::Original);
        let block = 42 << 6; // page 42
        for _ in 0..PROMOTE_THRESHOLD {
            let _ = sbd.route_write(block, 0, true);
        }
        assert!(sbd.dirty_list_len() > 0, "page should be promoted");
        assert_eq!(sbd.route_read(&ctx(block, 10_000, 0)), ReadRoute::Lookup);
    }

    #[test]
    fn cold_pages_write_through() {
        let mut sbd = Sbd::new(SbdVariant::Original);
        assert_eq!(sbd.route_write(0, 0, true), WriteRoute::Both);
        assert_eq!(sbd.route_write(64 << 6, 0, false), WriteRoute::MainMemory);
    }

    #[test]
    fn hot_pages_switch_to_writeback() {
        let mut sbd = Sbd::new(SbdVariant::Original);
        let block = 7 << 6;
        let mut last = WriteRoute::Both;
        for _ in 0..PROMOTE_THRESHOLD + 1 {
            last = sbd.route_write(block, 0, true);
        }
        assert_eq!(last, WriteRoute::Cache);
    }

    #[test]
    fn original_cleans_evicted_pages_but_wt_does_not() {
        for (variant, expect_cleans) in [
            (SbdVariant::Original, true),
            (SbdVariant::WriteThroughOnly, false),
        ] {
            let mut sbd = Sbd::new(variant);
            // Promote far more pages than the Dirty List holds.
            for page in 0..(DIRTY_LIST_CAPACITY as u64 + 100) {
                for _ in 0..PROMOTE_THRESHOLD {
                    let _ = sbd.route_write(page << 6, 0, true);
                }
            }
            assert!(sbd.dirty_list_len() <= DIRTY_LIST_CAPACITY);
            let cleans = sbd.take_sectors_to_clean();
            assert_eq!(!cleans.is_empty(), expect_cleans, "{variant:?}");
        }
    }

    #[test]
    fn miss_heavy_phase_steers_reads() {
        let mut sbd = Sbd::new(SbdVariant::Original);
        for _ in 0..2000 {
            sbd.observe(Observation::DemandRead, 0);
            sbd.observe(Observation::ReadMiss, 0);
        }
        // All misses: prediction says miss, so go straight to memory even
        // when queues are equal.
        assert_eq!(sbd.route_read(&ctx(0, 0, 0)), ReadRoute::SteerMainMemory);
    }
}
