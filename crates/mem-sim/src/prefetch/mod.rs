//! Hardware prefetchers: the cores' multi-stream stride prefetcher and the
//! sectored caches' footprint prefetcher.

mod footprint;
mod stride;

pub use footprint::FootprintPredictor;
pub use stride::StridePrefetcher;
