//! Multi-stream stride prefetcher (Section V: "an aggressive multi-stream
//! stride prefetcher that prefetches into the L2 and L3 caches").
//!
//! The prefetcher tracks up to `STREAMS` independent access streams per
//! core. A stream is keyed by a region (the high bits of the block address);
//! two consecutive accesses with an identical block-stride train it, after
//! which each access emits up to `degree` prefetch candidates ahead of the
//! observed address.

/// Number of concurrently tracked streams.
const STREAMS: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    region: u64,
    last_block: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
    last_use: u64,
}

/// A per-core multi-stream stride prefetcher operating on block addresses.
///
/// ```
/// use mem_sim::prefetch::StridePrefetcher;
/// let mut p = StridePrefetcher::new(2);
/// assert!(p.observe(100).is_empty()); // allocate
/// assert!(p.observe(101).is_empty()); // train (stride 1)
/// assert_eq!(p.observe(102), vec![103, 104]); // confident: prefetch ahead
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    streams: [Stream; STREAMS],
    degree: u32,
    tick: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// Region granularity: streams are distinguished by bits above this
    /// shift of the *block* address (64 blocks = 4 KB regions).
    const REGION_SHIFT: u32 = 6;

    /// Creates a prefetcher issuing up to `degree` prefetches per trained
    /// access.
    pub fn new(degree: u32) -> Self {
        Self {
            streams: [Stream::default(); STREAMS],
            degree,
            tick: 0,
            issued: 0,
        }
    }

    /// Total prefetch candidates emitted so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observes a demand *block* address; returns block addresses to
    /// prefetch (possibly empty).
    pub fn observe(&mut self, block: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(block, &mut out);
        out
    }

    /// [`Self::observe`] writing candidates into a caller-owned buffer
    /// (cleared first), so steady-state observation never allocates.
    pub fn observe_into(&mut self, block: u64, out: &mut Vec<u64>) {
        out.clear();
        self.tick += 1;
        let region = block >> Self::REGION_SHIFT;
        // Find this region's stream, or the stream in an adjacent region the
        // access may have crossed into.
        let slot = self
            .streams
            .iter()
            .position(|s| s.valid && (s.region == region || s.region + 1 == region));
        let Some(i) = slot else {
            // Allocate over the least-recently-used stream.
            let victim = (0..STREAMS)
                .min_by_key(|&i| {
                    if self.streams[i].valid {
                        self.streams[i].last_use
                    } else {
                        0
                    }
                })
                // invariant: STREAMS is a non-zero constant, so the
                // victim scan always yields a candidate.
                .expect("streams is non-empty");
            self.streams[victim] = Stream {
                region,
                last_block: block,
                stride: 0,
                confidence: 0,
                valid: true,
                last_use: self.tick,
            };
            return;
        };
        let s = &mut self.streams[i];
        s.last_use = self.tick;
        s.region = region;
        let observed = block as i64 - s.last_block as i64;
        if observed == 0 {
            return;
        }
        if observed == s.stride && s.stride != 0 {
            s.confidence = (s.confidence + 1).min(3);
        } else {
            s.stride = observed;
            s.confidence = 0;
        }
        s.last_block = block;
        if s.confidence == 0 {
            return;
        }
        let stride = s.stride;
        for d in 1..=i64::from(self.degree) {
            let target = block as i64 + stride * d;
            if target >= 0 {
                out.push(target as u64);
            }
        }
        self.issued += out.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_on_unit_stride() {
        let mut p = StridePrefetcher::new(2);
        assert!(p.observe(100).is_empty());
        assert!(p.observe(101).is_empty());
        assert_eq!(p.observe(102), vec![103, 104]);
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn trains_on_negative_stride() {
        let mut p = StridePrefetcher::new(1);
        p.observe(200);
        p.observe(198);
        assert_eq!(p.observe(196), vec![194]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(2);
        p.observe(100);
        p.observe(101);
        assert!(!p.observe(102).is_empty());
        assert!(p.observe(110).is_empty(), "stride broke; must retrain");
        assert_eq!(p.observe(118), vec![126, 134], "retrained on stride 8");
    }

    #[test]
    fn tracks_independent_streams() {
        let mut p = StridePrefetcher::new(1);
        // Stream A in region 0, stream B far away.
        p.observe(0);
        p.observe(1 << 20);
        p.observe(1);
        p.observe((1 << 20) + 1);
        assert_eq!(p.observe(2), vec![3]);
        assert_eq!(p.observe((1 << 20) + 2), vec![(1 << 20) + 3]);
    }

    #[test]
    fn repeated_same_block_is_ignored() {
        let mut p = StridePrefetcher::new(2);
        p.observe(50);
        assert!(p.observe(50).is_empty());
        assert!(p.observe(50).is_empty());
    }

    #[test]
    fn follows_stream_across_region_boundary() {
        let mut p = StridePrefetcher::new(1);
        // Walk the last blocks of region 0 into region 1.
        p.observe(62);
        p.observe(63);
        assert_eq!(
            p.observe(64),
            vec![65],
            "stream must survive region crossing"
        );
    }
}
