//! Footprint predictor for sectored memory-side caches (Jevdjic et al.,
//! "Die-stacked DRAM Caches for Servers", as used by the paper's baseline).
//!
//! A sectored cache allocates multi-kilobyte sectors but fetching a whole
//! sector on a miss wastes main-memory bandwidth on never-used blocks. The
//! footprint predictor remembers, per sector, *which* blocks were touched
//! during the sector's previous residency (its footprint bit vector) and
//! fetches only those blocks when the sector is re-allocated.

use crate::cache::{ReplacementKind, SetAssocCache};

/// Footprint history table: maps a sector's address to the bit vector of
/// blocks that were used during its last generation in the cache.
#[derive(Debug, Clone)]
pub struct FootprintPredictor {
    table: SetAssocCache<u64>,
    blocks_per_sector: u32,
    predictions: u64,
    predicted_blocks: u64,
}

impl FootprintPredictor {
    /// Creates a predictor with `entries` history slots (4-way associative)
    /// for sectors of `blocks_per_sector` blocks (at most 64).
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_sector` is 0 or exceeds 64, or `entries < 4`.
    pub fn new(entries: u64, blocks_per_sector: u32) -> Self {
        assert!(
            (1..=64).contains(&blocks_per_sector),
            "footprint bit vector holds at most 64 blocks"
        );
        assert!(entries >= 4, "need at least one 4-way set");
        Self {
            table: SetAssocCache::new(entries / 4, 4, ReplacementKind::Lru),
            blocks_per_sector,
            predictions: 0,
            predicted_blocks: 0,
        }
    }

    /// Records the footprint of an evicted sector.
    pub fn record(&mut self, sector: u64, footprint: u64) {
        if footprint != 0 {
            self.table.insert(sector, footprint, false);
        }
    }

    /// Predicts which block offsets to fetch when `sector` is allocated for
    /// a demand access to `demand_offset`. The demanded block is always
    /// included. Returns a bit vector over block offsets.
    pub fn predict(&mut self, sector: u64, demand_offset: u32) -> u64 {
        assert!(
            demand_offset < self.blocks_per_sector,
            "offset outside sector"
        );
        self.predictions += 1;
        let demanded = 1u64 << demand_offset;
        let predicted = self.table.lookup_payload(sector).map(|f| *f).unwrap_or(0);
        let fp = predicted | demanded;
        self.predicted_blocks += u64::from(fp.count_ones());
        fp
    }

    /// (sector predictions made, total blocks predicted) so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.predictions, self.predicted_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_prediction_is_demand_block_only() {
        let mut p = FootprintPredictor::new(64, 64);
        assert_eq!(p.predict(10, 3), 1 << 3);
    }

    #[test]
    fn recorded_footprint_is_replayed() {
        let mut p = FootprintPredictor::new(64, 64);
        p.record(10, 0b1010_1010);
        assert_eq!(p.predict(10, 0), 0b1010_1011, "history OR demanded block");
    }

    #[test]
    fn empty_footprints_are_not_stored() {
        let mut p = FootprintPredictor::new(64, 64);
        p.record(10, 0);
        assert_eq!(p.predict(10, 1), 1 << 1);
    }

    #[test]
    fn distinct_sectors_have_distinct_histories() {
        let mut p = FootprintPredictor::new(64, 64);
        p.record(1, 0b1);
        p.record(2, 0b10);
        assert_eq!(p.predict(1, 5), 0b1 | (1 << 5));
        assert_eq!(p.predict(2, 5), 0b10 | (1 << 5));
    }

    #[test]
    fn counts_accumulate() {
        let mut p = FootprintPredictor::new(64, 64);
        p.record(10, 0b111);
        p.predict(10, 0);
        p.predict(11, 2);
        assert_eq!(p.counts(), (2, 4));
    }

    #[test]
    #[should_panic(expected = "offset outside sector")]
    fn out_of_range_offset_rejected() {
        let mut p = FootprintPredictor::new(64, 16);
        let _ = p.predict(0, 16);
    }
}
