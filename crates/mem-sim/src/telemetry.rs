//! Simulator-side telemetry: queue-occupancy and channel-utilization
//! recording for the memory subsystem.
//!
//! [`SubsystemTelemetry`] accumulates into plain (non-atomic) local
//! counters — a `System` is single-threaded, so its hot paths pay one
//! integer add per sample, not atomic traffic — and publishes everything
//! into the shared [`MetricsRegistry`] in one bulk [`flush`]
//! (subsystem `finalize` calls it). All metrics live under the `mem.` /
//! `mm.` namespaces of the supplied registry, so one registry can
//! aggregate several subsystems (the experiment executor shares one per
//! variant — the flushed sums are commutative, keeping parallel runs
//! deterministic).
//!
//! [`flush`]: SubsystemTelemetry::flush

use dap_telemetry::metrics::{bucket_for, Counter, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};

use crate::clock::Cycle;
use crate::profile::PhaseSample;

/// A plain-integer histogram accumulator mirroring
/// [`Histogram`]'s bucket layout, flushed in bulk.
#[derive(Debug, Clone, Copy)]
struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHistogram {
    #[inline]
    fn record(&mut self, value: u64) {
        self.buckets[bucket_for(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    fn flush_into(&mut self, target: &Histogram) {
        if self.count > 0 {
            target.add_bucketed(&self.buckets, self.count, self.sum);
            *self = Self::default();
        }
    }
}

/// Metric handles and local accumulators the memory subsystem records
/// into when attached.
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `mem.demand_reads` | counter | demand reads entering the subsystem |
/// | `mem.demand_writes` | counter | L3 dirty evictions entering |
/// | `mem.read_latency` | histogram | demand-read completion latency (cycles) |
/// | `mem.cache_queue_wait` | histogram | memory-side cache queue depth at read arrival (cycles) |
/// | `mem.mm_queue_wait` | histogram | main-memory queue depth at read arrival (cycles) |
/// | `mm.channel_cas` | histogram | per-channel CAS totals at finalize (one sample per channel) |
/// | `mm.channel_util_pct` | histogram | per-channel bus utilization percent at finalize |
/// | `mem.faults_applied` | counter | injected fault events becoming active |
/// | `mem.faults_cleared` | counter | injected fault events expiring |
/// | `mem.bandwidth_resolves` | counter | measured-bandwidth changes reported to the policy |
/// | `prof.samples` | counter | demand accesses in the cycle-attribution sample |
/// | `prof.grants` | counter | sampled accesses a DAP technique fired on |
/// | `prof.tag_probe` | histogram | sampled SRAM tag-cache probe cycles |
/// | `prof.cache_tag` | histogram | sampled DRAM/eDRAM tag-access cycles |
/// | `prof.cache_queue_wait` | histogram | sampled cache-queue wait at arrival (cycles) |
/// | `prof.mm_queue_wait` | histogram | sampled main-memory-queue wait at arrival (cycles) |
/// | `prof.channel_cas` | histogram | sampled residual channel service cycles |
/// | `prof.dap_decision` | histogram | queue-wait gap of granted samples (cycles) |
///
/// Samples become visible in the registry only after [`flush`]
/// (`MemorySubsystem::finalize` — and therefore `System::run` — flushes
/// automatically).
///
/// [`flush`]: SubsystemTelemetry::flush
#[derive(Debug, Clone)]
pub struct SubsystemTelemetry {
    registry: MetricsRegistry,
    demand_reads: Counter,
    demand_writes: Counter,
    read_latency: Histogram,
    cache_queue_wait: Histogram,
    mm_queue_wait: Histogram,
    channel_cas: Histogram,
    channel_util_pct: Histogram,
    faults_applied: Counter,
    faults_cleared: Counter,
    bandwidth_resolves: Counter,
    prof_samples: Counter,
    prof_grants: Counter,
    prof_tag_probe: Histogram,
    prof_cache_tag: Histogram,
    prof_cache_queue_wait: Histogram,
    prof_mm_queue_wait: Histogram,
    prof_channel_cas: Histogram,
    prof_dap_decision: Histogram,
    local_demand_reads: u64,
    local_demand_writes: u64,
    local_faults_applied: u64,
    local_faults_cleared: u64,
    local_bandwidth_resolves: u64,
    local_prof_samples: u64,
    local_prof_grants: u64,
    local_read_latency: LocalHistogram,
    local_cache_queue_wait: LocalHistogram,
    local_mm_queue_wait: LocalHistogram,
    local_prof_tag_probe: LocalHistogram,
    local_prof_cache_tag: LocalHistogram,
    local_prof_cache_queue_wait: LocalHistogram,
    local_prof_mm_queue_wait: LocalHistogram,
    local_prof_channel_cas: LocalHistogram,
    local_prof_dap_decision: LocalHistogram,
}

impl SubsystemTelemetry {
    /// Creates the handle bundle against `registry` (one-time lookups).
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            registry: registry.clone(),
            demand_reads: registry.counter("mem.demand_reads"),
            demand_writes: registry.counter("mem.demand_writes"),
            read_latency: registry.histogram("mem.read_latency"),
            cache_queue_wait: registry.histogram("mem.cache_queue_wait"),
            mm_queue_wait: registry.histogram("mem.mm_queue_wait"),
            channel_cas: registry.histogram("mm.channel_cas"),
            channel_util_pct: registry.histogram("mm.channel_util_pct"),
            faults_applied: registry.counter("mem.faults_applied"),
            faults_cleared: registry.counter("mem.faults_cleared"),
            bandwidth_resolves: registry.counter("mem.bandwidth_resolves"),
            prof_samples: registry.counter("prof.samples"),
            prof_grants: registry.counter("prof.grants"),
            prof_tag_probe: registry.histogram("prof.tag_probe"),
            prof_cache_tag: registry.histogram("prof.cache_tag"),
            prof_cache_queue_wait: registry.histogram("prof.cache_queue_wait"),
            prof_mm_queue_wait: registry.histogram("prof.mm_queue_wait"),
            prof_channel_cas: registry.histogram("prof.channel_cas"),
            prof_dap_decision: registry.histogram("prof.dap_decision"),
            local_demand_reads: 0,
            local_demand_writes: 0,
            local_faults_applied: 0,
            local_faults_cleared: 0,
            local_bandwidth_resolves: 0,
            local_prof_samples: 0,
            local_prof_grants: 0,
            local_read_latency: LocalHistogram::default(),
            local_cache_queue_wait: LocalHistogram::default(),
            local_mm_queue_wait: LocalHistogram::default(),
            local_prof_tag_probe: LocalHistogram::default(),
            local_prof_cache_tag: LocalHistogram::default(),
            local_prof_cache_queue_wait: LocalHistogram::default(),
            local_prof_mm_queue_wait: LocalHistogram::default(),
            local_prof_channel_cas: LocalHistogram::default(),
            local_prof_dap_decision: LocalHistogram::default(),
        }
    }

    /// The registry these handles record into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records one demand read: its completion latency and the queue
    /// depths both routes showed on arrival.
    #[inline]
    pub fn record_demand_read(&mut self, latency: Cycle, cache_wait: Cycle, mm_wait: Cycle) {
        self.local_demand_reads += 1;
        self.local_read_latency.record(latency);
        self.local_cache_queue_wait.record(cache_wait);
        self.local_mm_queue_wait.record(mm_wait);
    }

    /// Records one demand write (L3 dirty eviction).
    #[inline]
    pub fn record_demand_write(&mut self) {
        self.local_demand_writes += 1;
    }

    /// Folds one cycle-attribution sample into the per-phase `prof.*`
    /// histograms. Every phase records a sample — a zero is the real
    /// "no wait" signal, and equal counts keep the phases comparable —
    /// except `prof.dap_decision`, which only granted accesses feed (an
    /// all-zeros flood from ungranted traffic would bury the gap
    /// distribution the grants decided across).
    #[inline]
    pub fn record_profile_sample(&mut self, sample: &PhaseSample) {
        self.local_prof_samples += 1;
        self.local_prof_grants += u64::from(sample.granted);
        self.local_prof_tag_probe.record(sample.tag_probe);
        self.local_prof_cache_tag.record(sample.cache_tag);
        self.local_prof_cache_queue_wait
            .record(sample.cache_queue_wait);
        self.local_prof_mm_queue_wait.record(sample.mm_queue_wait);
        self.local_prof_channel_cas.record(sample.channel_cas);
        if sample.granted {
            self.local_prof_dap_decision.record(sample.dap_decision);
        }
    }

    /// Records a fault-schedule boundary crossing: `applied` events became
    /// active, `cleared` expired, and (when either is nonzero) the
    /// measured bandwidth was re-reported to the policy once.
    pub fn record_fault_transition(&mut self, applied: u64, cleared: u64) {
        self.local_faults_applied += applied;
        self.local_faults_cleared += cleared;
        self.local_bandwidth_resolves += 1;
    }

    /// Folds end-of-run channel activity — `(cas_total, busy_cycles)`
    /// per main-memory channel — into the utilization histograms: one
    /// sample per channel, published immediately.
    pub fn record_channel_activity(&mut self, activity: &[(u64, Cycle)], elapsed: Cycle) {
        for &(cas_total, busy) in activity {
            self.channel_cas.record(cas_total);
            if let Some(util) = busy.saturating_mul(100).checked_div(elapsed) {
                self.channel_util_pct.record(util);
            }
        }
    }

    /// Publishes the locally accumulated samples into the shared
    /// registry and resets the local state. Idempotent between runs: a
    /// second flush with nothing new recorded adds nothing.
    pub fn flush(&mut self) {
        if self.local_demand_reads > 0 {
            self.demand_reads.add(self.local_demand_reads);
            self.local_demand_reads = 0;
        }
        if self.local_demand_writes > 0 {
            self.demand_writes.add(self.local_demand_writes);
            self.local_demand_writes = 0;
        }
        if self.local_faults_applied > 0 {
            self.faults_applied.add(self.local_faults_applied);
            self.local_faults_applied = 0;
        }
        if self.local_faults_cleared > 0 {
            self.faults_cleared.add(self.local_faults_cleared);
            self.local_faults_cleared = 0;
        }
        if self.local_bandwidth_resolves > 0 {
            self.bandwidth_resolves.add(self.local_bandwidth_resolves);
            self.local_bandwidth_resolves = 0;
        }
        if self.local_prof_samples > 0 {
            self.prof_samples.add(self.local_prof_samples);
            self.local_prof_samples = 0;
        }
        if self.local_prof_grants > 0 {
            self.prof_grants.add(self.local_prof_grants);
            self.local_prof_grants = 0;
        }
        self.local_read_latency.flush_into(&self.read_latency);
        self.local_cache_queue_wait
            .flush_into(&self.cache_queue_wait);
        self.local_mm_queue_wait.flush_into(&self.mm_queue_wait);
        self.local_prof_tag_probe.flush_into(&self.prof_tag_probe);
        self.local_prof_cache_tag.flush_into(&self.prof_cache_tag);
        self.local_prof_cache_queue_wait
            .flush_into(&self.prof_cache_queue_wait);
        self.local_prof_mm_queue_wait
            .flush_into(&self.prof_mm_queue_wait);
        self.local_prof_channel_cas
            .flush_into(&self.prof_channel_cas);
        self.local_prof_dap_decision
            .flush_into(&self.prof_dap_decision);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{DramConfig, DramModule};

    /// Drift check against the README "Metric reference" simulator
    /// table: every family this bundle registers must be documented
    /// with the right type, and every documented `mem.*`/`mm.*`/
    /// `prof.*` family must still be registered here.
    #[test]
    fn readme_sim_metric_table_matches_the_registry() {
        if !dap_telemetry::enabled() {
            return; // telemetry-off registers nothing
        }
        let registry = MetricsRegistry::new();
        let _telemetry = SubsystemTelemetry::new(&registry);
        let snap = registry.snapshot();
        let mut families: Vec<(String, &str)> = Vec::new();
        families.extend(snap.counters.keys().map(|k| (k.clone(), "counter")));
        families.extend(snap.gauges.keys().map(|k| (k.clone(), "gauge")));
        families.extend(snap.histograms.keys().map(|k| (k.clone(), "histogram")));
        assert!(families.len() >= 18, "registry too small: {families:?}");

        let readme = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));
        let begin = readme
            .find("<!-- sim-metric-table:begin -->")
            .expect("README sim table begin marker");
        let end = readme
            .find("<!-- sim-metric-table:end -->")
            .expect("README sim table end marker");
        let table = &readme[begin..end];

        for (family, kind) in &families {
            let row = format!("| `{family}` | {kind} |");
            assert!(
                table.contains(&row),
                "README simulator metric table is missing `{family}` (type {kind})"
            );
        }
        for name in table
            .lines()
            .filter_map(|l| l.strip_prefix("| `"))
            .filter_map(|rest| rest.split_once('`').map(|(n, _)| n))
        {
            assert!(
                families.iter().any(|(f, _)| f == name),
                "README documents `{name}` but SubsystemTelemetry no longer registers it"
            );
        }
    }

    #[test]
    fn demand_read_feeds_all_histograms() {
        let registry = MetricsRegistry::new();
        let mut telemetry = SubsystemTelemetry::new(&registry);
        telemetry.record_demand_read(120, 30, 0);
        telemetry.record_demand_read(80, 0, 15);
        telemetry.record_demand_write();
        assert_eq!(
            registry.snapshot().counters["mem.demand_reads"],
            0,
            "samples stay local until flush"
        );
        telemetry.flush();
        let snap = registry.snapshot();
        if !dap_telemetry::enabled() {
            assert_eq!(snap.counters["mem.demand_reads"], 0);
            return;
        }
        assert_eq!(snap.counters["mem.demand_reads"], 2);
        assert_eq!(snap.counters["mem.demand_writes"], 1);
        assert_eq!(snap.histograms["mem.read_latency"].count, 2);
        assert_eq!(snap.histograms["mem.read_latency"].sum, 200);
        assert_eq!(snap.histograms["mem.cache_queue_wait"].count, 2);
        assert_eq!(snap.histograms["mem.mm_queue_wait"].count, 2);
        telemetry.flush();
        assert_eq!(
            registry.snapshot().counters["mem.demand_reads"],
            2,
            "an empty second flush adds nothing"
        );
    }

    #[test]
    fn profile_samples_feed_phase_histograms() {
        if !dap_telemetry::enabled() {
            return;
        }
        let registry = MetricsRegistry::new();
        let mut telemetry = SubsystemTelemetry::new(&registry);
        telemetry.record_profile_sample(&PhaseSample {
            tag_probe: 3,
            cache_queue_wait: 40,
            channel_cas: 25,
            ..PhaseSample::default()
        });
        telemetry.record_profile_sample(&PhaseSample {
            granted: true,
            dap_decision: 90,
            mm_queue_wait: 12,
            channel_cas: 30,
            ..PhaseSample::default()
        });
        telemetry.flush();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["prof.samples"], 2);
        assert_eq!(snap.counters["prof.grants"], 1);
        assert_eq!(snap.histograms["prof.tag_probe"].count, 2);
        assert_eq!(snap.histograms["prof.channel_cas"].sum, 55);
        // Only the granted sample feeds the decision-gap histogram.
        assert_eq!(snap.histograms["prof.dap_decision"].count, 1);
        assert_eq!(snap.histograms["prof.dap_decision"].sum, 90);
    }

    #[test]
    fn channel_activity_samples_once_per_channel() {
        if !dap_telemetry::enabled() {
            return;
        }
        let registry = MetricsRegistry::new();
        let mut telemetry = SubsystemTelemetry::new(&registry);
        let mut mm = DramModule::new(DramConfig::ddr4_2400(), 4000.0);
        let mut last = 0;
        for block in 0..2_000u64 {
            last = last.max(mm.read_block(block, 0));
        }
        telemetry.record_channel_activity(&mm.per_channel_activity(), last);
        let snap = registry.snapshot();
        let channels = mm.config().channels as u64;
        assert_eq!(snap.histograms["mm.channel_cas"].count, channels);
        assert_eq!(snap.histograms["mm.channel_cas"].sum, 2_000);
        let util = &snap.histograms["mm.channel_util_pct"];
        assert_eq!(util.count, channels);
        // Streaming reads keep the buses busy; utilization must be
        // substantial but can never exceed 100%.
        assert!(util.mean().unwrap() > 50.0, "util {:?}", util.mean());
        assert!(util.mean().unwrap() <= 100.0);
    }

    #[test]
    fn zero_elapsed_skips_utilization_samples() {
        let registry = MetricsRegistry::new();
        let mut telemetry = SubsystemTelemetry::new(&registry);
        let mm = DramModule::new(DramConfig::ddr4_2400(), 4000.0);
        telemetry.record_channel_activity(&mm.per_channel_activity(), 0);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["mm.channel_util_pct"].count, 0);
    }
}
