//! Clock-domain conversion.
//!
//! Everything in the simulator is accounted in CPU cycles. DRAM devices run
//! on their own clocks; [`ClockScale`] converts device-clock latencies into
//! CPU cycles once, at configuration time.

/// A CPU cycle count. The simulator's one notion of time.
pub type Cycle = u64;

/// Converts device clocks to CPU cycles.
///
/// ```
/// use mem_sim::clock::ClockScale;
/// // 4 GHz CPU, DDR4-2400 command clock (1200 MHz):
/// let s = ClockScale::new(4000.0, 1200.0);
/// assert_eq!(s.to_cpu(15), 50); // tCAS=15 -> 50 CPU cycles
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockScale {
    cpu_mhz: f64,
    device_mhz: f64,
}

impl ClockScale {
    /// Creates a converter between a CPU clock and a device clock, both in
    /// MHz.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is not positive.
    pub fn new(cpu_mhz: f64, device_mhz: f64) -> Self {
        assert!(
            cpu_mhz > 0.0 && device_mhz > 0.0,
            "frequencies must be positive"
        );
        Self {
            cpu_mhz,
            device_mhz,
        }
    }

    /// Converts a device-clock count to CPU cycles (rounded to nearest).
    pub fn to_cpu(&self, device_cycles: u32) -> Cycle {
        (f64::from(device_cycles) * self.cpu_mhz / self.device_mhz).round() as Cycle
    }

    /// CPU cycles per device cycle, as a float (for fractional bursts).
    pub fn ratio(&self) -> f64 {
        self.cpu_mhz / self.device_mhz
    }

    /// The CPU frequency in MHz.
    pub fn cpu_mhz(&self) -> f64 {
        self.cpu_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_2400_timing_conversion() {
        let s = ClockScale::new(4000.0, 1200.0);
        assert_eq!(s.to_cpu(15), 50);
        assert_eq!(s.to_cpu(39), 130); // tRAS
        assert!((s.ratio() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hbm_800_conversion() {
        let s = ClockScale::new(4000.0, 800.0);
        assert_eq!(s.to_cpu(10), 50);
        assert_eq!(s.to_cpu(2), 10); // BL4 = 2 device clocks
    }

    #[test]
    #[should_panic(expected = "frequencies must be positive")]
    fn zero_frequency_rejected() {
        let _ = ClockScale::new(0.0, 1200.0);
    }
}
