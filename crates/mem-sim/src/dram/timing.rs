//! DRAM device configurations, with the paper's evaluated parts as presets.

use crate::clock::{ClockScale, Cycle};

/// Refresh parameters (JEDEC-style all-bank refresh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshTiming {
    /// Average refresh interval in device clocks (tREFI, ~7.8 us).
    pub t_refi: u32,
    /// Refresh cycle time in device clocks (tRFC: the bank group is
    /// unavailable for this long per refresh).
    pub t_rfc: u32,
}

impl RefreshTiming {
    /// DDR4 defaults: tREFI = 7.8 us, tRFC = 350 ns at a 1200 MHz command
    /// clock.
    pub fn ddr4() -> Self {
        Self {
            t_refi: 9360,
            t_rfc: 420,
        }
    }
}

/// Static description of a DRAM module (all channels identical).
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Human-readable part name.
    pub name: &'static str,
    /// Device command clock in MHz.
    pub device_mhz: f64,
    /// Number of independent channels.
    pub channels: u32,
    /// Banks per channel (across all ranks; rank-level parallelism is folded
    /// into the bank count).
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Device clocks a 64-byte transfer occupies the data bus.
    pub burst_clocks: u32,
    /// tCAS in device clocks.
    pub t_cas: u32,
    /// tRCD in device clocks.
    pub t_rcd: u32,
    /// tRP in device clocks.
    pub t_rp: u32,
    /// tRAS in device clocks.
    pub t_ras: u32,
    /// Extra I/O / board delay charged per access, in *CPU* cycles (the
    /// paper charges ten 1.2 GHz cycles on main memory).
    pub io_delay_cpu: Cycle,
    /// Writes are buffered and drained in batches of this size to reduce
    /// channel turnarounds.
    pub write_batch: usize,
    /// Periodic refresh, if modeled. All presets default to `None`: the
    /// paper folds refresh (like other scheduler inefficiencies) into the
    /// bandwidth-efficiency factor `E`. Enable explicitly to study refresh
    /// pressure (cf. MicroRefresh, MEMSYS 2016, in the paper's related
    /// work).
    pub refresh: Option<RefreshTiming>,
}

impl DramConfig {
    /// The paper's default main memory: dual-channel DDR4-2400, two ranks x
    /// eight banks, 2 KB rows, 15-15-15-39, burst length 8, ten 1.2 GHz
    /// cycles of I/O delay (33 CPU cycles at 4 GHz).
    pub fn ddr4_2400() -> Self {
        Self {
            name: "DDR4-2400",
            device_mhz: 1200.0,
            channels: 2,
            banks_per_channel: 16,
            row_bytes: 2048,
            burst_clocks: 4,
            t_cas: 15,
            t_rcd: 15,
            t_rp: 15,
            t_ras: 39,
            io_delay_cpu: 33,
            write_batch: 16,
            refresh: None,
        }
    }

    /// The default part with all board/I/O latency removed (Fig. 9's second
    /// bar).
    pub fn ddr4_2400_no_io() -> Self {
        Self {
            name: "DDR4-2400 w/o I/O",
            io_delay_cpu: 0,
            ..Self::ddr4_2400()
        }
    }

    /// Quad-channel LPDDR4-2400 (32-bit channels, burst length 16),
    /// 24-24-24-53: same 38.4 GB/s bandwidth but ~70% higher row-hit
    /// latency (Fig. 9's third bar).
    pub fn lpddr4_2400() -> Self {
        Self {
            name: "LPDDR4-2400",
            device_mhz: 1200.0,
            channels: 4,
            banks_per_channel: 8,
            row_bytes: 2048,
            burst_clocks: 8,
            t_cas: 24,
            t_rcd: 24,
            t_rp: 24,
            t_ras: 53,
            io_delay_cpu: 33,
            write_batch: 16,
            refresh: None,
        }
    }

    /// Dual-channel DDR4-3200 20-20-20-52: 51.2 GB/s at the default part's
    /// latency (Fig. 9's fourth bar; also the 16-core system's memory).
    pub fn ddr4_3200() -> Self {
        Self {
            name: "DDR4-3200",
            device_mhz: 1600.0,
            channels: 2,
            banks_per_channel: 16,
            t_cas: 20,
            t_rcd: 20,
            t_rp: 20,
            t_ras: 52,
            ..Self::ddr4_2400()
        }
    }

    /// The paper's default DRAM-cache array: JEDEC HBM, four 128-bit
    /// channels at 800 MHz (102.4 GB/s), 16 banks, 2 KB rows, 10-10-10-26,
    /// burst length 4.
    pub fn hbm_102() -> Self {
        Self {
            name: "HBM 102.4 GB/s",
            device_mhz: 800.0,
            channels: 4,
            banks_per_channel: 16,
            row_bytes: 2048,
            burst_clocks: 2,
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_ras: 26,
            io_delay_cpu: 0,
            write_batch: 16,
            refresh: None,
        }
    }

    /// HBM at 1 GHz with 12-12-12-32 — the paper's 128 GB/s point.
    pub fn hbm_128() -> Self {
        Self {
            name: "HBM 128 GB/s",
            device_mhz: 1000.0,
            t_cas: 12,
            t_rcd: 12,
            t_rp: 12,
            t_ras: 32,
            ..Self::hbm_102()
        }
    }

    /// Eight-channel HBM at 800 MHz — the paper's 204.8 GB/s point.
    pub fn hbm_204() -> Self {
        Self {
            name: "HBM 204.8 GB/s",
            channels: 8,
            ..Self::hbm_102()
        }
    }

    /// One direction of the sectored eDRAM cache: 51.2 GB/s, with an access
    /// latency about two-thirds of the main memory's page-hit latency.
    pub fn edram_direction() -> Self {
        Self {
            name: "eDRAM 51.2 GB/s",
            device_mhz: 800.0,
            channels: 2,
            banks_per_channel: 16,
            row_bytes: 2048,
            burst_clocks: 2,
            t_cas: 7,
            t_rcd: 7,
            t_rp: 7,
            t_ras: 18,
            io_delay_cpu: 0,
            write_batch: 16,
            refresh: None,
        }
    }

    /// Enables JEDEC-style periodic refresh on this part.
    pub fn with_refresh(mut self, refresh: RefreshTiming) -> Self {
        self.refresh = Some(refresh);
        self
    }

    /// Peak bandwidth in GB/s implied by the channel/burst parameters.
    pub fn peak_gbps(&self) -> f64 {
        let per_channel = 64.0 * self.device_mhz * 1e6 / f64::from(self.burst_clocks) / 1e9;
        per_channel * f64::from(self.channels)
    }

    /// Resolves device-clock timings into CPU cycles.
    pub fn resolve(&self, cpu_mhz: f64) -> ResolvedTiming {
        let s = ClockScale::new(cpu_mhz, self.device_mhz);
        ResolvedTiming {
            cas: s.to_cpu(self.t_cas),
            rcd: s.to_cpu(self.t_rcd),
            rp: s.to_cpu(self.t_rp),
            ras: s.to_cpu(self.t_ras),
            burst: s.to_cpu(self.burst_clocks).max(1),
            io: self.io_delay_cpu,
            refresh: self
                .refresh
                .map(|r| (s.to_cpu(r.t_refi).max(1), s.to_cpu(r.t_rfc))),
        }
    }
}

/// Device timings resolved to CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedTiming {
    /// Column access latency.
    pub cas: Cycle,
    /// Row-to-column delay.
    pub rcd: Cycle,
    /// Precharge latency.
    pub rp: Cycle,
    /// Row-active minimum.
    pub ras: Cycle,
    /// Data-bus occupancy of one 64-byte transfer.
    pub burst: Cycle,
    /// Per-access I/O delay.
    pub io: Cycle,
    /// `(tREFI, tRFC)` in CPU cycles, when refresh is modeled.
    pub refresh: Option<(Cycle, Cycle)>,
}

impl ResolvedTiming {
    /// Latency of a row-buffer hit read (excluding queueing and I/O).
    pub fn row_hit(&self) -> Cycle {
        self.cas + self.burst
    }

    /// Latency of a row-buffer conflict read.
    pub fn row_conflict(&self) -> Cycle {
        self.rp + self.rcd + self.cas + self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_bandwidths_match_paper() {
        assert!((DramConfig::ddr4_2400().peak_gbps() - 38.4).abs() < 1e-9);
        assert!((DramConfig::ddr4_3200().peak_gbps() - 51.2).abs() < 1e-9);
        assert!((DramConfig::lpddr4_2400().peak_gbps() - 38.4).abs() < 1e-9);
        assert!((DramConfig::hbm_102().peak_gbps() - 102.4).abs() < 1e-9);
        assert!((DramConfig::hbm_128().peak_gbps() - 128.0).abs() < 1e-9);
        assert!((DramConfig::hbm_204().peak_gbps() - 204.8).abs() < 1e-9);
        assert!((DramConfig::edram_direction().peak_gbps() - 51.2).abs() < 1e-9);
    }

    #[test]
    fn ddr4_timing_resolves_to_cpu_cycles() {
        let t = DramConfig::ddr4_2400().resolve(4000.0);
        assert_eq!(t.cas, 50);
        assert_eq!(t.burst, 13);
        assert_eq!(t.io, 33);
        assert_eq!(t.row_hit(), 63);
        assert_eq!(t.row_conflict(), 163);
    }

    #[test]
    fn lpddr4_row_hit_is_much_slower_than_ddr4() {
        let ddr = DramConfig::ddr4_2400().resolve(4000.0);
        let lp = DramConfig::lpddr4_2400().resolve(4000.0);
        let ratio = lp.row_hit() as f64 / ddr.row_hit() as f64;
        assert!(ratio > 1.5, "LPDDR4 should be ~70% slower: got {ratio}");
    }

    #[test]
    fn refresh_defaults_off_on_all_presets() {
        for cfg in [
            DramConfig::ddr4_2400(),
            DramConfig::ddr4_3200(),
            DramConfig::lpddr4_2400(),
            DramConfig::hbm_102(),
            DramConfig::edram_direction(),
        ] {
            assert!(
                cfg.refresh.is_none(),
                "{} must not refresh by default",
                cfg.name
            );
        }
    }

    #[test]
    fn refresh_timing_resolves() {
        let cfg = DramConfig::ddr4_2400().with_refresh(RefreshTiming::ddr4());
        let t = cfg.resolve(4000.0);
        let (refi, rfc) = t.refresh.expect("refresh resolved");
        assert_eq!(refi, 31200); // 9360 device clocks at 10/3
        assert_eq!(rfc, 1400);
    }

    #[test]
    fn edram_latency_is_about_two_thirds_of_mm_page_hit() {
        let mm = DramConfig::ddr4_2400().resolve(4000.0);
        let ed = DramConfig::edram_direction().resolve(4000.0);
        let ratio = ed.row_hit() as f64 / mm.row_hit() as f64;
        assert!((ratio - 2.0 / 3.0).abs() < 0.1, "ratio {ratio}");
    }
}
