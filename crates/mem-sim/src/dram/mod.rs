//! DRAM device models: DDR4 / LPDDR4 main memory, HBM DRAM-cache arrays,
//! and eDRAM arrays, all with per-bank row-buffer state and burst-occupied
//! data buses.

mod channel;
mod module;
mod timing;

pub use channel::Channel;
pub use module::{DramModule, DramStats};
pub use timing::{DramConfig, RefreshTiming, ResolvedTiming};
