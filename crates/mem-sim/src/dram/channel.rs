//! A single DRAM channel: banks with row-buffer state and one data bus.
//!
//! The channel uses a resource-reservation timing discipline. Each access
//! reserves its bank (activation + column access) and then the data bus
//! (burst). Reservations never move backward, so when demand exceeds the
//! bus rate, `bus_free_at` runs ahead of the request clock and the excess
//! appears as queueing delay — the saturation behaviour DAP exploits.
//!
//! Writes are buffered and drained in batches (with one turnaround penalty
//! per batch) to model the paper's batched write scheduling.

use super::timing::ResolvedTiming;
use crate::clock::Cycle;
use crate::faults::ChannelFaults;

/// Per-channel activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Read CAS operations issued.
    pub cas_reads: u64,
    /// Write CAS operations issued (drained writes).
    pub cas_writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that needed activation (empty or conflicting row).
    pub row_misses: u64,
}

impl ChannelStats {
    /// Total CAS operations (data transfers).
    pub fn cas_total(&self) -> u64 {
        self.cas_reads + self.cas_writes
    }
}

/// One DRAM channel.
///
/// Bank timing state is kept in struct-of-arrays form: the per-bank
/// fields live in flat parallel vectors plus a row-open bitmask, so the
/// hot access path touches two adjacent words per bank and a refresh
/// closes every row with a single mask clear.
#[derive(Debug, Clone)]
pub struct Channel {
    timing: ResolvedTiming,
    /// Open-row address per bank (valid only when the mask bit is set).
    bank_open_row: Vec<u64>,
    /// Earliest cycle each bank's next column command may issue (tCCD).
    bank_ready_at: Vec<Cycle>,
    /// Earliest cycle each bank's open row may be precharged (tRAS).
    bank_precharge_ok_at: Vec<Cycle>,
    /// Bit `b` set = bank `b` has an open row.
    row_open: u64,
    /// Bank-index mask when the bank count is a power of two (always, for
    /// the shipped configs); `None` falls back to a modulo.
    bank_mask: Option<u32>,
    bus_free_at: Cycle,
    write_queue: Vec<(u32, u64)>,
    write_batch: usize,
    /// Start of the next refresh window (all-bank refresh).
    next_refresh_at: Cycle,
    refreshes: u64,
    stats: ChannelStats,
    /// Cycles the data bus has been reserved (bursts + turnarounds) —
    /// utilization numerator for telemetry.
    busy_cycles: Cycle,
    /// Injected fault state; `None` (the overwhelmingly common case)
    /// costs one branch per access.
    faults: Option<Box<ChannelFaults>>,
}

impl Channel {
    /// Creates an idle channel.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `write_batch` is zero.
    pub fn new(timing: ResolvedTiming, banks: u32, write_batch: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!(banks <= 64, "row-open mask holds at most 64 banks");
        assert!(write_batch > 0, "write batch must be non-empty");
        Self {
            timing,
            bank_open_row: vec![0; banks as usize],
            bank_ready_at: vec![0; banks as usize],
            bank_precharge_ok_at: vec![0; banks as usize],
            row_open: 0,
            bank_mask: banks.is_power_of_two().then(|| banks - 1),
            bus_free_at: 0,
            write_queue: Vec::with_capacity(write_batch),
            write_batch,
            next_refresh_at: timing.refresh.map(|(refi, _)| refi).unwrap_or(Cycle::MAX),
            refreshes: 0,
            stats: ChannelStats::default(),
            busy_cycles: 0,
            faults: None,
        }
    }

    /// Installs (or clears) this channel's resolved fault state.
    pub(crate) fn set_faults(&mut self, faults: Option<ChannelFaults>) {
        self.faults = faults.map(Box::new);
    }

    /// Refresh windows charged so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Cycles the data bus has been reserved so far (bursts plus
    /// write-turnaround dead time). Divided by elapsed cycles this gives
    /// the channel's bus utilization.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Activity counters.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Expected queueing delay for a request arriving now (how far the bus
    /// reservation runs ahead of the clock). Used by latency-estimating
    /// policies like SBD.
    pub fn estimated_wait(&self, now: Cycle) -> Cycle {
        self.bus_free_at.saturating_sub(now)
    }

    /// Cycle at which the data bus becomes free (diagnostics).
    pub fn bus_free_at(&self) -> Cycle {
        self.bus_free_at
    }

    /// The next cycle strictly after `now` at which this channel has
    /// scheduled work of its own: the start of the next all-bank refresh
    /// window, or the point where an idle bus would opportunistically
    /// drain buffered writes. Both are *lazy* — the state mutation happens
    /// on the next access that observes the crossing — so the epoch
    /// scheduler may use this purely as an upper bound on how far it
    /// skips. Returns `Cycle::MAX` when nothing is scheduled.
    pub fn next_scheduled_event(&self, now: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        if self.timing.refresh.is_some() && self.next_refresh_at > now {
            next = self.next_refresh_at;
        }
        if !self.write_queue.is_empty() {
            // `read` drains when `now > bus_free_at + 4 * burst`.
            let drain_at = self.bus_free_at + 4 * self.timing.burst + 1;
            if drain_at > now {
                next = next.min(drain_at);
            }
        }
        next
    }

    /// Performs a read of `burst_override.unwrap_or(timing.burst)` bus
    /// cycles from `(bank, row)`; returns the completion cycle (data at the
    /// controller, including I/O delay).
    pub fn read(
        &mut self,
        bank: u32,
        row: u64,
        now: Cycle,
        burst_override: Option<Cycle>,
    ) -> Cycle {
        // Opportunistic write drain: if the bus has been idle, retire
        // buffered writes into the idle window instead of letting them pile
        // up into a large read-blocking batch later.
        if !self.write_queue.is_empty() && now > self.bus_free_at + 4 * self.timing.burst {
            let idle_start = self.bus_free_at;
            self.drain_writes(idle_start);
        }
        let burst = burst_override.unwrap_or(self.timing.burst);
        let done = self.access(bank, row, now, burst);
        self.stats.cas_reads += 1;
        done + self.timing.io
    }

    /// Enqueues a write to `(bank, row)`; drains the queue if the batch is
    /// full. Returns the batch-drain completion cycle if a drain happened.
    pub fn write(&mut self, bank: u32, row: u64, now: Cycle) -> Option<Cycle> {
        self.write_queue.push((bank, row));
        if self.write_queue.len() >= self.write_batch {
            Some(self.drain_writes(now))
        } else {
            None
        }
    }

    /// Drains all buffered writes, charging one bus-turnaround penalty for
    /// the batch. Returns the cycle the drain finishes.
    pub fn drain_writes(&mut self, now: Cycle) -> Cycle {
        if self.write_queue.is_empty() {
            return now;
        }
        // Channel turnaround: one burst worth of dead bus time.
        self.bus_free_at = self.bus_free_at.max(now) + self.timing.burst;
        self.busy_cycles += self.timing.burst;
        let queue = std::mem::take(&mut self.write_queue);
        let mut done = now;
        for (bank, row) in queue {
            done = self.access(bank, row, now, self.timing.burst);
            self.stats.cas_writes += 1;
        }
        done
    }

    /// Number of writes currently buffered.
    pub fn pending_writes(&self) -> usize {
        self.write_queue.len()
    }

    /// Applies injected faults to an access arriving at `now` with a
    /// nominal `burst`: storm stalls push the service timeline forward,
    /// throttles stretch the burst (and CAS, as extra latency), jitter
    /// adds pure latency. Outages never reach this point — the module
    /// routes around dark channels — so the service timeline stays
    /// finite. Returns the adjusted `(now, burst, extra_latency)`.
    fn apply_faults(&mut self, now: Cycle, burst: Cycle) -> (Cycle, Cycle, Cycle) {
        let Some(mut f) = self.faults.take() else {
            return (now, burst, 0);
        };
        // Refresh storms behave like extra all-bank refreshes, driven by
        // the service timeline exactly like the regular refresh loop.
        while let Some((at, stall)) = f.next_storm_stall(now.max(self.bus_free_at)) {
            let start = at.max(self.bus_free_at);
            self.bus_free_at = start + stall;
            self.row_open = 0;
            for r in &mut self.bank_ready_at {
                *r = (*r).max(start + stall);
            }
        }
        let probe = now.max(self.bus_free_at);
        let throttled_burst = f.throttled(probe, burst);
        let cas_extra = f.throttled(probe, self.timing.cas) - self.timing.cas;
        let jitter = f.jitter_extra(probe);
        self.faults = Some(f);
        (now, throttled_burst, cas_extra + jitter)
    }

    fn access(&mut self, bank: u32, row: u64, now: Cycle, burst: Cycle) -> Cycle {
        let (now, burst, fault_latency) = if self.faults.is_some() {
            self.apply_faults(now, burst)
        } else {
            (now, burst, 0)
        };
        let t = self.timing;
        // All-bank refresh: whenever the channel's service timeline crosses
        // a tREFI boundary, the whole channel stalls for tRFC and every row
        // buffer closes. The service timeline (not the arrival clock) is
        // what crosses boundaries under saturation.
        if let Some((refi, rfc)) = t.refresh {
            // A caller stalled on a fully-dark device elsewhere can
            // arrive with `now` astronomically far past the refresh
            // ledger. All but the final boundary only close rows and
            // advance the ledger (tREFI > tRFC, so each stall is long
            // over before the next boundary), so fold them in O(1) and
            // let the loop below finish exactly as if stepped.
            let tline = now.max(self.bus_free_at);
            if tline > self.next_refresh_at {
                let pending = (tline - self.next_refresh_at) / refi;
                if pending > (1 << 16) {
                    self.refreshes += pending - 1;
                    self.next_refresh_at += (pending - 1) * refi;
                    self.row_open = 0;
                }
            }
            while now.max(self.bus_free_at) >= self.next_refresh_at {
                let start = self.next_refresh_at.max(self.bus_free_at);
                self.bus_free_at = start + rfc;
                self.row_open = 0;
                for r in &mut self.bank_ready_at {
                    *r = (*r).max(start + rfc);
                }
                self.refreshes += 1;
                self.next_refresh_at += refi;
            }
        }
        let bi = match self.bank_mask {
            Some(m) => (bank & m) as usize,
            None => bank as usize % self.bank_open_row.len(),
        };
        let bbit = 1u64 << bi;
        // When does this access's column command issue, and when is data
        // ready at the pins? Column commands pipeline at burst (tCCD)
        // spacing. Row conflicts are charged their full tRP+tRCD *latency*
        // but do not serialize the bank: a real FR-FCFS scheduler reorders
        // requests to keep banks pipelined, and the residual throughput
        // loss is what the paper's bandwidth-efficiency factor E models.
        let cas_issue = now.max(self.bank_ready_at[bi]);
        let open = self.row_open & bbit != 0;
        let data_ready = if open && self.bank_open_row[bi] == row {
            self.stats.row_hits += 1;
            cas_issue + t.cas
        } else if !open {
            self.stats.row_misses += 1;
            self.bank_precharge_ok_at[bi] = cas_issue + t.ras;
            cas_issue + t.rcd + t.cas
        } else {
            self.stats.row_misses += 1;
            self.bank_precharge_ok_at[bi] = cas_issue + t.ras;
            cas_issue + t.rp + t.rcd + t.cas
        };
        self.bank_open_row[bi] = row;
        self.row_open |= bbit;
        self.bank_ready_at[bi] = cas_issue + burst;
        let data_at = data_ready.max(self.bus_free_at);
        let done = data_at + burst;
        self.bus_free_at = done;
        self.busy_cycles += burst;
        // Fault-injected CAS stretch and jitter are pure latency: they
        // delay this access's completion without holding the bus.
        done + fault_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;

    fn channel() -> Channel {
        let cfg = DramConfig::hbm_102();
        Channel::new(cfg.resolve(4000.0), cfg.banks_per_channel, cfg.write_batch)
    }

    // HBM timings at 4 GHz: cas=50, rcd=50, rp=50, ras=130, burst=10, io=0.

    #[test]
    fn first_access_pays_activation() {
        let mut c = channel();
        let done = c.read(0, 5, 0, None);
        assert_eq!(done, 50 + 50 + 10); // rcd + cas + burst
        assert_eq!(c.stats().row_misses, 1);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut c = channel();
        let first = c.read(0, 5, 0, None);
        let second = c.read(0, 5, first, None);
        assert_eq!(second - first, 50 + 10); // cas + burst
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut c = channel();
        let first = c.read(0, 5, 0, None);
        let at = first.max(130); // clear of tRAS
        let second = c.read(0, 9, at, None);
        assert_eq!(second - at, 50 + 50 + 50 + 10);
    }

    #[test]
    fn bus_saturates_under_back_to_back_demand() {
        // Issue many same-row reads to different banks at cycle 0: the bus
        // serializes them at one burst (10 cycles) apiece.
        let mut c = channel();
        let mut last = 0;
        for i in 0..16 {
            last = c.read(i, 1, 0, None);
        }
        // First access: 110; the remaining 15 add one burst each.
        assert_eq!(last, 110 + 15 * 10);
        assert_eq!(c.estimated_wait(0), last);
    }

    #[test]
    fn tad_burst_override_slows_transfer() {
        let mut c = channel();
        let mut last = 0;
        for i in 0..4 {
            last = c.read(i, 1, 0, Some(15));
        }
        assert_eq!(last, 110 + 5 + 3 * 15); // first access +5 extra burst, then 15/access
    }

    #[test]
    fn writes_buffer_until_batch() {
        let mut c = channel();
        for i in 0..15 {
            assert!(c.write(i % 4, 1, 0).is_none());
        }
        assert_eq!(c.pending_writes(), 15);
        let drained = c.write(0, 1, 0).expect("16th write triggers drain");
        assert!(drained > 0);
        assert_eq!(c.pending_writes(), 0);
        assert_eq!(c.stats().cas_writes, 16);
    }

    #[test]
    fn write_drain_delays_subsequent_reads() {
        let mut c = channel();
        for i in 0..16 {
            c.write(i % 4, 1, 0);
        }
        let read_done = c.read(8, 1, 0, None);
        // The read queues behind 16 write bursts + turnaround.
        assert!(
            read_done > 16 * 10,
            "read at {read_done} should queue behind writes"
        );
    }

    #[test]
    fn refresh_stalls_reduce_streaming_bandwidth() {
        use crate::dram::DramModule;
        let run = |with_refresh: bool| {
            let mut cfg = DramConfig::ddr4_2400();
            if with_refresh {
                cfg = cfg.with_refresh(crate::dram::RefreshTiming::ddr4());
            }
            let mut m = DramModule::new(cfg, 4000.0);
            let mut last = 0;
            for block in 0..100_000u64 {
                last = last.max(m.read_block(block, 0));
            }
            m.delivered_gbps(last, 4000.0)
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without,
            "refresh must cost bandwidth: {with} vs {without}"
        );
        // tRFC/tREFI = 420/9360 ~ 4.5%: the loss is visible but bounded.
        assert!(
            with > without * 0.85,
            "refresh cost out of range: {with} vs {without}"
        );
    }

    #[test]
    fn refresh_closes_open_rows() {
        let cfg = DramConfig::ddr4_2400().with_refresh(crate::dram::RefreshTiming::ddr4());
        let timing = cfg.resolve(4000.0);
        let mut c = Channel::new(timing, cfg.banks_per_channel, cfg.write_batch);
        let first = c.read(0, 5, 0, None);
        // Jump far past the refresh interval: the re-read of the same row
        // must pay an activation again (row closed by refresh).
        let (refi, _) = timing.refresh.unwrap();
        let second_start = first.max(refi) + 1;
        let second = c.read(0, 5, second_start, None);
        assert!(c.refreshes() >= 1);
        assert!(
            second - second_start > timing.row_hit(),
            "row must have been closed by refresh"
        );
    }

    #[test]
    fn idle_channel_has_no_wait() {
        let c = channel();
        assert_eq!(c.estimated_wait(100), 0);
    }

    #[test]
    fn throttle_stretches_burst_and_cas() {
        use crate::faults::{FaultSchedule, FaultTarget};
        let mut plain = channel();
        let mut slow = channel();
        let s = FaultSchedule::new(0).throttle(FaultTarget::Cache, 2, 1, 0, Cycle::MAX);
        slow.set_faults(s.channel_faults(FaultTarget::Cache, 0, 1));
        let mut last_plain = 0;
        let mut last_slow = 0;
        for i in 0..16 {
            last_plain = plain.read(i, 1, 0, None);
            last_slow = slow.read(i, 1, 0, None);
        }
        // Bus-limited streaming takes ~2x as long under a 2x throttle.
        assert!(
            last_slow > last_plain + 15 * 10,
            "throttled {last_slow} vs nominal {last_plain}"
        );
    }

    #[test]
    fn inactive_schedule_leaves_timing_identical() {
        use crate::faults::{FaultSchedule, FaultTarget};
        let mut plain = channel();
        let mut faulted = channel();
        let s = FaultSchedule::new(0).throttle(FaultTarget::Cache, 4, 1, 1_000_000, 2_000_000);
        faulted.set_faults(s.channel_faults(FaultTarget::Cache, 0, 1));
        for i in 0..32 {
            assert_eq!(
                plain.read(i % 8, u64::from(i) / 3, 0, None),
                faulted.read(i % 8, u64::from(i) / 3, 0, None)
            );
        }
    }

    #[test]
    fn refresh_storm_costs_bandwidth() {
        use crate::faults::{FaultSchedule, FaultTarget};
        let mut plain = channel();
        let mut stormy = channel();
        let s = FaultSchedule::new(0).refresh_storm(FaultTarget::Cache, 1_000, 400, 0, Cycle::MAX);
        stormy.set_faults(s.channel_faults(FaultTarget::Cache, 0, 1));
        let mut last_plain = 0;
        let mut last_storm = 0;
        for i in 0..1_000u64 {
            last_plain = plain.read((i % 8) as u32, i / 8, 0, None);
            last_storm = stormy.read((i % 8) as u32, i / 8, 0, None);
        }
        assert!(
            last_storm > last_plain + last_plain / 4,
            "40% storm duty must cost substantial bandwidth: {last_storm} vs {last_plain}"
        );
    }

    #[test]
    fn drain_on_empty_queue_is_noop() {
        let mut c = channel();
        assert_eq!(c.drain_writes(42), 42);
        assert_eq!(c.stats().cas_writes, 0);
    }
}
