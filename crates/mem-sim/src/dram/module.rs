//! A multi-channel DRAM module with block-interleaved channel mapping.

use super::channel::Channel;
use super::timing::DramConfig;
use crate::clock::Cycle;
use crate::faults::{dark_until, FAULT_HORIZON};
use crate::BLOCK_BYTES;

/// Routing outcome for one request under degraded interleave.
enum Route {
    /// Service on this channel immediately.
    Live(usize),
    /// Every channel is dark right now; this one restores earliest, at
    /// the given cycle — defer the request to it.
    Resumes(usize, Cycle),
    /// Every channel is dark past the fault horizon: the request is
    /// never serviced.
    Never,
}

/// Aggregated activity counters for a module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read CAS operations.
    pub cas_reads: u64,
    /// Write CAS operations.
    pub cas_writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activations).
    pub row_misses: u64,
}

impl DramStats {
    /// Total CAS operations (data transfers).
    pub fn cas_total(&self) -> u64 {
        self.cas_reads + self.cas_writes
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// A DRAM module: `config.channels` independent [`Channel`]s with 64-byte
/// blocks interleaved across channels, then row-interleaved across banks.
#[derive(Debug, Clone)]
pub struct DramModule {
    config: DramConfig,
    channels: Vec<Channel>,
    row_blocks: u64,
    /// `(channel_shift, row_blocks_shift, bank_shift)` when channels,
    /// blocks-per-row, and banks are all powers of two (every shipped
    /// device config): [`Self::map`] becomes three shifts and two masks
    /// instead of five integer divisions.
    map_shifts: Option<(u32, u32, u32)>,
    /// Per-channel outage windows `[start, end)`, kept for degraded-
    /// interleave routing; empty when no outage is scheduled.
    outages: Vec<Vec<(Cycle, Cycle)>>,
}

impl DramModule {
    /// Builds an idle module clocked against a CPU at `cpu_mhz`.
    pub fn new(config: DramConfig, cpu_mhz: f64) -> Self {
        let timing = config.resolve(cpu_mhz);
        let channels = (0..config.channels)
            .map(|_| Channel::new(timing, config.banks_per_channel, config.write_batch))
            .collect();
        let row_blocks = config.row_bytes / BLOCK_BYTES;
        let nch = u64::from(config.channels);
        let banks = u64::from(config.banks_per_channel);
        let map_shifts =
            (nch.is_power_of_two() && row_blocks.is_power_of_two() && banks.is_power_of_two())
                .then(|| {
                    (
                        nch.trailing_zeros(),
                        row_blocks.trailing_zeros(),
                        banks.trailing_zeros(),
                    )
                });
        Self {
            config,
            channels,
            row_blocks,
            map_shifts,
            outages: Vec::new(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Resolves `schedule`'s events for `target` into per-channel fault
    /// state. Channels no event touches keep their fault-free fast path.
    pub fn apply_faults(
        &mut self,
        schedule: &crate::faults::FaultSchedule,
        target: crate::faults::FaultTarget,
    ) {
        let total = self.channels.len() as u32;
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.set_faults(schedule.channel_faults(target, i as u32, total));
        }
        self.outages = (0..total)
            .map(|i| schedule.outage_windows(target, i, total))
            .collect();
        if self.outages.iter().all(Vec::is_empty) {
            self.outages.clear();
        }
    }

    /// Degraded interleave: traffic aimed at a channel that is dark when
    /// it would be *serviced* spills to the next live channel, modelling
    /// a controller that has remapped around the failure (bandwidth
    /// drops to the live-channel fraction, matching
    /// [`FaultSchedule::bandwidth_scale`]). Darkness is judged at the
    /// service estimate `max(now, bus_free_at)`, not arrival: a request
    /// arriving just before an outage whose turn comes inside it must
    /// spill too. Channels never see outages themselves — routing is the
    /// *only* mechanism, so a dead channel's service timeline can never
    /// be pushed into its own outage window. With every channel dark the
    /// request defers to whichever channel restores earliest, or is
    /// reported as never serviced when no restore precedes the fault
    /// horizon.
    ///
    /// [`FaultSchedule::bandwidth_scale`]: crate::faults::FaultSchedule::bandwidth_scale
    fn route(&self, channel: usize, now: Cycle) -> Route {
        if self.outages.is_empty() {
            return Route::Live(channel);
        }
        let until =
            |c: usize| dark_until(&self.outages[c], now.max(self.channels[c].bus_free_at()));
        if until(channel).is_none() {
            return Route::Live(channel);
        }
        let n = self.channels.len();
        for step in 1..n {
            let c = (channel + step) % n;
            if until(c).is_none() {
                return Route::Live(c);
            }
        }
        // Every channel is dark at its service estimate: defer to the
        // earliest restore (ties keep the lowest index, deterministic).
        match (0..n).filter_map(|c| until(c).map(|e| (e, c))).min() {
            Some((end, c)) if end < FAULT_HORIZON => Route::Resumes(c, end),
            _ => Route::Never,
        }
    }

    /// Maps a block address to (channel, bank, row).
    #[inline]
    fn map(&self, block: u64) -> (usize, u32, u64) {
        if let Some((ch_sh, rb_sh, bank_sh)) = self.map_shifts {
            let channel = (block & ((1 << ch_sh) - 1)) as usize;
            let in_channel = block >> ch_sh;
            let bank = (in_channel >> rb_sh & ((1 << bank_sh) - 1)) as u32;
            let row = in_channel >> (rb_sh + bank_sh);
            return (channel, bank, row);
        }
        let nch = self.channels.len() as u64;
        let channel = (block % nch) as usize;
        let in_channel = block / nch;
        let banks = u64::from(self.config.banks_per_channel);
        let bank = ((in_channel / self.row_blocks) % banks) as u32;
        let row = in_channel / (self.row_blocks * banks);
        (channel, bank, row)
    }

    /// Reads a 64-byte block; returns the completion cycle. Under a
    /// full outage the read defers to the earliest channel restore, or
    /// reports the fault horizon when no restore is scheduled.
    pub fn read_block(&mut self, block: u64, now: Cycle) -> Cycle {
        let (ch, bank, row) = self.map(block);
        match self.route(ch, now) {
            Route::Live(ch) => self.channels[ch].read(bank, row, now, None),
            Route::Resumes(ch, at) => self.channels[ch].read(bank, row, at, None),
            Route::Never => FAULT_HORIZON,
        }
    }

    /// Reads an Alloy-cache TAD (72 bytes = 1.5x the burst of a block).
    pub fn read_tad(&mut self, block: u64, now: Cycle) -> Cycle {
        let (ch, bank, row) = self.map(block);
        let burst = self.config.resolve_burst_tad();
        match self.route(ch, now) {
            Route::Live(ch) => self.channels[ch].read(bank, row, now, Some(burst)),
            Route::Resumes(ch, at) => self.channels[ch].read(bank, row, at, Some(burst)),
            Route::Never => FAULT_HORIZON,
        }
    }

    /// Writes a 64-byte block (buffered; drains in batches). A write
    /// aimed at a module that is dark forever is lost with the device.
    pub fn write_block(&mut self, block: u64, now: Cycle) {
        let (ch, bank, row) = self.map(block);
        match self.route(ch, now) {
            Route::Live(ch) => {
                let _ = self.channels[ch].write(bank, row, now);
            }
            Route::Resumes(ch, at) => {
                let _ = self.channels[ch].write(bank, row, at);
            }
            Route::Never => {}
        }
    }

    /// Expected queueing delay for a read to `block` issued now.
    pub fn estimated_wait(&self, block: u64, now: Cycle) -> Cycle {
        let (ch, _, _) = self.map(block);
        match self.route(ch, now) {
            Route::Live(ch) => self.channels[ch].estimated_wait(now),
            Route::Resumes(ch, at) => (at - now) + self.channels[ch].estimated_wait(at),
            Route::Never => FAULT_HORIZON.saturating_sub(now),
        }
    }

    /// Earliest [`Channel::next_scheduled_event`] across the module's
    /// channels — the module's next refresh-window start or opportunistic
    /// write-drain point after `now`, `Cycle::MAX` when idle.
    pub fn next_scheduled_event(&self, now: Cycle) -> Cycle {
        self.channels
            .iter()
            .map(|ch| ch.next_scheduled_event(now))
            .min()
            .unwrap_or(Cycle::MAX)
    }

    /// Drains every channel's buffered writes (end-of-run accounting).
    pub fn flush_writes(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.drain_writes(now);
        }
    }

    /// Per-channel `(cas_total, busy_cycles)` pairs, in channel order —
    /// the raw material for channel-utilization telemetry.
    pub fn per_channel_activity(&self) -> Vec<(u64, Cycle)> {
        self.channels
            .iter()
            .map(|ch| (ch.stats().cas_total(), ch.busy_cycles()))
            .collect()
    }

    /// Aggregated counters across channels.
    pub fn stats(&self) -> DramStats {
        let mut out = DramStats::default();
        for ch in &self.channels {
            let s = ch.stats();
            out.cas_reads += s.cas_reads;
            out.cas_writes += s.cas_writes;
            out.row_hits += s.row_hits;
            out.row_misses += s.row_misses;
        }
        out
    }

    /// Delivered bandwidth over `elapsed` CPU cycles, in GB/s, given the
    /// CPU frequency in MHz.
    pub fn delivered_gbps(&self, elapsed: Cycle, cpu_mhz: f64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let bytes = self.stats().cas_total() as f64 * BLOCK_BYTES as f64;
        let seconds = elapsed as f64 / (cpu_mhz * 1e6);
        bytes / seconds / 1e9
    }
}

impl DramConfig {
    /// Bus cycles for a 72-byte TAD transfer: 1.5x the block burst (the
    /// paper's 3-cycle TAD vs 2-cycle block on HBM).
    fn resolve_burst_tad(&self) -> Cycle {
        let block = self.resolve(4000.0).burst; // ratio is frequency-independent
        block * 3 / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hbm() -> DramModule {
        DramModule::new(DramConfig::hbm_102(), 4000.0)
    }

    #[test]
    fn consecutive_blocks_interleave_channels() {
        let m = hbm();
        let (c0, _, _) = m.map(0);
        let (c1, _, _) = m.map(1);
        let (c2, _, _) = m.map(2);
        assert_ne!(c0, c1);
        assert_ne!(c1, c2);
    }

    #[test]
    fn same_row_blocks_map_to_same_bank_row() {
        let m = hbm();
        // Blocks 0 and 4 are consecutive within channel 0 (stride = nch).
        let (c0, b0, r0) = m.map(0);
        let (c4, b4, r4) = m.map(4);
        assert_eq!((c0, b0, r0), (c4, b4, r4));
    }

    #[test]
    fn streaming_reads_achieve_near_peak_bandwidth() {
        // Saturate all channels with sequential reads and confirm the
        // delivered bandwidth approaches 102.4 GB/s.
        let mut m = hbm();
        let mut last = 0;
        let n = 40_000u64;
        for block in 0..n {
            last = last.max(m.read_block(block, 0));
        }
        let gbps = m.delivered_gbps(last, 4000.0);
        assert!(
            gbps > 0.9 * 102.4,
            "delivered {gbps} GB/s, expected near 102.4"
        );
        assert!(gbps <= 1.06 * 102.4, "delivered {gbps} GB/s exceeds peak");
    }

    #[test]
    fn ddr4_streams_at_its_lower_peak() {
        let mut m = DramModule::new(DramConfig::ddr4_2400(), 4000.0);
        let mut last = 0;
        for block in 0..20_000u64 {
            last = last.max(m.read_block(block, 0));
        }
        let gbps = m.delivered_gbps(last, 4000.0);
        assert!(
            gbps > 0.9 * 38.4 && gbps < 1.1 * 38.4,
            "delivered {gbps} GB/s"
        );
    }

    #[test]
    fn row_hit_rate_high_for_streaming() {
        let mut m = hbm();
        for block in 0..10_000u64 {
            m.read_block(block, 0);
        }
        assert!(m.stats().row_hit_rate() > 0.9);
    }

    #[test]
    fn random_accesses_suffer_row_misses() {
        let mut m = hbm();
        let mut x = 12345u64;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m.read_block(x % (1 << 24), 0);
        }
        assert!(m.stats().row_hit_rate() < 0.5);
    }

    #[test]
    fn outaged_channel_traffic_spills_to_live_channels() {
        use crate::faults::{FaultSchedule, FaultTarget};
        let mut healthy = hbm();
        let mut faulted = hbm();
        let dead = FaultSchedule::new(0).channel_outage(FaultTarget::Cache, 0, 0, u64::MAX);
        faulted.apply_faults(&dead, FaultTarget::Cache);
        let (mut last_healthy, mut last_faulted) = (0, 0);
        for block in 0..40_000u64 {
            last_healthy = last_healthy.max(healthy.read_block(block, 0));
            last_faulted = last_faulted.max(faulted.read_block(block, 0));
        }
        // The dead channel serviced nothing; its traffic landed on the
        // survivors, so the same stream takes longer but still finishes.
        let activity = faulted.per_channel_activity();
        assert_eq!(activity[0], (0, 0), "dead channel must stay idle");
        assert_eq!(
            activity.iter().map(|&(cas, _)| cas).sum::<u64>(),
            40_000,
            "every read is serviced by a live channel"
        );
        assert!(last_faulted > last_healthy, "losing a channel costs time");
        let n = faulted.config().channels as f64;
        let degraded = faulted.delivered_gbps(last_faulted, 4000.0);
        let full = healthy.delivered_gbps(last_healthy, 4000.0);
        assert!(
            degraded < full && degraded > full * (n - 2.0) / n,
            "delivered {degraded} GB/s vs healthy {full} GB/s"
        );
    }

    #[test]
    fn fully_dark_module_saturates_at_the_fault_horizon() {
        use crate::faults::{FaultSchedule, FaultTarget, FAULT_HORIZON};
        let mut m = hbm();
        let mut all_dead = FaultSchedule::new(0);
        for ch in 0..m.config().channels {
            all_dead = all_dead.channel_outage(FaultTarget::Cache, ch, 0, u64::MAX);
        }
        m.apply_faults(&all_dead, FaultTarget::Cache);
        // Nowhere to spill: completion clamps instead of overflowing.
        assert_eq!(m.read_block(0, 0), FAULT_HORIZON);
        assert_eq!(m.read_block(123, 500), FAULT_HORIZON);
    }

    #[test]
    fn finite_all_dark_window_defers_to_the_earliest_restore() {
        use crate::faults::{FaultSchedule, FaultTarget};
        let mut m = hbm();
        let mut s = FaultSchedule::new(0);
        for ch in 0..m.config().channels {
            s = s.channel_outage(FaultTarget::Cache, ch, 0, 1_000 + u64::from(ch) * 500);
        }
        m.apply_faults(&s, FaultTarget::Cache);
        // Block 7 maps to channel 3 (dark until 2 500); with every
        // channel dark the read defers to channel 0, which restores
        // first (cycle 1 000), then pays a normal activation there.
        let done = m.read_block(7, 0);
        assert_eq!(done, 1_000 + 110);
        assert_eq!(m.per_channel_activity()[0].0, 1);
    }

    #[test]
    fn finite_outage_routing_restores_the_channel_afterwards() {
        use crate::faults::{FaultSchedule, FaultTarget};
        let mut m = hbm();
        let s = FaultSchedule::new(0).channel_outage(FaultTarget::Cache, 0, 0, 10_000);
        m.apply_faults(&s, FaultTarget::Cache);
        let nch = m.config().channels as u64;
        // Block 0 maps to channel 0: during the window it spills, after
        // the window it lands on channel 0 again.
        m.read_block(0, 0);
        assert_eq!(m.per_channel_activity()[0].0, 0);
        m.read_block(nch, 20_000);
        assert_eq!(m.per_channel_activity()[0].0, 1);
    }

    #[test]
    fn writes_count_after_flush() {
        let mut m = hbm();
        for block in 0..10u64 {
            m.write_block(block, 0);
        }
        m.flush_writes(0);
        assert_eq!(m.stats().cas_writes, 10);
    }

    #[test]
    fn estimated_wait_grows_with_congestion() {
        let mut m = hbm();
        assert_eq!(m.estimated_wait(0, 0), 0);
        for block in (0..4000u64).step_by(4) {
            m.read_block(block, 0); // hammer channel 0
        }
        assert!(m.estimated_wait(0, 0) > 1000);
        assert_eq!(m.estimated_wait(1, 0), 0, "other channels stay idle");
    }
}
