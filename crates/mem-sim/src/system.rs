//! System assembly: cores, SRAM hierarchy, memory-side cache, main memory,
//! and the partitioning policy, plus the simulation loop.
//!
//! The [`MemorySubsystem`] is where the paper's action happens: every L3
//! miss (read) and L3 dirty eviction (write) arrives here, the
//! [`Partitioner`] is consulted, and traffic is issued to the memory-side
//! cache array and/or main memory with full bandwidth accounting.

use std::collections::HashMap;

use crate::cache::{ReplacementKind, SetAssocCache};
use crate::clock::Cycle;
use crate::config::{CacheKind, SystemConfig};
use crate::core_model::CoreModel;
use crate::dram::DramModule;
use crate::mscache::{AlloyCache, BlockState, EdramCache, FlatTier, SectoredDramCache};
use crate::policy::{NoPartitioning, Observation, Partitioner, ReadContext, ReadRoute, WriteRoute};
use crate::prefetch::StridePrefetcher;
use crate::stats::{CoreResult, RunResult, SimStats};
use crate::trace::{OpKind, TraceSource};

/// Why a read reaches the memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccessKind {
    /// A demand load — its latency is what the core waits on.
    DemandRead,
    /// A store's read-for-ownership — traffic only, nobody waits.
    Rfo,
    /// A prefetch — traffic only.
    Prefetch,
}

enum MemSide {
    None,
    Sectored(SectoredDramCache),
    Alloy(AlloyCache),
    Edram(EdramCache),
    Flat(FlatTier),
}

/// The memory subsystem below the shared L3.
pub struct MemorySubsystem {
    mm: DramModule,
    ms: MemSide,
    policy: Box<dyn Partitioner>,
    stats: SimStats,
}

impl MemorySubsystem {
    /// Builds the subsystem from a configuration and a policy.
    pub fn new(config: &SystemConfig, policy: Box<dyn Partitioner>) -> Self {
        let ms = match &config.cache {
            CacheKind::None => MemSide::None,
            CacheKind::Sectored {
                capacity_bytes,
                sector_bytes,
                ways,
                dram,
                tag_cache,
            } => MemSide::Sectored(SectoredDramCache::new(
                *capacity_bytes,
                *sector_bytes,
                *ways,
                dram.clone(),
                config.cpu_mhz,
                *tag_cache,
            )),
            CacheKind::Alloy {
                capacity_bytes,
                dram,
                bear,
            } => MemSide::Alloy(AlloyCache::new(
                *capacity_bytes,
                dram.clone(),
                config.cpu_mhz,
                *bear,
            )),
            CacheKind::Edram {
                capacity_bytes,
                sector_bytes,
                ways,
                direction,
            } => MemSide::Edram(EdramCache::with_geometry(
                *capacity_bytes,
                *sector_bytes,
                *ways,
                direction.clone(),
                config.cpu_mhz,
                8,
            )),
            CacheKind::FlatTier {
                capacity_bytes,
                dram,
                goal,
            } => MemSide::Flat(FlatTier::new(
                *capacity_bytes,
                dram.clone(),
                config.cpu_mhz,
                *goal,
                config.mm.peak_gbps(),
            )),
        };
        Self {
            mm: DramModule::new(config.mm.clone(), config.cpu_mhz),
            ms,
            policy,
            stats: SimStats::default(),
        }
    }

    /// Statistics collected so far (CAS totals are finalized by
    /// [`Self::finalize`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Mutable statistics (the hierarchy updates L3 counters here).
    pub fn stats_mut(&mut self) -> &mut SimStats {
        &mut self.stats
    }

    /// Main-memory module (diagnostics).
    pub fn main_memory(&self) -> &DramModule {
        &self.mm
    }

    /// Memory-side cache DRAM statistics (read+write path for eDRAM).
    pub fn ms_dram_stats(&self) -> Option<crate::dram::DramStats> {
        match &self.ms {
            MemSide::None => None,
            MemSide::Sectored(c) => Some(c.dram().stats()),
            MemSide::Alloy(c) => Some(c.dram().stats()),
            MemSide::Edram(c) => {
                let r = c.read_path().stats();
                let w = c.write_path().stats();
                Some(crate::dram::DramStats {
                    cas_reads: r.cas_reads + w.cas_reads,
                    cas_writes: r.cas_writes + w.cas_writes,
                    row_hits: r.row_hits + w.row_hits,
                    row_misses: r.row_misses + w.row_misses,
                })
            }
            MemSide::Flat(c) => Some(c.fast_module().stats()),
        }
    }

    /// The sectored cache's tag-cache miss ratio, if applicable.
    pub fn tag_cache_miss_ratio(&self) -> Option<f64> {
        match &self.ms {
            MemSide::Sectored(c) => c.tag_cache().map(|tc| tc.miss_ratio()),
            _ => None,
        }
    }

    /// Flushes buffered writes and folds DRAM CAS totals into the stats.
    pub fn finalize(&mut self, now: Cycle) {
        self.mm.flush_writes(now);
        match &mut self.ms {
            MemSide::None => {}
            MemSide::Sectored(c) => c.flush(now),
            MemSide::Alloy(c) => c.flush(now),
            MemSide::Edram(c) => c.flush(now),
            MemSide::Flat(c) => c.flush(now),
        }
        self.stats.mm_cas = self.mm.stats().cas_total();
        self.stats.ms_cas = match &self.ms {
            MemSide::None => 0,
            MemSide::Sectored(c) => c.dram().stats().cas_total(),
            MemSide::Alloy(c) => c.dram().stats().cas_total(),
            MemSide::Edram(c) => {
                c.read_path().stats().cas_total() + c.write_path().stats().cas_total()
            }
            MemSide::Flat(c) => c.fast_module().stats().cas_total(),
        };
    }

    /// DAP decision statistics, if the policy is DAP.
    pub fn dap_decisions(&self) -> Option<dap_core::DecisionStats> {
        self.policy.dap_decisions()
    }

    /// How far the relevant queues run ahead of `now` for a read to
    /// `block` (prefetch throttling signal).
    pub fn queue_pressure(&self, block: u64, now: Cycle) -> Cycle {
        let cache_wait = match &self.ms {
            MemSide::None => 0,
            MemSide::Sectored(c) => c.estimated_wait(block, now),
            MemSide::Alloy(c) => c.estimated_wait(block, now),
            MemSide::Edram(c) => c.estimated_read_wait(block, now),
            MemSide::Flat(_) => 0,
        };
        cache_wait.max(self.mm.estimated_wait(block, now))
    }

    /// A read arriving from the L3. Returns its completion cycle.
    pub fn read(
        &mut self,
        block: u64,
        core: usize,
        pc: u64,
        now: Cycle,
        kind: MemAccessKind,
    ) -> Cycle {
        self.policy.tick(now);
        self.flush_disabled_sets(now);
        if kind == MemAccessKind::DemandRead {
            self.stats.demand_reads += 1;
        }
        let done = match &mut self.ms {
            MemSide::None => {
                self.stats.ms_read_misses += 1;
                self.mm.read_block(block, now)
            }
            MemSide::Sectored(c) => read_sectored(
                c,
                &mut self.mm,
                self.policy.as_mut(),
                &mut self.stats,
                block,
                core,
                now,
            ),
            MemSide::Alloy(c) => read_alloy(
                c,
                &mut self.mm,
                self.policy.as_mut(),
                &mut self.stats,
                block,
                core,
                pc,
                now,
            ),
            MemSide::Edram(c) => read_edram(
                c,
                &mut self.mm,
                self.policy.as_mut(),
                &mut self.stats,
                block,
                core,
                now,
            ),
            MemSide::Flat(c) => {
                let (done, served_fast) = c.access(block, false, now, &mut self.mm);
                if served_fast {
                    self.stats.ms_read_hits += 1;
                } else {
                    self.stats.ms_read_misses += 1;
                }
                done
            }
        };
        if kind == MemAccessKind::DemandRead {
            self.stats.read_latency_sum += done.saturating_sub(now);
            self.stats.read_latency_count += 1;
        }
        done
    }

    /// A dirty eviction arriving from the L3.
    pub fn write(&mut self, block: u64, now: Cycle) {
        self.policy.tick(now);
        self.stats.demand_writes += 1;
        match &mut self.ms {
            MemSide::None => {
                self.mm.write_block(block, now);
            }
            MemSide::Sectored(c) => write_sectored(
                c,
                &mut self.mm,
                self.policy.as_mut(),
                &mut self.stats,
                block,
                now,
            ),
            MemSide::Alloy(c) => write_alloy(
                c,
                &mut self.mm,
                self.policy.as_mut(),
                &mut self.stats,
                block,
                now,
            ),
            MemSide::Edram(c) => write_edram(
                c,
                &mut self.mm,
                self.policy.as_mut(),
                &mut self.stats,
                block,
                now,
            ),
            MemSide::Flat(c) => {
                let _ = c.access(block, true, now, &mut self.mm);
            }
        }
    }

    fn flush_disabled_sets(&mut self, now: Cycle) {
        let sets = self.policy.take_newly_disabled_sets();
        let sectors = self.policy.take_sectors_to_clean();
        if sets.is_empty() && sectors.is_empty() {
            return;
        }
        if let MemSide::Sectored(c) = &mut self.ms {
            // BATMAN: disabled sets lose their contents entirely.
            for set in sets {
                for dirty in c.flush_set(set) {
                    c.read_for_eviction(dirty, now);
                    self.mm.write_block(dirty, now);
                    self.stats.ms_dirty_evictions += 1;
                }
            }
            // SBD: evicted Dirty List pages are cleaned but stay resident.
            for sector in sectors {
                for dirty in c.clean_sector(sector) {
                    c.read_for_eviction(dirty, now);
                    self.mm.write_block(dirty, now);
                    self.stats.ms_dirty_evictions += 1;
                }
            }
        }
    }
}

fn read_context(
    cache_wait: Cycle,
    mm_wait: Cycle,
    block: u64,
    core: usize,
    now: Cycle,
) -> ReadContext {
    ReadContext {
        block,
        core,
        now,
        cache_wait,
        mm_wait,
    }
}

/// Demand read through the sectored DRAM cache.
fn read_sectored(
    c: &mut SectoredDramCache,
    mm: &mut DramModule,
    policy: &mut dyn Partitioner,
    stats: &mut SimStats,
    block: u64,
    core: usize,
    now: Cycle,
) -> Cycle {
    let (sector, _) = c.sector_of(block);
    let set = c.set_of(sector);
    let enabled = policy.set_enabled(set, now);
    let ctx = read_context(
        c.estimated_wait(block, now),
        mm.estimated_wait(block, now),
        block,
        core,
        now,
    );
    policy.observe(Observation::DemandRead, now);
    policy.observe(Observation::CacheAccess { write: false }, now);

    let route = policy.route_read(&ctx);

    // SBD-style steering: serve from main memory outright when safe.
    if route == ReadRoute::SteerMainMemory && c.state(block) != BlockState::DirtyHit {
        policy.observe(Observation::MmAccess, now);
        if c.state(block) == BlockState::Miss {
            stats.ms_read_misses += 1;
            policy.observe(Observation::ReadMiss, now);
        } else {
            stats.ms_read_hits += 1;
        }
        return mm.read_block(block, now);
    }

    // SFRM launches the main-memory read in parallel with the tag lookup.
    let speculative_done = if route == ReadRoute::Speculative {
        stats.speculative_forced += 1;
        Some(mm.read_block(block, now))
    } else {
        None
    };

    let probe = c.probe_metadata(block, now);
    stats.tag_cache_lookups += 1;
    if !probe.tag_cache_hit {
        stats.tag_cache_misses += 1;
    }
    stats.metadata_cas += u64::from(probe.metadata_cas);
    for _ in 0..probe.metadata_cas {
        policy.observe(Observation::CacheAccess { write: false }, now);
    }

    let state = if enabled {
        c.state(block)
    } else {
        BlockState::Miss
    };
    match state {
        BlockState::DirtyHit => {
            stats.ms_read_hits += 1;
            if speculative_done.is_some() {
                // The speculative main-memory data is stale; drop it.
                stats.speculative_wasted += 1;
            }
            c.read_data(block, probe.resolved_at)
        }
        BlockState::CleanHit => {
            policy.observe(Observation::CleanHit, now);
            // A clean hit *served by main memory* counts as a miss in the
            // paper's hit-rate metric (served-by-cache ratio).
            if let Some(done) = speculative_done {
                stats.ms_read_misses += 1;
                return done;
            }
            if policy.force_clean_hit(&ctx) {
                stats.ms_read_misses += 1;
                stats.forced_read_misses += 1;
                return mm.read_block(block, probe.resolved_at);
            }
            stats.ms_read_hits += 1;
            c.read_data(block, probe.resolved_at)
        }
        BlockState::Miss => {
            stats.ms_read_misses += 1;
            policy.observe(Observation::ReadMiss, now);
            policy.observe(Observation::MmAccess, now);
            let done = speculative_done.unwrap_or_else(|| mm.read_block(block, probe.resolved_at));
            // The fill this miss implies is cache *demand* whether or not it
            // is bypassed; DAP's solver sees demand, the array sees actuals.
            policy.observe(Observation::CacheAccess { write: true }, now);
            if enabled && policy.allow_fill(block, now) {
                fill_sectored(c, mm, policy, stats, block, now);
            } else {
                stats.fills_bypassed += 1;
            }
            done
        }
    }
}

/// Fills `block` after a read miss, allocating its sector if needed.
fn fill_sectored(
    c: &mut SectoredDramCache,
    mm: &mut DramModule,
    policy: &mut dyn Partitioner,
    stats: &mut SimStats,
    block: u64,
    now: Cycle,
) {
    if c.sector_present(block) {
        c.write_data(block, now, false);
        stats.fills += 1;
        return;
    }
    let alloc = c.allocate(block, now);
    for victim in alloc.victim_dirty_blocks {
        c.read_for_eviction(victim, now);
        policy.observe(Observation::CacheAccess { write: false }, now);
        policy.observe(Observation::MmAccess, now);
        mm.write_block(victim, now);
        stats.ms_dirty_evictions += 1;
    }
    for fetch in alloc.fetch_blocks {
        if fetch != block {
            // Footprint prefetch: fetch from main memory, fill the array.
            mm.read_block(fetch, now);
            policy.observe(Observation::MmAccess, now);
            policy.observe(Observation::CacheAccess { write: true }, now);
            stats.footprint_prefetches += 1;
        }
        c.write_data(fetch, now, false);
        stats.fills += 1;
    }
}

/// Demand write (L3 dirty eviction) through the sectored DRAM cache.
fn write_sectored(
    c: &mut SectoredDramCache,
    mm: &mut DramModule,
    policy: &mut dyn Partitioner,
    stats: &mut SimStats,
    block: u64,
    now: Cycle,
) {
    let (sector, _) = c.sector_of(block);
    let set = c.set_of(sector);
    let enabled = policy.set_enabled(set, now);
    policy.observe(Observation::WriteDemand, now);
    policy.observe(Observation::CacheAccess { write: true }, now);

    let probe = c.probe_metadata(block, now);
    stats.tag_cache_lookups += 1;
    if !probe.tag_cache_hit {
        stats.tag_cache_misses += 1;
    }
    stats.metadata_cas += u64::from(probe.metadata_cas);
    for _ in 0..probe.metadata_cas {
        policy.observe(Observation::CacheAccess { write: false }, now);
    }

    let sector_hit = enabled && c.sector_present(block);
    let block_hit = enabled && c.state(block) != BlockState::Miss;
    if block_hit {
        stats.ms_write_hits += 1;
    } else {
        stats.ms_write_misses += 1;
    }
    match policy.route_write(block, now, block_hit) {
        WriteRoute::Cache => {
            if sector_hit {
                c.write_data(block, now, true);
            } else {
                // No write-allocate of a whole sector: send to main memory.
                policy.observe(Observation::MmAccess, now);
                mm.write_block(block, now);
            }
        }
        WriteRoute::MainMemory => {
            stats.writes_bypassed += 1;
            if block_hit {
                c.invalidate_block(block);
            }
            mm.write_block(block, now);
        }
        WriteRoute::Both => {
            stats.write_throughs += 1;
            if sector_hit {
                c.write_data(block, now, false); // clean: memory has the data
            }
            mm.write_block(block, now);
        }
    }
}

/// Demand read through the Alloy cache.
fn read_alloy(
    c: &mut AlloyCache,
    mm: &mut DramModule,
    policy: &mut dyn Partitioner,
    stats: &mut SimStats,
    block: u64,
    core: usize,
    pc: u64,
    now: Cycle,
) -> Cycle {
    let ctx = read_context(
        c.estimated_wait(block, now),
        mm.estimated_wait(block, now),
        block,
        core,
        now,
    );
    policy.observe(Observation::DemandRead, now);
    policy.observe(Observation::CacheAccess { write: false }, now);

    // The DBC check gates IFRM without touching the DRAM array.
    if c.probe_dbc(block) == Some(false) {
        policy.observe(Observation::CleanHit, now);
        if policy.force_clean_hit(&ctx) {
            stats.forced_read_misses += 1;
            let done = mm.read_block(block, now + c.dbc_latency());
            // Implicit fill bypass: if the block was absent it stays
            // absent. Either way the read was served by main memory, which
            // is a miss in the paper's served-by-cache hit metric.
            stats.ms_read_misses += 1;
            if c.state(block) == BlockState::Miss {
                policy.observe(Observation::ReadMiss, now);
                policy.observe(Observation::MmAccess, now);
            }
            return done;
        }
    }

    // Normal Alloy path: predict, fetch TAD, resolve.
    let predicted_hit = c.predict_hit(pc);
    let early_mm = if !predicted_hit {
        Some(mm.read_block(block, now))
    } else {
        None
    };
    let state = c.state(block);
    let tad_done = c.read_tad(block, now);
    c.train_predictor(pc, state != BlockState::Miss);

    if state != BlockState::Miss {
        stats.ms_read_hits += 1;
        if early_mm.is_some() {
            stats.speculative_wasted += 1;
        }
        return tad_done;
    }
    stats.ms_read_misses += 1;
    policy.observe(Observation::ReadMiss, now);
    policy.observe(Observation::MmAccess, now);
    let done = early_mm.unwrap_or_else(|| mm.read_block(block, tad_done));
    policy.observe(Observation::CacheAccess { write: true }, now);
    if policy.allow_fill(block, now) && c.bear_allow_fill(block) {
        stats.fills += 1;
        if let Some(ev) = c.install(block, now, false) {
            if ev.dirty {
                // Victim data arrived with the TAD; write it to memory.
                mm.write_block(ev.key, now);
                stats.ms_dirty_evictions += 1;
                policy.observe(Observation::MmAccess, now);
            }
        }
    } else {
        stats.fills_bypassed += 1;
    }
    done
}

/// Demand write through the Alloy cache (with BEAR presence bits, a write
/// that hits needs no TAD fetch).
fn write_alloy(
    c: &mut AlloyCache,
    mm: &mut DramModule,
    policy: &mut dyn Partitioner,
    stats: &mut SimStats,
    block: u64,
    now: Cycle,
) {
    policy.observe(Observation::WriteDemand, now);
    policy.observe(Observation::CacheAccess { write: true }, now);
    let present = c.state(block) != BlockState::Miss;
    if !c.bear_enabled() {
        // Without the presence bit the write must fetch the TAD first.
        let _ = c.read_tad(block, now);
    }
    if present {
        stats.ms_write_hits += 1;
    } else {
        stats.ms_write_misses += 1;
    }
    match policy.route_write(block, now, present) {
        WriteRoute::Both if present => {
            stats.write_throughs += 1;
            c.install(block, now, false);
            c.mark_clean_after_write_through(block);
            mm.write_block(block, now);
        }
        WriteRoute::MainMemory => {
            stats.writes_bypassed += 1;
            if present {
                c.invalidate(block);
            }
            mm.write_block(block, now);
        }
        _ => {
            if present {
                c.mark_dirty(block, now);
            } else {
                // No write-allocate: misses go to main memory.
                policy.observe(Observation::MmAccess, now);
                mm.write_block(block, now);
            }
        }
    }
}

/// Demand read through the eDRAM cache (on-die tags, split channels).
fn read_edram(
    c: &mut EdramCache,
    mm: &mut DramModule,
    policy: &mut dyn Partitioner,
    stats: &mut SimStats,
    block: u64,
    core: usize,
    now: Cycle,
) -> Cycle {
    let ctx = read_context(
        c.estimated_read_wait(block, now),
        mm.estimated_wait(block, now),
        block,
        core,
        now,
    );
    policy.observe(Observation::DemandRead, now);
    policy.observe(Observation::CacheAccess { write: false }, now);
    c.touch(block);
    let resolved = now + c.tag_latency();
    match c.state(block) {
        BlockState::DirtyHit => {
            stats.ms_read_hits += 1;
            c.read_data(block, now)
        }
        BlockState::CleanHit => {
            policy.observe(Observation::CleanHit, now);
            if policy.force_clean_hit(&ctx) {
                stats.ms_read_misses += 1;
                stats.forced_read_misses += 1;
                mm.read_block(block, resolved)
            } else {
                stats.ms_read_hits += 1;
                c.read_data(block, now)
            }
        }
        BlockState::Miss => {
            stats.ms_read_misses += 1;
            policy.observe(Observation::ReadMiss, now);
            policy.observe(Observation::MmAccess, now);
            let done = mm.read_block(block, resolved);
            policy.observe(Observation::CacheAccess { write: true }, now);
            if policy.allow_fill(block, now) {
                fill_edram(c, mm, policy, stats, block, now);
            } else {
                stats.fills_bypassed += 1;
            }
            done
        }
    }
}

/// Fills `block` in the eDRAM cache after a read miss.
fn fill_edram(
    c: &mut EdramCache,
    mm: &mut DramModule,
    policy: &mut dyn Partitioner,
    stats: &mut SimStats,
    block: u64,
    now: Cycle,
) {
    if c.write_data(block, now, false) {
        stats.fills += 1;
        return;
    }
    let alloc = c.allocate(block, now);
    for victim in alloc.victim_dirty_blocks {
        c.read_for_eviction(victim, now);
        policy.observe(Observation::CacheAccess { write: false }, now);
        policy.observe(Observation::MmAccess, now);
        mm.write_block(victim, now);
        stats.ms_dirty_evictions += 1;
    }
    for fetch in alloc.fetch_blocks {
        if fetch != block {
            mm.read_block(fetch, now);
            policy.observe(Observation::MmAccess, now);
            policy.observe(Observation::CacheAccess { write: true }, now);
            stats.footprint_prefetches += 1;
        }
        c.write_data(fetch, now, false);
        stats.fills += 1;
    }
}

/// Demand write through the eDRAM cache.
fn write_edram(
    c: &mut EdramCache,
    mm: &mut DramModule,
    policy: &mut dyn Partitioner,
    stats: &mut SimStats,
    block: u64,
    now: Cycle,
) {
    policy.observe(Observation::WriteDemand, now);
    policy.observe(Observation::CacheAccess { write: true }, now);
    c.touch(block);
    let block_hit = c.state(block) != BlockState::Miss;
    let sector_hit = c.sector_present(block);
    if block_hit {
        stats.ms_write_hits += 1;
    } else {
        stats.ms_write_misses += 1;
    }
    match policy.route_write(block, now, block_hit) {
        WriteRoute::Cache => {
            if sector_hit {
                c.write_data(block, now, true);
            } else {
                policy.observe(Observation::MmAccess, now);
                mm.write_block(block, now);
            }
        }
        WriteRoute::MainMemory => {
            stats.writes_bypassed += 1;
            if block_hit {
                c.invalidate_block(block);
            }
            mm.write_block(block, now);
        }
        WriteRoute::Both => {
            stats.write_throughs += 1;
            if sector_hit {
                c.write_data(block, now, false);
            }
            mm.write_block(block, now);
        }
    }
}

/// The simulated machine.
pub struct System {
    config: SystemConfig,
    cores: Vec<CoreModel>,
    traces: Vec<Box<dyn TraceSource>>,
    l1: Vec<SetAssocCache<()>>,
    l2: Vec<SetAssocCache<()>>,
    prefetchers: Vec<StridePrefetcher>,
    l3: SetAssocCache<()>,
    mshr: HashMap<u64, Cycle>,
    mshr_cleanup_at: usize,
    mem: MemorySubsystem,
}

/// Prefetches are dropped once the target queues back up this far — they
/// may only consume spare bandwidth, never add to saturation.
const PREFETCH_PRESSURE_LIMIT: Cycle = 1200;

impl System {
    /// Builds a system with the baseline (no partitioning) policy.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != config.cores`.
    pub fn new(config: SystemConfig, traces: Vec<Box<dyn TraceSource>>) -> Self {
        Self::with_policy(config, traces, Box::new(NoPartitioning))
    }

    /// Builds a system with an explicit partitioning policy.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != config.cores`.
    pub fn with_policy(
        config: SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
        policy: Box<dyn Partitioner>,
    ) -> Self {
        assert_eq!(traces.len(), config.cores, "one trace per core");
        let mem = MemorySubsystem::new(&config, policy);
        Self {
            cores: (0..config.cores)
                .map(|_| CoreModel::new(config.width, config.rob))
                .collect(),
            traces,
            l1: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l1.0, config.l1.1, ReplacementKind::Lru))
                .collect(),
            l2: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l2.0, config.l2.1, ReplacementKind::Lru))
                .collect(),
            prefetchers: (0..config.cores)
                .map(|_| StridePrefetcher::new(config.prefetch_degree))
                .collect(),
            l3: SetAssocCache::new(config.l3.0, config.l3.1, ReplacementKind::Lru),
            mshr: HashMap::new(),
            mshr_cleanup_at: 8192,
            mem,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The memory subsystem (diagnostics).
    pub fn memory(&self) -> &MemorySubsystem {
        &self.mem
    }

    /// Runs until every core retires `instructions_per_core` instructions.
    pub fn run(&mut self, instructions_per_core: u64) -> RunResult {
        // One DAP window: cores must interleave at window granularity or
        // the policy sees several cores' demand lumped into one window.
        const QUANTUM: Cycle = 64;
        let mut quantum_end = QUANTUM;
        let mut quantum_index = 0usize;
        loop {
            let mut all_done = true;
            // Rotate the per-quantum processing order: the first core to
            // submit each window gets earlier bus reservations, and a fixed
            // order would hand one core a compounding advantage under
            // saturation.
            quantum_index = quantum_index.wrapping_add(1);
            let n = self.cores.len();
            for k in 0..n {
                let i = (k + quantum_index) % n;
                while self.cores[i].retired() < instructions_per_core
                    && self.cores[i].local_cycle() < quantum_end
                {
                    let op = self.traces[i].next_op();
                    let remaining = instructions_per_core - self.cores[i].retired();
                    self.cores[i].push_nonmem(op.gap.min(remaining as u32));
                    if self.cores[i].retired() >= instructions_per_core {
                        break;
                    }
                    let t = self.cores[i].next_issue_cycle();
                    match op.kind {
                        OpKind::Read => {
                            let done = self.load(i, op.block(), op.pc, t);
                            self.cores[i].push_mem(done.saturating_sub(t).max(1));
                        }
                        OpKind::Write => {
                            self.store(i, op.block(), op.pc, t);
                            self.cores[i].push_mem(1);
                        }
                    }
                }
                if self.cores[i].retired() < instructions_per_core {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            quantum_end += QUANTUM;
        }
        let last = self
            .cores
            .iter()
            .map(CoreModel::local_cycle)
            .max()
            .unwrap_or(0);
        self.mem.finalize(last);
        RunResult {
            per_core: self
                .cores
                .iter()
                .map(|c| CoreResult {
                    instructions: c.retired(),
                    cycles: c.local_cycle(),
                })
                .collect(),
            stats: *self.mem.stats(),
            dap_decisions: self.mem.dap_decisions(),
        }
    }

    /// A demand load at cycle `t`; returns its completion cycle.
    fn load(&mut self, core: usize, block: u64, pc: u64, t: Cycle) -> Cycle {
        let (_, _, l1_lat) = self.config.l1;
        let (_, _, l2_lat) = self.config.l2;
        if self.l1[core].lookup(block) {
            return t + l1_lat;
        }
        if self.l2[core].lookup(block) {
            self.install_l1(core, block, t);
            return t + l2_lat;
        }
        let prefetches = if self.config.prefetch_degree > 0 {
            self.prefetchers[core].observe(block)
        } else {
            Vec::new()
        };
        let done = self.access_l3(block, core, pc, t + l2_lat, MemAccessKind::DemandRead);
        self.install_l2(core, block, t);
        self.install_l1(core, block, t);
        for p in prefetches {
            self.prefetch(p, core, pc, t);
        }
        done
    }

    /// A demand store at cycle `t` (fire-and-forget for the core).
    fn store(&mut self, core: usize, block: u64, pc: u64, t: Cycle) {
        if self.l1[core].lookup(block) {
            self.l1[core].mark_dirty(block);
            return;
        }
        if self.l2[core].lookup(block) {
            self.install_l1(core, block, t);
            self.l1[core].mark_dirty(block);
            return;
        }
        let prefetches = if self.config.prefetch_degree > 0 {
            self.prefetchers[core].observe(block)
        } else {
            Vec::new()
        };
        let (_, _, l2_lat) = self.config.l2;
        let _ = self.access_l3(block, core, pc, t + l2_lat, MemAccessKind::Rfo);
        self.install_l2(core, block, t);
        self.install_l1(core, block, t);
        self.l1[core].mark_dirty(block);
        for p in prefetches {
            self.prefetch(p, core, pc, t);
        }
    }

    fn access_l3(
        &mut self,
        block: u64,
        core: usize,
        pc: u64,
        t: Cycle,
        kind: MemAccessKind,
    ) -> Cycle {
        let (_, _, l3_lat) = self.config.l3;
        if kind != MemAccessKind::Prefetch {
            self.mem.stats_mut().l3_accesses += 1;
        }
        // An in-flight miss for this block (demand or prefetch) means the
        // data is not in the array yet: merge and wait for its completion.
        if let Some(&c) = self.mshr.get(&block) {
            if c > t {
                if kind != MemAccessKind::Prefetch {
                    self.mem.stats_mut().l3_misses += 1;
                }
                return c;
            }
        }
        if self.l3.lookup(block) {
            return t + l3_lat;
        }
        if kind != MemAccessKind::Prefetch {
            self.mem.stats_mut().l3_misses += 1;
        }
        let done = self.mem_read_merged(block, core, pc, t + l3_lat, kind);
        self.install_l3(block, t);
        done
    }

    fn mem_read_merged(
        &mut self,
        block: u64,
        core: usize,
        pc: u64,
        t: Cycle,
        kind: MemAccessKind,
    ) -> Cycle {
        if let Some(&c) = self.mshr.get(&block) {
            if c > t {
                // Merge into the outstanding miss.
                return c;
            }
        }
        let done = self.mem.read(block, core, pc, t, kind);
        self.mshr.insert(block, done);
        if self.mshr.len() > self.mshr_cleanup_at {
            self.mshr.retain(|_, &mut c| c > t);
            // Amortize: if most entries are still outstanding (saturated
            // memory), grow the threshold instead of re-scanning per insert.
            self.mshr_cleanup_at = (self.mshr.len() * 2).max(8192);
        }
        done
    }

    fn prefetch(&mut self, block: u64, core: usize, pc: u64, t: Cycle) {
        if self.l3.contains(block) || self.mshr.get(&block).map(|&c| c > t).unwrap_or(false) {
            return;
        }
        // Prefetches only consume spare bandwidth; drop them once the
        // memory queues back up.
        if self.mem.queue_pressure(block, t) > PREFETCH_PRESSURE_LIMIT {
            return;
        }
        let _ = self.mem_read_merged(block, core, pc, t, MemAccessKind::Prefetch);
        self.install_l3(block, t);
    }

    // Writeback timestamps use the *access time* `t` of the triggering
    // operation, never a core's retire frontier — retire frontiers race one
    // full miss latency ahead and a single future-stamped write drain would
    // catapult the channel's bus reservation for every later request.

    fn install_l3(&mut self, block: u64, t: Cycle) {
        if let Some(ev) = self.l3.insert(block, (), false) {
            if ev.dirty {
                self.mem.write(ev.key, t);
            }
        }
    }

    fn install_l2(&mut self, core: usize, block: u64, t: Cycle) {
        if let Some(ev) = self.l2[core].insert(block, (), false) {
            if ev.dirty && !self.l3.mark_dirty(ev.key) {
                self.mem.write(ev.key, t);
            }
        }
    }

    fn install_l1(&mut self, core: usize, block: u64, t: Cycle) {
        if let Some(ev) = self.l1[core].insert(block, (), false) {
            if ev.dirty && !self.l2[core].mark_dirty(ev.key) && !self.l3.mark_dirty(ev.key) {
                self.mem.write(ev.key, t);
            }
        }
    }
}
