//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! `std`'s default `HashMap` hasher (SipHash with a random key) costs more
//! per `u64` key than the entire rest of an MSHR probe, and its per-process
//! random seed makes iteration order vary between runs. The simulator's
//! maps are keyed by block addresses it generates itself — HashDoS is not
//! in the threat model — so a two-round multiply-xor mixer is plenty, and
//! determinism is a feature: any accidental dependence on iteration order
//! shows up as a reproducible bug, not a heisenbug.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`MixHasher`] — deterministic and fast for the
/// integer keys the simulator uses.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<MixHasher>>;

/// Multiply-xor mixing hasher (finalizer strength comparable to
/// splitmix64). Not cryptographic; do not use for untrusted keys.
#[derive(Default)]
pub struct MixHasher(u64);

impl MixHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        let mut x = self.0 ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        self.0 = x;
    }
}

impl Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for composite keys: fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_maps() {
        let mut a: FastMap<u64, u64> = FastMap::default();
        let mut b: FastMap<u64, u64> = FastMap::default();
        for k in 0..1000u64 {
            a.insert(k * 7919, k);
            b.insert(k * 7919, k);
        }
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn nearby_keys_spread() {
        // Block addresses are dense; the mixer must not collide low bits.
        let mut buckets = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            let mut h = MixHasher::default();
            h.write_u64(k);
            buckets.insert(h.finish() & 0xFFF);
        }
        assert!(buckets.len() > 3_000, "only {} buckets hit", buckets.len());
    }
}
