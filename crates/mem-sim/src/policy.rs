//! The access-partitioning policy seam.
//!
//! A [`Partitioner`] is consulted by the memory subsystem at every point
//! where traffic can be steered between the memory-side cache and main
//! memory. The baseline ([`NoPartitioning`]) always picks the cache; DAP
//! ([`DapPolicy`]) consumes credit counters; the related proposals (SBD,
//! BATMAN — see the `policies` crate) implement the same trait.

use crate::clock::Cycle;
use dap_core::{DapConfig, DapController, DecisionStats, EffectiveBandwidth, Technique};

/// What a policy may decide for a demand read *before* the tag lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadRoute {
    /// Proceed with the normal cache lookup.
    Lookup,
    /// Send the read to main memory in parallel with the lookup (SFRM).
    /// If the block turns out dirty in the cache, the main-memory response
    /// is dropped and the read is re-served from the cache.
    Speculative,
    /// Serve directly from main memory without touching the cache (SBD
    /// steering). The subsystem falls back to the cache if the block is
    /// dirty there.
    SteerMainMemory,
}

/// Where a demand write should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteRoute {
    /// Write into the memory-side cache (the baseline behaviour).
    Cache,
    /// Write to main memory instead, invalidating any cached copy (WB).
    MainMemory,
    /// Write to the cache *and* mirror to main memory (write-through).
    Both,
}

/// Events the subsystem reports to the policy for window accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// A demand read arrived at the memory subsystem (one per read,
    /// regardless of routing) — lets hit-rate-tracking policies (BATMAN)
    /// compute clean ratios.
    DemandRead,
    /// An access demanded from the memory-side cache.
    CacheAccess {
        /// Whether it used the write direction (fills, writes).
        write: bool,
    },
    /// An access demanded from main memory.
    MmAccess,
    /// A demand read missed in the memory-side cache.
    ReadMiss,
    /// A demand write arrived at the memory-side cache.
    WriteDemand,
    /// A demand read hit a clean line (IFRM candidate).
    CleanHit,
}

/// Decision context offered to read-routing hooks.
#[derive(Debug, Clone, Copy)]
pub struct ReadContext {
    /// The block address being read.
    pub block: u64,
    /// The requesting core (for thread-aware policies).
    pub core: usize,
    /// Current cycle.
    pub now: Cycle,
    /// Estimated queueing delay at the memory-side cache.
    pub cache_wait: Cycle,
    /// Estimated queueing delay at main memory.
    pub mm_wait: Cycle,
}

/// An access-partitioning policy.
///
/// All hooks have baseline defaults, so a policy only overrides the
/// decisions it cares about. Implementations must be deterministic given
/// the call sequence (the simulator is reproducible).
pub trait Partitioner {
    /// Advances the policy's notion of time (window rolling).
    fn tick(&mut self, _now: Cycle) {}

    /// Reports an accounting event.
    fn observe(&mut self, _event: Observation, _now: Cycle) {}

    /// Routes a demand read before its tag lookup.
    fn route_read(&mut self, _ctx: &ReadContext) -> ReadRoute {
        ReadRoute::Lookup
    }

    /// Decides whether a *clean* read hit is served by the cache (`false`)
    /// or forced to main memory (`true`, IFRM).
    fn force_clean_hit(&mut self, _ctx: &ReadContext) -> bool {
        false
    }

    /// Routes a demand write. `hit` says whether the block is present in
    /// the cache.
    fn route_write(&mut self, _block: u64, _now: Cycle, _hit: bool) -> WriteRoute {
        WriteRoute::Cache
    }

    /// Decides whether a read-miss fill is allocated (`true`) or dropped
    /// (`false`, FWB).
    fn allow_fill(&mut self, _block: u64, _now: Cycle) -> bool {
        true
    }

    /// Whether a cache set is enabled (BATMAN disables sets to modulate the
    /// hit rate). Disabled sets behave as misses and are not filled.
    fn set_enabled(&mut self, _set: u64, _now: Cycle) -> bool {
        true
    }

    /// Sets newly disabled since the last call; the subsystem flushes their
    /// dirty blocks to main memory.
    fn take_newly_disabled_sets(&mut self) -> Vec<u64> {
        Vec::new()
    }

    /// Sectors/pages the policy wants cleaned (dirty blocks written back to
    /// main memory but kept resident) — SBD's Dirty List evictions.
    fn take_sectors_to_clean(&mut self) -> Vec<u64> {
        Vec::new()
    }

    /// DAP decision statistics, when the policy is DAP.
    fn dap_decisions(&self) -> Option<DecisionStats> {
        None
    }

    /// The policy's accounting-window length in cycles, when it runs a
    /// windowed controller (the access profiler aligns its rollups to
    /// it). `None` (the default) for window-less policies.
    fn window_cycles(&self) -> Option<u32> {
        None
    }

    /// Attaches a window-trace sink to the policy's DAP controller, when
    /// it has one. Non-DAP policies ignore the sink (the default).
    fn attach_dap_sink(&mut self, _sink: std::sync::Arc<dyn dap_core::TelemetrySink>) {}

    /// Reports the measured fraction of nominal bandwidth each source is
    /// currently delivering, in `[0, 1]` (the subsystem calls this at
    /// fault-schedule boundaries). Policies that only know nominal rates
    /// ignore it (the default); degradation-aware DAP re-derives its
    /// window budget — and hence Eq. 4's ideal fractions — from it.
    fn note_bandwidth_scale(&mut self, _cache_scale: f64, _mm_scale: f64, _now: Cycle) {}

    /// Lifetime `(cache, mm)` access totals the policy has accumulated
    /// from [`Observation::CacheAccess`]/[`Observation::MmAccess`], when
    /// the policy runs a checked-mode DAP controller. The subsystem's
    /// served-access conservation audit compares this against its own
    /// channel-side tally; `None` (the default) skips the check.
    fn audited_totals(&self) -> Option<(u64, u64)> {
        None
    }
}

/// The baseline policy: everything goes to the memory-side cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPartitioning;

impl Partitioner for NoPartitioning {}

/// DAP as a [`Partitioner`]: wraps a [`DapController`] and spends its
/// credits at the corresponding decision points.
#[derive(Debug, Clone)]
pub struct DapPolicy {
    controller: DapController,
    /// SFRM only pays off when tags are off-die or behind a tag cache;
    /// eDRAM (on-die tags) and Alloy (hit/miss predictor) disable it.
    enable_sfrm: bool,
    /// Whether measured-bandwidth reports re-derive the window budget
    /// (static Eq. 4 DAP ignores them).
    measured: bool,
}

impl DapPolicy {
    /// Creates a DAP policy from a controller configuration.
    pub fn new(config: DapConfig) -> Self {
        let enable_sfrm = config.architecture == dap_core::CacheArchitecture::SingleBus;
        Self {
            controller: DapController::new(config),
            enable_sfrm,
            measured: false,
        }
    }

    /// Creates a degradation-aware DAP policy: every
    /// [`note_effective_bandwidth`] report re-derives the window budget
    /// (and `K`) from the measured rates, so Eq. 4 is solved against
    /// delivered rather than nominal bandwidth.
    ///
    /// [`note_effective_bandwidth`]: Partitioner::note_effective_bandwidth
    pub fn with_measured_bandwidth(config: DapConfig) -> Self {
        Self {
            measured: true,
            ..Self::new(config)
        }
    }

    /// Access to the wrapped controller (diagnostics).
    pub fn controller(&self) -> &DapController {
        &self.controller
    }
}

impl Partitioner for DapPolicy {
    fn tick(&mut self, now: Cycle) {
        self.controller.tick(now);
    }

    fn observe(&mut self, event: Observation, _now: Cycle) {
        match event {
            Observation::DemandRead => {}
            Observation::CacheAccess { write } => self.controller.note_cache_access(write),
            Observation::MmAccess => self.controller.note_mm_access(),
            Observation::ReadMiss => self.controller.note_read_miss(),
            Observation::WriteDemand => self.controller.note_write(),
            Observation::CleanHit => self.controller.note_clean_read_hit(),
        }
    }

    fn route_read(&mut self, _ctx: &ReadContext) -> ReadRoute {
        if self.enable_sfrm
            && self
                .controller
                .try_apply(Technique::SpeculativeForcedReadMiss)
        {
            ReadRoute::Speculative
        } else {
            ReadRoute::Lookup
        }
    }

    fn force_clean_hit(&mut self, _ctx: &ReadContext) -> bool {
        self.controller.try_apply(Technique::InformedForcedReadMiss)
    }

    fn route_write(&mut self, _block: u64, _now: Cycle, hit: bool) -> WriteRoute {
        // Write-through is Alloy's clean-block maintenance; write bypass is
        // the sectored/eDRAM technique.
        if self.controller.try_apply(Technique::WriteThrough) {
            return WriteRoute::Both;
        }
        if hit && self.controller.try_apply(Technique::WriteBypass) {
            return WriteRoute::MainMemory;
        }
        WriteRoute::Cache
    }

    fn allow_fill(&mut self, _block: u64, _now: Cycle) -> bool {
        !self.controller.try_apply(Technique::FillWriteBypass)
    }

    fn dap_decisions(&self) -> Option<DecisionStats> {
        Some(*self.controller.decisions())
    }

    fn window_cycles(&self) -> Option<u32> {
        Some(self.controller.config().window_cycles)
    }

    fn attach_dap_sink(&mut self, sink: std::sync::Arc<dyn dap_core::TelemetrySink>) {
        self.controller.attach_sink(sink);
    }

    fn audited_totals(&self) -> Option<(u64, u64)> {
        self.controller.audited_totals()
    }

    fn note_bandwidth_scale(&mut self, cache_scale: f64, mm_scale: f64, _now: Cycle) {
        if self.measured {
            // Scaling the controller's own nominal rates keeps the
            // architecture adjustments baked into its config (e.g.
            // Alloy's 2/3 TAD factor) in the measured figure.
            let effective =
                EffectiveBandwidth::scaled(self.controller.config(), cache_scale, mm_scale);
            self.controller.set_effective_bandwidth(Some(effective));
        }
    }
}

/// Thread-aware DAP (the extension Section IV-A sketches): IFRM
/// preferentially bypasses the clean hits of *latency-insensitive* threads.
///
/// A thread's latency sensitivity is estimated from its demand rate: cores
/// issuing many memory requests per window are throughput/MLP-oriented and
/// tolerate the main memory's extra latency, while low-rate cores are
/// serialized on each load. While IFRM credits are plentiful everyone may
/// be forced; once credits run low, only the busiest half of the cores are.
#[derive(Debug, Clone)]
pub struct ThreadAwareDap {
    inner: DapPolicy,
    cores: usize,
    /// Demand reads per core in the current epoch.
    epoch_counts: Vec<u64>,
    /// Demand-rate ranks from the previous epoch (true = busy half).
    busy: Vec<bool>,
    epoch_total: u64,
}

impl ThreadAwareDap {
    /// Demand reads per rank-refresh epoch.
    const EPOCH: u64 = 4096;

    /// Creates the policy for a `cores`-core system.
    pub fn new(config: DapConfig, cores: usize) -> Self {
        Self {
            inner: DapPolicy::new(config),
            cores,
            epoch_counts: vec![0; cores],
            busy: vec![true; cores],
            epoch_total: 0,
        }
    }

    /// Whether a core currently ranks in the busy (latency-insensitive)
    /// half.
    pub fn is_busy(&self, core: usize) -> bool {
        self.busy.get(core).copied().unwrap_or(true)
    }

    fn note_demand(&mut self, core: usize) {
        if let Some(c) = self.epoch_counts.get_mut(core) {
            *c += 1;
        }
        self.epoch_total += 1;
        if self.epoch_total >= Self::EPOCH {
            let mut order: Vec<usize> = (0..self.cores).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(self.epoch_counts[i]));
            for (rank, &core) in order.iter().enumerate() {
                self.busy[core] = rank < self.cores.div_ceil(2);
            }
            self.epoch_counts.iter_mut().for_each(|c| *c = 0);
            self.epoch_total = 0;
        }
    }
}

impl Partitioner for ThreadAwareDap {
    fn tick(&mut self, now: Cycle) {
        self.inner.tick(now);
    }

    fn observe(&mut self, event: Observation, now: Cycle) {
        self.inner.observe(event, now);
    }

    fn route_read(&mut self, ctx: &ReadContext) -> ReadRoute {
        self.note_demand(ctx.core);
        self.inner.route_read(ctx)
    }

    fn force_clean_hit(&mut self, ctx: &ReadContext) -> bool {
        let remaining = self
            .inner
            .controller()
            .credits_remaining(Technique::InformedForcedReadMiss);
        // Low on credits: reserve the remaining forced misses for the
        // latency-insensitive (busy) threads.
        if remaining <= 4 && !self.is_busy(ctx.core) {
            return false;
        }
        self.inner.force_clean_hit(ctx)
    }

    fn route_write(&mut self, block: u64, now: Cycle, hit: bool) -> WriteRoute {
        self.inner.route_write(block, now, hit)
    }

    fn allow_fill(&mut self, block: u64, now: Cycle) -> bool {
        self.inner.allow_fill(block, now)
    }

    fn dap_decisions(&self) -> Option<DecisionStats> {
        self.inner.dap_decisions()
    }

    fn window_cycles(&self) -> Option<u32> {
        self.inner.window_cycles()
    }

    fn attach_dap_sink(&mut self, sink: std::sync::Arc<dyn dap_core::TelemetrySink>) {
        self.inner.attach_dap_sink(sink);
    }

    fn note_bandwidth_scale(&mut self, cache_scale: f64, mm_scale: f64, now: Cycle) {
        self.inner.note_bandwidth_scale(cache_scale, mm_scale, now);
    }

    fn audited_totals(&self) -> Option<(u64, u64)> {
        self.inner.audited_totals()
    }
}

#[cfg(test)]
#[path = "policy_tests.rs"]
mod tests;
