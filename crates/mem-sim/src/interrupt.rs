//! Cooperative interruption of long-running simulations.
//!
//! A multi-hour experiment grid needs two ways to stop a simulation that
//! is still mid-run: a user pressing Ctrl-C (cancel the whole grid) and
//! a per-cell deadline watchdog (one runaway cell must not stall its
//! siblings). Both are *cooperative*: the owner of the simulation
//! installs one or more stop flags for the current thread with
//! [`ScopedStop`], and [`System::run`][crate::System] polls them once
//! per 64-cycle quantum — one DAP window, so a stop request is honored
//! at window granularity.
//!
//! When a flag trips, the run loop unwinds with a [`RunInterrupted`]
//! panic payload carrying the [`StopCause`] and the cycle reached. The
//! experiment harness's per-cell `catch_unwind` downcasts the payload
//! into a structured cell error (cancelled vs. deadline-exceeded), so
//! an interrupted cell is reported — never silently dropped — and a
//! checkpointed grid resumes it bit-identically on the next run.
//!
//! With no flags installed (the default) the poll is a thread-local
//! read of an empty list; simulations not under a harness never pay
//! more than that.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Why a simulation was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopCause {
    /// The whole run was cancelled (e.g. Ctrl-C tripped a cancel token).
    Cancelled,
    /// This cell exceeded its per-cell deadline (`DAP_CELL_DEADLINE_MS`).
    DeadlineExceeded,
}

/// Panic payload thrown by [`System::run`][crate::System] when an
/// installed stop flag trips. Catch with `catch_unwind` and downcast to
/// distinguish interruption from a genuine panic.
#[derive(Debug, Clone, Copy)]
pub struct RunInterrupted {
    /// Why the run stopped.
    pub cause: StopCause,
    /// The quantum-end cycle at which the stop was honored.
    pub at_cycle: u64,
}

impl std::fmt::Display for RunInterrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cause = match self.cause {
            StopCause::Cancelled => "cancelled",
            StopCause::DeadlineExceeded => "deadline exceeded",
        };
        write!(f, "simulation {} at cycle {}", cause, self.at_cycle)
    }
}

thread_local! {
    /// The stop flags active for simulations on this thread, newest
    /// last. A `Vec` (not a single slot) so a cancel token and a
    /// deadline flag can be armed at once, and nested harnesses stack.
    static STOP_FLAGS: RefCell<Vec<(Arc<AtomicBool>, StopCause)>> =
        const { RefCell::new(Vec::new()) };
}

/// RAII guard installing stop flags for simulations run on the current
/// thread; dropping it uninstalls exactly the flags it installed.
#[derive(Debug)]
pub struct ScopedStop {
    installed: usize,
}

impl ScopedStop {
    /// Arms `flags` for this thread (on top of any already armed).
    pub fn install(flags: &[(Arc<AtomicBool>, StopCause)]) -> Self {
        STOP_FLAGS.with(|slot| {
            slot.borrow_mut().extend(flags.iter().cloned());
        });
        Self {
            installed: flags.len(),
        }
    }
}

impl Drop for ScopedStop {
    fn drop(&mut self) {
        STOP_FLAGS.with(|slot| {
            let mut flags = slot.borrow_mut();
            let keep = flags.len().saturating_sub(self.installed);
            flags.truncate(keep);
        });
    }
}

/// The first tripped stop flag's cause, if any. Polled by the run loop
/// once per quantum.
pub(crate) fn tripped() -> Option<StopCause> {
    STOP_FLAGS.with(|slot| {
        slot.borrow()
            .iter()
            .find(|(flag, _)| flag.load(Ordering::Relaxed))
            .map(|(_, cause)| *cause)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_flags_means_no_trip() {
        assert_eq!(tripped(), None);
    }

    #[test]
    fn tripped_reports_first_set_flag_and_uninstalls_on_drop() {
        let cancel = Arc::new(AtomicBool::new(false));
        let deadline = Arc::new(AtomicBool::new(false));
        {
            let _guard = ScopedStop::install(&[
                (cancel.clone(), StopCause::Cancelled),
                (deadline.clone(), StopCause::DeadlineExceeded),
            ]);
            assert_eq!(tripped(), None);
            deadline.store(true, Ordering::Relaxed);
            assert_eq!(tripped(), Some(StopCause::DeadlineExceeded));
            cancel.store(true, Ordering::Relaxed);
            // Install order decides which cause wins when both are set.
            assert_eq!(tripped(), Some(StopCause::Cancelled));
        }
        assert_eq!(tripped(), None, "drop uninstalls the flags");
    }

    #[test]
    fn guards_nest() {
        let outer = Arc::new(AtomicBool::new(false));
        let _g1 = ScopedStop::install(&[(outer.clone(), StopCause::Cancelled)]);
        {
            let inner = Arc::new(AtomicBool::new(true));
            let _g2 = ScopedStop::install(&[(inner, StopCause::DeadlineExceeded)]);
            assert_eq!(tripped(), Some(StopCause::DeadlineExceeded));
        }
        assert_eq!(tripped(), None);
        outer.store(true, Ordering::Relaxed);
        assert_eq!(tripped(), Some(StopCause::Cancelled));
    }
}
