//! Deterministic fault injection for the DRAM devices.
//!
//! A [`FaultSchedule`] is a seeded list of cycle-stamped events that
//! degrade one side of the memory hierarchy (the memory-side cache's
//! DRAM or main memory):
//!
//! * **channel outage** — one channel issues nothing for the window;
//! * **bandwidth throttle** — a rational `num/den ≥ 1` multiplier
//!   stretching burst and CAS timing (thermal throttling);
//! * **refresh storm** — extra all-bank-refresh-style stalls every
//!   `interval` cycles (e.g. high-temperature double-rate refresh);
//! * **latency jitter** — a seeded, bounded extra latency per access.
//!
//! The schedule is pure data: [`DramModule::apply_faults`] resolves it
//! into per-channel state ([`ChannelFaults`]) that the channel timing
//! model consults inline — except outages, which resolve into
//! module-level routing state (traffic aimed at a dark channel spills
//! to the next live one, so a dead channel can never stall its own
//! service timeline). Everything is deterministic — the jitter PRNG
//! is seeded per `(schedule seed, target, channel)` and advanced only by
//! that channel's accesses — so a faulted run is exactly reproducible
//! regardless of thread count.
//!
//! [`FaultSchedule::bandwidth_scale`] reports the fraction of nominal
//! bandwidth a target can deliver at a given cycle; the memory subsystem
//! feeds that (as an `EffectiveBandwidth`) to degradation-aware DAP
//! policies so Eq. 4 is re-solved against measured rates.
//!
//! [`DramModule::apply_faults`]: crate::dram::DramModule::apply_faults

use crate::clock::Cycle;

/// Far-future clamp for outage-deferred service timelines. An access
/// deferred past this cycle (a *permanent* outage with no live channel
/// to spill to) is reported as completing exactly here, keeping every
/// downstream cycle computation finite instead of overflowing `u64`.
/// At 4 GHz this is ≈ 2 200 simulated seconds — unreachable by any run
/// this workspace performs, so clamping never distorts a live result.
pub(crate) const FAULT_HORIZON: Cycle = 1 << 43;

/// Which side of the hierarchy a fault event degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The memory-side cache's DRAM devices (both directions, for
    /// split-channel eDRAM caches).
    Cache,
    /// Main memory.
    MainMemory,
}

/// What a fault event does while active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Channel `channel` (module-relative index) issues nothing.
    ChannelOutage {
        /// Zero-based channel index within the target module.
        channel: u32,
    },
    /// Burst and CAS timings stretch by `num/den` (`num ≥ den`), i.e.
    /// delivered bandwidth drops to `den/num` of nominal.
    Throttle {
        /// Numerator of the slowdown multiplier.
        num: u32,
        /// Denominator of the slowdown multiplier.
        den: u32,
    },
    /// Every `interval` cycles the whole channel stalls for `stall`
    /// cycles and all row buffers close, on top of normal refresh.
    RefreshStorm {
        /// Cycles between storm stalls.
        interval: Cycle,
        /// Length of each stall in cycles.
        stall: Cycle,
    },
    /// Each access completes up to `max_extra` cycles late (seeded,
    /// deterministic; pure latency — no bandwidth effect).
    LatencyJitter {
        /// Upper bound on the extra latency, inclusive.
        max_extra: Cycle,
    },
}

/// One cycle-stamped fault: `kind` degrades `target` during
/// `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which module the event degrades.
    pub target: FaultTarget,
    /// What the event does.
    pub kind: FaultKind,
    /// First cycle the event is active.
    pub start: Cycle,
    /// First cycle the event is no longer active.
    pub end: Cycle,
}

impl FaultEvent {
    /// Whether the event is active at `now`.
    pub fn active_at(&self, now: Cycle) -> bool {
        self.start <= now && now < self.end
    }
}

/// A deterministic, seeded schedule of fault events.
///
/// Built with the chaining constructors and attached to a
/// `SystemConfig` via `with_faults`; the simulator resolves it into
/// per-channel state at construction time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule; `seed` drives the latency-jitter PRNG.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    fn push(mut self, target: FaultTarget, kind: FaultKind, start: Cycle, end: Cycle) -> Self {
        assert!(start < end, "fault window must be non-empty");
        self.events.push(FaultEvent {
            target,
            kind,
            start,
            end,
        });
        self
    }

    /// Adds a channel outage on `target` during `[start, end)`.
    pub fn channel_outage(
        self,
        target: FaultTarget,
        channel: u32,
        start: Cycle,
        end: Cycle,
    ) -> Self {
        self.push(target, FaultKind::ChannelOutage { channel }, start, end)
    }

    /// Adds a `num/den` bandwidth throttle (`num ≥ den ≥ 1`) on `target`
    /// during `[start, end)`.
    pub fn throttle(
        self,
        target: FaultTarget,
        num: u32,
        den: u32,
        start: Cycle,
        end: Cycle,
    ) -> Self {
        assert!(
            den >= 1 && num >= den,
            "throttle must slow down: num ≥ den ≥ 1"
        );
        self.push(target, FaultKind::Throttle { num, den }, start, end)
    }

    /// Adds a refresh storm (`stall` every `interval` cycles,
    /// `stall < interval`) on `target` during `[start, end)`.
    pub fn refresh_storm(
        self,
        target: FaultTarget,
        interval: Cycle,
        stall: Cycle,
        start: Cycle,
        end: Cycle,
    ) -> Self {
        assert!(
            interval > 0 && stall < interval,
            "storm stall must be shorter than its interval"
        );
        self.push(
            target,
            FaultKind::RefreshStorm { interval, stall },
            start,
            end,
        )
    }

    /// Adds seeded latency jitter of up to `max_extra` cycles per access
    /// on `target` during `[start, end)`.
    pub fn latency_jitter(
        self,
        target: FaultTarget,
        max_extra: Cycle,
        start: Cycle,
        end: Cycle,
    ) -> Self {
        self.push(target, FaultKind::LatencyJitter { max_extra }, start, end)
    }

    /// The jitter PRNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every cycle at which some event starts or ends, sorted and
    /// deduplicated. Between consecutive boundaries the set of active
    /// events — and therefore [`bandwidth_scale`] — is constant, so a
    /// watcher need only re-evaluate when one is crossed.
    ///
    /// [`bandwidth_scale`]: FaultSchedule::bandwidth_scale
    pub fn boundaries(&self) -> Vec<Cycle> {
        let mut b: Vec<Cycle> = self.events.iter().flat_map(|e| [e.start, e.end]).collect();
        b.sort_unstable();
        b.dedup();
        b
    }

    /// Number of events on any target active at `now`.
    pub fn active_count(&self, now: Cycle) -> usize {
        self.events.iter().filter(|e| e.active_at(now)).count()
    }

    /// Fraction of nominal bandwidth `target` can deliver at `now`, in
    /// `[0, 1]`: the live-channel fraction times every active throttle's
    /// `den/num` times every active storm's duty factor
    /// `1 - stall/interval`. Latency jitter does not affect bandwidth.
    pub fn bandwidth_scale(&self, target: FaultTarget, now: Cycle, channels: u32) -> f64 {
        if channels == 0 {
            return 0.0;
        }
        let mut scale = 1.0f64;
        let mut dark: Vec<u32> = Vec::new();
        for e in self
            .events
            .iter()
            .filter(|e| e.target == target && e.active_at(now))
        {
            match e.kind {
                FaultKind::ChannelOutage { channel } => {
                    let channel = channel % channels;
                    if !dark.contains(&channel) {
                        dark.push(channel);
                    }
                }
                FaultKind::Throttle { num, den } => {
                    scale *= f64::from(den) / f64::from(num);
                }
                FaultKind::RefreshStorm { interval, stall } => {
                    scale *= 1.0 - stall as f64 / interval as f64;
                }
                FaultKind::LatencyJitter { .. } => {}
            }
        }
        scale * (f64::from(channels - dark.len() as u32) / f64::from(channels))
    }

    /// Outage windows `[start, end)` landing on channel `channel` (of
    /// `total_channels`) of `target`, in insertion order. The module
    /// uses these for degraded-interleave routing: traffic aimed at a
    /// dark channel spills to the next live one.
    pub(crate) fn outage_windows(
        &self,
        target: FaultTarget,
        channel: u32,
        total_channels: u32,
    ) -> Vec<(Cycle, Cycle)> {
        self.events
            .iter()
            .filter(|e| e.target == target)
            .filter_map(|e| match e.kind {
                FaultKind::ChannelOutage { channel: c }
                    if total_channels > 0 && c % total_channels == channel =>
                {
                    Some((e.start, e.end))
                }
                _ => None,
            })
            .collect()
    }

    /// Resolves the schedule into the state channel `channel` (of
    /// `total_channels`) on `target` consults inline; `None` when no
    /// event touches that channel (so unfaulted channels pay nothing).
    /// Outages are deliberately absent: they are resolved at the module
    /// level (degraded-interleave routing), so a channel's own service
    /// timeline never stalls on one.
    pub(crate) fn channel_faults(
        &self,
        target: FaultTarget,
        channel: u32,
        _total_channels: u32,
    ) -> Option<ChannelFaults> {
        let mut f = ChannelFaults {
            throttles: Vec::new(),
            storms: Vec::new(),
            jitters: Vec::new(),
            rng: jitter_seed(self.seed, target, channel),
        };
        for e in self.events.iter().filter(|e| e.target == target) {
            match e.kind {
                FaultKind::ChannelOutage { .. } => {}
                FaultKind::Throttle { num, den } => {
                    f.throttles.push((e.start, e.end, num, den));
                }
                FaultKind::RefreshStorm { interval, stall } => f.storms.push(StormState {
                    end: e.end,
                    interval,
                    stall,
                    next_at: e.start,
                }),
                FaultKind::LatencyJitter { max_extra } => {
                    f.jitters.push((e.start, e.end, max_extra));
                }
            }
        }
        if f.throttles.is_empty() && f.storms.is_empty() && f.jitters.is_empty() {
            None
        } else {
            Some(f)
        }
    }
}

/// If `t` falls inside one of `windows` (each `[start, end)`), the cycle
/// at which service may resume — chained and overlapping windows are
/// followed to the furthest reachable end. `None` when `t` is outside
/// every window.
pub(crate) fn dark_until(windows: &[(Cycle, Cycle)], t: Cycle) -> Option<Cycle> {
    let mut t = t;
    let mut pushed = None;
    loop {
        let next = windows
            .iter()
            .filter(|&&(s, e)| s <= t && t < e)
            .map(|&(_, e)| e)
            .max();
        match next {
            Some(e) if Some(e) != pushed => {
                pushed = Some(e);
                t = e;
            }
            _ => return pushed,
        }
    }
}

/// One refresh storm's live cursor: `next_at` is the next stall not yet
/// charged, advanced as the channel's service timeline crosses it.
#[derive(Debug, Clone)]
struct StormState {
    end: Cycle,
    interval: Cycle,
    stall: Cycle,
    next_at: Cycle,
}

/// Per-channel resolved fault state, consulted by the channel timing
/// model on every access. Holds the storm cursors and the jitter PRNG,
/// so it is stateful and owned by exactly one channel. Outages are not
/// represented here — the module routes around them instead.
#[derive(Debug, Clone)]
pub struct ChannelFaults {
    /// Throttle windows `(start, end, num, den)`.
    throttles: Vec<(Cycle, Cycle, u32, u32)>,
    storms: Vec<StormState>,
    /// Jitter windows `(start, end, max_extra)`.
    jitters: Vec<(Cycle, Cycle, Cycle)>,
    rng: u64,
}

impl ChannelFaults {
    /// Scales a timing value by the product of throttles active at `t`
    /// (rounding up, so a throttled burst never shortens).
    pub(crate) fn throttled(&self, t: Cycle, value: Cycle) -> Cycle {
        let mut v = value as u128;
        for &(s, e, num, den) in &self.throttles {
            if s <= t && t < e {
                v = (v * u128::from(num)).div_ceil(u128::from(den));
            }
        }
        v.min(u128::from(Cycle::MAX)) as Cycle
    }

    /// Next storm stall the service timeline `t` has reached but not yet
    /// paid: returns `(stall_start, stall_len)` and advances that
    /// storm's cursor. Call repeatedly until `None`.
    pub(crate) fn next_storm_stall(&mut self, t: Cycle) -> Option<(Cycle, Cycle)> {
        for s in &mut self.storms {
            if s.next_at < s.end && t >= s.next_at {
                // A timeline that jumped a huge distance (a caller
                // stalled on a fully-dark device elsewhere) would step
                // the cursor one interval at a time. Intermediate
                // stalls only leapfrog the bus to the next stall's
                // start, so skipping all but the last one leaves the
                // channel in the identical final state.
                let pending = (t.min(s.end - 1) - s.next_at) / s.interval;
                if pending > (1 << 16) {
                    s.next_at += (pending - 1) * s.interval;
                }
                let at = s.next_at;
                s.next_at += s.interval;
                return Some((at, s.stall));
            }
        }
        None
    }

    /// Extra completion latency for an access at `t` (0 outside jitter
    /// windows). Advances the PRNG only when jitter is active, keeping
    /// unjittered schedules byte-identical to fault-free timing.
    pub(crate) fn jitter_extra(&mut self, t: Cycle) -> Cycle {
        let Some(max_extra) = self
            .jitters
            .iter()
            .filter(|&&(s, e, _)| s <= t && t < e)
            .map(|&(_, _, m)| m)
            .max()
        else {
            return 0;
        };
        if max_extra == 0 {
            return 0;
        }
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.rng) % (max_extra + 1)
    }
}

/// SplitMix64 output mixer (also used to derive per-channel seeds).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn jitter_seed(seed: u64, target: FaultTarget, channel: u32) -> u64 {
    let tag = match target {
        FaultTarget::Cache => 1u64,
        FaultTarget::MainMemory => 2u64,
    };
    mix(seed
        ^ tag.wrapping_mul(0xA076_1D64_78BD_642F)
        ^ u64::from(channel).wrapping_mul(0xE703_7ED1_A0B4_28DB))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> FaultSchedule {
        FaultSchedule::new(7)
            .channel_outage(FaultTarget::MainMemory, 1, 1_000, 2_000)
            .throttle(FaultTarget::Cache, 2, 1, 500, 1_500)
            .refresh_storm(FaultTarget::Cache, 100, 25, 0, 400)
            .latency_jitter(FaultTarget::MainMemory, 16, 0, 3_000)
    }

    #[test]
    fn boundaries_are_sorted_and_deduped() {
        assert_eq!(
            schedule().boundaries(),
            vec![0, 400, 500, 1_000, 1_500, 2_000, 3_000]
        );
    }

    #[test]
    fn bandwidth_scale_composes_outage_throttle_and_storm() {
        let s = schedule();
        // At cycle 1200: one of two mm channels dark, jitter has no
        // bandwidth effect.
        assert!((s.bandwidth_scale(FaultTarget::MainMemory, 1_200, 2) - 0.5).abs() < 1e-12);
        // Cache at cycle 600: 2x throttle only (storm ended at 400).
        assert!((s.bandwidth_scale(FaultTarget::Cache, 600, 4) - 0.5).abs() < 1e-12);
        // Cache at cycle 100: storm duty 1 - 25/100 = 0.75 times 2x throttle? no —
        // throttle starts at 500, so just the storm.
        assert!((s.bandwidth_scale(FaultTarget::Cache, 100, 4) - 0.75).abs() < 1e-12);
        // Outside every window: full bandwidth.
        assert!((s.bandwidth_scale(FaultTarget::MainMemory, 2_500, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_outages_of_one_channel_count_once() {
        let s = FaultSchedule::new(0)
            .channel_outage(FaultTarget::Cache, 0, 0, 100)
            .channel_outage(FaultTarget::Cache, 0, 50, 100);
        assert!((s.bandwidth_scale(FaultTarget::Cache, 60, 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn channel_faults_resolve_only_matching_targets() {
        let s = schedule();
        // Outages resolve at the module level; channel-level mm state
        // carries only the (channel-agnostic) jitter.
        let f = s.channel_faults(FaultTarget::MainMemory, 0, 2).unwrap();
        assert!(f.throttles.is_empty() && f.storms.is_empty());
        assert_eq!(f.jitters.len(), 1);
        // Cache channels see throttle + storm but no jitter.
        let f = s.channel_faults(FaultTarget::Cache, 3, 4).unwrap();
        assert!(f.jitters.is_empty());
        assert_eq!((f.throttles.len(), f.storms.len()), (1, 1));
    }

    #[test]
    fn empty_resolution_is_none() {
        let s = FaultSchedule::new(0).channel_outage(FaultTarget::Cache, 0, 0, 10);
        assert!(s.channel_faults(FaultTarget::MainMemory, 0, 2).is_none());
        // Outages live at the module level, so even the dark channel
        // keeps its channel-level fast path.
        assert!(s.channel_faults(FaultTarget::Cache, 0, 2).is_none());
    }

    #[test]
    fn dark_until_follows_chained_windows() {
        let s = FaultSchedule::new(0)
            .channel_outage(FaultTarget::Cache, 0, 100, 200)
            .channel_outage(FaultTarget::Cache, 0, 150, 300);
        let w = s.outage_windows(FaultTarget::Cache, 0, 1);
        assert_eq!(dark_until(&w, 120), Some(300));
        assert_eq!(dark_until(&w, 50), None);
        assert_eq!(dark_until(&w, 300), None, "end cycle is outside the window");
    }

    #[test]
    fn throttling_rounds_up_and_composes() {
        let s = FaultSchedule::new(0)
            .throttle(FaultTarget::Cache, 3, 2, 0, 100)
            .throttle(FaultTarget::Cache, 2, 1, 50, 100);
        let f = s.channel_faults(FaultTarget::Cache, 0, 1).unwrap();
        assert_eq!(f.throttled(10, 10), 15);
        assert_eq!(f.throttled(60, 10), 30);
        assert_eq!(f.throttled(200, 10), 10);
        assert_eq!(f.throttled(10, 9), 14, "must round up, not truncate");
    }

    #[test]
    fn storm_cursor_charges_each_interval_once() {
        let s = FaultSchedule::new(0).refresh_storm(FaultTarget::Cache, 100, 25, 0, 250);
        let mut f = s.channel_faults(FaultTarget::Cache, 0, 1).unwrap();
        assert_eq!(f.next_storm_stall(0), Some((0, 25)));
        assert_eq!(f.next_storm_stall(0), None, "cursor advanced past 0");
        assert_eq!(f.next_storm_stall(250), Some((100, 25)));
        assert_eq!(f.next_storm_stall(250), Some((200, 25)));
        assert_eq!(f.next_storm_stall(10_000), None, "storm window ended");
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_windowed() {
        let s = FaultSchedule::new(42).latency_jitter(FaultTarget::Cache, 8, 100, 200);
        let mut a = s.channel_faults(FaultTarget::Cache, 0, 2).unwrap();
        let mut b = s.channel_faults(FaultTarget::Cache, 0, 2).unwrap();
        assert_eq!(a.jitter_extra(50), 0, "outside the window");
        assert_eq!(b.jitter_extra(50), 0);
        let xs: Vec<Cycle> = (0..32).map(|_| a.jitter_extra(150)).collect();
        let ys: Vec<Cycle> = (0..32).map(|_| b.jitter_extra(150)).collect();
        assert_eq!(xs, ys, "same seed, same sequence");
        assert!(xs.iter().all(|&x| x <= 8));
        assert!(xs.iter().any(|&x| x > 0), "jitter should actually jitter");
        // A different channel draws a different sequence.
        let mut c = s.channel_faults(FaultTarget::Cache, 1, 2).unwrap();
        let zs: Vec<Cycle> = (0..32).map(|_| c.jitter_extra(150)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    #[should_panic(expected = "fault window must be non-empty")]
    fn empty_window_rejected() {
        let _ = FaultSchedule::new(0).channel_outage(FaultTarget::Cache, 0, 10, 10);
    }

    #[test]
    #[should_panic(expected = "throttle must slow down")]
    fn speedup_throttle_rejected() {
        let _ = FaultSchedule::new(0).throttle(FaultTarget::Cache, 1, 2, 0, 10);
    }
}
