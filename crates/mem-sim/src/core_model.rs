//! A lightweight out-of-order core model.
//!
//! Instead of stepping a pipeline cycle by cycle, the model tracks, per
//! instruction, when it *issues* (bounded by fetch width and reorder-buffer
//! occupancy) and when it *retires* (in order, bounded by retire width).
//! Memory-level parallelism emerges naturally: while an old load is
//! outstanding, younger instructions keep issuing until the 224-entry ROB
//! fills — exactly the behaviour that generates the bandwidth demand DAP
//! feeds on.
//!
//! Internally, time is tracked in *slots* of `1 / width` cycle so that a
//! `width`-wide core retires at most `width` instructions per cycle using
//! integer arithmetic only.

use crate::clock::Cycle;

/// The core model.
#[derive(Debug, Clone)]
pub struct CoreModel {
    /// Retire slot of each ROB entry, as a ring buffer.
    ring: Vec<u64>,
    pos: usize,
    width: u64,
    /// `log2(width)` when the width is a power of two (it always is for
    /// the shipped configs): slot-to-cycle conversion becomes a shift.
    width_shift: Option<u32>,
    last_issue_slot: u64,
    last_retire_slot: u64,
    retired: u64,
}

impl CoreModel {
    /// Creates a core with the given issue/retire `width` and ROB capacity.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `rob_entries` is zero.
    pub fn new(width: u32, rob_entries: usize) -> Self {
        assert!(width > 0 && rob_entries > 0, "degenerate core");
        Self {
            ring: vec![0; rob_entries],
            pos: 0,
            width: u64::from(width),
            width_shift: width.is_power_of_two().then(|| width.trailing_zeros()),
            last_issue_slot: 0,
            last_retire_slot: 0,
            retired: 0,
        }
    }

    /// The paper's core: four-wide with a 224-entry ROB.
    pub fn skylake_like() -> Self {
        Self::new(4, 224)
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The local cycle at which the youngest retired instruction left the
    /// ROB — the core's notion of "now".
    pub fn local_cycle(&self) -> Cycle {
        self.slots_to_cycles(self.last_retire_slot)
    }

    #[inline]
    fn slots_to_cycles(&self, slots: u64) -> Cycle {
        match self.width_shift {
            Some(sh) => slots >> sh,
            None => slots / self.width,
        }
    }

    /// The cycle at which the *next* instruction will issue (enter the ROB
    /// and, for a memory operation, access the hierarchy).
    pub fn next_issue_cycle(&self) -> Cycle {
        let slot_free = self.ring[self.pos];
        self.slots_to_cycles((self.last_issue_slot + 1).max(slot_free))
    }

    fn push(&mut self, latency_cycles: Cycle) {
        let slot_free = self.ring[self.pos];
        let issue = (self.last_issue_slot + 1).max(slot_free);
        let ready = issue + latency_cycles.max(1) * self.width;
        let retire = ready.max(self.last_retire_slot + 1);
        self.ring[self.pos] = retire;
        self.pos = (self.pos + 1) % self.ring.len();
        self.last_issue_slot = issue;
        self.last_retire_slot = retire;
        self.retired += 1;
    }

    /// Executes `count` single-cycle non-memory instructions.
    ///
    /// When the ROB has drained past the batch (the common case on
    /// compute-heavy gaps), the whole batch reduces to consecutive
    /// issue/retire slots and is applied with one bounds check per ring
    /// store instead of the full per-instruction recurrence; the
    /// per-instruction loop below is the fallback and the semantic
    /// reference (the fast path is bit-identical, see
    /// `batched_nonmem_matches_stepped`).
    pub fn push_nonmem(&mut self, count: u32) {
        let k = count as usize;
        let rob = self.ring.len();
        if k > 0 && k <= rob {
            // Ring entries from `pos` are circular-monotone (in-order
            // retirement), so the largest ROB constraint among the next
            // `k` slots is the last one in each contiguous span.
            let issue_0 = self.last_issue_slot + 1;
            let end = self.pos + k;
            let max_constraint = if end <= rob {
                self.ring[end - 1]
            } else {
                self.ring[rob - 1].max(self.ring[end - 1 - rob])
            };
            if max_constraint <= issue_0 {
                // No ROB stall anywhere in the batch: issues are
                // consecutive slots, and retires follow at +1 apiece.
                let r0 = (issue_0 + self.width).max(self.last_retire_slot + 1);
                for j in 0..k as u64 {
                    self.ring[self.pos] = r0 + j;
                    self.pos += 1;
                    if self.pos == rob {
                        self.pos = 0;
                    }
                }
                self.last_issue_slot = issue_0 + k as u64 - 1;
                self.last_retire_slot = r0 + k as u64 - 1;
                self.retired += k as u64;
                return;
            }
        }
        for _ in 0..count {
            self.push(1);
        }
    }

    /// Executes one memory instruction whose data returns after
    /// `latency_cycles` (loads block retirement for that long; pass a small
    /// latency for stores, which drain via a store buffer).
    pub fn push_mem(&mut self, latency_cycles: Cycle) {
        self.push(latency_cycles);
    }

    /// Instructions per cycle so far.
    pub fn ipc(&self) -> f64 {
        let c = self.local_cycle();
        if c == 0 {
            0.0
        } else {
            self.retired as f64 / c as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_nonmem_matches_stepped() {
        // Drive two cores with an identical op stream; one uses
        // push_nonmem batches, the other steps instruction by
        // instruction. Every observable must stay identical, across
        // ROB-drained and ROB-full regimes.
        let mut x = 42u64;
        for (width, rob) in [(4u32, 224usize), (4, 8), (1, 16), (3, 7)] {
            let mut batched = CoreModel::new(width, rob);
            let mut stepped = CoreModel::new(width, rob);
            for _ in 0..2_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let gap = (x >> 33) % 40;
                let latency = if x.is_multiple_of(5) { 400 } else { 1 + x % 7 };
                batched.push_nonmem(gap as u32);
                batched.push_mem(latency);
                for _ in 0..gap {
                    stepped.push(1);
                }
                stepped.push_mem(latency);
                assert_eq!(batched.local_cycle(), stepped.local_cycle());
                assert_eq!(batched.next_issue_cycle(), stepped.next_issue_cycle());
                assert_eq!(batched.retired(), stepped.retired());
            }
            assert_eq!(batched.ring, stepped.ring);
            assert_eq!(batched.pos, stepped.pos);
        }
    }

    #[test]
    fn nonmem_retires_at_full_width() {
        let mut c = CoreModel::new(4, 224);
        c.push_nonmem(4000);
        // 4-wide: 4000 instructions in ~1000 cycles.
        assert!((c.local_cycle() as i64 - 1000).unsigned_abs() <= 2);
        assert!((c.ipc() - 4.0).abs() < 0.05);
    }

    #[test]
    fn single_long_load_blocks_retirement() {
        let mut c = CoreModel::new(4, 224);
        c.push_mem(500);
        assert!(c.local_cycle() >= 500);
        assert_eq!(c.retired(), 1);
    }

    #[test]
    fn independent_loads_overlap_within_rob() {
        // 100 loads of 400 cycles each: with a 224-entry ROB they all fit
        // and issue back to back, so total time ~ 400 + issue time, not
        // 100 * 400.
        let mut c = CoreModel::new(4, 224);
        for _ in 0..100 {
            c.push_mem(400);
        }
        assert!(
            c.local_cycle() < 500,
            "loads must overlap: {}",
            c.local_cycle()
        );
    }

    #[test]
    fn rob_capacity_limits_overlap() {
        // With a 4-entry ROB, only 4 loads overlap: 100 loads of 400 cycles
        // take ~100/4 * 400 = 10000 cycles.
        let mut c = CoreModel::new(4, 4);
        for _ in 0..100 {
            c.push_mem(400);
        }
        assert!(
            c.local_cycle() > 9_000,
            "ROB must throttle: {}",
            c.local_cycle()
        );
    }

    #[test]
    fn issue_cycle_tracks_rob_head() {
        let mut c = CoreModel::new(1, 2);
        c.push_mem(1000);
        c.push_mem(1000);
        // ROB full of slow loads: next issue waits for the head to retire.
        assert!(c.next_issue_cycle() >= 1000);
    }

    #[test]
    fn in_order_retirement_orders_completions() {
        let mut c = CoreModel::new(1, 16);
        c.push_mem(100); // retires at ~100
        c.push_nonmem(1); // completes instantly but retires after the load
        assert!(c.local_cycle() >= 100);
        assert_eq!(c.retired(), 2);
    }

    #[test]
    fn mixed_stream_ipc_between_bounds() {
        let mut c = CoreModel::new(4, 224);
        for _ in 0..1000 {
            c.push_nonmem(3);
            c.push_mem(10);
        }
        let ipc = c.ipc();
        assert!(ipc > 0.5 && ipc <= 4.0, "ipc {ipc}");
    }
}
