//! A generic set-associative cache directory.
//!
//! Keys are abstract line indices (block addresses, sector indices, DBC
//! stretch ids, ...). Each line can carry a payload `P` — footprint bit
//! vectors, dirty-bit vectors, tag-cache metadata — which is returned to the
//! caller on eviction so writeback side effects can be modeled.
//!
//! # Layout
//!
//! Line state is kept in struct-of-arrays form: tags and LRU stamps in flat
//! parallel arrays indexed `set * ways + way`, and the single-bit metadata
//! (valid, dirty, NRU reference) as one 64-bit way-mask per set. A probe
//! therefore touches one mask word plus the tag lane — two cache lines for
//! a 16-way set instead of the eight an array-of-structs layout costs — and
//! the dirty/NRU state is read and updated with single bit operations. This
//! is the layout the simulator's hot loops (L1/L2/L3 probes, sector
//! directory, SRAM tag cache, Alloy DBC) scan millions of times per second.

use super::replacement::ReplacementKind;

/// Elements per 4 KB page (at least 1, for oversized `T`).
fn page_stride<T>() -> usize {
    (4096 / std::mem::size_of::<T>().max(1)).max(1)
}

/// Touches one element per page of a zero-filled allocation so its
/// backing pages are faulted in up front (see [`SetAssocCache::new`]).
/// `black_box` keeps the self-assignment from being optimized away.
fn prefault<T: Copy>(v: &mut [T]) {
    for i in (0..v.len()).step_by(page_stride::<T>()) {
        v[i] = std::hint::black_box(v[i]);
    }
}

/// A line evicted by [`SetAssocCache::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<P> {
    /// The key the evicted line was inserted under.
    pub key: u64,
    /// Whether the line was dirty.
    pub dirty: bool,
    /// The line's payload.
    pub payload: P,
}

/// An opaque handle to a resident line, returned by the slot-returning
/// probe/insert variants so follow-up metadata updates (dirty marking,
/// payload access) skip the repeated tag scan.
///
/// A `Slot` is invalidated by any subsequent `insert`/`invalidate` on the
/// same cache; using a stale slot is a logic error (debug-asserted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot(usize);

/// A set-associative cache directory with LRU or NRU replacement.
///
/// ```
/// use mem_sim::cache::{ReplacementKind, SetAssocCache};
/// let mut c: SetAssocCache<()> = SetAssocCache::new(4, 2, ReplacementKind::Lru);
/// assert!(c.insert(42, (), false).is_none());
/// assert!(c.lookup(42));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<P> {
    sets: u64,
    /// `log2(sets)` when `sets` is a power of two (the common geometry):
    /// set/tag extraction becomes mask+shift instead of two divisions.
    set_shift: Option<u32>,
    ways: usize,
    /// Tag of each line (`set * ways + way`); meaningful only where the
    /// set's valid mask has the way's bit.
    tags: Vec<u64>,
    /// LRU stamp of each line (global tick at last touch).
    last_use: Vec<u64>,
    /// Payload of each line.
    payloads: Vec<P>,
    /// Per-set way masks: bit `w` set means way `w` holds a valid line.
    valid: Vec<u64>,
    /// Per-set way masks: bit `w` set means way `w` is dirty.
    dirty: Vec<u64>,
    /// Per-set way masks: NRU reference bits.
    nru: Vec<u64>,
    policy: ReplacementKind,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<P: Default + Clone> SetAssocCache<P> {
    /// Creates an empty cache with `sets x ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or `ways` exceeds 64 (way
    /// metadata is tracked in 64-bit masks).
    pub fn new(sets: u64, ways: usize, policy: ReplacementKind) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        assert!(ways <= 64, "way metadata is tracked in 64-bit masks");
        let lines = (sets as usize) * ways;
        let mut cache = Self {
            sets,
            set_shift: sets.is_power_of_two().then(|| sets.trailing_zeros()),
            ways,
            tags: vec![0; lines],
            last_use: vec![0; lines],
            payloads: vec![P::default(); lines],
            valid: vec![0; sets as usize],
            dirty: vec![0; sets as usize],
            nru: vec![0; sets as usize],
            policy,
            tick: 0,
            hits: 0,
            misses: 0,
        };
        // A multi-megabyte directory allocated with `vec![0; n]` maps
        // copy-on-write zero pages; left alone, the page faults land on
        // the first simulated accesses that touch each page — i.e. inside
        // the measured hot loop, where they show up as multi-millisecond
        // warmup noise in short benchmark cells. Touch one element per
        // page now, at construction, where setup cost belongs.
        prefault(&mut cache.tags);
        prefault(&mut cache.last_use);
        for i in (0..cache.payloads.len()).step_by(page_stride::<P>()) {
            let line = std::mem::take(&mut cache.payloads[i]);
            cache.payloads[i] = std::hint::black_box(line);
        }
        prefault(&mut cache.valid);
        cache
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Lifetime (hits, misses) counts from `lookup`/`lookup_payload`.
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Mask with one bit per way.
    #[inline]
    fn ways_mask(&self) -> u64 {
        if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        }
    }

    #[inline]
    fn split(&self, key: u64) -> (usize, u64) {
        match self.set_shift {
            Some(sh) => ((key & (self.sets - 1)) as usize, key >> sh),
            None => ((key % self.sets) as usize, key / self.sets),
        }
    }

    /// Reconstructs the key of the line at `idx`.
    #[inline]
    fn key_of(&self, idx: usize) -> u64 {
        self.tags[idx] * self.sets + (idx / self.ways) as u64
    }

    /// Finds `key`'s line index, scanning only valid ways in way order.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let (set, tag) = self.split(key);
        let base = set * self.ways;
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            if self.tags[base + way] == tag {
                return Some(base + way);
            }
            mask &= mask - 1;
        }
        None
    }

    /// Touches `idx` for replacement: bumps the global tick, stamps the
    /// line, and updates NRU reference bits exactly as the paper's
    /// single-bit scheme requires (when every valid line is referenced,
    /// all bits except the touched line's clear).
    #[inline]
    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        self.last_use[idx] = self.tick;
        let set = idx / self.ways;
        let bit = 1u64 << (idx % self.ways);
        self.nru[set] |= bit;
        if self.policy == ReplacementKind::Nru {
            let wm = self.ways_mask();
            // Every way is either invalid or referenced: clear the others.
            if (self.nru[set] | !self.valid[set]) & wm == wm {
                self.nru[set] = bit;
            }
        }
    }

    /// Probes for `key`, updating replacement state and hit/miss counters.
    pub fn lookup(&mut self, key: u64) -> bool {
        self.lookup_slot(key).is_some()
    }

    /// [`Self::lookup`], returning the hit line's [`Slot`] so follow-up
    /// metadata updates skip a second tag scan.
    pub fn lookup_slot(&mut self, key: u64) -> Option<Slot> {
        match self.find(key) {
            Some(i) => {
                self.hits += 1;
                self.touch(i);
                Some(Slot(i))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Probes for `key` and returns mutable access to its payload on a hit.
    pub fn lookup_payload(&mut self, key: u64) -> Option<&mut P> {
        match self.find(key) {
            Some(i) => {
                self.hits += 1;
                self.touch(i);
                Some(&mut self.payloads[i])
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks presence without perturbing replacement state or counters.
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Returns the hit line's [`Slot`] without perturbing replacement
    /// state or counters.
    pub fn peek_slot(&self, key: u64) -> Option<Slot> {
        self.find(key).map(Slot)
    }

    /// Returns the payload without perturbing replacement state.
    pub fn peek(&self, key: u64) -> Option<&P> {
        self.find(key).map(|i| &self.payloads[i])
    }

    /// Returns the payload mutably without perturbing replacement state.
    pub fn peek_mut(&mut self, key: u64) -> Option<&mut P> {
        self.find(key).map(|i| &mut self.payloads[i])
    }

    /// Whether the line holding `key` is dirty.
    pub fn is_dirty(&self, key: u64) -> bool {
        match self.find(key) {
            Some(i) => self.dirty[i / self.ways] >> (i % self.ways) & 1 == 1,
            None => false,
        }
    }

    /// Marks the line holding `key` dirty; returns `false` if absent.
    pub fn mark_dirty(&mut self, key: u64) -> bool {
        if let Some(i) = self.find(key) {
            self.dirty[i / self.ways] |= 1 << (i % self.ways);
            true
        } else {
            false
        }
    }

    /// Reads the payload of a line found earlier (via a slot-returning
    /// probe) without a second tag scan.
    pub fn slot_payload(&self, slot: Slot) -> &P {
        debug_assert!(
            self.valid[slot.0 / self.ways] >> (slot.0 % self.ways) & 1 == 1,
            "stale slot"
        );
        &self.payloads[slot.0]
    }

    /// Mutable access to the payload of a line found earlier.
    pub fn slot_payload_mut(&mut self, slot: Slot) -> &mut P {
        debug_assert!(
            self.valid[slot.0 / self.ways] >> (slot.0 % self.ways) & 1 == 1,
            "stale slot"
        );
        &mut self.payloads[slot.0]
    }

    /// Whether the line at `slot` is dirty.
    pub fn slot_is_dirty(&self, slot: Slot) -> bool {
        self.dirty[slot.0 / self.ways] >> (slot.0 % self.ways) & 1 == 1
    }

    /// Marks a line found earlier (via a slot-returning probe) dirty.
    pub fn mark_dirty_slot(&mut self, slot: Slot) {
        debug_assert!(
            self.valid[slot.0 / self.ways] >> (slot.0 % self.ways) & 1 == 1,
            "stale slot"
        );
        self.dirty[slot.0 / self.ways] |= 1 << (slot.0 % self.ways);
    }

    /// Clears the dirty bit of a line found earlier.
    pub fn clear_dirty_slot(&mut self, slot: Slot) {
        debug_assert!(
            self.valid[slot.0 / self.ways] >> (slot.0 % self.ways) & 1 == 1,
            "stale slot"
        );
        self.dirty[slot.0 / self.ways] &= !(1 << (slot.0 % self.ways));
    }

    /// Updates replacement state for a line found earlier, exactly as a
    /// `lookup` hit on it would (without the hit/miss counting).
    pub fn touch_slot(&mut self, slot: Slot) {
        debug_assert!(
            self.valid[slot.0 / self.ways] >> (slot.0 % self.ways) & 1 == 1,
            "stale slot"
        );
        self.touch(slot.0);
    }

    /// Inserts `key`, evicting a victim if the set is full. If `key` is
    /// already present its payload and dirty bit are replaced (dirty is
    /// OR-ed) and no eviction occurs.
    pub fn insert(&mut self, key: u64, payload: P, dirty: bool) -> Option<Eviction<P>> {
        self.insert_slot(key, payload, dirty).0
    }

    /// [`Self::insert`], also returning the filled line's [`Slot`] so the
    /// caller can read the post-insert metadata (e.g. the sticky dirty
    /// bit) without another tag scan.
    pub fn insert_slot(
        &mut self,
        key: u64,
        payload: P,
        dirty: bool,
    ) -> (Option<Eviction<P>>, Slot) {
        if let Some(i) = self.find(key) {
            self.payloads[i] = payload;
            if dirty {
                self.dirty[i / self.ways] |= 1 << (i % self.ways);
            }
            self.touch(i);
            return (None, Slot(i));
        }
        self.insert_absent_slot(key, payload, dirty)
    }

    /// [`Self::insert`] for a key the caller has just proven absent (a
    /// preceding `lookup`/`contains` miss with no intervening insert):
    /// skips the presence scan and goes straight to victim selection.
    ///
    /// Calling this with a resident key is a logic error (debug-asserted)
    /// that would duplicate the line.
    pub fn insert_absent(&mut self, key: u64, payload: P, dirty: bool) -> Option<Eviction<P>> {
        self.insert_absent_slot(key, payload, dirty).0
    }

    /// [`Self::insert_absent`], also returning the filled line's [`Slot`].
    pub fn insert_absent_slot(
        &mut self,
        key: u64,
        payload: P,
        dirty: bool,
    ) -> (Option<Eviction<P>>, Slot) {
        debug_assert!(self.find(key).is_none(), "insert_absent on resident key");
        let (set, tag) = self.split(key);
        let base = set * self.ways;
        let free = !self.valid[set] & self.ways_mask();
        // Prefer an invalid way.
        let victim = if free != 0 {
            base + free.trailing_zeros() as usize
        } else {
            self.pick_victim(base)
        };
        let vbit = 1u64 << (victim % self.ways);
        let evicted = if self.valid[set] & vbit != 0 {
            Some(Eviction {
                key: self.key_of(victim),
                dirty: self.dirty[set] & vbit != 0,
                payload: std::mem::take(&mut self.payloads[victim]),
            })
        } else {
            None
        };
        self.tags[victim] = tag;
        self.valid[set] |= vbit;
        if dirty {
            self.dirty[set] |= vbit;
        } else {
            self.dirty[set] &= !vbit;
        }
        self.nru[set] &= !vbit;
        self.payloads[victim] = payload;
        self.touch(victim);
        (evicted, Slot(victim))
    }

    fn pick_victim(&self, base: usize) -> usize {
        let set = base / self.ways;
        match self.policy {
            // invariant: construction rejects zero ways, so every set has
            // at least one line to choose from; ties keep the lowest way.
            ReplacementKind::Lru => {
                let mut best = base;
                for i in base + 1..base + self.ways {
                    if self.last_use[i] < self.last_use[best] {
                        best = i;
                    }
                }
                best
            }
            ReplacementKind::Nru => {
                let unref = !self.nru[set] & self.ways_mask();
                if unref != 0 {
                    base + unref.trailing_zeros() as usize
                } else {
                    base
                }
            }
        }
    }

    /// Invalidates `key`; returns the evicted line if it was present.
    /// (LRU stamps and NRU bits are left stale, exactly as a real
    /// directory's replacement state would be.)
    pub fn invalidate(&mut self, key: u64) -> Option<Eviction<P>> {
        let i = self.find(key)?;
        let set = i / self.ways;
        let bit = 1u64 << (i % self.ways);
        self.valid[set] &= !bit;
        let dirty = self.dirty[set] & bit != 0;
        self.dirty[set] &= !bit;
        Some(Eviction {
            key,
            dirty,
            payload: std::mem::take(&mut self.payloads[i]),
        })
    }

    /// Invalidates every line in set `set_index` (used by BATMAN's set
    /// disabling), returning the dirty lines that must be written back.
    pub fn invalidate_set(&mut self, set_index: u64) -> Vec<Eviction<P>> {
        assert!(set_index < self.sets, "set index out of range");
        let set = set_index as usize;
        let base = set * self.ways;
        let mut out = Vec::new();
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            let bit = 1u64 << way;
            out.push(Eviction {
                key: self.key_of(base + way),
                dirty: self.dirty[set] & bit != 0,
                payload: std::mem::take(&mut self.payloads[base + way]),
            });
            mask &= mask - 1;
        }
        self.valid[set] = 0;
        self.dirty[set] = 0;
        out
    }

    /// Peeks every valid line in `key`'s set without perturbing replacement
    /// state: (reconstructed key, dirty, payload reference).
    pub fn peek_set(&self, key: u64) -> Vec<(u64, bool, &P)> {
        let (set, _) = self.split(key);
        let base = set * self.ways;
        let mut out = Vec::new();
        let mut mask = self.valid[set];
        while mask != 0 {
            let way = mask.trailing_zeros() as usize;
            out.push((
                self.key_of(base + way),
                self.dirty[set] >> way & 1 == 1,
                &self.payloads[base + way],
            ));
            mask &= mask - 1;
        }
        out
    }

    /// Number of valid lines (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.valid.iter().map(|m| m.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: u64, ways: usize, policy: ReplacementKind) -> SetAssocCache<u32> {
        SetAssocCache::new(sets, ways, policy)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = cache(16, 4, ReplacementKind::Lru);
        c.insert(100, 7, false);
        assert!(c.lookup(100));
        assert_eq!(c.peek(100), Some(&7));
        assert_eq!(c.hit_miss_counts(), (1, 0));
    }

    #[test]
    fn miss_on_absent() {
        let mut c = cache(16, 4, ReplacementKind::Lru);
        assert!(!c.lookup(100));
        assert_eq!(c.hit_miss_counts(), (0, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = cache(1, 2, ReplacementKind::Lru);
        c.insert(0, 0, false);
        c.insert(1, 1, false);
        c.lookup(0); // 1 is now LRU
        let ev = c.insert(2, 2, false).expect("eviction");
        assert_eq!(ev.key, 1);
        assert!(c.contains(0) && c.contains(2) && !c.contains(1));
    }

    #[test]
    fn eviction_reconstructs_key() {
        let mut c = cache(8, 1, ReplacementKind::Lru);
        c.insert(3 + 8 * 5, 0, true); // set 3, tag 5
        let ev = c.insert(3 + 8 * 9, 0, false).expect("conflict eviction");
        assert_eq!(ev.key, 3 + 8 * 5);
        assert!(ev.dirty);
    }

    #[test]
    fn nru_prefers_unreferenced_victim() {
        let mut c = cache(1, 4, ReplacementKind::Nru);
        for k in 0..4 {
            c.insert(k, k as u32, false);
        }
        // Touch 0..3 except 2.
        c.lookup(0);
        c.lookup(1);
        c.lookup(3);
        let ev = c.insert(10, 10, false).expect("eviction");
        assert_eq!(ev.key, 2, "the not-recently-used line is the victim");
    }

    #[test]
    fn nru_clears_bits_when_all_referenced() {
        let mut c = cache(1, 2, ReplacementKind::Nru);
        c.insert(0, 0, false);
        c.insert(1, 1, false);
        c.lookup(0);
        c.lookup(1); // all referenced: bits clear except line 1
        let ev = c.insert(2, 2, false).expect("eviction");
        assert_eq!(ev.key, 0);
    }

    #[test]
    fn reinsert_updates_payload_and_ors_dirty() {
        let mut c = cache(4, 2, ReplacementKind::Lru);
        c.insert(5, 1, true);
        assert!(c.insert(5, 2, false).is_none());
        assert_eq!(c.peek(5), Some(&2));
        assert!(c.is_dirty(5), "dirty bit must be sticky across re-insert");
    }

    #[test]
    fn invalidate_returns_dirty_state() {
        let mut c = cache(4, 2, ReplacementKind::Lru);
        c.insert(5, 1, false);
        c.mark_dirty(5);
        let ev = c.invalidate(5).expect("line present");
        assert!(ev.dirty);
        assert!(!c.contains(5));
    }

    #[test]
    fn invalidate_set_flushes_everything() {
        let mut c = cache(2, 2, ReplacementKind::Lru);
        c.insert(0, 0, true); // set 0
        c.insert(2, 1, false); // set 0
        c.insert(1, 2, false); // set 1
        let evs = c.invalidate_set(0);
        assert_eq!(evs.len(), 2);
        assert!(c.contains(1));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn fills_all_ways_before_evicting() {
        let mut c = cache(2, 4, ReplacementKind::Lru);
        for i in 0..4 {
            assert!(
                c.insert(i * 2, 0, false).is_none(),
                "way {i} should be free"
            );
        }
        assert!(c.insert(8, 0, false).is_some());
    }

    #[test]
    fn insert_absent_matches_insert() {
        // Drive two caches with the same stream; one uses the fused
        // absent-insert after a lookup miss. State must stay identical.
        let mut plain = cache(8, 2, ReplacementKind::Lru);
        let mut fused = cache(8, 2, ReplacementKind::Lru);
        let mut x = 7u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 64;
            let d = i % 3 == 0;
            let ev_a = if plain.lookup(k) {
                None
            } else {
                plain.insert(k, i as u32, d)
            };
            let ev_b = match fused.lookup_slot(k) {
                Some(_) => None,
                None => fused.insert_absent(k, i as u32, d),
            };
            assert_eq!(ev_a, ev_b);
        }
        assert_eq!(plain.hit_miss_counts(), fused.hit_miss_counts());
        assert_eq!(plain.occupancy(), fused.occupancy());
    }

    #[test]
    fn slot_dirty_marking_matches_keyed_marking() {
        let mut a = cache(4, 4, ReplacementKind::Lru);
        let mut b = cache(4, 4, ReplacementKind::Lru);
        a.insert(9, 0, false);
        b.insert(9, 0, false);
        a.lookup(9);
        a.mark_dirty(9);
        let slot = b.lookup_slot(9).expect("hit");
        b.mark_dirty_slot(slot);
        assert_eq!(a.is_dirty(9), b.is_dirty(9));
        let (_, slot) = b.insert_absent_slot(13, 1, false);
        b.mark_dirty_slot(slot);
        assert!(b.is_dirty(13));
    }

    #[test]
    fn sixty_four_ways_is_the_mask_limit() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(2, 64, ReplacementKind::Nru);
        for k in 0..128 {
            c.insert(k, (), false);
        }
        assert_eq!(c.occupancy(), 128);
        assert!(c.insert(128, (), false).is_some());
    }

    #[test]
    #[should_panic(expected = "64-bit masks")]
    fn more_than_sixty_four_ways_is_rejected() {
        let _: SetAssocCache<()> = SetAssocCache::new(1, 65, ReplacementKind::Lru);
    }
}
