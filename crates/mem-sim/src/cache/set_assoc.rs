//! A generic set-associative cache directory.
//!
//! Keys are abstract line indices (block addresses, sector indices, DBC
//! stretch ids, ...). Each line can carry a payload `P` — footprint bit
//! vectors, dirty-bit vectors, tag-cache metadata — which is returned to the
//! caller on eviction so writeback side effects can be modeled.

use super::replacement::ReplacementKind;

#[derive(Debug, Clone)]
struct Line<P> {
    tag: u64,
    valid: bool,
    dirty: bool,
    nru_ref: bool,
    last_use: u64,
    payload: P,
}

/// A line evicted by [`SetAssocCache::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<P> {
    /// The key the evicted line was inserted under.
    pub key: u64,
    /// Whether the line was dirty.
    pub dirty: bool,
    /// The line's payload.
    pub payload: P,
}

/// A set-associative cache directory with LRU or NRU replacement.
///
/// ```
/// use mem_sim::cache::{ReplacementKind, SetAssocCache};
/// let mut c: SetAssocCache<()> = SetAssocCache::new(4, 2, ReplacementKind::Lru);
/// assert!(c.insert(42, (), false).is_none());
/// assert!(c.lookup(42));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<P> {
    sets: u64,
    ways: usize,
    lines: Vec<Line<P>>,
    policy: ReplacementKind,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<P: Default + Clone> SetAssocCache<P> {
    /// Creates an empty cache with `sets x ways` lines.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: u64, ways: usize, policy: ReplacementKind) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        let lines = vec![
            Line {
                tag: 0,
                valid: false,
                dirty: false,
                nru_ref: false,
                last_use: 0,
                payload: P::default()
            };
            (sets as usize) * ways
        ];
        Self {
            sets,
            ways,
            lines,
            policy,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Lifetime (hits, misses) counts from `lookup`/`lookup_payload`.
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn set_range(&self, key: u64) -> (usize, u64) {
        let set = (key % self.sets) as usize;
        let tag = key / self.sets;
        (set * self.ways, tag)
    }

    fn touch(&mut self, idx: usize) {
        self.tick += 1;
        let set_base = idx - idx % self.ways;
        self.lines[idx].last_use = self.tick;
        self.lines[idx].nru_ref = true;
        if self.policy == ReplacementKind::Nru {
            let all_set = (set_base..set_base + self.ways)
                .all(|i| !self.lines[i].valid || self.lines[i].nru_ref);
            if all_set {
                for i in set_base..set_base + self.ways {
                    if i != idx {
                        self.lines[i].nru_ref = false;
                    }
                }
            }
        }
    }

    fn find(&self, key: u64) -> Option<usize> {
        let (base, tag) = self.set_range(key);
        (base..base + self.ways).find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Probes for `key`, updating replacement state and hit/miss counters.
    pub fn lookup(&mut self, key: u64) -> bool {
        match self.find(key) {
            Some(i) => {
                self.hits += 1;
                self.touch(i);
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Probes for `key` and returns mutable access to its payload on a hit.
    pub fn lookup_payload(&mut self, key: u64) -> Option<&mut P> {
        match self.find(key) {
            Some(i) => {
                self.hits += 1;
                self.touch(i);
                Some(&mut self.lines[i].payload)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks presence without perturbing replacement state or counters.
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Returns the payload without perturbing replacement state.
    pub fn peek(&self, key: u64) -> Option<&P> {
        self.find(key).map(|i| &self.lines[i].payload)
    }

    /// Returns the payload mutably without perturbing replacement state.
    pub fn peek_mut(&mut self, key: u64) -> Option<&mut P> {
        self.find(key).map(|i| &mut self.lines[i].payload)
    }

    /// Whether the line holding `key` is dirty.
    pub fn is_dirty(&self, key: u64) -> bool {
        self.find(key).map(|i| self.lines[i].dirty).unwrap_or(false)
    }

    /// Marks the line holding `key` dirty; returns `false` if absent.
    pub fn mark_dirty(&mut self, key: u64) -> bool {
        if let Some(i) = self.find(key) {
            self.lines[i].dirty = true;
            true
        } else {
            false
        }
    }

    /// Inserts `key`, evicting a victim if the set is full. If `key` is
    /// already present its payload and dirty bit are replaced (dirty is
    /// OR-ed) and no eviction occurs.
    pub fn insert(&mut self, key: u64, payload: P, dirty: bool) -> Option<Eviction<P>> {
        let (base, tag) = self.set_range(key);
        if let Some(i) = self.find(key) {
            self.lines[i].payload = payload;
            self.lines[i].dirty |= dirty;
            self.touch(i);
            return None;
        }
        // Prefer an invalid way.
        let victim = (base..base + self.ways)
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| self.pick_victim(base));
        let line = &mut self.lines[victim];
        let evicted = if line.valid {
            Some(Eviction {
                key: line.tag * self.sets + (base / self.ways) as u64,
                dirty: line.dirty,
                payload: std::mem::take(&mut line.payload),
            })
        } else {
            None
        };
        line.tag = tag;
        line.valid = true;
        line.dirty = dirty;
        line.nru_ref = false;
        line.payload = payload;
        self.touch(victim);
        evicted
    }

    fn pick_victim(&self, base: usize) -> usize {
        match self.policy {
            // invariant: construction rejects zero ways, so every set has
            // at least one line to choose from.
            ReplacementKind::Lru => (base..base + self.ways)
                .min_by_key(|&i| self.lines[i].last_use)
                .expect("non-empty set"),
            ReplacementKind::Nru => (base..base + self.ways)
                .find(|&i| !self.lines[i].nru_ref)
                .unwrap_or(base),
        }
    }

    /// Invalidates `key`; returns the evicted line if it was present.
    pub fn invalidate(&mut self, key: u64) -> Option<Eviction<P>> {
        let i = self.find(key)?;
        let line = &mut self.lines[i];
        line.valid = false;
        Some(Eviction {
            key,
            dirty: std::mem::replace(&mut line.dirty, false),
            payload: std::mem::take(&mut line.payload),
        })
    }

    /// Invalidates every line in set `set_index` (used by BATMAN's set
    /// disabling), returning the dirty lines that must be written back.
    pub fn invalidate_set(&mut self, set_index: u64) -> Vec<Eviction<P>> {
        assert!(set_index < self.sets, "set index out of range");
        let base = (set_index as usize) * self.ways;
        let mut out = Vec::new();
        for i in base..base + self.ways {
            if self.lines[i].valid {
                self.lines[i].valid = false;
                out.push(Eviction {
                    key: self.lines[i].tag * self.sets + set_index,
                    dirty: std::mem::replace(&mut self.lines[i].dirty, false),
                    payload: std::mem::take(&mut self.lines[i].payload),
                });
            }
        }
        out
    }

    /// Peeks every valid line in `key`'s set without perturbing replacement
    /// state: (reconstructed key, dirty, payload reference).
    pub fn peek_set(&self, key: u64) -> Vec<(u64, bool, &P)> {
        let (base, _) = self.set_range(key);
        let set = (base / self.ways) as u64;
        (base..base + self.ways)
            .filter(|&i| self.lines[i].valid)
            .map(|i| {
                (
                    self.lines[i].tag * self.sets + set,
                    self.lines[i].dirty,
                    &self.lines[i].payload,
                )
            })
            .collect()
    }

    /// Number of valid lines (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: u64, ways: usize, policy: ReplacementKind) -> SetAssocCache<u32> {
        SetAssocCache::new(sets, ways, policy)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = cache(16, 4, ReplacementKind::Lru);
        c.insert(100, 7, false);
        assert!(c.lookup(100));
        assert_eq!(c.peek(100), Some(&7));
        assert_eq!(c.hit_miss_counts(), (1, 0));
    }

    #[test]
    fn miss_on_absent() {
        let mut c = cache(16, 4, ReplacementKind::Lru);
        assert!(!c.lookup(100));
        assert_eq!(c.hit_miss_counts(), (0, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = cache(1, 2, ReplacementKind::Lru);
        c.insert(0, 0, false);
        c.insert(1, 1, false);
        c.lookup(0); // 1 is now LRU
        let ev = c.insert(2, 2, false).expect("eviction");
        assert_eq!(ev.key, 1);
        assert!(c.contains(0) && c.contains(2) && !c.contains(1));
    }

    #[test]
    fn eviction_reconstructs_key() {
        let mut c = cache(8, 1, ReplacementKind::Lru);
        c.insert(3 + 8 * 5, 0, true); // set 3, tag 5
        let ev = c.insert(3 + 8 * 9, 0, false).expect("conflict eviction");
        assert_eq!(ev.key, 3 + 8 * 5);
        assert!(ev.dirty);
    }

    #[test]
    fn nru_prefers_unreferenced_victim() {
        let mut c = cache(1, 4, ReplacementKind::Nru);
        for k in 0..4 {
            c.insert(k, k as u32, false);
        }
        // Touch 0..3 except 2.
        c.lookup(0);
        c.lookup(1);
        c.lookup(3);
        let ev = c.insert(10, 10, false).expect("eviction");
        assert_eq!(ev.key, 2, "the not-recently-used line is the victim");
    }

    #[test]
    fn nru_clears_bits_when_all_referenced() {
        let mut c = cache(1, 2, ReplacementKind::Nru);
        c.insert(0, 0, false);
        c.insert(1, 1, false);
        c.lookup(0);
        c.lookup(1); // all referenced: bits clear except line 1
        let ev = c.insert(2, 2, false).expect("eviction");
        assert_eq!(ev.key, 0);
    }

    #[test]
    fn reinsert_updates_payload_and_ors_dirty() {
        let mut c = cache(4, 2, ReplacementKind::Lru);
        c.insert(5, 1, true);
        assert!(c.insert(5, 2, false).is_none());
        assert_eq!(c.peek(5), Some(&2));
        assert!(c.is_dirty(5), "dirty bit must be sticky across re-insert");
    }

    #[test]
    fn invalidate_returns_dirty_state() {
        let mut c = cache(4, 2, ReplacementKind::Lru);
        c.insert(5, 1, false);
        c.mark_dirty(5);
        let ev = c.invalidate(5).expect("line present");
        assert!(ev.dirty);
        assert!(!c.contains(5));
    }

    #[test]
    fn invalidate_set_flushes_everything() {
        let mut c = cache(2, 2, ReplacementKind::Lru);
        c.insert(0, 0, true); // set 0
        c.insert(2, 1, false); // set 0
        c.insert(1, 2, false); // set 1
        let evs = c.invalidate_set(0);
        assert_eq!(evs.len(), 2);
        assert!(c.contains(1));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn fills_all_ways_before_evicting() {
        let mut c = cache(2, 4, ReplacementKind::Lru);
        for i in 0..4 {
            assert!(
                c.insert(i * 2, 0, false).is_none(),
                "way {i} should be free"
            );
        }
        assert!(c.insert(8, 0, false).is_some());
    }
}
