//! SRAM cache structures: a generic set-associative array used for the
//! L1/L2/L3 hierarchy, the DRAM-cache tag cache, the dirty-bit cache, and
//! the sector directories of the memory-side caches.

mod replacement;
mod set_assoc;

pub use replacement::ReplacementKind;
pub use set_assoc::{Eviction, SetAssocCache, Slot};
