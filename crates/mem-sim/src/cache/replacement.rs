//! Replacement policies for [`SetAssocCache`](super::SetAssocCache).

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Least-recently-used, tracked with a per-line use stamp.
    Lru,
    /// Single-bit not-recently-used, as the paper's DRAM cache uses: a hit
    /// sets the line's reference bit; when all bits in a set are set they
    /// are cleared (except the just-referenced line); the victim is the
    /// first line with a clear bit.
    Nru,
}
