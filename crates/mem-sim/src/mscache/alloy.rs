//! Alloy cache: direct-mapped DRAM cache with fused tag-and-data (TAD).
//!
//! Every lookup reads one 72-byte TAD from the DRAM array — three channel
//! cycles of which only two move useful data, so the cache trades bandwidth
//! for hit latency. This model includes:
//!
//! * a PC-indexed hit/miss predictor that launches the main-memory read
//!   early on predicted misses (as in the original Alloy proposal),
//! * BEAR's presence-bit optimization (writes known to hit skip the TAD
//!   fetch) and a BEAR-style fill bypass that avoids evicting blocks which
//!   have demonstrated reuse,
//! * hooks for the [`DirtyBitCache`] that gates DAP's forced read misses.

use super::dbc::DirtyBitCache;
use super::sectored::BlockState;
use crate::cache::{Eviction, ReplacementKind, SetAssocCache};
use crate::clock::Cycle;
use crate::dram::{DramConfig, DramModule};
use crate::BLOCK_BYTES;

/// Per-line payload: demand hits observed since the block was filled
/// (reuse evidence for the BEAR-style fill bypass).
type Reuse = u8;

/// The Alloy cache.
#[derive(Debug, Clone)]
pub struct AlloyCache {
    dir: SetAssocCache<Reuse>,
    dram: DramModule,
    dbc: DirtyBitCache,
    predictor: Vec<u8>,
    bear: bool,
}

impl AlloyCache {
    /// Creates an Alloy cache of `capacity_bytes` (direct-mapped 64-byte
    /// TADs). `bear` enables the BEAR optimizations.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a power of two of at least one block.
    pub fn new(capacity_bytes: u64, dram: DramConfig, cpu_mhz: f64, bear: bool) -> Self {
        assert!(capacity_bytes.is_power_of_two() && capacity_bytes >= BLOCK_BYTES);
        let sets = capacity_bytes / BLOCK_BYTES;
        // The DBC scales with capacity: 32K entries against the paper's
        // 64M-set 4 GB Alloy cache = sets / 2048.
        let dbc_entries = (sets / 2048).next_power_of_two().max(256);
        Self {
            dir: SetAssocCache::new(sets, 1, ReplacementKind::Lru),
            dram: DramModule::new(dram, cpu_mhz),
            dbc: DirtyBitCache::new(dbc_entries, 4, 5),
            predictor: vec![2u8; 4096],
            bear,
        }
    }

    /// Whether BEAR optimizations are active.
    pub fn bear_enabled(&self) -> bool {
        self.bear
    }

    /// Number of direct-mapped sets.
    pub fn sets(&self) -> u64 {
        self.dir.sets()
    }

    /// The cache DRAM array (for bandwidth statistics).
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Applies a fault-injection schedule to the cache's DRAM channels.
    pub fn apply_faults(&mut self, schedule: &crate::faults::FaultSchedule) {
        self.dram
            .apply_faults(schedule, crate::faults::FaultTarget::Cache);
    }

    /// Flushes buffered DRAM writes (end-of-run accounting).
    pub fn flush(&mut self, now: Cycle) {
        self.dram.flush_writes(now);
    }

    /// The direct-mapped set index of a block.
    pub fn set_of(&self, block: u64) -> u64 {
        block % self.dir.sets()
    }

    /// Estimated queueing delay at the cache array.
    pub fn estimated_wait(&self, block: u64, now: Cycle) -> Cycle {
        self.dram.estimated_wait(block, now)
    }

    /// Presence/dirtiness of a block (directory oracle; the hardware learns
    /// this from the TAD or the presence bit).
    pub fn state(&self, block: u64) -> BlockState {
        // One tag scan: presence and dirtiness from the same slot.
        match self.dir.peek_slot(block) {
            None => BlockState::Miss,
            Some(slot) if self.dir.slot_is_dirty(slot) => BlockState::DirtyHit,
            Some(_) => BlockState::CleanHit,
        }
    }

    /// Probes the DBC for the block's set (5-cycle SRAM structure):
    /// `Some(false)` = known clean, `Some(true)` = dirty, `None` = unknown.
    pub fn probe_dbc(&mut self, block: u64) -> Option<bool> {
        let set = self.set_of(block);
        self.dbc.probe(set)
    }

    /// DBC lookup latency.
    pub fn dbc_latency(&self) -> Cycle {
        self.dbc.latency()
    }

    /// Predicts whether a read from `pc` will hit.
    pub fn predict_hit(&self, pc: u64) -> bool {
        self.predictor[(pc as usize) % self.predictor.len()] >= 2
    }

    /// Trains the hit/miss predictor with an observed outcome.
    pub fn train_predictor(&mut self, pc: u64, hit: bool) {
        let idx = (pc as usize) % self.predictor.len();
        let c = &mut self.predictor[idx];
        if hit {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Reads the TAD for `block`; returns the completion cycle and marks
    /// reuse on a hit.
    pub fn read_tad(&mut self, block: u64, now: Cycle) -> Cycle {
        // One tag scan: the counted/touching lookup also hands back the
        // slot whose reuse counter the hit must bump.
        if let Some(slot) = self.dir.lookup_slot(block) {
            let reuse = self.dir.slot_payload_mut(slot);
            *reuse = reuse.saturating_add(1);
        }
        self.dram.read_tad(block, now)
    }

    /// BEAR fill bypass: a fill is allowed unless the slot's current
    /// occupant has demonstrated reuse (filling would evict a useful
    /// block). Always allows the fill when BEAR is disabled.
    pub fn bear_allow_fill(&self, block: u64) -> bool {
        if !self.bear {
            return true;
        }
        // Peek at whatever currently occupies this block's direct-mapped
        // slot; if that occupant has demonstrated reuse, keep it.
        self.dir
            .peek_set(block)
            .first()
            .map(|(_, _, &reuse)| reuse == 0)
            .unwrap_or(true)
    }

    /// Writes `block` into its slot (fill when `dirty` is false, demand
    /// write when true). Returns the evicted victim if a *different* block
    /// occupied the slot; dirty victims must be written to main memory by
    /// the caller (their data arrived with the TAD fetch, so no extra cache
    /// CAS is charged).
    pub fn install(&mut self, block: u64, now: Cycle, dirty: bool) -> Option<Eviction<Reuse>> {
        let set = self.set_of(block);
        // The insert hands back the filled slot, so the post-insert dirty
        // state (sticky across a same-block replace) needs no re-scan.
        let (ev, slot) = self.dir.insert_slot(block, 0, dirty);
        if self.dir.slot_is_dirty(slot) {
            self.dbc.mark_dirty(set);
        } else {
            self.dbc.mark_clean(set);
        }
        self.dram.write_block(block, now);
        ev
    }

    /// Marks a resident block dirty (write hit served in place).
    pub fn mark_dirty(&mut self, block: u64, now: Cycle) -> bool {
        if self.dir.mark_dirty(block) {
            let set = self.set_of(block);
            self.dbc.mark_dirty(set);
            self.dram.write_block(block, now);
            true
        } else {
            false
        }
    }

    /// Marks a resident block clean (Alloy write-through mirrored the data
    /// to main memory).
    pub fn mark_clean_after_write_through(&mut self, block: u64) {
        // In-place equivalent of the old invalidate-and-reinsert pair
        // (exact for the direct-mapped directory, where the reinsert can
        // only land in the line's own way): reset the reuse payload,
        // clear the dirty bit, and touch replacement state as the insert
        // would have.
        if let Some(slot) = self.dir.peek_slot(block) {
            *self.dir.slot_payload_mut(slot) = 0;
            self.dir.clear_dirty_slot(slot);
            self.dir.touch_slot(slot);
            self.dbc.mark_clean(self.set_of(block));
        }
    }

    /// Invalidates a block (unused by Alloy DAP — write bypass would cost a
    /// TAD access — but needed by generality tests).
    pub fn invalidate(&mut self, block: u64) -> bool {
        self.dir.invalidate(block).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> AlloyCache {
        // 1 MB direct-mapped: 16384 sets.
        AlloyCache::new(1 << 20, DramConfig::hbm_102(), 4000.0, true)
    }

    #[test]
    fn install_then_hit() {
        let mut c = cache();
        assert_eq!(c.state(5), BlockState::Miss);
        assert!(c.install(5, 0, false).is_none());
        assert_eq!(c.state(5), BlockState::CleanHit);
    }

    #[test]
    fn conflicting_install_evicts() {
        let mut c = cache();
        let sets = c.sets();
        c.install(5, 0, true);
        let ev = c
            .install(5 + sets, 0, false)
            .expect("direct-mapped conflict");
        assert_eq!(ev.key, 5);
        assert!(ev.dirty);
        assert_eq!(c.state(5), BlockState::Miss);
    }

    #[test]
    fn dbc_tracks_dirtiness() {
        let mut c = cache();
        c.install(5, 0, true);
        assert_eq!(c.probe_dbc(5), Some(true));
        c.mark_clean_after_write_through(5);
        assert_eq!(c.probe_dbc(5), Some(false));
        assert_eq!(c.state(5), BlockState::CleanHit);
    }

    #[test]
    fn predictor_learns_misses() {
        let mut c = cache();
        let pc = 0x400123;
        assert!(c.predict_hit(pc), "optimistic initial state");
        c.train_predictor(pc, false);
        c.train_predictor(pc, false);
        assert!(!c.predict_hit(pc));
        c.train_predictor(pc, true);
        c.train_predictor(pc, true);
        assert!(c.predict_hit(pc));
    }

    #[test]
    fn bear_bypasses_fill_over_reused_occupant() {
        let mut c = cache();
        c.install(5, 0, false);
        assert!(c.bear_allow_fill(5), "no reuse yet");
        let _ = c.read_tad(5, 0); // reuse observed
        assert!(!c.bear_allow_fill(5), "occupant has reuse; bypass the fill");
    }

    #[test]
    fn bear_disabled_always_fills() {
        let mut c = AlloyCache::new(1 << 20, DramConfig::hbm_102(), 4000.0, false);
        c.install(5, 0, false);
        let _ = c.read_tad(5, 0);
        assert!(c.bear_allow_fill(5));
    }

    #[test]
    fn tad_read_occupies_more_bus_than_block_read() {
        // Bus occupancy = spacing of back-to-back same-row reads: a plain
        // block burst is 10 CPU cycles on HBM, a 72-byte TAD is 15.
        let mut c = cache();
        let a = c.read_tad(64, 0);
        let b = c.read_tad(64, 0);
        assert_eq!(b - a, 15);
        let mut plain = DramModule::new(DramConfig::hbm_102(), 4000.0);
        let a = plain.read_block(64, 0);
        let b = plain.read_block(64, 0);
        assert_eq!(b - a, 10);
    }

    #[test]
    fn mark_dirty_requires_residency() {
        let mut c = cache();
        assert!(!c.mark_dirty(42, 0));
        c.install(42, 0, false);
        assert!(c.mark_dirty(42, 0));
        assert_eq!(c.state(42), BlockState::DirtyHit);
    }
}
