//! SRAM tag cache for DRAM caches with in-DRAM metadata (the paper's
//! "optimized baseline", Section V-1).
//!
//! The tag cache holds recently used sector metadata so that most lookups
//! avoid the metadata read from the cache DRAM array. It is 32K-entry,
//! four-way set-associative (624 KB, carved out of one L3 way) with a
//! five-cycle lookup.

use crate::cache::{ReplacementKind, SetAssocCache};
use crate::clock::Cycle;

/// Outcome of a tag-cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagProbe {
    /// Whether the sector's metadata was resident.
    pub hit: bool,
    /// Whether inserting the metadata evicted a *dirty* entry whose
    /// metadata must be written back to the cache DRAM.
    pub writeback_needed: bool,
}

/// The SRAM tag cache.
#[derive(Debug, Clone)]
pub struct TagCache {
    entries: SetAssocCache<()>,
    latency: Cycle,
}

impl TagCache {
    /// The paper's configuration: 32K entries, 4 ways, 5-cycle lookup.
    pub fn paper_default() -> Self {
        Self::new(32 * 1024, 4, 5)
    }

    /// Creates a tag cache with `entries` total entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways`.
    pub fn new(entries: u64, ways: usize, latency: Cycle) -> Self {
        assert!(
            entries.is_multiple_of(ways as u64),
            "entries must divide evenly into ways"
        );
        Self {
            entries: SetAssocCache::new(entries / ways as u64, ways, ReplacementKind::Lru),
            latency,
        }
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Probes for `sector`'s metadata; on a miss the entry is allocated
    /// (the caller charges the metadata fetch from DRAM).
    pub fn probe(&mut self, sector: u64) -> TagProbe {
        if self.entries.lookup(sector) {
            TagProbe {
                hit: true,
                writeback_needed: false,
            }
        } else {
            // The lookup above just missed with no intervening insert, so
            // the presence re-scan inside `insert` can be skipped.
            let ev = self.entries.insert_absent(sector, (), false);
            TagProbe {
                hit: false,
                writeback_needed: ev.map(|e| e.dirty).unwrap_or(false),
            }
        }
    }

    /// Marks `sector`'s cached metadata as modified (valid/dirty bit or
    /// replacement-state change); it will need a DRAM metadata write when
    /// evicted from the tag cache.
    pub fn mark_dirty(&mut self, sector: u64) {
        let _ = self.entries.mark_dirty(sector);
    }

    /// (hits, misses) counters.
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        self.entries.hit_miss_counts()
    }

    /// Miss ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let (h, m) = self.entries.hit_miss_counts();
        if h + m == 0 {
            0.0
        } else {
            m as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_probe_misses_then_hits() {
        let mut tc = TagCache::new(16, 4, 5);
        assert!(!tc.probe(7).hit);
        assert!(tc.probe(7).hit);
        assert_eq!(tc.latency(), 5);
    }

    #[test]
    fn dirty_eviction_requests_writeback() {
        let mut tc = TagCache::new(4, 1, 5); // 4 sets, direct-mapped
        tc.probe(0);
        tc.mark_dirty(0);
        let p = tc.probe(4); // conflicts with 0
        assert!(!p.hit);
        assert!(p.writeback_needed, "dirty metadata must be written back");
    }

    #[test]
    fn clean_eviction_needs_no_writeback() {
        let mut tc = TagCache::new(4, 1, 5);
        tc.probe(0);
        let p = tc.probe(4);
        assert!(!p.writeback_needed);
    }

    #[test]
    fn miss_ratio_tracks_probes() {
        let mut tc = TagCache::new(16, 4, 5);
        tc.probe(1);
        tc.probe(1);
        tc.probe(2);
        assert!((tc.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
