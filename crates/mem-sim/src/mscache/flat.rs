//! OS-visible flat two-tier memory (the paper's sketched extension).
//!
//! Section II notes the partitioning algorithms "can easily be extended to
//! OS-visible implementations". In an OS-visible system the fast memory is
//! not a cache: each 4 KB page lives in exactly one tier and an epoch-based
//! migrator decides placement. Request steering (FWB/WB/IFRM) does not
//! apply — *placement* is the partitioning mechanism:
//!
//! * [`PlacementGoal::MaximizeFastHits`] — conventional tiering: pack the
//!   hottest pages into the fast tier until it is full, maximizing the
//!   fraction of accesses served fast (the analogue of maximizing hit
//!   rate).
//! * [`PlacementGoal::BandwidthOptimal`] — DAP's Eq. 4 as placement: stop
//!   promoting once the fast tier's share of *accesses* reaches
//!   `B_fast / (B_fast + B_mm)`, deliberately leaving the remaining hot
//!   traffic on the DDR channels so both sources stay busy.
//!
//! Page migrations are charged: 64 block reads from the source tier and 64
//! block writes to the destination, per 4 KB page moved.

use std::collections::HashMap;

use crate::clock::Cycle;
use crate::dram::{DramConfig, DramModule};

/// What the epoch migrator optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementGoal {
    /// Fill the fast tier with the hottest pages (hit-rate thinking).
    MaximizeFastHits,
    /// Stop at the bandwidth-proportional access split (Eq. 4 thinking).
    BandwidthOptimal,
}

/// Blocks per 4 KB page.
const PAGE_BLOCKS: u64 = 64;

/// The flat two-tier memory.
#[derive(Debug)]
pub struct FlatTier {
    fast: DramModule,
    goal: PlacementGoal,
    capacity_pages: usize,
    fast_fraction_target: f64,
    fast_pages: HashMap<u64, ()>,
    counts: HashMap<u64, u32>,
    epoch_accesses: u64,
    epoch_len: u64,
    migrations: u64,
    fast_hits: u64,
    accesses: u64,
}

impl FlatTier {
    /// Creates the tier. `mm_gbps` is the slow tier's bandwidth, used to
    /// compute the bandwidth-optimal access split.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no complete page.
    pub fn new(
        capacity_bytes: u64,
        dram: DramConfig,
        cpu_mhz: f64,
        goal: PlacementGoal,
        mm_gbps: f64,
    ) -> Self {
        let capacity_pages = (capacity_bytes / (PAGE_BLOCKS * 64)) as usize;
        assert!(capacity_pages > 0, "fast tier must hold at least one page");
        let fast_gbps = dram.peak_gbps();
        Self {
            fast: DramModule::new(dram, cpu_mhz),
            goal,
            capacity_pages,
            fast_fraction_target: fast_gbps / (fast_gbps + mm_gbps),
            fast_pages: HashMap::new(),
            counts: HashMap::new(),
            epoch_accesses: 0,
            epoch_len: 16 * 1024,
            migrations: 0,
            fast_hits: 0,
            accesses: 0,
        }
    }

    /// The placement goal.
    pub fn goal(&self) -> PlacementGoal {
        self.goal
    }

    /// Pages migrated so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Fraction of accesses served by the fast tier so far.
    pub fn fast_access_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.fast_hits as f64 / self.accesses as f64
        }
    }

    /// The fast tier's DRAM module (for CAS statistics).
    pub fn fast_module(&self) -> &DramModule {
        &self.fast
    }

    /// Flushes buffered writes.
    pub fn flush(&mut self, now: Cycle) {
        self.fast.flush_writes(now);
    }

    /// Applies a fault-injection schedule to the fast tier's channels.
    pub fn apply_faults(&mut self, schedule: &crate::faults::FaultSchedule) {
        self.fast
            .apply_faults(schedule, crate::faults::FaultTarget::Cache);
    }

    /// Serves one block access; returns the completion cycle (reads) and
    /// whether the fast tier served it.
    pub fn access(
        &mut self,
        block: u64,
        write: bool,
        now: Cycle,
        mm: &mut DramModule,
    ) -> (Cycle, bool) {
        let page = block / PAGE_BLOCKS;
        *self.counts.entry(page).or_insert(0) += 1;
        self.accesses += 1;
        self.epoch_accesses += 1;
        if self.epoch_accesses >= self.epoch_len {
            self.replan(now, mm);
        }
        if self.fast_pages.contains_key(&page) {
            self.fast_hits += 1;
            let done = if write {
                self.fast.write_block(block, now);
                now
            } else {
                self.fast.read_block(block, now)
            };
            (done, true)
        } else if write {
            mm.write_block(block, now);
            (now, false)
        } else {
            (mm.read_block(block, now), false)
        }
    }

    /// Epoch boundary: re-place pages according to the goal and charge the
    /// migration traffic.
    fn replan(&mut self, now: Cycle, mm: &mut DramModule) {
        self.epoch_accesses = 0;
        // Only pages with demonstrated reuse are promotion candidates:
        // migrating a once-touched (streaming) page costs 128 block moves
        // for no future benefit.
        const PROMOTE_MIN_COUNT: u32 = 4;
        let mut pages: Vec<(u64, u32)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= PROMOTE_MIN_COUNT)
            .map(|(&p, &c)| (p, c))
            .collect();
        pages.sort_unstable_by_key(|&(p, c)| (std::cmp::Reverse(c), p));
        let total: u64 = self.counts.values().map(|&c| u64::from(c)).sum();
        let mut chosen: HashMap<u64, ()> = HashMap::new();
        let mut covered: u64 = 0;
        for &(page, count) in &pages {
            if chosen.len() >= self.capacity_pages {
                break;
            }
            if self.goal == PlacementGoal::BandwidthOptimal
                && total > 0
                && covered as f64 / total as f64 >= self.fast_fraction_target
            {
                break;
            }
            chosen.insert(page, ());
            covered += u64::from(count);
        }
        // Charge migrations: pages entering the fast tier.
        for &page in chosen.keys() {
            if !self.fast_pages.contains_key(&page) {
                self.migrate(page, now, mm, true);
            }
        }
        // Pages leaving the fast tier (OS-visible: data must move back).
        let leaving: Vec<u64> = self
            .fast_pages
            .keys()
            .filter(|p| !chosen.contains_key(p))
            .copied()
            .collect();
        for page in leaving {
            self.migrate(page, now, mm, false);
        }
        self.fast_pages = chosen;
        // Age the counters so placement tracks phase changes.
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }

    fn migrate(&mut self, page: u64, now: Cycle, mm: &mut DramModule, into_fast: bool) {
        self.migrations += 1;
        let base = page * PAGE_BLOCKS;
        for i in 0..PAGE_BLOCKS {
            if into_fast {
                mm.read_block(base + i, now);
                self.fast.write_block(base + i, now);
            } else {
                self.fast.read_block(base + i, now);
                mm.write_block(base + i, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> DramModule {
        DramModule::new(DramConfig::ddr4_2400(), 4000.0)
    }

    fn tier(goal: PlacementGoal) -> FlatTier {
        // 4 MB fast tier = 1024 pages of 4 KB.
        FlatTier::new(4 << 20, DramConfig::hbm_102(), 4000.0, goal, 38.4)
    }

    #[test]
    fn cold_accesses_go_to_main_memory() {
        let mut t = tier(PlacementGoal::MaximizeFastHits);
        let mut m = mm();
        let (done, fast) = t.access(0, false, 0, &mut m);
        assert!(done > 0);
        assert!(!fast);
        assert_eq!(t.fast_access_fraction(), 0.0);
        assert_eq!(m.stats().cas_reads, 1);
    }

    #[test]
    fn hot_pages_migrate_into_fast_tier() {
        let mut t = tier(PlacementGoal::MaximizeFastHits);
        let mut m = mm();
        // Hammer a few pages for several epochs so the post-promotion
        // phase dominates the average.
        for i in 0..60_000u64 {
            t.access(i % 256, false, i, &mut m);
        }
        assert!(t.migrations() > 0, "hot pages should have been promoted");
        assert!(
            t.fast_access_fraction() > 0.5,
            "{}",
            t.fast_access_fraction()
        );
    }

    #[test]
    fn bandwidth_optimal_leaves_accesses_on_mm() {
        let run = |goal| {
            let mut t = tier(goal);
            let mut m = mm();
            for i in 0..200_000u64 {
                t.access(i % (64 * 128), false, i * 3, &mut m); // 128 pages, uniform
            }
            t.fast_access_fraction()
        };
        let hits = run(PlacementGoal::MaximizeFastHits);
        let balanced = run(PlacementGoal::BandwidthOptimal);
        assert!(
            hits > 0.9,
            "conventional tiering packs everything fast: {hits}"
        );
        assert!(
            balanced < hits && balanced > 0.4,
            "bandwidth-optimal placement must stop near 0.73: {balanced}"
        );
    }

    #[test]
    fn migrations_charge_both_tiers() {
        let mut t = tier(PlacementGoal::MaximizeFastHits);
        let mut m = mm();
        for i in 0..20_000u64 {
            t.access(i % 64, false, i, &mut m); // one page, hot
        }
        // The page migration wrote 64 blocks into the fast tier.
        t.flush(1 << 20);
        assert!(t.fast_module().stats().cas_writes >= 64);
    }

    #[test]
    fn demotions_move_data_back() {
        let mut t = FlatTier::new(
            64 * 64 * 2, // two pages of capacity
            DramConfig::hbm_102(),
            4000.0,
            PlacementGoal::MaximizeFastHits,
            38.4,
        );
        let mut m = mm();
        // Phase 1: pages 0 and 1 are hot.
        for i in 0..40_000u64 {
            t.access((i % 2) * 64, false, i, &mut m);
        }
        let migrations_before = t.migrations();
        // Phase 2: pages 2 and 3 take over.
        for i in 0..80_000u64 {
            t.access(128 + (i % 2) * 64, false, 40_000 + i, &mut m);
        }
        assert!(
            t.migrations() > migrations_before,
            "phase change must re-place pages"
        );
    }
}
