//! Memory-side cache architectures.
//!
//! Three implementations, matching the paper's evaluation targets:
//!
//! * [`SectoredDramCache`] — die-stacked HBM, 4 KB sectors, 4-way, NRU,
//!   metadata in the cache DRAM behind an SRAM [`TagCache`], footprint
//!   prefetching (Section VI-A).
//! * [`AlloyCache`] — direct-mapped tag-and-data (TAD) cache with a
//!   PC-indexed hit/miss predictor, BEAR-style presence bits and fill
//!   bypass, and the [`DirtyBitCache`] that gates DAP's forced misses
//!   (Section VI-B).
//! * [`EdramCache`] — sectored eDRAM with on-die tags and independent read
//!   and write channel sets (Section VI-C).
//!
//! Each cache owns its DRAM array(s) and exposes *mechanics* (probe state,
//! read/fill/evict with timing). Routing decisions live in
//! [`crate::system`], where the [`crate::policy::Partitioner`] is consulted.

mod alloy;
mod dbc;
mod edram;
mod flat;
mod sectored;
mod tag_cache;

pub use alloy::AlloyCache;
pub use dbc::DirtyBitCache;
pub use edram::{EdramAllocation, EdramCache};
pub use flat::{FlatTier, PlacementGoal};
pub use sectored::{Allocation, BlockState, MetadataProbe, SectoredDramCache};
pub use tag_cache::{TagCache, TagProbe};
