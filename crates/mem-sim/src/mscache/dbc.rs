//! Dirty-Bit Cache (DBC) for the Alloy cache (Section IV-B).
//!
//! Each entry tracks the dirty bits of a *stretch* of 64 consecutive
//! direct-mapped Alloy sets. A read that finds its set's bit clear may be
//! forced to main memory (IFRM) without fetching the TAD. The structure is
//! 32K entries, four ways, twelve bytes per entry, borrowing one way of the
//! L3 cache; lookups take five cycles.

use crate::cache::{ReplacementKind, SetAssocCache};
use crate::clock::Cycle;

/// Sets covered by one DBC entry.
const STRETCH: u64 = 64;

/// The dirty-bit cache.
#[derive(Debug, Clone)]
pub struct DirtyBitCache {
    entries: SetAssocCache<u64>,
    latency: Cycle,
}

impl DirtyBitCache {
    /// The paper's configuration: 32K entries, 4 ways, 5-cycle lookup.
    pub fn paper_default() -> Self {
        Self::new(32 * 1024, 4, 5)
    }

    /// Creates a DBC with `entries` total entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways`.
    pub fn new(entries: u64, ways: usize, latency: Cycle) -> Self {
        assert!(
            entries.is_multiple_of(ways as u64),
            "entries must divide evenly into ways"
        );
        Self {
            entries: SetAssocCache::new(entries / ways as u64, ways, ReplacementKind::Lru),
            latency,
        }
    }

    /// Lookup latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    fn split(alloy_set: u64) -> (u64, u32) {
        (alloy_set / STRETCH, (alloy_set % STRETCH) as u32)
    }

    /// Probes the DBC for an Alloy set. Returns:
    ///
    /// * `Some(false)` — entry resident, set known clean (IFRM candidate),
    /// * `Some(true)` — entry resident, set dirty,
    /// * `None` — entry not resident (state unknown; no IFRM).
    pub fn probe(&mut self, alloy_set: u64) -> Option<bool> {
        let (stretch, bit) = Self::split(alloy_set);
        self.entries
            .lookup_payload(stretch)
            .map(|bits| *bits >> bit & 1 == 1)
    }

    /// Records that a set's block became dirty (a write hit the Alloy
    /// cache). Allocates the stretch entry if needed.
    pub fn mark_dirty(&mut self, alloy_set: u64) {
        let (stretch, bit) = Self::split(alloy_set);
        if let Some(bits) = self.entries.peek_mut(stretch) {
            *bits |= 1 << bit;
        } else {
            self.entries.insert(stretch, 1 << bit, false);
        }
    }

    /// Records that a set's block became clean (written back or replaced by
    /// a clean fill).
    pub fn mark_clean(&mut self, alloy_set: u64) {
        let (stretch, bit) = Self::split(alloy_set);
        if let Some(bits) = self.entries.peek_mut(stretch) {
            *bits &= !(1 << bit);
        } else {
            self.entries.insert(stretch, 0, false);
        }
    }

    /// (hits, misses) counters of probes.
    pub fn hit_miss_counts(&self) -> (u64, u64) {
        self.entries.hit_miss_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_before_any_marking() {
        let mut dbc = DirtyBitCache::paper_default();
        assert_eq!(dbc.probe(100), None);
    }

    #[test]
    fn dirty_then_clean_transitions() {
        let mut dbc = DirtyBitCache::paper_default();
        dbc.mark_dirty(100);
        assert_eq!(dbc.probe(100), Some(true));
        dbc.mark_clean(100);
        assert_eq!(dbc.probe(100), Some(false));
    }

    #[test]
    fn stretch_covers_64_sets() {
        let mut dbc = DirtyBitCache::paper_default();
        dbc.mark_dirty(64); // allocates stretch 1
        assert_eq!(
            dbc.probe(65),
            Some(false),
            "same stretch, different set: known clean"
        );
        assert_eq!(dbc.probe(63), None, "different stretch: unknown");
    }

    #[test]
    fn marking_clean_allocates_known_clean_entry() {
        let mut dbc = DirtyBitCache::paper_default();
        dbc.mark_clean(10);
        assert_eq!(dbc.probe(10), Some(false));
    }

    #[test]
    fn capacity_eviction_loses_knowledge() {
        let mut dbc = DirtyBitCache::new(4, 1, 5); // 4 direct-mapped entries
        dbc.mark_dirty(0); // stretch 0 -> DBC set 0
        dbc.mark_dirty(4 * 64); // stretch 4 -> DBC set 0, evicts stretch 0
        assert_eq!(dbc.probe(0), None);
    }
}
