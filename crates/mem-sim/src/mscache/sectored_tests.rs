//! Unit tests for the sectored DRAM cache (kept in a sibling file to
//! keep the module under the size ceiling).

use super::*;

fn cache() -> SectoredDramCache {
    // 4 MB cache, 4 KB sectors, 4 ways -> 256 sets.
    SectoredDramCache::new(4 << 20, 4096, 4, DramConfig::hbm_102(), 4000.0, true)
}

#[test]
fn geometry() {
    let c = cache();
    assert_eq!(c.blocks_per_sector(), 64);
    assert_eq!(c.sets(), 256);
    assert_eq!(c.sector_of(64 * 5 + 3).0, 5);
    assert_eq!(c.sector_of(64 * 5 + 3).1, 3);
}

#[test]
fn miss_then_fill_then_hit() {
    let mut c = cache();
    let block = 0x1234;
    assert_eq!(c.state(block), BlockState::Miss);
    let alloc = c.allocate(block, 0);
    assert_eq!(
        alloc.fetch_blocks,
        vec![block],
        "cold footprint = demand block"
    );
    assert!(alloc.victim_dirty_blocks.is_empty());
    assert!(c.write_data(block, 0, false));
    assert_eq!(c.state(block), BlockState::CleanHit);
}

#[test]
fn dirty_write_marks_dirty() {
    let mut c = cache();
    let block = 0x40;
    c.allocate(block, 0);
    c.write_data(block, 0, true);
    assert_eq!(c.state(block), BlockState::DirtyHit);
    c.invalidate_block(block);
    assert_eq!(c.state(block), BlockState::Miss);
}

#[test]
fn sector_present_blocks_still_miss_individually() {
    let mut c = cache();
    c.allocate(0x40, 0);
    c.write_data(0x40, 0, false);
    assert!(c.sector_present(0x41));
    assert_eq!(
        c.state(0x41),
        BlockState::Miss,
        "same sector, unfetched block"
    );
}

#[test]
fn footprint_replay_on_reallocation() {
    let mut c = cache();
    // Touch blocks 0 and 3 of sector 7, then evict it by filling the set
    // with conflicting sectors, then re-allocate: footprint should ask
    // for both blocks again.
    let base = 7 << 6;
    c.allocate(base, 0);
    c.write_data(base, 0, false);
    c.write_data(base + 3, 0, false);
    c.read_data(base, 0);
    c.read_data(base + 3, 0);
    // 4 ways: insert 4 conflicting sectors (same set: sector % 256 == 7).
    for k in 1..=4u64 {
        let sector = 7 + 256 * k;
        c.allocate(sector << 6, 0);
    }
    assert_eq!(c.state(base), BlockState::Miss, "sector 7 must be evicted");
    let alloc = c.allocate(base + 1, 0);
    assert!(alloc.fetch_blocks.contains(&base), "footprint block 0");
    assert!(
        alloc.fetch_blocks.contains(&(base + 3)),
        "footprint block 3"
    );
    assert!(alloc.fetch_blocks.contains(&(base + 1)), "demand block");
}

#[test]
fn eviction_reports_dirty_blocks() {
    let mut c = cache();
    let base = 9u64 << 6;
    c.allocate(base, 0);
    c.write_data(base, 0, true);
    c.write_data(base + 5, 0, true);
    c.write_data(base + 6, 0, false);
    let mut victim_dirty = Vec::new();
    for k in 1..=4u64 {
        let a = c.allocate((9 + 256 * k) << 6, 0);
        victim_dirty.extend(a.victim_dirty_blocks);
    }
    assert_eq!(victim_dirty, vec![base, base + 5]);
}

#[test]
fn tag_cache_miss_costs_metadata_cas() {
    let mut c = cache();
    let p1 = c.probe_metadata(0x40, 0);
    assert!(!p1.tag_cache_hit);
    assert_eq!(p1.metadata_cas, 1);
    assert!(p1.resolved_at > 5, "metadata read takes DRAM latency");
    let p2 = c.probe_metadata(0x40, p1.resolved_at);
    assert!(p2.tag_cache_hit);
    assert_eq!(p2.metadata_cas, 0);
    assert_eq!(p2.resolved_at, p1.resolved_at + 5);
}

#[test]
fn no_tag_cache_always_reads_metadata() {
    let mut c = SectoredDramCache::new(4 << 20, 4096, 4, DramConfig::hbm_102(), 4000.0, false);
    let p = c.probe_metadata(0x40, 0);
    assert_eq!(p.metadata_cas, 1);
    let p = c.probe_metadata(0x40, p.resolved_at);
    assert_eq!(
        p.metadata_cas, 1,
        "every probe reads metadata without a tag cache"
    );
}

#[test]
fn flush_set_returns_dirty_blocks() {
    let mut c = cache();
    let base = 11u64 << 6; // sector 11 -> set 11
    c.allocate(base, 0);
    c.write_data(base + 2, 0, true);
    let dirty = c.flush_set(11);
    assert_eq!(dirty, vec![base + 2]);
    assert_eq!(c.state(base + 2), BlockState::Miss);
}

#[test]
fn write_data_to_absent_sector_refuses() {
    let mut c = cache();
    assert!(!c.write_data(0x9999, 0, true));
}
