//! Sectored (sub-blocked) die-stacked DRAM cache.
//!
//! Allocation unit: a multi-kilobyte *sector* of contiguous 64-byte blocks.
//! Only demanded (plus footprint-predicted) blocks are fetched, so the main
//! memory sees block-grain traffic while the tag store stays small. Sector
//! metadata lives in the cache DRAM itself; an SRAM [`TagCache`] absorbs
//! most metadata reads. Replacement is single-bit NRU, as in the paper.

use super::tag_cache::TagCache;
use crate::cache::{ReplacementKind, SetAssocCache, Slot};
use crate::clock::Cycle;
use crate::dram::{DramConfig, DramModule};
use crate::prefetch::FootprintPredictor;
use crate::BLOCK_BYTES;

/// Presence/dirtiness of one block in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Block absent (sector absent, or sector present without this block).
    Miss,
    /// Block present and clean.
    CleanHit,
    /// Block present and dirty.
    DirtyHit,
}

/// Per-sector payload: valid/dirty bits plus the footprint observed during
/// this residency.
#[derive(Debug, Clone, Copy, Default)]
struct Sector {
    valid: u64,
    dirty: u64,
    used: u64,
}

/// Result of allocating a sector for a demand miss.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Block addresses the footprint prefetcher wants fetched from main
    /// memory and filled (includes the demanded block).
    pub fetch_blocks: Vec<u64>,
    /// Dirty blocks of the evicted victim sector, which must be read from
    /// the cache array and written to main memory.
    pub victim_dirty_blocks: Vec<u64>,
}

/// Outcome of a metadata probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetadataProbe {
    /// Cycle at which the block's hit/miss state is known.
    pub resolved_at: Cycle,
    /// Whether the tag cache (if any) hit.
    pub tag_cache_hit: bool,
    /// Metadata CAS operations this probe cost on the cache DRAM.
    pub metadata_cas: u32,
}

/// The sectored DRAM cache.
#[derive(Debug, Clone)]
pub struct SectoredDramCache {
    dir: SetAssocCache<Sector>,
    dram: DramModule,
    tag_cache: Option<TagCache>,
    footprint: FootprintPredictor,
    blocks_per_sector: u32,
    sector_shift: u32,
    /// Synthetic address region for metadata blocks, disjoint from data.
    meta_base: u64,
    /// One-entry memo of the most recent directory probe, so the
    /// probe → state → data sequence of a single access resolves the
    /// directory once. Reset whenever directory lines move (sector
    /// allocation, set flush); peeks and in-place payload updates keep
    /// slots stable.
    probe_slot: Option<(u64, Slot)>,
}

impl SectoredDramCache {
    /// Creates a sectored cache.
    ///
    /// * `capacity_bytes` — total data capacity.
    /// * `sector_bytes` — allocation unit (power of two, 512 B .. 4 KB).
    /// * `ways` — associativity.
    /// * `dram` — the cache array's device configuration.
    /// * `with_tag_cache` — model the SRAM tag cache (the optimized
    ///   baseline) or force every probe to DRAM metadata.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the geometry is degenerate.
    pub fn new(
        capacity_bytes: u64,
        sector_bytes: u64,
        ways: usize,
        dram: DramConfig,
        cpu_mhz: f64,
        with_tag_cache: bool,
    ) -> Self {
        assert!(sector_bytes.is_power_of_two() && sector_bytes >= BLOCK_BYTES);
        assert!(
            capacity_bytes.is_power_of_two(),
            "capacity must be a power of two"
        );
        let blocks_per_sector = (sector_bytes / BLOCK_BYTES) as u32;
        assert!(
            blocks_per_sector <= 64,
            "sector footprint must fit a 64-bit vector"
        );
        let sectors = capacity_bytes / sector_bytes;
        let sets = sectors / ways as u64;
        assert!(
            sets > 0,
            "capacity too small for the given sector size and ways"
        );
        // SRAM helper structures scale with capacity so their coverage
        // ratios stay in the paper's regime (32K tag-cache entries against
        // the 1M sectors of a 4 GB cache; our synthetic clones have less
        // sector locality than SPEC, so the tag cache gets 1/16 coverage).
        let tag_entries = (sectors / 8).next_power_of_two().max(512);
        let footprint_entries = (sectors / 16).next_power_of_two().max(1024);
        Self {
            dir: SetAssocCache::new(sets, ways, ReplacementKind::Nru),
            dram: DramModule::new(dram, cpu_mhz),
            tag_cache: with_tag_cache.then(|| TagCache::new(tag_entries, 4, 5)),
            footprint: FootprintPredictor::new(footprint_entries, blocks_per_sector),
            blocks_per_sector,
            sector_shift: blocks_per_sector.trailing_zeros(),
            meta_base: 1 << 44,
            probe_slot: None,
        }
    }

    /// The memoized slot for `sector`, if the last probe resolved it.
    #[inline]
    fn memo_slot(&self, sector: u64) -> Option<Slot> {
        match self.probe_slot {
            Some((s, slot)) if s == sector => Some(slot),
            _ => None,
        }
    }

    /// Resolves `sector`'s directory slot, consulting and refreshing the
    /// memo (no replacement-state or counter side effects).
    #[inline]
    fn resolve_slot(&mut self, sector: u64) -> Option<Slot> {
        if let Some(slot) = self.memo_slot(sector) {
            return Some(slot);
        }
        let slot = self.dir.peek_slot(sector)?;
        self.probe_slot = Some((sector, slot));
        Some(slot)
    }

    /// Blocks per sector.
    pub fn blocks_per_sector(&self) -> u32 {
        self.blocks_per_sector
    }

    /// Number of directory sets (for BATMAN's set disabling).
    pub fn sets(&self) -> u64 {
        self.dir.sets()
    }

    /// The cache DRAM array (for bandwidth statistics).
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// Applies a fault-injection schedule to the cache's DRAM channels.
    pub fn apply_faults(&mut self, schedule: &crate::faults::FaultSchedule) {
        self.dram
            .apply_faults(schedule, crate::faults::FaultTarget::Cache);
    }

    /// Flushes buffered DRAM writes (end-of-run accounting).
    pub fn flush(&mut self, now: Cycle) {
        self.dram.flush_writes(now);
    }

    /// The tag cache, if modeled.
    pub fn tag_cache(&self) -> Option<&TagCache> {
        self.tag_cache.as_ref()
    }

    /// Splits a block address into (sector index, offset within sector).
    pub fn sector_of(&self, block: u64) -> (u64, u32) {
        (
            block >> self.sector_shift,
            (block & u64::from(self.blocks_per_sector - 1)) as u32,
        )
    }

    /// Directory set index of a sector.
    pub fn set_of(&self, sector: u64) -> u64 {
        sector % self.dir.sets()
    }

    /// Estimated queueing delay at the cache array.
    pub fn estimated_wait(&self, block: u64, now: Cycle) -> Cycle {
        self.dram.estimated_wait(block, now)
    }

    /// Current presence state of a block (directory only; no timing).
    pub fn state(&self, block: u64) -> BlockState {
        let (sector, off) = self.sector_of(block);
        let payload = match self.memo_slot(sector) {
            Some(slot) => Some(self.dir.slot_payload(slot)),
            None => self.dir.peek(sector),
        };
        match payload {
            Some(s) if s.valid >> off & 1 == 1 => {
                if s.dirty >> off & 1 == 1 {
                    BlockState::DirtyHit
                } else {
                    BlockState::CleanHit
                }
            }
            _ => BlockState::Miss,
        }
    }

    /// Whether the sector containing `block` is resident.
    pub fn sector_present(&self, block: u64) -> bool {
        let (sector, _) = self.sector_of(block);
        self.memo_slot(sector).is_some() || self.dir.contains(sector)
    }

    /// Resolves the block's metadata: tag-cache probe, falling back to a
    /// metadata read from the cache DRAM. Marks the directory access for
    /// replacement.
    pub fn probe_metadata(&mut self, block: u64, now: Cycle) -> MetadataProbe {
        let (sector, _) = self.sector_of(block);
        // Touch the directory for NRU state; remember the hit slot so the
        // rest of this access skips repeated tag scans.
        self.probe_slot = self.dir.lookup_slot(sector).map(|slot| (sector, slot));
        let meta_block = self.meta_block(sector);
        let writeback_block = self.meta_base + 1;
        match &mut self.tag_cache {
            Some(tc) => {
                let p = tc.probe(sector);
                if p.hit {
                    MetadataProbe {
                        resolved_at: now + tc.latency(),
                        tag_cache_hit: true,
                        metadata_cas: 0,
                    }
                } else {
                    let mut cas = 1u32;
                    let lat = tc.latency();
                    let done = self.dram.read_block(meta_block, now + lat);
                    if p.writeback_needed {
                        self.dram.write_block(writeback_block, now);
                        cas += 1;
                    }
                    MetadataProbe {
                        resolved_at: done,
                        tag_cache_hit: false,
                        metadata_cas: cas,
                    }
                }
            }
            None => {
                let done = self.dram.read_block(meta_block, now);
                MetadataProbe {
                    resolved_at: done,
                    tag_cache_hit: true,
                    metadata_cas: 1,
                }
            }
        }
    }

    fn meta_block(&self, sector: u64) -> u64 {
        self.meta_base + sector
    }

    /// Reads a resident block's data from the cache array; returns the
    /// completion cycle and records footprint usage.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the block is not resident.
    pub fn read_data(&mut self, block: u64, now: Cycle) -> Cycle {
        debug_assert!(
            self.state(block) != BlockState::Miss,
            "read_data needs a resident block"
        );
        let (sector, off) = self.sector_of(block);
        if let Some(slot) = self.resolve_slot(sector) {
            self.dir.slot_payload_mut(slot).used |= 1 << off;
        }
        self.dram.read_block(block, now)
    }

    /// Writes a block into a *resident* sector (demand write or fill).
    /// Returns false if the sector is absent (caller must allocate or
    /// route the write to main memory).
    pub fn write_data(&mut self, block: u64, now: Cycle, dirty: bool) -> bool {
        let (sector, off) = self.sector_of(block);
        let Some(slot) = self.resolve_slot(sector) else {
            return false;
        };
        let s = self.dir.slot_payload_mut(slot);
        s.valid |= 1 << off;
        if dirty {
            // Demand writes count toward the footprint; clean fills do not
            // (otherwise every filled block would look used and the
            // footprint would grow monotonically).
            s.used |= 1 << off;
            s.dirty |= 1 << off;
        }
        if let Some(tc) = &mut self.tag_cache {
            tc.mark_dirty(sector);
        }
        self.dram.write_block(block, now);
        true
    }

    /// Invalidates one block (write bypass of a resident block).
    pub fn invalidate_block(&mut self, block: u64) {
        let (sector, off) = self.sector_of(block);
        if let Some(slot) = self.resolve_slot(sector) {
            let s = self.dir.slot_payload_mut(slot);
            s.valid &= !(1 << off);
            s.dirty &= !(1 << off);
        }
        if let Some(tc) = &mut self.tag_cache {
            tc.mark_dirty(sector);
        }
    }

    /// Allocates the sector for a demand miss to `block`: picks a victim,
    /// returns the footprint-predicted blocks to fetch and the victim's
    /// dirty blocks to evict. The caller performs the fetches (main-memory
    /// reads + [`Self::write_data`] fills) and eviction traffic.
    pub fn allocate(&mut self, block: u64, _now: Cycle) -> Allocation {
        let (sector, off) = self.sector_of(block);
        let predicted = self.footprint.predict(sector, off);
        let ev = self.dir.insert(sector, Sector::default(), false);
        // The insert may have moved lines; drop the memo and let the next
        // probe re-resolve.
        self.probe_slot = None;
        let mut out = Allocation::default();
        if let Some(ev) = ev {
            self.footprint.record(ev.key, ev.payload.used);
            let base = ev.key << self.sector_shift;
            for i in 0..self.blocks_per_sector {
                if ev.payload.dirty >> i & 1 == 1 {
                    out.victim_dirty_blocks.push(base + u64::from(i));
                }
            }
        }
        let base = sector << self.sector_shift;
        for i in 0..self.blocks_per_sector {
            if predicted >> i & 1 == 1 {
                out.fetch_blocks.push(base + u64::from(i));
            }
        }
        if let Some(tc) = &mut self.tag_cache {
            tc.mark_dirty(sector);
        }
        out
    }

    /// Flushes a directory set (BATMAN's set disabling); returns the dirty
    /// block addresses that must be written to main memory.
    pub fn flush_set(&mut self, set: u64) -> Vec<u64> {
        self.probe_slot = None;
        let mut out = Vec::new();
        for ev in self.dir.invalidate_set(set) {
            self.footprint.record(ev.key, ev.payload.used);
            let base = ev.key << self.sector_shift;
            for i in 0..self.blocks_per_sector {
                if ev.payload.dirty >> i & 1 == 1 {
                    out.push(base + u64::from(i));
                }
            }
        }
        out
    }

    /// Performs the DRAM-side read of an evicted dirty block (the caller
    /// then writes it to main memory). Fire-and-forget for timing.
    pub fn read_for_eviction(&mut self, block: u64, now: Cycle) -> Cycle {
        self.dram.read_block(block, now)
    }

    /// Cleans a sector in place: clears its dirty bits and returns the
    /// block addresses that were dirty (the caller reads them from the
    /// array and writes them to main memory). Used by SBD's Dirty List
    /// evictions. Returns an empty list if the sector is absent.
    pub fn clean_sector(&mut self, sector: u64) -> Vec<u64> {
        let shift = self.sector_shift;
        let blocks = self.blocks_per_sector;
        let Some(s) = self.dir.peek_mut(sector) else {
            return Vec::new();
        };
        let dirty = std::mem::take(&mut s.dirty);
        let base = sector << shift;
        (0..blocks)
            .filter(|i| dirty >> i & 1 == 1)
            .map(|i| base + u64::from(i))
            .collect()
    }
}

#[cfg(test)]
#[path = "sectored_tests.rs"]
mod tests;
