//! Sectored eDRAM memory-side cache (Section VI-C).
//!
//! Unlike the die-stacked DRAM caches, eDRAM caches keep all metadata in
//! on-die SRAM (eight-cycle lookup, no metadata bandwidth) and expose *two
//! independent channel sets*: reads are served by the read channels while
//! fills and demand writes ride the write channels — so read-miss fills do
//! not steal read bandwidth. Sector size is 1 KB, associativity 16.

use super::sectored::BlockState;
use crate::cache::{Eviction, ReplacementKind, SetAssocCache};
use crate::clock::Cycle;
use crate::dram::{DramConfig, DramModule};
use crate::prefetch::FootprintPredictor;
use crate::BLOCK_BYTES;

/// Per-sector payload (same encoding as the DRAM-cache sectors).
#[derive(Debug, Clone, Copy, Default)]
struct Sector {
    valid: u64,
    dirty: u64,
    used: u64,
}

/// Result of allocating a sector.
#[derive(Debug, Clone, Default)]
pub struct EdramAllocation {
    /// Blocks to fetch from main memory and fill via the write channels.
    pub fetch_blocks: Vec<u64>,
    /// Dirty victim blocks: read via the read channels, written to main
    /// memory.
    pub victim_dirty_blocks: Vec<u64>,
}

/// The sectored eDRAM cache.
#[derive(Debug, Clone)]
pub struct EdramCache {
    dir: SetAssocCache<Sector>,
    read_path: DramModule,
    write_path: DramModule,
    footprint: FootprintPredictor,
    blocks_per_sector: u32,
    sector_shift: u32,
    tag_latency: Cycle,
}

impl EdramCache {
    /// Creates an eDRAM cache with the paper's defaults: 1 KB sectors,
    /// 16 ways, eight-cycle on-die tag lookup, separate 51.2 GB/s read and
    /// write channel sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is not a power of two or is too small for
    /// the geometry.
    pub fn new(capacity_bytes: u64, cpu_mhz: f64) -> Self {
        Self::with_geometry(
            capacity_bytes,
            1024,
            16,
            DramConfig::edram_direction(),
            cpu_mhz,
            8,
        )
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`EdramCache::new`]).
    pub fn with_geometry(
        capacity_bytes: u64,
        sector_bytes: u64,
        ways: usize,
        direction: DramConfig,
        cpu_mhz: f64,
        tag_latency: Cycle,
    ) -> Self {
        assert!(sector_bytes.is_power_of_two() && sector_bytes >= BLOCK_BYTES);
        assert!(capacity_bytes.is_power_of_two());
        let blocks_per_sector = (sector_bytes / BLOCK_BYTES) as u32;
        let sets = capacity_bytes / sector_bytes / ways as u64;
        assert!(
            sets > 0,
            "capacity too small for the given sector size and ways"
        );
        Self {
            dir: SetAssocCache::new(sets, ways, ReplacementKind::Nru),
            read_path: DramModule::new(direction.clone(), cpu_mhz),
            write_path: DramModule::new(direction, cpu_mhz),
            footprint: FootprintPredictor::new(64 * 1024, blocks_per_sector),
            blocks_per_sector,
            sector_shift: blocks_per_sector.trailing_zeros(),
            tag_latency,
        }
    }

    /// Blocks per sector.
    pub fn blocks_per_sector(&self) -> u32 {
        self.blocks_per_sector
    }

    /// On-die tag lookup latency.
    pub fn tag_latency(&self) -> Cycle {
        self.tag_latency
    }

    /// The read-direction channel set (for statistics).
    pub fn read_path(&self) -> &DramModule {
        &self.read_path
    }

    /// The write-direction channel set (for statistics).
    pub fn write_path(&self) -> &DramModule {
        &self.write_path
    }

    /// Flushes buffered writes on both paths.
    pub fn flush(&mut self, now: Cycle) {
        self.read_path.flush_writes(now);
        self.write_path.flush_writes(now);
    }

    /// Applies a fault-injection schedule to both directions' channels
    /// (a cache-targeted channel fault hits the same channel index in
    /// each direction).
    pub fn apply_faults(&mut self, schedule: &crate::faults::FaultSchedule) {
        self.read_path
            .apply_faults(schedule, crate::faults::FaultTarget::Cache);
        self.write_path
            .apply_faults(schedule, crate::faults::FaultTarget::Cache);
    }

    /// Splits a block address into (sector, offset).
    pub fn sector_of(&self, block: u64) -> (u64, u32) {
        (
            block >> self.sector_shift,
            (block & u64::from(self.blocks_per_sector - 1)) as u32,
        )
    }

    /// Estimated queueing delay on the read channels.
    pub fn estimated_read_wait(&self, block: u64, now: Cycle) -> Cycle {
        self.read_path.estimated_wait(block, now)
    }

    /// Whether the sector containing `block` is resident.
    pub fn sector_present(&self, block: u64) -> bool {
        let (sector, _) = self.sector_of(block);
        self.dir.contains(sector)
    }

    /// Presence state of a block (known after the on-die tag lookup).
    pub fn state(&self, block: u64) -> BlockState {
        let (sector, off) = self.sector_of(block);
        match self.dir.peek(sector) {
            Some(s) if s.valid >> off & 1 == 1 => {
                if s.dirty >> off & 1 == 1 {
                    BlockState::DirtyHit
                } else {
                    BlockState::CleanHit
                }
            }
            _ => BlockState::Miss,
        }
    }

    /// Touches the directory for replacement (call once per demand access).
    pub fn touch(&mut self, block: u64) {
        let (sector, _) = self.sector_of(block);
        let _ = self.dir.lookup(sector);
    }

    /// Reads a resident block via the read channels.
    pub fn read_data(&mut self, block: u64, now: Cycle) -> Cycle {
        let (sector, off) = self.sector_of(block);
        if let Some(s) = self.dir.peek_mut(sector) {
            s.used |= 1 << off;
        }
        self.read_path.read_block(block, now + self.tag_latency)
    }

    /// Writes a block (fill or demand write) via the write channels into a
    /// resident sector. Returns false if the sector is absent.
    pub fn write_data(&mut self, block: u64, now: Cycle, dirty: bool) -> bool {
        let (sector, off) = self.sector_of(block);
        let Some(s) = self.dir.peek_mut(sector) else {
            return false;
        };
        s.valid |= 1 << off;
        if dirty {
            s.used |= 1 << off;
            s.dirty |= 1 << off;
        }
        self.write_path.write_block(block, now);
        true
    }

    /// Invalidates one block (write bypass).
    pub fn invalidate_block(&mut self, block: u64) {
        let (sector, off) = self.sector_of(block);
        if let Some(s) = self.dir.peek_mut(sector) {
            s.valid &= !(1 << off);
            s.dirty &= !(1 << off);
        }
    }

    /// Allocates a sector for a demand miss; see
    /// [`SectoredDramCache::allocate`](super::SectoredDramCache::allocate).
    pub fn allocate(&mut self, block: u64, _now: Cycle) -> EdramAllocation {
        let (sector, off) = self.sector_of(block);
        let predicted = self.footprint.predict(sector, off);
        let ev: Option<Eviction<Sector>> = self.dir.insert(sector, Sector::default(), false);
        let mut out = EdramAllocation::default();
        if let Some(ev) = ev {
            self.footprint.record(ev.key, ev.payload.used);
            let base = ev.key << self.sector_shift;
            for i in 0..self.blocks_per_sector {
                if ev.payload.dirty >> i & 1 == 1 {
                    out.victim_dirty_blocks.push(base + u64::from(i));
                }
            }
        }
        let base = sector << self.sector_shift;
        for i in 0..self.blocks_per_sector {
            if predicted >> i & 1 == 1 {
                out.fetch_blocks.push(base + u64::from(i));
            }
        }
        out
    }

    /// Reads an evicted dirty block via the read channels.
    pub fn read_for_eviction(&mut self, block: u64, now: Cycle) -> Cycle {
        self.read_path.read_block(block, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> EdramCache {
        EdramCache::new(1 << 20, 4000.0) // 1 MB: 64 sets x 16 ways x 1 KB
    }

    #[test]
    fn geometry() {
        let c = cache();
        assert_eq!(c.blocks_per_sector(), 16);
        assert_eq!(c.tag_latency(), 8);
        let (sector, off) = c.sector_of(16 * 3 + 5);
        assert_eq!((sector, off), (3, 5));
    }

    #[test]
    fn fills_use_write_path_reads_use_read_path() {
        let mut c = cache();
        c.allocate(0, 0);
        c.write_data(0, 0, false);
        c.flush(0);
        assert_eq!(c.write_path().stats().cas_writes, 1);
        assert_eq!(c.read_path().stats().cas_total(), 0);
        let done = c.read_data(0, 100);
        assert!(done > 100);
        assert_eq!(c.read_path().stats().cas_reads, 1);
    }

    #[test]
    fn read_includes_tag_latency() {
        let mut c = cache();
        c.allocate(0, 0);
        c.write_data(0, 0, false);
        let mut reference = DramModule::new(DramConfig::edram_direction(), 4000.0);
        let raw = reference.read_block(0, 1000);
        let with_tags = c.read_data(0, 1000);
        assert_eq!(with_tags, raw + 8);
    }

    #[test]
    fn state_transitions() {
        let mut c = cache();
        assert_eq!(c.state(5), BlockState::Miss);
        c.allocate(5, 0);
        c.write_data(5, 0, false);
        assert_eq!(c.state(5), BlockState::CleanHit);
        c.write_data(5, 0, true);
        assert_eq!(c.state(5), BlockState::DirtyHit);
        c.invalidate_block(5);
        assert_eq!(c.state(5), BlockState::Miss);
    }

    #[test]
    fn eviction_reports_dirty_victims() {
        let mut c = cache();
        let sets = 64u64;
        let base = 2 << 4; // sector 2, set 2
        c.allocate(base, 0);
        c.write_data(base + 1, 0, true);
        let mut dirty = Vec::new();
        // 16 ways: insert 16 conflicting sectors to evict sector 2.
        for k in 1..=16u64 {
            let a = c.allocate((2 + sets * k) << 4, 0);
            dirty.extend(a.victim_dirty_blocks);
        }
        assert_eq!(dirty, vec![base + 1]);
    }
}
