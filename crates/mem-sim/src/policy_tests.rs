//! Unit tests for the `policy` module (kept in a sibling file to keep
//! the module under the size ceiling).

use super::*;

#[test]
fn baseline_never_partitions() {
    let mut p = NoPartitioning;
    let ctx = ReadContext {
        block: 0,
        core: 0,
        now: 0,
        cache_wait: 1000,
        mm_wait: 0,
    };
    assert_eq!(p.route_read(&ctx), ReadRoute::Lookup);
    assert!(!p.force_clean_hit(&ctx));
    assert_eq!(p.route_write(0, 0, true), WriteRoute::Cache);
    assert!(p.allow_fill(0, 0));
    assert!(p.set_enabled(0, 0));
    assert!(p.dap_decisions().is_none());
}

fn pressured_dap(config: DapConfig) -> DapPolicy {
    let mut p = DapPolicy::new(config);
    // Replay a heavily pressured window through the observation hooks.
    for _ in 0..60 {
        p.observe(Observation::CacheAccess { write: false }, 0);
    }
    p.observe(Observation::MmAccess, 0);
    for _ in 0..10 {
        p.observe(Observation::ReadMiss, 0);
    }
    for _ in 0..2 {
        p.observe(Observation::WriteDemand, 0);
    }
    for _ in 0..20 {
        p.observe(Observation::CleanHit, 0);
    }
    p.tick(64);
    p
}

#[test]
fn dap_spends_fwb_credits_on_fills() {
    let mut p = pressured_dap(DapConfig::hbm_ddr4());
    assert!(!p.allow_fill(0, 64), "first fill should be bypassed");
    let d = p.dap_decisions().unwrap();
    assert_eq!(d.fwb, 1);
}

#[test]
fn dap_forces_clean_hits_under_pressure() {
    let mut p = pressured_dap(DapConfig::hbm_ddr4());
    let ctx = ReadContext {
        block: 0,
        core: 0,
        now: 64,
        cache_wait: 0,
        mm_wait: 0,
    };
    let mut forced = 0;
    for _ in 0..100 {
        if p.force_clean_hit(&ctx) {
            forced += 1;
        }
    }
    assert!(forced > 0, "IFRM credits should exist");
    assert!(forced < 100, "credits must run out");
}

#[test]
fn dap_sfrm_disabled_for_edram() {
    let mut p = pressured_dap(DapConfig::edram_ddr4());
    let ctx = ReadContext {
        block: 0,
        core: 0,
        now: 64,
        cache_wait: 0,
        mm_wait: 0,
    };
    assert_eq!(p.route_read(&ctx), ReadRoute::Lookup);
}

#[test]
fn dap_write_bypass_only_on_hits() {
    let mut p = pressured_dap(DapConfig::hbm_ddr4());
    assert_eq!(
        p.route_write(0, 64, false),
        WriteRoute::Cache,
        "miss: no WB"
    );
    assert_eq!(p.route_write(0, 64, true), WriteRoute::MainMemory);
}

#[test]
fn thread_aware_ranks_by_demand_rate() {
    let mut p = ThreadAwareDap::new(DapConfig::hbm_ddr4(), 4);
    // Cores 0 and 1 issue 10x the demand of cores 2 and 3.
    let mk = |core| ReadContext {
        block: 0,
        core,
        now: 0,
        cache_wait: 0,
        mm_wait: 0,
    };
    for _ in 0..2000 {
        for core in [0usize, 1] {
            for _ in 0..10 {
                let _ = p.route_read(&mk(core));
            }
        }
        let _ = p.route_read(&mk(2));
        let _ = p.route_read(&mk(3));
    }
    assert!(p.is_busy(0) && p.is_busy(1));
    assert!(!p.is_busy(2) && !p.is_busy(3));
}

#[test]
fn thread_aware_reserves_last_credits_for_busy_cores() {
    let mut p = ThreadAwareDap::new(DapConfig::hbm_ddr4(), 2);
    // Make core 0 busy, core 1 quiet.
    let mk = |core| ReadContext {
        block: 0,
        core,
        now: 0,
        cache_wait: 0,
        mm_wait: 0,
    };
    for _ in 0..5000 {
        let _ = p.route_read(&mk(0));
        if p.epoch_total.is_multiple_of(16) {
            let _ = p.route_read(&mk(1));
        }
    }
    assert!(p.is_busy(0) && !p.is_busy(1));
    // Load an IFRM budget via a pressured window (idle main memory and
    // no writes, so the whole MM headroom goes to IFRM).
    for _ in 0..60 {
        p.observe(Observation::CacheAccess { write: false }, 0);
    }
    for _ in 0..3 {
        p.observe(Observation::ReadMiss, 0);
    }
    for _ in 0..50 {
        p.observe(Observation::CleanHit, 0);
    }
    p.tick(64);
    // Drain credits below the reserve threshold as the busy core.
    let mut forced = 0;
    while p
        .inner
        .controller()
        .credits_remaining(Technique::InformedForcedReadMiss)
        > 4
    {
        if p.force_clean_hit(&mk(0)) {
            forced += 1;
        } else {
            break;
        }
    }
    assert!(forced > 0, "busy core must get forced misses");
    // With only the reserve left, the quiet core is refused...
    assert!(
        !p.force_clean_hit(&mk(1)),
        "quiet core must keep its hit latency"
    );
    // ...while the busy core may still spend the reserve.
    assert!(p.force_clean_hit(&mk(0)));
}

#[test]
fn dap_alloy_write_through() {
    // Moderate pressure with main-memory headroom left after IFRM: the
    // Alloy variant should mirror some writes to keep blocks clean.
    let mut p = DapPolicy::new(DapConfig::alloy_hbm_ddr4());
    for _ in 0..30 {
        p.observe(Observation::CacheAccess { write: false }, 0);
    }
    p.observe(Observation::MmAccess, 0);
    for _ in 0..10 {
        p.observe(Observation::WriteDemand, 0);
    }
    for _ in 0..3 {
        p.observe(Observation::CleanHit, 0);
    }
    p.tick(64);
    let mut both = 0;
    for _ in 0..20 {
        if p.route_write(0, 64, true) == WriteRoute::Both {
            both += 1;
        }
    }
    assert!(both > 0, "write-through credits should exist");
    assert!(both < 20, "write-through credits must run out");
}
