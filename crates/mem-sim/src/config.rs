//! System configuration presets.
//!
//! Capacity note: the paper simulates 1-billion-instruction SPEC snippets
//! against multi-gigabyte caches. This reproduction runs scaled-down
//! snippets, so the preset capacities (and the shared L3) are the paper's divided by
//! [`CAPACITY_SCALE`] — workload footprints (in the `workloads` crate) are
//! scaled by the same factor, preserving every capacity ratio and hence the
//! hit-rate and bandwidth behaviour the experiments measure.

use crate::dram::DramConfig;

/// Paper capacity / modeled capacity (workload footprints shrink equally).
pub const CAPACITY_SCALE: u64 = 64;

/// Which memory-side cache the system has.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheKind {
    /// No memory-side cache: L3 misses go straight to main memory.
    None,
    /// Sectored DRAM cache (Section VI-A).
    Sectored {
        /// Data capacity in bytes (already scaled).
        capacity_bytes: u64,
        /// Sector size in bytes.
        sector_bytes: u64,
        /// Associativity.
        ways: usize,
        /// The cache DRAM array.
        dram: DramConfig,
        /// Model the SRAM tag cache (the optimized baseline).
        tag_cache: bool,
    },
    /// Alloy cache (Section VI-B).
    Alloy {
        /// Data capacity in bytes (already scaled).
        capacity_bytes: u64,
        /// The cache DRAM array.
        dram: DramConfig,
        /// Enable the BEAR optimizations.
        bear: bool,
    },
    /// OS-visible flat two-tier memory (the paper's sketched extension):
    /// the fast memory is not a cache — pages live in one tier and an
    /// epoch migrator places them.
    FlatTier {
        /// Fast-tier capacity in bytes (already scaled).
        capacity_bytes: u64,
        /// The fast tier's device.
        dram: DramConfig,
        /// What the migrator optimizes.
        goal: crate::mscache::PlacementGoal,
    },
    /// Sectored eDRAM cache with split channels (Section VI-C).
    Edram {
        /// Data capacity in bytes (already scaled).
        capacity_bytes: u64,
        /// Sector size in bytes.
        sector_bytes: u64,
        /// Associativity.
        ways: usize,
        /// One direction's channel set.
        direction: DramConfig,
    },
}

impl CacheKind {
    /// Peak data bandwidth of the cache in GB/s (per direction for eDRAM),
    /// or `None` when there is no cache.
    pub fn peak_gbps(&self) -> Option<f64> {
        match self {
            CacheKind::None => None,
            CacheKind::Sectored { dram, .. }
            | CacheKind::Alloy { dram, .. }
            | CacheKind::FlatTier { dram, .. } => Some(dram.peak_gbps()),
            CacheKind::Edram { direction, .. } => Some(direction.peak_gbps()),
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// CPU clock in MHz.
    pub cpu_mhz: f64,
    /// Issue/retire width.
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Private L1D: (sets, ways, latency).
    pub l1: (u64, usize, u64),
    /// Private L2: (sets, ways, latency).
    pub l2: (u64, usize, u64),
    /// Shared L3: (sets, ways, latency).
    pub l3: (u64, usize, u64),
    /// Stride-prefetch degree (0 disables).
    pub prefetch_degree: u32,
    /// Main memory device.
    pub mm: DramConfig,
    /// Memory-side cache.
    pub cache: CacheKind,
    /// Injected fault schedule (`None` for fault-free runs).
    pub faults: Option<crate::faults::FaultSchedule>,
}

impl SystemConfig {
    /// The paper's default eight-core system with a 4 GB (scaled) sectored
    /// HBM DRAM cache and dual-channel DDR4-2400.
    pub fn sectored_dram_cache(cores: usize) -> Self {
        Self {
            cores,
            cpu_mhz: 4000.0,
            width: 4,
            rob: 224,
            l1: (64, 8, 3),
            l2: (512, 8, 11),
            l3: (2048, 16, 20), // 8 MB / 4: L3 shrinks with the scaled footprints
            prefetch_degree: 2,
            mm: DramConfig::ddr4_2400(),
            cache: CacheKind::Sectored {
                capacity_bytes: (4 << 30) / CAPACITY_SCALE,
                sector_bytes: 4096,
                ways: 4,
                dram: DramConfig::hbm_102(),
                tag_cache: true,
            },
            faults: None,
        }
    }

    /// The Alloy-cache system (same platform, direct-mapped TAD cache).
    pub fn alloy_cache(cores: usize) -> Self {
        Self {
            cache: CacheKind::Alloy {
                capacity_bytes: (4 << 30) / CAPACITY_SCALE,
                dram: DramConfig::hbm_102(),
                bear: false,
            },
            ..Self::sectored_dram_cache(cores)
        }
    }

    /// The sectored eDRAM system (scaled, split channels).
    ///
    /// eDRAM capacities scale by `CAPACITY_SCALE / 4`: at the full 64x the
    /// 256 MB part would shrink to 4 MB — barely above the scaled L3 — and
    /// leave no room for the workloads' warm sets, a regime the paper's
    /// eDRAM (32x larger than its L3) is never in.
    pub fn edram_cache(cores: usize, capacity_mb: u64) -> Self {
        Self {
            cache: CacheKind::Edram {
                capacity_bytes: (capacity_mb << 20) / (CAPACITY_SCALE / 4),
                sector_bytes: 1024,
                ways: 16,
                direction: DramConfig::edram_direction(),
            },
            ..Self::sectored_dram_cache(cores)
        }
    }

    /// The OS-visible flat-tier system (extension; same platform as the
    /// sectored default, fast tier managed by page placement).
    pub fn flat_tier(cores: usize, goal: crate::mscache::PlacementGoal) -> Self {
        Self {
            cache: CacheKind::FlatTier {
                capacity_bytes: (4 << 30) / CAPACITY_SCALE,
                dram: DramConfig::hbm_102(),
                goal,
            },
            ..Self::sectored_dram_cache(cores)
        }
    }

    /// A system without a memory-side cache (for alone-IPC baselines of
    /// bandwidth-delivery studies).
    pub fn no_cache(cores: usize) -> Self {
        Self {
            cache: CacheKind::None,
            ..Self::sectored_dram_cache(cores)
        }
    }

    /// Attaches a fault-injection schedule (applied to the DRAM devices
    /// when the system is built).
    pub fn with_faults(mut self, faults: crate::faults::FaultSchedule) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Replaces the main memory device.
    pub fn with_mm(mut self, mm: DramConfig) -> Self {
        self.mm = mm;
        self
    }

    /// Replaces the memory-side cache.
    pub fn with_cache(mut self, cache: CacheKind) -> Self {
        self.cache = cache;
        self
    }

    /// Scales the shared L3 for a different core count (the paper's
    /// 16-core system doubles L3 capacity at constant associativity).
    pub fn with_l3_sets(mut self, sets: u64) -> Self {
        self.l3.0 = sets;
        self
    }

    /// CPU frequency in GHz (convenience for DAP configs).
    pub fn cpu_ghz(&self) -> f64 {
        self.cpu_mhz / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preset_matches_paper_parameters() {
        let c = SystemConfig::sectored_dram_cache(8);
        assert_eq!(c.cores, 8);
        assert_eq!(c.rob, 224);
        assert_eq!(c.width, 4);
        assert_eq!(c.l3, (2048, 16, 20));
        match &c.cache {
            CacheKind::Sectored {
                capacity_bytes,
                sector_bytes,
                ways,
                tag_cache,
                ..
            } => {
                assert_eq!(*capacity_bytes, (4 << 30) / CAPACITY_SCALE);
                assert_eq!(*sector_bytes, 4096);
                assert_eq!(*ways, 4);
                assert!(tag_cache);
            }
            other => panic!("unexpected cache kind {other:?}"),
        }
    }

    #[test]
    fn cache_bandwidths() {
        assert!(
            (SystemConfig::sectored_dram_cache(8)
                .cache
                .peak_gbps()
                .unwrap()
                - 102.4)
                .abs()
                < 1e-9
        );
        assert!((SystemConfig::edram_cache(8, 256).cache.peak_gbps().unwrap() - 51.2).abs() < 1e-9);
        assert!(SystemConfig::no_cache(8).cache.peak_gbps().is_none());
    }

    #[test]
    fn builders_replace_fields() {
        let c = SystemConfig::sectored_dram_cache(8)
            .with_mm(DramConfig::ddr4_3200())
            .with_l3_sets(4096);
        assert_eq!(c.mm.name, "DDR4-3200");
        assert_eq!(c.l3.0, 4096);
        assert!((c.cpu_ghz() - 4.0).abs() < 1e-12);
    }
}
