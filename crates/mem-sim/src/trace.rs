//! Trace sources: the instruction streams that drive the cores.
//!
//! A [`TraceSource`] yields an endless sequence of [`TraceOp`]s — each a
//! burst of non-memory instructions followed by one memory operation. The
//! `workloads` crate provides the paper's benchmark clones; this module
//! defines the interface plus simple deterministic sources used in tests
//! and microbenchmark kernels.

use crate::BLOCK_SHIFT;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A load: blocks retirement until data returns.
    Read,
    /// A store: drains through the store buffer without blocking.
    Write,
}

/// One trace record: `gap` non-memory instructions, then a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Non-memory instructions preceding the access.
    pub gap: u32,
    /// Access kind.
    pub kind: OpKind,
    /// Byte address.
    pub addr: u64,
    /// Synthetic program counter (drives PC-indexed predictors).
    pub pc: u64,
}

impl TraceOp {
    /// The 64-byte block address of this access.
    pub fn block(&self) -> u64 {
        self.addr >> BLOCK_SHIFT
    }
}

/// An endless instruction stream.
pub trait TraceSource {
    /// Produces the next operation. Must be deterministic.
    fn next_op(&mut self) -> TraceOp;
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_op(&mut self) -> TraceOp {
        (**self).next_op()
    }
}

/// A sequential streaming source: walks a buffer block by block, wrapping
/// at the footprint, with a fixed non-memory gap and a deterministic write
/// mix.
#[derive(Debug, Clone)]
pub struct StrideTrace {
    base: u64,
    footprint_bytes: u64,
    gap: u32,
    write_period: u32,
    cursor: u64,
    count: u64,
}

impl StrideTrace {
    /// Creates a streaming source over `[base, base + footprint_bytes)`.
    /// `write_fraction` in `[0, 1)` selects how many accesses are stores
    /// (every `round(1/f)`-th access).
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one block or
    /// `write_fraction` is out of range.
    pub fn new(base: u64, gap: u32, footprint_bytes: u64, write_fraction: f64) -> Self {
        assert!(
            footprint_bytes >= 64,
            "footprint must hold at least one block"
        );
        assert!(
            (0.0..1.0).contains(&write_fraction),
            "write fraction in [0, 1)"
        );
        let write_period = if write_fraction == 0.0 {
            0
        } else {
            (1.0 / write_fraction).round() as u32
        };
        Self {
            base,
            footprint_bytes,
            gap,
            write_period,
            cursor: 0,
            count: 0,
        }
    }
}

impl TraceSource for StrideTrace {
    fn next_op(&mut self) -> TraceOp {
        let addr = self.base + self.cursor;
        self.cursor = (self.cursor + 64) % self.footprint_bytes;
        self.count += 1;
        let kind =
            if self.write_period != 0 && self.count.is_multiple_of(u64::from(self.write_period)) {
                OpKind::Write
            } else {
                OpKind::Read
            };
        TraceOp {
            gap: self.gap,
            kind,
            addr,
            pc: 0x400000,
        }
    }
}

/// A pointer-chase source: serially dependent reads over a pseudo-random
/// permutation (defeats prefetching; models mcf/omnetpp-style behaviour).
/// All accesses are loads with the given gap.
#[derive(Debug, Clone)]
pub struct ChaseTrace {
    base: u64,
    blocks: u64,
    gap: u32,
    state: u64,
}

impl ChaseTrace {
    /// Creates a chase over `footprint_bytes` starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one block.
    pub fn new(base: u64, gap: u32, footprint_bytes: u64) -> Self {
        assert!(footprint_bytes >= 64);
        Self {
            base,
            blocks: footprint_bytes / 64,
            gap,
            state: 0x9E3779B97F4A7C15,
        }
    }
}

impl TraceSource for ChaseTrace {
    fn next_op(&mut self) -> TraceOp {
        // SplitMix64 step: deterministic, uniform, serially dependent.
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let addr = self.base + (z % self.blocks) * 64;
        TraceOp {
            gap: self.gap,
            kind: OpKind::Read,
            addr,
            pc: 0x500000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_walks_sequentially_and_wraps() {
        let mut t = StrideTrace::new(0x1000, 2, 256, 0.0);
        let a: Vec<u64> = (0..5).map(|_| t.next_op().addr).collect();
        assert_eq!(a, vec![0x1000, 0x1040, 0x1080, 0x10C0, 0x1000]);
    }

    #[test]
    fn stride_write_fraction() {
        let mut t = StrideTrace::new(0, 0, 1 << 20, 0.25);
        let writes = (0..100)
            .filter(|_| t.next_op().kind == OpKind::Write)
            .count();
        assert_eq!(writes, 25);
    }

    #[test]
    fn zero_write_fraction_is_read_only() {
        let mut t = StrideTrace::new(0, 0, 1 << 20, 0.0);
        assert!((0..1000).all(|_| t.next_op().kind == OpKind::Read));
    }

    #[test]
    fn chase_stays_in_footprint_and_is_deterministic() {
        let mut a = ChaseTrace::new(0x8000, 1, 1 << 16);
        let mut b = ChaseTrace::new(0x8000, 1, 1 << 16);
        for _ in 0..1000 {
            let (x, y) = (a.next_op(), b.next_op());
            assert_eq!(x, y);
            assert!(x.addr >= 0x8000 && x.addr < 0x8000 + (1 << 16));
        }
    }

    #[test]
    fn block_strips_offset() {
        let op = TraceOp {
            gap: 0,
            kind: OpKind::Read,
            addr: 0x1043,
            pc: 0,
        };
        assert_eq!(op.block(), 0x1043 >> 6);
    }
}
