//! # mem-sim — cycle-approximate multi-core memory-hierarchy simulator
//!
//! The simulation substrate for the DAP reproduction. It models:
//!
//! * trace-driven out-of-order cores (4-wide, 224-entry ROB) whose
//!   memory-level parallelism emerges from the reorder window,
//! * a three-level SRAM cache hierarchy (private L1D/L2, shared L3) with a
//!   multi-stream stride prefetcher,
//! * DDR4 / LPDDR4 / HBM DRAM channel models with banks, row buffers,
//!   burst-occupied data buses, and batched writes,
//! * the three memory-side cache architectures of the paper — sectored
//!   DRAM cache (+SRAM tag cache, footprint prefetcher), Alloy cache
//!   (+dirty-bit cache, hit/miss predictor), and split-channel sectored
//!   eDRAM cache,
//! * a pluggable [`policy::Partitioner`] seam where DAP and the baseline
//!   policies (SBD, BATMAN, ...) steer traffic between the memory-side
//!   cache and main memory.
//!
//! Timing uses a resource-reservation discipline: every DRAM data transfer
//! occupies its channel's bus for the burst duration and its bank for the
//! row-activation window, so bandwidth saturation and queueing delay — the
//! two phenomena DAP exploits — are modeled faithfully, while the simulator
//! stays fast enough to sweep the paper's 44-workload evaluation.
//!
//! ```
//! use mem_sim::{System, SystemConfig};
//! use mem_sim::trace::{StrideTrace, TraceSource};
//!
//! let config = SystemConfig::sectored_dram_cache(1);
//! let traces: Vec<Box<dyn TraceSource>> =
//!     vec![Box::new(StrideTrace::new(0x1000_0000, 64, 1 << 22, 0.1))];
//! let mut system = System::new(config, traces);
//! let result = system.run(10_000);
//! assert_eq!(result.per_core[0].instructions, 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod config;
pub mod core_model;
pub mod dram;
pub mod faults;
pub mod hash;
pub mod interrupt;
pub mod mscache;
pub mod policy;
pub mod prefetch;
pub mod profile;
pub mod stats;
pub mod system;
pub mod telemetry;
pub mod trace;

pub use config::{CacheKind, SystemConfig, CAPACITY_SCALE};
pub use faults::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
pub use interrupt::{RunInterrupted, ScopedStop, StopCause};
pub use policy::{
    DapPolicy, NoPartitioning, Observation, Partitioner, ReadContext, ReadRoute, ThreadAwareDap,
    WriteRoute,
};
pub use profile::{AccessProfiler, PhaseSample};
pub use stats::{CoreResult, RunResult, SimStats};
pub use system::{KernelStats, MemAccessKind, MemorySubsystem, System};
pub use telemetry::SubsystemTelemetry;

/// Block size used throughout the hierarchy (bytes).
pub const BLOCK_BYTES: u64 = 64;
/// log2 of the block size.
pub const BLOCK_SHIFT: u32 = 6;
