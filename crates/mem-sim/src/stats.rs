//! Simulation statistics.

use crate::clock::Cycle;

/// Aggregate counters collected by a [`System`](crate::System) run.
///
/// CAS counters count 64-byte data transfers at each memory, which is what
/// the paper's Fig. 8/14 "CAS fraction" plots report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Demand reads arriving at the memory subsystem (L3 read misses).
    pub demand_reads: u64,
    /// Demand writes arriving at the memory subsystem (L3 dirty evictions).
    pub demand_writes: u64,
    /// Reads that hit the memory-side cache.
    pub ms_read_hits: u64,
    /// Reads that missed the memory-side cache.
    pub ms_read_misses: u64,
    /// Writes that hit the memory-side cache.
    pub ms_write_hits: u64,
    /// Writes that missed the memory-side cache.
    pub ms_write_misses: u64,
    /// Data CAS operations served by the memory-side cache (including fills,
    /// metadata, and dirty-eviction reads).
    pub ms_cas: u64,
    /// Data CAS operations served by main memory.
    pub mm_cas: u64,
    /// Fills written into the memory-side cache.
    pub fills: u64,
    /// Fills dropped by fill write bypass.
    pub fills_bypassed: u64,
    /// Writes steered to main memory by write bypass.
    pub writes_bypassed: u64,
    /// Clean hits served from main memory by IFRM.
    pub forced_read_misses: u64,
    /// Reads sent speculatively to main memory by SFRM.
    pub speculative_forced: u64,
    /// SFRM reads that turned out dirty in the cache (wasted MM bandwidth).
    pub speculative_wasted: u64,
    /// Writes mirrored to main memory (Alloy write-through).
    pub write_throughs: u64,
    /// Dirty blocks evicted from the memory-side cache to main memory.
    pub ms_dirty_evictions: u64,
    /// Tag-cache lookups (sectored DRAM cache only).
    pub tag_cache_lookups: u64,
    /// Tag-cache misses.
    pub tag_cache_misses: u64,
    /// Metadata CAS operations to the cache DRAM array.
    pub metadata_cas: u64,
    /// Blocks prefetched into the memory-side cache by the footprint
    /// prefetcher.
    pub footprint_prefetches: u64,
    /// Total L3 accesses (for MPKI).
    pub l3_accesses: u64,
    /// Total L3 misses.
    pub l3_misses: u64,
    /// Sum of L3 read-miss latencies (for the paper's Fig. 6 bottom panel).
    pub read_latency_sum: u64,
    /// Number of latencies accumulated in `read_latency_sum`.
    pub read_latency_count: u64,
}

impl SimStats {
    /// Memory-side cache hit ratio over reads and writes combined.
    pub fn ms_hit_ratio(&self) -> f64 {
        let hits = self.ms_read_hits + self.ms_write_hits;
        let total = hits + self.ms_read_misses + self.ms_write_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Read-only hit ratio of the memory-side cache.
    pub fn ms_read_hit_ratio(&self) -> f64 {
        let total = self.ms_read_hits + self.ms_read_misses;
        if total == 0 {
            0.0
        } else {
            self.ms_read_hits as f64 / total as f64
        }
    }

    /// Fraction of all data CAS operations served by main memory —
    /// the paper's Fig. 8 metric; optimal is `B_MM / (B_MM + B_MS$)`.
    pub fn mm_cas_fraction(&self) -> f64 {
        let total = self.ms_cas + self.mm_cas;
        if total == 0 {
            0.0
        } else {
            self.mm_cas as f64 / total as f64
        }
    }

    /// Average L3 read miss latency in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.read_latency_count == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.read_latency_count as f64
        }
    }

    /// Tag-cache miss ratio.
    pub fn tag_cache_miss_ratio(&self) -> f64 {
        if self.tag_cache_lookups == 0 {
            0.0
        } else {
            self.tag_cache_misses as f64 / self.tag_cache_lookups as f64
        }
    }
}

/// Per-core outcome of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreResult {
    /// Instructions retired.
    pub instructions: u64,
    /// Local cycle at which the last instruction retired.
    pub cycles: Cycle,
}

impl CoreResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The complete outcome of a [`System`](crate::System) run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResult {
    /// Per-core retirement results.
    pub per_core: Vec<CoreResult>,
    /// Memory-system counters.
    pub stats: SimStats,
    /// DAP decision statistics, if a DAP partitioner ran.
    pub dap_decisions: Option<dap_core::DecisionStats>,
}

impl RunResult {
    /// Sum of per-core IPCs (throughput).
    pub fn total_ipc(&self) -> f64 {
        self.per_core.iter().map(CoreResult::ipc).sum()
    }

    /// Weighted speedup against per-core alone IPCs:
    /// `sum_i(IPC_shared_i / IPC_alone_i)`.
    ///
    /// # Panics
    ///
    /// Panics if `alone_ipc` length differs from the core count.
    pub fn weighted_speedup(&self, alone_ipc: &[f64]) -> f64 {
        assert_eq!(
            alone_ipc.len(),
            self.per_core.len(),
            "one alone IPC per core"
        );
        self.per_core
            .iter()
            .zip(alone_ipc)
            .map(|(c, &a)| if a > 0.0 { c.ipc() / a } else { 0.0 })
            .sum()
    }

    /// L3 misses per kilo-instruction across all cores.
    pub fn l3_mpki(&self) -> f64 {
        let instrs: u64 = self.per_core.iter().map(|c| c.instructions).sum();
        if instrs == 0 {
            0.0
        } else {
            self.stats.l3_misses as f64 * 1000.0 / instrs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_empty() {
        let s = SimStats::default();
        assert_eq!(s.ms_hit_ratio(), 0.0);
        assert_eq!(s.mm_cas_fraction(), 0.0);
    }

    #[test]
    fn hit_ratio_combines_reads_and_writes() {
        let s = SimStats {
            ms_read_hits: 6,
            ms_read_misses: 2,
            ms_write_hits: 1,
            ms_write_misses: 1,
            ..Default::default()
        };
        assert!((s.ms_hit_ratio() - 0.7).abs() < 1e-12);
        assert!((s.ms_read_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_is_core_count_at_parity() {
        let r = RunResult {
            per_core: vec![
                CoreResult {
                    instructions: 100,
                    cycles: 200,
                },
                CoreResult {
                    instructions: 100,
                    cycles: 400,
                },
            ],
            ..Default::default()
        };
        let ws = r.weighted_speedup(&[0.5, 0.25]);
        assert!((ws - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_counts_all_cores() {
        let r = RunResult {
            per_core: vec![
                CoreResult {
                    instructions: 1000,
                    cycles: 1
                };
                2
            ],
            stats: SimStats {
                l3_misses: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((r.l3_mpki() - 20.0).abs() < 1e-12);
    }
}
