//! System assembly: cores, SRAM hierarchy, memory-side cache, main memory,
//! and the partitioning policy, plus the simulation loop.
//!
//! The module is layered so each concern lives in one place:
//!
//! * [`subsystem`] — the [`MemorySubsystem`] below the shared L3, the
//!   [`MemSideCache`](subsystem) trait that abstracts over memory-side
//!   cache architectures, and the single construction-time `match` that
//!   picks an implementation from [`CacheKind`](crate::config::CacheKind).
//! * [`sector_routing`] — the shared read/write/fill routing skeleton for
//!   sector-organized caches (stacked-DRAM sectored and on-die eDRAM),
//!   written once against a small `SectorCache` abstraction.
//! * [`direct_routing`] — routing for the Alloy cache (direct-mapped
//!   TAD + predictor + DBC/BEAR) and the OS-visible flat tier, which do
//!   not share the sector skeleton.
//! * [`hierarchy`] — the [`System`]: cores, L1/L2/L3 SRAM caches, MSHRs,
//!   and the prefetchers.
//! * [`kernel`] — the epoch-skipping simulation kernel (the default run
//!   loop) and its epoch scheduler.
//! * [`run_loop`] — the per-quantum reference loop, retained as the
//!   kernel's bit-identity oracle (`reference-kernel` feature).
//!
//! The [`MemorySubsystem`] is where the paper's action happens: every L3
//! miss (read) and L3 dirty eviction (write) arrives here, the
//! [`Partitioner`](crate::policy::Partitioner) is consulted, and traffic
//! is issued to the memory-side cache array and/or main memory with full
//! bandwidth accounting. Adding a new cache architecture means writing one
//! `MemSideCache` impl and one construction arm — the subsystem itself
//! contains no per-architecture dispatch.

mod direct_routing;
mod hierarchy;
mod kernel;
mod run_loop;
mod sector_impls;
mod sector_routing;
mod subsystem;

pub use hierarchy::System;
pub use kernel::KernelStats;
pub use subsystem::{MemAccessKind, MemorySubsystem};
