//! Routing for the architectures outside the sector skeleton: the Alloy
//! cache (direct-mapped TADs, PC-indexed hit predictor, DBC and BEAR
//! extensions) and the OS-visible flat tier (page migration, no policy
//! involvement).

use crate::clock::Cycle;
use crate::dram::DramStats;
use crate::mscache::{AlloyCache, BlockState, FlatTier};
use crate::policy::{Observation, WriteRoute};

use super::subsystem::{MemSideCache, RouteEnv};

impl MemSideCache for AlloyCache {
    /// Demand read through the Alloy cache.
    fn read(&mut self, env: &mut RouteEnv, block: u64, core: usize, pc: u64, now: Cycle) -> Cycle {
        let ctx = env.read_context(self.estimated_wait(block, now), block, core, now);
        env.observe(Observation::DemandRead, now);
        env.observe(Observation::CacheAccess { write: false }, now);

        // The DBC check gates IFRM without touching the DRAM array.
        if self.probe_dbc(block) == Some(false) {
            env.observe(Observation::CleanHit, now);
            if env.policy.force_clean_hit(&ctx) {
                env.stats.forced_read_misses += 1;
                let done = env.mm.read_block(block, now + self.dbc_latency());
                // Implicit fill bypass: if the block was absent it stays
                // absent. Either way the read was served by main memory,
                // which is a miss in the paper's served-by-cache hit metric.
                env.stats.ms_read_misses += 1;
                if self.state(block) == BlockState::Miss {
                    env.observe(Observation::ReadMiss, now);
                    env.observe(Observation::MmAccess, now);
                }
                return done;
            }
        }

        // Normal Alloy path: predict, fetch TAD, resolve.
        let predicted_hit = self.predict_hit(pc);
        let early_mm = if !predicted_hit {
            Some(env.mm.read_block(block, now))
        } else {
            None
        };
        let state = self.state(block);
        let tad_done = self.read_tad(block, now);
        self.train_predictor(pc, state != BlockState::Miss);

        if state != BlockState::Miss {
            env.stats.ms_read_hits += 1;
            if early_mm.is_some() {
                env.stats.speculative_wasted += 1;
            }
            return tad_done;
        }
        env.stats.ms_read_misses += 1;
        env.observe(Observation::ReadMiss, now);
        env.observe(Observation::MmAccess, now);
        let done = early_mm.unwrap_or_else(|| env.mm.read_block(block, tad_done));
        env.observe(Observation::CacheAccess { write: true }, now);
        if env.policy.allow_fill(block, now) && self.bear_allow_fill(block) {
            env.stats.fills += 1;
            if let Some(ev) = self.install(block, now, false) {
                if ev.dirty {
                    // Victim data arrived with the TAD; write it to memory.
                    env.mm.write_block(ev.key, now);
                    env.stats.ms_dirty_evictions += 1;
                    env.observe(Observation::MmAccess, now);
                }
            }
        } else {
            env.stats.fills_bypassed += 1;
        }
        done
    }

    /// Demand write through the Alloy cache (with BEAR presence bits, a
    /// write that hits needs no TAD fetch).
    fn write(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) {
        env.observe(Observation::WriteDemand, now);
        env.observe(Observation::CacheAccess { write: true }, now);
        let present = self.state(block) != BlockState::Miss;
        if !self.bear_enabled() {
            // Without the presence bit the write must fetch the TAD first.
            let _ = self.read_tad(block, now);
        }
        if present {
            env.stats.ms_write_hits += 1;
        } else {
            env.stats.ms_write_misses += 1;
        }
        match env.policy.route_write(block, now, present) {
            WriteRoute::Both if present => {
                env.stats.write_throughs += 1;
                self.install(block, now, false);
                self.mark_clean_after_write_through(block);
                env.mm.write_block(block, now);
            }
            WriteRoute::MainMemory => {
                env.stats.writes_bypassed += 1;
                if present {
                    self.invalidate(block);
                }
                env.mm.write_block(block, now);
            }
            _ => {
                if present {
                    self.mark_dirty(block, now);
                } else {
                    // No write-allocate: misses go to main memory.
                    env.observe(Observation::MmAccess, now);
                    env.mm.write_block(block, now);
                }
            }
        }
    }

    fn queue_wait(&self, block: u64, now: Cycle) -> Cycle {
        self.estimated_wait(block, now)
    }

    fn flush(&mut self, now: Cycle) {
        AlloyCache::flush(self, now);
    }

    fn cas_total(&self) -> u64 {
        self.dram().stats().cas_total()
    }

    fn dram_stats(&self) -> Option<DramStats> {
        Some(self.dram().stats())
    }

    fn apply_faults(&mut self, schedule: &crate::faults::FaultSchedule) {
        AlloyCache::apply_faults(self, schedule);
    }

    fn next_scheduled_event(&self, now: Cycle) -> Cycle {
        self.dram().next_scheduled_event(now)
    }
}

impl MemSideCache for FlatTier {
    /// A read against the flat tier: the tier's own migration machinery
    /// decides which module serves it; the partitioning policy is never
    /// consulted (OS-visible memory is not a cache).
    fn read(
        &mut self,
        env: &mut RouteEnv,
        block: u64,
        _core: usize,
        _pc: u64,
        now: Cycle,
    ) -> Cycle {
        let (done, served_fast) = self.access(block, false, now, env.mm);
        if served_fast {
            env.stats.ms_read_hits += 1;
        } else {
            env.stats.ms_read_misses += 1;
        }
        done
    }

    fn write(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) {
        let _ = self.access(block, true, now, env.mm);
    }

    fn flush(&mut self, now: Cycle) {
        FlatTier::flush(self, now);
    }

    fn cas_total(&self) -> u64 {
        self.fast_module().stats().cas_total()
    }

    fn dram_stats(&self) -> Option<DramStats> {
        Some(self.fast_module().stats())
    }

    fn apply_faults(&mut self, schedule: &crate::faults::FaultSchedule) {
        FlatTier::apply_faults(self, schedule);
    }

    fn next_scheduled_event(&self, now: Cycle) -> Cycle {
        self.fast_module().next_scheduled_event(now)
    }
}
