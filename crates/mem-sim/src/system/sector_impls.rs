//! [`SectorCache`] and [`MemSideCache`] implementations for the two
//! sector-organized architectures: the stacked-DRAM sectored cache and
//! the on-die eDRAM cache. The shared routing skeleton they feed lives in
//! [`super::sector_routing`].

use crate::clock::Cycle;
use crate::dram::DramStats;
use crate::mscache::{BlockState, EdramCache, SectoredDramCache};
use crate::policy::{Observation, ReadContext, ReadRoute};

use super::sector_routing::{read_sector_cache, write_sector_cache, PreRead, Probe, SectorCache};
use super::subsystem::{MemSideCache, RouteEnv};

impl SectoredDramCache {
    /// Probes the sector metadata and accounts tag-cache traffic.
    fn probe_with_stats(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) -> Cycle {
        let probe = self.probe_metadata(block, now);
        env.stats.tag_cache_lookups += 1;
        if !probe.tag_cache_hit {
            env.stats.tag_cache_misses += 1;
        }
        env.stats.metadata_cas += u64::from(probe.metadata_cas);
        if let Some(sample) = env.profile.as_deref_mut() {
            // Cycle attribution: a tag-cache hit resolves in the SRAM
            // probe phase; a miss pays the DRAM-cache tag access.
            let spent = probe.resolved_at.saturating_sub(now);
            if probe.tag_cache_hit {
                sample.tag_probe += spent;
            } else {
                sample.cache_tag += spent;
            }
        }
        for _ in 0..probe.metadata_cas {
            env.observe(Observation::CacheAccess { write: false }, now);
        }
        probe.resolved_at
    }
}

impl SectorCache for SectoredDramCache {
    fn partition_set(&self, block: u64) -> Option<u64> {
        let (sector, _) = self.sector_of(block);
        Some(self.set_of(sector))
    }

    fn read_wait(&self, block: u64, now: Cycle) -> Cycle {
        self.estimated_wait(block, now)
    }

    fn pre_read(&mut self, env: &mut RouteEnv, ctx: &ReadContext, now: Cycle) -> PreRead {
        let block = ctx.block;
        let route = env.policy.route_read(ctx);

        // SBD-style steering: serve from main memory outright when safe.
        if route == ReadRoute::SteerMainMemory && self.state(block) != BlockState::DirtyHit {
            env.observe(Observation::MmAccess, now);
            if self.state(block) == BlockState::Miss {
                env.stats.ms_read_misses += 1;
                env.observe(Observation::ReadMiss, now);
            } else {
                env.stats.ms_read_hits += 1;
            }
            return PreRead::Done(env.mm.read_block(block, now));
        }

        // SFRM launches the main-memory read in parallel with the tag
        // lookup.
        if route == ReadRoute::Speculative {
            env.stats.speculative_forced += 1;
            PreRead::Continue {
                speculative: Some(env.mm.read_block(block, now)),
            }
        } else {
            PreRead::Continue { speculative: None }
        }
    }

    fn read_probe(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) -> Probe {
        let resolved_at = self.probe_with_stats(env, block, now);
        Probe {
            data_at: resolved_at,
            mm_at: resolved_at,
        }
    }

    fn write_probe(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) {
        let _ = self.probe_with_stats(env, block, now);
    }

    fn state(&self, block: u64) -> BlockState {
        SectoredDramCache::state(self, block)
    }

    fn sector_present(&self, block: u64) -> bool {
        SectoredDramCache::sector_present(self, block)
    }

    fn read_data(&mut self, block: u64, at: Cycle) -> Cycle {
        SectoredDramCache::read_data(self, block, at)
    }

    fn write_data(&mut self, block: u64, now: Cycle, dirty: bool) {
        let _ = SectoredDramCache::write_data(self, block, now, dirty);
    }

    fn invalidate_block(&mut self, block: u64) {
        SectoredDramCache::invalidate_block(self, block);
    }

    fn try_fill_resident(&mut self, block: u64, now: Cycle) -> bool {
        if SectoredDramCache::sector_present(self, block) {
            let _ = SectoredDramCache::write_data(self, block, now, false);
            true
        } else {
            false
        }
    }

    fn allocate_sector(&mut self, block: u64, now: Cycle) -> (Vec<u64>, Vec<u64>) {
        let alloc = self.allocate(block, now);
        (alloc.victim_dirty_blocks, alloc.fetch_blocks)
    }

    fn read_for_eviction(&mut self, block: u64, now: Cycle) {
        let _ = SectoredDramCache::read_for_eviction(self, block, now);
    }
}

impl MemSideCache for SectoredDramCache {
    fn read(&mut self, env: &mut RouteEnv, block: u64, core: usize, _pc: u64, now: Cycle) -> Cycle {
        read_sector_cache(self, env, block, core, now)
    }

    fn write(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) {
        write_sector_cache(self, env, block, now)
    }

    fn queue_wait(&self, block: u64, now: Cycle) -> Cycle {
        self.estimated_wait(block, now)
    }

    fn flush(&mut self, now: Cycle) {
        SectoredDramCache::flush(self, now);
    }

    fn cas_total(&self) -> u64 {
        self.dram().stats().cas_total()
    }

    fn dram_stats(&self) -> Option<DramStats> {
        Some(self.dram().stats())
    }

    fn tag_cache_miss_ratio(&self) -> Option<f64> {
        self.tag_cache().map(|tc| tc.miss_ratio())
    }

    fn apply_faults(&mut self, schedule: &crate::faults::FaultSchedule) {
        SectoredDramCache::apply_faults(self, schedule);
    }

    fn next_scheduled_event(&self, now: Cycle) -> Cycle {
        self.dram().next_scheduled_event(now)
    }

    fn apply_maintenance(
        &mut self,
        env: &mut RouteEnv,
        disabled_sets: &[u64],
        sectors_to_clean: &[u64],
        now: Cycle,
    ) {
        // BATMAN: disabled sets lose their contents entirely.
        for &set in disabled_sets {
            for dirty in self.flush_set(set) {
                let _ = SectoredDramCache::read_for_eviction(self, dirty, now);
                env.mm.write_block(dirty, now);
                env.stats.ms_dirty_evictions += 1;
            }
        }
        // SBD: evicted Dirty List pages are cleaned but stay resident.
        for &sector in sectors_to_clean {
            for dirty in self.clean_sector(sector) {
                let _ = SectoredDramCache::read_for_eviction(self, dirty, now);
                env.mm.write_block(dirty, now);
                env.stats.ms_dirty_evictions += 1;
            }
        }
    }
}

impl SectorCache for EdramCache {
    fn partition_set(&self, _block: u64) -> Option<u64> {
        // On-die eDRAM has no policy-disableable sets.
        None
    }

    fn read_wait(&self, block: u64, now: Cycle) -> Cycle {
        self.estimated_read_wait(block, now)
    }

    fn read_probe(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) -> Probe {
        self.touch(block);
        if let Some(sample) = env.profile.as_deref_mut() {
            // On-die tags: the check is a fixed array-tag latency, with
            // no SRAM tag-cache phase in front of it.
            sample.cache_tag += self.tag_latency();
        }
        Probe {
            // On-die tags: data reads start immediately (the array call
            // accounts its own latency); fall-through main-memory reads
            // wait for the tag check.
            data_at: now,
            mm_at: now + self.tag_latency(),
        }
    }

    fn write_probe(&mut self, env: &mut RouteEnv, block: u64, _now: Cycle) {
        self.touch(block);
        if let Some(sample) = env.profile.as_deref_mut() {
            sample.cache_tag += self.tag_latency();
        }
    }

    fn state(&self, block: u64) -> BlockState {
        EdramCache::state(self, block)
    }

    fn sector_present(&self, block: u64) -> bool {
        EdramCache::sector_present(self, block)
    }

    fn read_data(&mut self, block: u64, at: Cycle) -> Cycle {
        EdramCache::read_data(self, block, at)
    }

    fn write_data(&mut self, block: u64, now: Cycle, dirty: bool) {
        let _ = EdramCache::write_data(self, block, now, dirty);
    }

    fn invalidate_block(&mut self, block: u64) {
        EdramCache::invalidate_block(self, block);
    }

    fn try_fill_resident(&mut self, block: u64, now: Cycle) -> bool {
        EdramCache::write_data(self, block, now, false)
    }

    fn allocate_sector(&mut self, block: u64, now: Cycle) -> (Vec<u64>, Vec<u64>) {
        let alloc = self.allocate(block, now);
        (alloc.victim_dirty_blocks, alloc.fetch_blocks)
    }

    fn read_for_eviction(&mut self, block: u64, now: Cycle) {
        let _ = EdramCache::read_for_eviction(self, block, now);
    }
}

impl MemSideCache for EdramCache {
    fn read(&mut self, env: &mut RouteEnv, block: u64, core: usize, _pc: u64, now: Cycle) -> Cycle {
        read_sector_cache(self, env, block, core, now)
    }

    fn write(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) {
        write_sector_cache(self, env, block, now)
    }

    fn queue_wait(&self, block: u64, now: Cycle) -> Cycle {
        self.estimated_read_wait(block, now)
    }

    fn flush(&mut self, now: Cycle) {
        EdramCache::flush(self, now);
    }

    fn cas_total(&self) -> u64 {
        self.read_path().stats().cas_total() + self.write_path().stats().cas_total()
    }

    fn dram_stats(&self) -> Option<DramStats> {
        let r = self.read_path().stats();
        let w = self.write_path().stats();
        Some(DramStats {
            cas_reads: r.cas_reads + w.cas_reads,
            cas_writes: r.cas_writes + w.cas_writes,
            row_hits: r.row_hits + w.row_hits,
            row_misses: r.row_misses + w.row_misses,
        })
    }

    fn apply_faults(&mut self, schedule: &crate::faults::FaultSchedule) {
        EdramCache::apply_faults(self, schedule);
    }

    fn next_scheduled_event(&self, now: Cycle) -> Cycle {
        self.read_path()
            .next_scheduled_event(now)
            .min(self.write_path().next_scheduled_event(now))
    }
}
