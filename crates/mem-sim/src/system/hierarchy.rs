//! The simulated machine: cores, private L1/L2, shared L3, stride
//! prefetchers, and the MSHR merge window in front of the memory
//! subsystem.

use crate::cache::{ReplacementKind, SetAssocCache};
use crate::clock::Cycle;
use crate::config::SystemConfig;
use crate::core_model::CoreModel;
use crate::hash::FastMap;
use crate::policy::{NoPartitioning, Partitioner};
use crate::prefetch::StridePrefetcher;
use crate::trace::TraceSource;

use super::subsystem::{MemAccessKind, MemorySubsystem};

/// Prefetches are dropped once the target queues back up this far — they
/// may only consume spare bandwidth, never add to saturation.
const PREFETCH_PRESSURE_LIMIT: Cycle = 1200;

/// The simulated machine.
pub struct System {
    pub(super) config: SystemConfig,
    pub(super) cores: Vec<CoreModel>,
    pub(super) traces: Vec<Box<dyn TraceSource>>,
    l1: Vec<SetAssocCache<()>>,
    l2: Vec<SetAssocCache<()>>,
    prefetchers: Vec<StridePrefetcher>,
    l3: SetAssocCache<()>,
    mshr: FastMap<u64, Cycle>,
    mshr_cleanup_at: usize,
    /// Reused between accesses so the prefetcher's candidate list never
    /// allocates in steady state.
    prefetch_buf: Vec<u64>,
    pub(super) mem: MemorySubsystem,
}

impl System {
    /// Builds a system with the baseline (no partitioning) policy.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != config.cores`.
    pub fn new(config: SystemConfig, traces: Vec<Box<dyn TraceSource>>) -> Self {
        Self::with_policy(config, traces, Box::new(NoPartitioning))
    }

    /// Builds a system with an explicit partitioning policy.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != config.cores`.
    pub fn with_policy(
        config: SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
        policy: Box<dyn Partitioner>,
    ) -> Self {
        assert_eq!(traces.len(), config.cores, "one trace per core");
        let mem = MemorySubsystem::new(&config, policy);
        Self {
            cores: (0..config.cores)
                .map(|_| CoreModel::new(config.width, config.rob))
                .collect(),
            traces,
            l1: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l1.0, config.l1.1, ReplacementKind::Lru))
                .collect(),
            l2: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l2.0, config.l2.1, ReplacementKind::Lru))
                .collect(),
            prefetchers: (0..config.cores)
                .map(|_| StridePrefetcher::new(config.prefetch_degree))
                .collect(),
            l3: SetAssocCache::new(config.l3.0, config.l3.1, ReplacementKind::Lru),
            mshr: FastMap::default(),
            mshr_cleanup_at: 8192,
            prefetch_buf: Vec::new(),
            mem,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The memory subsystem (diagnostics).
    pub fn memory(&self) -> &MemorySubsystem {
        &self.mem
    }

    /// Attaches simulator-side telemetry (queue-occupancy and
    /// channel-utilization recording) to the memory subsystem.
    pub fn attach_telemetry(&mut self, telemetry: crate::telemetry::SubsystemTelemetry) {
        self.mem.attach_telemetry(telemetry);
    }

    /// Forwards a DAP window-trace sink to the partitioning policy
    /// (no-op when the policy has no DAP controller).
    pub fn attach_dap_sink(&mut self, sink: std::sync::Arc<dyn dap_core::TelemetrySink>) {
        self.mem.attach_dap_sink(sink);
    }

    /// Replaces the memory subsystem's access profiler (fixed-interval
    /// sampling for tests and tools).
    pub fn attach_profiler(&mut self, profiler: crate::profile::AccessProfiler) {
        self.mem.attach_profiler(profiler);
    }

    /// Removes the memory subsystem's access profiler (overhead tools
    /// that need telemetry without profiling).
    pub fn detach_profiler(&mut self) {
        self.mem.detach_profiler();
    }

    /// A demand load at cycle `t`; returns its completion cycle.
    pub(super) fn load(&mut self, core: usize, block: u64, pc: u64, t: Cycle) -> Cycle {
        let (_, _, l1_lat) = self.config.l1;
        let (_, _, l2_lat) = self.config.l2;
        if self.l1[core].lookup(block) {
            return t + l1_lat;
        }
        if self.l2[core].lookup(block) {
            self.install_l1(core, block, t, false);
            return t + l2_lat;
        }
        let mut prefetches = std::mem::take(&mut self.prefetch_buf);
        if self.config.prefetch_degree > 0 {
            self.prefetchers[core].observe_into(block, &mut prefetches);
        } else {
            prefetches.clear();
        }
        let done = self.access_l3(block, core, pc, t + l2_lat, MemAccessKind::DemandRead);
        self.install_l2(core, block, t);
        self.install_l1(core, block, t, false);
        for &p in &prefetches {
            self.prefetch(p, core, pc, t);
        }
        self.prefetch_buf = prefetches;
        done
    }

    /// A demand store at cycle `t` (fire-and-forget for the core).
    pub(super) fn store(&mut self, core: usize, block: u64, pc: u64, t: Cycle) {
        if let Some(slot) = self.l1[core].lookup_slot(block) {
            self.l1[core].mark_dirty_slot(slot);
            return;
        }
        if self.l2[core].lookup(block) {
            self.install_l1(core, block, t, true);
            return;
        }
        let mut prefetches = std::mem::take(&mut self.prefetch_buf);
        if self.config.prefetch_degree > 0 {
            self.prefetchers[core].observe_into(block, &mut prefetches);
        } else {
            prefetches.clear();
        }
        let (_, _, l2_lat) = self.config.l2;
        let _ = self.access_l3(block, core, pc, t + l2_lat, MemAccessKind::Rfo);
        self.install_l2(core, block, t);
        self.install_l1(core, block, t, true);
        for &p in &prefetches {
            self.prefetch(p, core, pc, t);
        }
        self.prefetch_buf = prefetches;
    }

    fn access_l3(
        &mut self,
        block: u64,
        core: usize,
        pc: u64,
        t: Cycle,
        kind: MemAccessKind,
    ) -> Cycle {
        let (_, _, l3_lat) = self.config.l3;
        if kind != MemAccessKind::Prefetch {
            self.mem.stats_mut().l3_accesses += 1;
        }
        // An in-flight miss for this block (demand or prefetch) means the
        // data is not in the array yet: merge and wait for its completion.
        if let Some(&c) = self.mshr.get(&block) {
            if c > t {
                if kind != MemAccessKind::Prefetch {
                    self.mem.stats_mut().l3_misses += 1;
                }
                return c;
            }
        }
        if self.l3.lookup(block) {
            return t + l3_lat;
        }
        if kind != MemAccessKind::Prefetch {
            self.mem.stats_mut().l3_misses += 1;
        }
        let done = self.mem_read_insert(block, core, pc, t + l3_lat, kind);
        self.install_l3(block, t);
        done
    }

    /// Issues a memory read and records it in the MSHR.
    ///
    /// Both callers have already probed the MSHR for this block at an
    /// earlier-or-equal cycle and found no outstanding miss, so any entry
    /// still present here is stale (completed at or before `t`) and is
    /// simply overwritten — no second merge check is needed.
    fn mem_read_insert(
        &mut self,
        block: u64,
        core: usize,
        pc: u64,
        t: Cycle,
        kind: MemAccessKind,
    ) -> Cycle {
        let done = self.mem.read(block, core, pc, t, kind);
        self.mshr.insert(block, done);
        if self.mshr.len() > self.mshr_cleanup_at {
            self.mshr.retain(|_, &mut c| c > t);
            // Amortize: if most entries are still outstanding (saturated
            // memory), grow the threshold instead of re-scanning per insert.
            self.mshr_cleanup_at = (self.mshr.len() * 2).max(8192);
        }
        done
    }

    fn prefetch(&mut self, block: u64, core: usize, pc: u64, t: Cycle) {
        if self.l3.contains(block) || self.mshr.get(&block).map(|&c| c > t).unwrap_or(false) {
            return;
        }
        // Prefetches only consume spare bandwidth; drop them once the
        // memory queues back up.
        if self.mem.queue_pressure(block, t) > PREFETCH_PRESSURE_LIMIT {
            return;
        }
        let _ = self.mem_read_insert(block, core, pc, t, MemAccessKind::Prefetch);
        self.install_l3(block, t);
    }

    // Writeback timestamps use the *access time* `t` of the triggering
    // operation, never a core's retire frontier — retire frontiers race one
    // full miss latency ahead and a single future-stamped write drain would
    // catapult the channel's bus reservation for every later request.

    // Every install below runs on a path where the target cache has just
    // missed on `block` with no intervening insert of it (installs into
    // *other* levels and memory reads cannot add lines here), so the
    // presence re-scan inside `insert` is skipped via `insert_absent`.

    fn install_l3(&mut self, block: u64, t: Cycle) {
        if let Some(ev) = self.l3.insert_absent(block, (), false) {
            if ev.dirty {
                self.mem.write(ev.key, t);
            }
        }
    }

    fn install_l2(&mut self, core: usize, block: u64, t: Cycle) {
        if let Some(ev) = self.l2[core].insert_absent(block, (), false) {
            if ev.dirty && !self.l3.mark_dirty(ev.key) {
                self.mem.write(ev.key, t);
            }
        }
    }

    fn install_l1(&mut self, core: usize, block: u64, t: Cycle, dirty: bool) {
        if let Some(ev) = self.l1[core].insert_absent(block, (), dirty) {
            if ev.dirty && !self.l2[core].mark_dirty(ev.key) && !self.l3.mark_dirty(ev.key) {
                self.mem.write(ev.key, t);
            }
        }
    }
}
