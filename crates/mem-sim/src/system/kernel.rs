//! The epoch-skipping simulation kernel.
//!
//! [`System::run`] advances the machine in 64-cycle quanta (one DAP
//! window) with a rotating core order. The naive formulation — step every
//! quantum, then rescan all cores for the earliest runnable cycle —
//! spends its time in bookkeeping whenever cores stall for thousands of
//! cycles (fault outages, saturated channels, sparse traces). This module
//! replaces it with an *epoch* loop built from two pieces:
//!
//! * **Folded frontier.** The earliest cycle at which any unfinished core
//!   can run again is computed *during* the per-quantum core sweep
//!   instead of by a second pass afterwards. This is exact, not an
//!   approximation: cores are processed in rotation order and a later
//!   core can never rewind an earlier core's `local_cycle` or retire its
//!   instructions, so each core's contribution to the minimum is final
//!   the moment its sweep slot ends.
//! * **Epoch scheduler.** When the frontier lies beyond the current
//!   quantum, the [`EpochScheduler`] jumps straight to the quantum
//!   containing the next *interesting* cycle: the earliest core issue,
//!   bounded by the memory side's next scheduled event (fault-schedule
//!   boundary, DRAM refresh-window start, opportunistic write-batch
//!   drain — see [`MemorySubsystem::next_scheduled_event`]). The jump
//!   advances the rotation index by exactly the number of skipped quanta,
//!   which is what stepping them one by one would have done.
//!
//! # Bit-identity
//!
//! The kernel is verified bit-identical to the retained per-quantum
//! reference loop ([`System::run_reference`]) across a seeded
//! configuration sweep (`tests/kernel_equivalence.rs`). The argument:
//!
//! * A skipped quantum executes nothing in the reference loop — every
//!   unfinished core satisfies `local_cycle >= quantum_end`, so the inner
//!   sweep falls straight through — and mutates no memory-side state,
//!   because everything below the cores (DAP window accounting, fault
//!   transitions, refresh, write drains) is applied lazily at the next
//!   access. Skipping it therefore changes nothing but loop overhead.
//! * DAP window boundaries need no event source of their own:
//!   [`DapController::tick`](dap_core::DapController) folds runs of idle
//!   windows deterministically, so a window with no accesses produces the
//!   same solver state whether it was stepped or jumped over.
//! * Clamping a jump *short* of the frontier (at a memory-side event) is
//!   equally safe in the other direction: the loop just iterates over a
//!   few more provably-empty quanta, exactly as the reference does for
//!   all of them. The clamp only keeps the cooperative-cancellation check
//!   and epoch accounting responsive across very long stalls.
//!
//! The PR-4 contracts survive unchanged: cancellation still unwinds at
//! quantum (= window) granularity with the same `at_cycle`, and the
//! policy's `WindowAuditor` sees every window because window accounting
//! itself was always access-driven.

use crate::clock::Cycle;
use crate::core_model::CoreModel;
use crate::stats::{CoreResult, RunResult};
use crate::trace::OpKind;

use super::hierarchy::System;

/// One DAP window. Cores must interleave at window granularity or the
/// policy sees several cores' demand lumped into one window.
pub(super) const QUANTUM: Cycle = 64;

/// How the epoch scheduler advanced during one run (instrumentation for
/// regression tests and diagnostics; not part of [`RunResult`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Quantum sweeps actually executed.
    pub epochs: u64,
    /// Empty quanta jumped over without a sweep.
    pub skipped_quanta: u64,
    /// Jumps that were shortened by a memory-side scheduled event
    /// landing before the core frontier.
    pub memory_clamps: u64,
}

/// Owns the quantum clock: the end of the current quantum, the rotation
/// index that staggers per-quantum core order, and the skip arithmetic
/// that jumps both across empty epochs in lockstep.
struct EpochScheduler {
    quantum_end: Cycle,
    quantum_index: usize,
    stats: KernelStats,
}

impl EpochScheduler {
    fn new() -> Self {
        Self {
            quantum_end: QUANTUM,
            quantum_index: 0,
            stats: KernelStats::default(),
        }
    }

    /// Opens the next epoch; returns `(rotation_index, quantum_end)` for
    /// the sweep.
    fn begin_epoch(&mut self) -> (usize, Cycle) {
        self.stats.epochs += 1;
        // Rotate the per-quantum processing order: the first core to
        // submit each window gets earlier bus reservations, and a fixed
        // order would hand one core a compounding advantage under
        // saturation.
        self.quantum_index = self.quantum_index.wrapping_add(1);
        (self.quantum_index, self.quantum_end)
    }

    /// Closes the epoch: if the core frontier lies beyond the quantum
    /// that just ran, jump to the quantum containing the next interesting
    /// cycle — the frontier, clamped by the memory side's next scheduled
    /// event (queried lazily, only when a jump is possible). Advancing
    /// the rotation index by the number of skipped quanta keeps results
    /// bit-identical to stepping them.
    fn advance(&mut self, frontier: Cycle, memory_event: impl FnOnce(Cycle) -> Cycle) {
        if frontier > self.quantum_end {
            let unclamped = (frontier - self.quantum_end) / QUANTUM;
            let mut skipped = unclamped;
            if unclamped > 0 {
                let event = memory_event(self.quantum_end).max(self.quantum_end);
                skipped = unclamped.min((event - self.quantum_end) / QUANTUM);
                if skipped < unclamped {
                    self.stats.memory_clamps += 1;
                }
            }
            self.quantum_index = self.quantum_index.wrapping_add(skipped as usize);
            self.quantum_end += skipped * QUANTUM;
            self.stats.skipped_quanta += skipped;
        }
        self.quantum_end += QUANTUM;
    }
}

impl System {
    /// Runs until every core retires `instructions_per_core` instructions.
    ///
    /// Dispatches to the epoch-skipping kernel, or to the retained
    /// per-quantum reference loop when the crate is built with the
    /// `reference-kernel` feature (the equivalence oracle).
    pub fn run(&mut self, instructions_per_core: u64) -> RunResult {
        #[cfg(feature = "reference-kernel")]
        {
            self.run_reference(instructions_per_core)
        }
        #[cfg(not(feature = "reference-kernel"))]
        {
            self.run_kernel(instructions_per_core)
        }
    }

    /// The epoch-skipping kernel (see the module docs).
    pub fn run_kernel(&mut self, instructions_per_core: u64) -> RunResult {
        self.run_kernel_instrumented(instructions_per_core).0
    }

    /// [`run_kernel`](System::run_kernel), also returning the epoch
    /// scheduler's counters for tests and diagnostics.
    pub fn run_kernel_instrumented(
        &mut self,
        instructions_per_core: u64,
    ) -> (RunResult, KernelStats) {
        let mut sched = EpochScheduler::new();
        loop {
            // Cooperative interruption, honored at window granularity:
            // a tripped stop flag (Ctrl-C cancel token or the per-cell
            // deadline watchdog) unwinds with a typed payload the
            // harness catches and reports structurally.
            if let Some(cause) = crate::interrupt::tripped() {
                std::panic::panic_any(crate::interrupt::RunInterrupted {
                    cause,
                    at_cycle: sched.quantum_end,
                });
            }
            let (rotation, quantum_end) = sched.begin_epoch();
            let n = self.cores.len();
            let mut all_done = true;
            let mut frontier = Cycle::MAX;
            for k in 0..n {
                let i = (k + rotation) % n;
                self.step_core(i, instructions_per_core, quantum_end);
                // This core's slot is over; nothing later in the sweep
                // can move it, so its frontier contribution is final.
                if self.cores[i].retired() < instructions_per_core {
                    all_done = false;
                    frontier = frontier.min(self.cores[i].local_cycle());
                }
            }
            if all_done {
                break;
            }
            let mem = &self.mem;
            sched.advance(frontier, |at| mem.next_scheduled_event(at));
        }
        (self.finish_run(), sched.stats)
    }

    /// Executes core `i`'s share of the quantum ending at `quantum_end`:
    /// consume trace operations until the core either retires its budget
    /// or its local clock crosses the quantum boundary. Shared verbatim
    /// by the kernel and the reference loop so the two cannot drift.
    #[inline]
    pub(super) fn step_core(&mut self, i: usize, instructions_per_core: u64, quantum_end: Cycle) {
        while self.cores[i].retired() < instructions_per_core
            && self.cores[i].local_cycle() < quantum_end
        {
            let op = self.traces[i].next_op();
            let remaining = instructions_per_core - self.cores[i].retired();
            self.cores[i].push_nonmem(op.gap.min(remaining as u32));
            if self.cores[i].retired() >= instructions_per_core {
                break;
            }
            let t = self.cores[i].next_issue_cycle();
            match op.kind {
                OpKind::Read => {
                    let done = self.load(i, op.block(), op.pc, t);
                    self.cores[i].push_mem(done.saturating_sub(t).max(1));
                }
                OpKind::Write => {
                    self.store(i, op.block(), op.pc, t);
                    self.cores[i].push_mem(1);
                }
            }
        }
    }

    /// End-of-run accounting shared by both kernels: flush the memory
    /// side at the last core cycle and assemble the [`RunResult`].
    pub(super) fn finish_run(&mut self) -> RunResult {
        let last = self
            .cores
            .iter()
            .map(CoreModel::local_cycle)
            .max()
            .unwrap_or(0);
        self.mem.finalize(last);
        RunResult {
            per_core: self
                .cores
                .iter()
                .map(|c| CoreResult {
                    instructions: c.retired(),
                    cycles: c.local_cycle(),
                })
                .collect(),
            stats: *self.mem.stats(),
            dap_decisions: self.mem.dap_decisions(),
        }
    }
}
