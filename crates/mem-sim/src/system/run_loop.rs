//! The per-quantum reference loop: quantum-interleaved core execution
//! with a rescan-based fast-forward, retained verbatim as the
//! equivalence oracle for the epoch-skipping kernel (see [`kernel`]).
//!
//! [`System::run`] dispatches here when the crate is built with the
//! `reference-kernel` feature; the property suite and CI equivalence
//! smoke call [`System::run_reference`] directly and assert bit-identical
//! results against [`System::run_kernel`](super::kernel).
//!
//! [`kernel`]: super::kernel

use crate::core_model::CoreModel;
use crate::stats::RunResult;

use super::hierarchy::System;
use super::kernel::QUANTUM;

impl System {
    /// Runs until every core retires `instructions_per_core` instructions,
    /// stepping one quantum at a time.
    pub fn run_reference(&mut self, instructions_per_core: u64) -> RunResult {
        let mut quantum_end = QUANTUM;
        let mut quantum_index = 0usize;
        loop {
            // Cooperative interruption, honored at window granularity:
            // a tripped stop flag (Ctrl-C cancel token or the per-cell
            // deadline watchdog) unwinds with a typed payload the
            // harness catches and reports structurally.
            if let Some(cause) = crate::interrupt::tripped() {
                std::panic::panic_any(crate::interrupt::RunInterrupted {
                    cause,
                    at_cycle: quantum_end,
                });
            }
            let mut all_done = true;
            // Rotate the per-quantum processing order: the first core to
            // submit each window gets earlier bus reservations, and a fixed
            // order would hand one core a compounding advantage under
            // saturation.
            quantum_index = quantum_index.wrapping_add(1);
            let n = self.cores.len();
            for k in 0..n {
                let i = (k + quantum_index) % n;
                self.step_core(i, instructions_per_core, quantum_end);
                if self.cores[i].retired() < instructions_per_core {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            // Fast-forward over quanta in which no core can execute (all
            // unfinished cores are stalled past `quantum_end`, e.g. on a
            // long fault-injected wait): stepping them one by one would
            // run nothing, so jump — advancing the rotation by the same
            // number of quanta keeps results bit-identical to stepping.
            let earliest = self
                .cores
                .iter()
                .filter(|c| c.retired() < instructions_per_core)
                .map(CoreModel::local_cycle)
                .min()
                .unwrap_or(quantum_end);
            if earliest > quantum_end {
                let skipped = (earliest - quantum_end) / QUANTUM;
                quantum_index = quantum_index.wrapping_add(skipped as usize);
                quantum_end += skipped * QUANTUM;
            }
            quantum_end += QUANTUM;
        }
        self.finish_run()
    }
}
