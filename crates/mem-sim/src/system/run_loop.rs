//! The simulation loop: quantum-interleaved core execution until every
//! core retires its instruction budget.

use crate::clock::Cycle;
use crate::core_model::CoreModel;
use crate::stats::{CoreResult, RunResult};
use crate::trace::OpKind;

use super::hierarchy::System;

impl System {
    /// Runs until every core retires `instructions_per_core` instructions.
    pub fn run(&mut self, instructions_per_core: u64) -> RunResult {
        // One DAP window: cores must interleave at window granularity or
        // the policy sees several cores' demand lumped into one window.
        const QUANTUM: Cycle = 64;
        let mut quantum_end = QUANTUM;
        let mut quantum_index = 0usize;
        loop {
            // Cooperative interruption, honored at window granularity:
            // a tripped stop flag (Ctrl-C cancel token or the per-cell
            // deadline watchdog) unwinds with a typed payload the
            // harness catches and reports structurally.
            if let Some(cause) = crate::interrupt::tripped() {
                std::panic::panic_any(crate::interrupt::RunInterrupted {
                    cause,
                    at_cycle: quantum_end,
                });
            }
            let mut all_done = true;
            // Rotate the per-quantum processing order: the first core to
            // submit each window gets earlier bus reservations, and a fixed
            // order would hand one core a compounding advantage under
            // saturation.
            quantum_index = quantum_index.wrapping_add(1);
            let n = self.cores.len();
            for k in 0..n {
                let i = (k + quantum_index) % n;
                while self.cores[i].retired() < instructions_per_core
                    && self.cores[i].local_cycle() < quantum_end
                {
                    let op = self.traces[i].next_op();
                    let remaining = instructions_per_core - self.cores[i].retired();
                    self.cores[i].push_nonmem(op.gap.min(remaining as u32));
                    if self.cores[i].retired() >= instructions_per_core {
                        break;
                    }
                    let t = self.cores[i].next_issue_cycle();
                    match op.kind {
                        OpKind::Read => {
                            let done = self.load(i, op.block(), op.pc, t);
                            self.cores[i].push_mem(done.saturating_sub(t).max(1));
                        }
                        OpKind::Write => {
                            self.store(i, op.block(), op.pc, t);
                            self.cores[i].push_mem(1);
                        }
                    }
                }
                if self.cores[i].retired() < instructions_per_core {
                    all_done = false;
                }
            }
            if all_done {
                break;
            }
            // Fast-forward over quanta in which no core can execute (all
            // unfinished cores are stalled past `quantum_end`, e.g. on a
            // long fault-injected wait): stepping them one by one would
            // run nothing, so jump — advancing the rotation by the same
            // number of quanta keeps results bit-identical to stepping.
            let earliest = self
                .cores
                .iter()
                .filter(|c| c.retired() < instructions_per_core)
                .map(CoreModel::local_cycle)
                .min()
                .unwrap_or(quantum_end);
            if earliest > quantum_end {
                let skipped = (earliest - quantum_end) / QUANTUM;
                quantum_index = quantum_index.wrapping_add(skipped as usize);
                quantum_end += skipped * QUANTUM;
            }
            quantum_end += QUANTUM;
        }
        let last = self
            .cores
            .iter()
            .map(CoreModel::local_cycle)
            .max()
            .unwrap_or(0);
        self.mem.finalize(last);
        RunResult {
            per_core: self
                .cores
                .iter()
                .map(|c| CoreResult {
                    instructions: c.retired(),
                    cycles: c.local_cycle(),
                })
                .collect(),
            stats: *self.mem.stats(),
            dap_decisions: self.mem.dap_decisions(),
        }
    }
}
