//! Shared routing for sector-organized memory-side caches.
//!
//! The stacked-DRAM sectored cache and the on-die eDRAM cache have the
//! same routing *shape* — probe, policy consultation, hit/miss/fill state
//! machine, sector allocation with footprint fetch — and differ only in a
//! handful of geometry hooks (how tags are probed, whether sets can be
//! disabled, whether SBD steering / SFRM speculation apply). The
//! [`SectorCache`] abstraction captures those hooks so the paper's
//! Section IV routing is written exactly once, in [`read_sector_cache`],
//! [`write_sector_cache`], and [`fill_sector_cache`].

use crate::clock::Cycle;
use crate::mscache::BlockState;
use crate::policy::{Observation, ReadContext, WriteRoute};

use super::subsystem::RouteEnv;

/// What a cache's pre-routing step decided before the array is touched.
pub(super) enum PreRead {
    /// The read was served outright (SBD steering to main memory).
    Done(Cycle),
    /// Continue through the array; `speculative` carries an already
    /// issued main-memory read (SFRM) to use on a miss.
    Continue { speculative: Option<Cycle> },
}

/// When the array's metadata answer is available.
pub(super) struct Probe {
    /// Cycle at which a data read of the array may begin.
    pub(super) data_at: Cycle,
    /// Cycle at which a fall-through main-memory read may begin.
    pub(super) mm_at: Cycle,
}

/// The geometry hooks a sector-organized cache provides to the shared
/// routing skeleton.
pub(super) trait SectorCache {
    /// The directory set partitioning applies to, or `None` if the
    /// architecture has no policy-disableable sets (every set enabled).
    fn partition_set(&self, block: u64) -> Option<u64>;

    /// Estimated queue wait for a read of `block`.
    fn read_wait(&self, block: u64, now: Cycle) -> Cycle;

    /// Pre-routing: consult the policy's read route before the array is
    /// probed. The default continues with no speculation (architectures
    /// without SBD steering / SFRM).
    fn pre_read(&mut self, _env: &mut RouteEnv, _ctx: &ReadContext, _now: Cycle) -> PreRead {
        PreRead::Continue { speculative: None }
    }

    /// Probes tags/metadata for a read and reports when data and
    /// fall-through reads may start.
    fn read_probe(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) -> Probe;

    /// Probes tags/metadata for a write.
    fn write_probe(&mut self, env: &mut RouteEnv, block: u64, now: Cycle);

    /// Block residency state.
    fn state(&self, block: u64) -> BlockState;

    /// Whether the block's sector is resident.
    fn sector_present(&self, block: u64) -> bool;

    /// Reads resident data; returns the completion cycle.
    fn read_data(&mut self, block: u64, at: Cycle) -> Cycle;

    /// Writes `block` into its resident sector.
    fn write_data(&mut self, block: u64, now: Cycle, dirty: bool);

    /// Invalidates a resident block.
    fn invalidate_block(&mut self, block: u64);

    /// Fills `block` if its sector is already resident; `true` on success.
    fn try_fill_resident(&mut self, block: u64, now: Cycle) -> bool;

    /// Allocates the sector for `block`; returns
    /// `(victim_dirty_blocks, fetch_blocks)`.
    fn allocate_sector(&mut self, block: u64, now: Cycle) -> (Vec<u64>, Vec<u64>);

    /// Reads a victim block out of the array for eviction write-back.
    fn read_for_eviction(&mut self, block: u64, now: Cycle);
}

/// Demand read through a sector-organized cache.
pub(super) fn read_sector_cache<C: SectorCache>(
    c: &mut C,
    env: &mut RouteEnv,
    block: u64,
    core: usize,
    now: Cycle,
) -> Cycle {
    let enabled = match c.partition_set(block) {
        Some(set) => env.policy.set_enabled(set, now),
        None => true,
    };
    let ctx = env.read_context(c.read_wait(block, now), block, core, now);
    env.observe(Observation::DemandRead, now);
    env.observe(Observation::CacheAccess { write: false }, now);

    let speculative_done = match c.pre_read(env, &ctx, now) {
        PreRead::Done(done) => return done,
        PreRead::Continue { speculative } => speculative,
    };

    let probe = c.read_probe(env, block, now);

    let state = if enabled {
        c.state(block)
    } else {
        BlockState::Miss
    };
    match state {
        BlockState::DirtyHit => {
            env.stats.ms_read_hits += 1;
            if speculative_done.is_some() {
                // The speculative main-memory data is stale; drop it.
                env.stats.speculative_wasted += 1;
            }
            c.read_data(block, probe.data_at)
        }
        BlockState::CleanHit => {
            env.observe(Observation::CleanHit, now);
            // A clean hit *served by main memory* counts as a miss in the
            // paper's hit-rate metric (served-by-cache ratio).
            if let Some(done) = speculative_done {
                env.stats.ms_read_misses += 1;
                return done;
            }
            if env.policy.force_clean_hit(&ctx) {
                env.stats.ms_read_misses += 1;
                env.stats.forced_read_misses += 1;
                return env.mm.read_block(block, probe.mm_at);
            }
            env.stats.ms_read_hits += 1;
            c.read_data(block, probe.data_at)
        }
        BlockState::Miss => {
            env.stats.ms_read_misses += 1;
            env.observe(Observation::ReadMiss, now);
            env.observe(Observation::MmAccess, now);
            let done = speculative_done.unwrap_or_else(|| env.mm.read_block(block, probe.mm_at));
            // The fill this miss implies is cache *demand* whether or not it
            // is bypassed; DAP's solver sees demand, the array sees actuals.
            env.observe(Observation::CacheAccess { write: true }, now);
            if enabled && env.policy.allow_fill(block, now) {
                fill_sector_cache(c, env, block, now);
            } else {
                env.stats.fills_bypassed += 1;
            }
            done
        }
    }
}

/// Fills `block` after a read miss, allocating its sector if needed.
fn fill_sector_cache<C: SectorCache>(c: &mut C, env: &mut RouteEnv, block: u64, now: Cycle) {
    if c.try_fill_resident(block, now) {
        env.stats.fills += 1;
        return;
    }
    let (victims, fetches) = c.allocate_sector(block, now);
    for victim in victims {
        c.read_for_eviction(victim, now);
        env.observe(Observation::CacheAccess { write: false }, now);
        env.observe(Observation::MmAccess, now);
        env.mm.write_block(victim, now);
        env.stats.ms_dirty_evictions += 1;
    }
    for fetch in fetches {
        if fetch != block {
            // Footprint prefetch: fetch from main memory, fill the array.
            env.mm.read_block(fetch, now);
            env.observe(Observation::MmAccess, now);
            env.observe(Observation::CacheAccess { write: true }, now);
            env.stats.footprint_prefetches += 1;
        }
        c.write_data(fetch, now, false);
        env.stats.fills += 1;
    }
}

/// Demand write (L3 dirty eviction) through a sector-organized cache.
pub(super) fn write_sector_cache<C: SectorCache>(
    c: &mut C,
    env: &mut RouteEnv,
    block: u64,
    now: Cycle,
) {
    let enabled = match c.partition_set(block) {
        Some(set) => env.policy.set_enabled(set, now),
        None => true,
    };
    env.observe(Observation::WriteDemand, now);
    env.observe(Observation::CacheAccess { write: true }, now);

    c.write_probe(env, block, now);

    let sector_hit = enabled && c.sector_present(block);
    let block_hit = enabled && c.state(block) != BlockState::Miss;
    if block_hit {
        env.stats.ms_write_hits += 1;
    } else {
        env.stats.ms_write_misses += 1;
    }
    match env.policy.route_write(block, now, block_hit) {
        WriteRoute::Cache => {
            if sector_hit {
                c.write_data(block, now, true);
            } else {
                // No write-allocate of a whole sector: send to main memory.
                env.observe(Observation::MmAccess, now);
                env.mm.write_block(block, now);
            }
        }
        WriteRoute::MainMemory => {
            env.stats.writes_bypassed += 1;
            if block_hit {
                c.invalidate_block(block);
            }
            env.mm.write_block(block, now);
        }
        WriteRoute::Both => {
            env.stats.write_throughs += 1;
            if sector_hit {
                c.write_data(block, now, false); // clean: memory has the data
            }
            env.mm.write_block(block, now);
        }
    }
}
