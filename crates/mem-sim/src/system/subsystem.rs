//! The memory subsystem below the shared L3: policy consultation, the
//! [`MemSideCache`] architecture abstraction, and bandwidth accounting.

use crate::clock::Cycle;
use crate::config::{CacheKind, SystemConfig};
use crate::dram::{DramModule, DramStats};
use crate::faults::{FaultSchedule, FaultTarget};
use crate::mscache::{AlloyCache, EdramCache, FlatTier, SectoredDramCache};
use crate::policy::{Observation, Partitioner, ReadContext};
use crate::profile::{grant_fired, AccessProfiler, PhaseSample};
use crate::stats::SimStats;
use crate::telemetry::SubsystemTelemetry;

/// Why a read reaches the memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccessKind {
    /// A demand load — its latency is what the core waits on.
    DemandRead,
    /// A store's read-for-ownership — traffic only, nobody waits.
    Rfo,
    /// A prefetch — traffic only.
    Prefetch,
}

/// Checked-mode tally of the access observations the routing layer has
/// emitted to the policy. The subsystem compares it against the DAP
/// controller's own accumulation at [`MemorySubsystem::finalize`]
/// (Eq. 1/2 served-access conservation); `None` outside checked mode.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ObservedAccesses {
    /// `Observation::CacheAccess` events emitted.
    pub cache: u64,
    /// `Observation::MmAccess` events emitted.
    pub mm: u64,
}

/// The shared machinery every routing path needs: main memory, the
/// partitioning policy, and the statistics sink. Split out of
/// [`MemorySubsystem`] so a cache implementation can borrow all three
/// mutably alongside itself.
pub(crate) struct RouteEnv<'a> {
    /// The main-memory DRAM module.
    pub mm: &'a mut DramModule,
    /// The partitioning policy under evaluation.
    pub policy: &'a mut dyn Partitioner,
    /// Simulation statistics.
    pub stats: &'a mut SimStats,
    /// Checked-mode conservation tally (`None` when the audit is off).
    pub observed: Option<&'a mut ObservedAccesses>,
    /// Cycle-attribution sample under construction, when this access is
    /// in the profiler's 1-in-N sample. Routing layers add the tag-phase
    /// cycles they spend; `None` (the overwhelmingly common case) costs
    /// them one branch.
    pub profile: Option<&'a mut PhaseSample>,
}

impl RouteEnv<'_> {
    /// Emits an observation to the policy, tallying bandwidth-bearing
    /// events for the checked-mode conservation audit. All routing-layer
    /// observations must flow through here, not `policy.observe`
    /// directly — the audit compares exactly what was emitted against
    /// what the controller accumulated.
    pub fn observe(&mut self, event: Observation, now: Cycle) {
        if let Some(tally) = self.observed.as_deref_mut() {
            match event {
                Observation::CacheAccess { .. } => tally.cache += 1,
                Observation::MmAccess => tally.mm += 1,
                _ => {}
            }
        }
        self.policy.observe(event, now);
    }

    /// Builds the [`ReadContext`] handed to the policy: queue-depth
    /// estimates for both paths at `now`.
    pub fn read_context(
        &self,
        cache_wait: Cycle,
        block: u64,
        core: usize,
        now: Cycle,
    ) -> ReadContext {
        ReadContext {
            block,
            core,
            now,
            cache_wait,
            mm_wait: self.mm.estimated_wait(block, now),
        }
    }
}

/// One memory-side cache architecture, as seen by the subsystem.
///
/// Implementations own the *routing* decisions of the paper's Section IV
/// for their geometry — how a demand read or write consults the policy,
/// touches the array, and falls through to main memory — while the
/// subsystem stays architecture-agnostic: it only ticks the policy,
/// counts demand, and delegates. New architectures implement this trait
/// and add one arm to [`build_cache`]; nothing else changes.
pub(crate) trait MemSideCache {
    /// Routes a demand read; returns its completion cycle.
    fn read(&mut self, env: &mut RouteEnv, block: u64, core: usize, pc: u64, now: Cycle) -> Cycle;

    /// Routes a demand write (an L3 dirty eviction).
    fn write(&mut self, env: &mut RouteEnv, block: u64, now: Cycle);

    /// How far this cache's queues run ahead of `now` for a read of
    /// `block` (prefetch-throttling signal). Architectures without a
    /// meaningful queue report zero.
    fn queue_wait(&self, _block: u64, _now: Cycle) -> Cycle {
        0
    }

    /// Flushes buffered array writes at end of simulation.
    fn flush(&mut self, _now: Cycle) {}

    /// Total CAS operations issued to the cache array so far.
    fn cas_total(&self) -> u64 {
        0
    }

    /// DRAM statistics of the cache array, if it is DRAM-backed.
    fn dram_stats(&self) -> Option<DramStats> {
        None
    }

    /// The tag-cache miss ratio, for architectures with an SRAM tag cache.
    fn tag_cache_miss_ratio(&self) -> Option<f64> {
        None
    }

    /// Applies partitioner maintenance: BATMAN's newly disabled sets lose
    /// their contents, SBD's evicted Dirty List pages are cleaned. Only
    /// meaningful for the sectored architecture; others ignore it.
    fn apply_maintenance(
        &mut self,
        _env: &mut RouteEnv,
        _disabled_sets: &[u64],
        _sectors_to_clean: &[u64],
        _now: Cycle,
    ) {
    }

    /// Arms a fault-injection schedule on the cache's DRAM channels.
    /// Architectures without injectable devices ignore it (the default).
    fn apply_faults(&mut self, _schedule: &FaultSchedule) {}

    /// The next cycle strictly after `now` at which the cache's own DRAM
    /// devices have scheduled work (refresh-window start, opportunistic
    /// write-batch drain). All such work is applied lazily by the next
    /// access, so this is advisory — an upper bound for the epoch
    /// scheduler, never a correctness obligation. `Cycle::MAX` for
    /// architectures without scheduled device work (the default).
    fn next_scheduled_event(&self, _now: Cycle) -> Cycle {
        Cycle::MAX
    }
}

/// A system without a memory-side cache: everything goes to main memory.
struct NoCache;

impl MemSideCache for NoCache {
    fn read(
        &mut self,
        env: &mut RouteEnv,
        block: u64,
        _core: usize,
        _pc: u64,
        now: Cycle,
    ) -> Cycle {
        env.stats.ms_read_misses += 1;
        env.mm.read_block(block, now)
    }

    fn write(&mut self, env: &mut RouteEnv, block: u64, now: Cycle) {
        env.mm.write_block(block, now);
    }
}

/// The construction-time dispatch: the only place in the subsystem that
/// matches on the configured cache architecture.
fn build_cache(config: &SystemConfig) -> Box<dyn MemSideCache> {
    match &config.cache {
        CacheKind::None => Box::new(NoCache),
        CacheKind::Sectored {
            capacity_bytes,
            sector_bytes,
            ways,
            dram,
            tag_cache,
        } => Box::new(SectoredDramCache::new(
            *capacity_bytes,
            *sector_bytes,
            *ways,
            dram.clone(),
            config.cpu_mhz,
            *tag_cache,
        )),
        CacheKind::Alloy {
            capacity_bytes,
            dram,
            bear,
        } => Box::new(AlloyCache::new(
            *capacity_bytes,
            dram.clone(),
            config.cpu_mhz,
            *bear,
        )),
        CacheKind::Edram {
            capacity_bytes,
            sector_bytes,
            ways,
            direction,
        } => Box::new(EdramCache::with_geometry(
            *capacity_bytes,
            *sector_bytes,
            *ways,
            direction.clone(),
            config.cpu_mhz,
            8,
        )),
        CacheKind::FlatTier {
            capacity_bytes,
            dram,
            goal,
        } => Box::new(FlatTier::new(
            *capacity_bytes,
            dram.clone(),
            config.cpu_mhz,
            *goal,
            config.mm.peak_gbps(),
        )),
    }
}

/// Tracks an armed [`FaultSchedule`]'s boundaries so the subsystem only
/// re-measures bandwidth (and notifies the policy) when the active fault
/// set actually changes — between boundaries the scales are constant.
struct FaultWatch {
    schedule: FaultSchedule,
    boundaries: Vec<Cycle>,
    /// Index of the next boundary not yet crossed.
    next: usize,
    /// Active event count at the last crossed boundary.
    active: usize,
    cache_channels: u32,
    mm_channels: u32,
}

/// The degradation state after crossing one or more fault boundaries.
struct FaultTransition {
    /// Events that became active across the crossed boundaries.
    applied: u64,
    /// Events that expired across the crossed boundaries.
    cleared: u64,
    /// Post-crossing delivered fraction of nominal cache bandwidth.
    cache_scale: f64,
    /// Post-crossing delivered fraction of nominal main-memory bandwidth.
    mm_scale: f64,
}

impl FaultWatch {
    fn new(schedule: FaultSchedule, cache_channels: u32, mm_channels: u32) -> Self {
        let boundaries = schedule.boundaries();
        Self {
            schedule,
            boundaries,
            next: 0,
            active: 0,
            cache_channels,
            mm_channels,
        }
    }

    /// Advances past every boundary at or before `now`; `Some` when at
    /// least one was crossed. The fast path (no boundary due) is two
    /// compares.
    fn poll(&mut self, now: Cycle) -> Option<FaultTransition> {
        if self.next >= self.boundaries.len() || self.boundaries[self.next] > now {
            return None;
        }
        let (mut applied, mut cleared) = (0u64, 0u64);
        let mut at = now;
        while self.next < self.boundaries.len() && self.boundaries[self.next] <= now {
            at = self.boundaries[self.next];
            self.next += 1;
            let active = self.schedule.active_count(at);
            applied += active.saturating_sub(self.active) as u64;
            cleared += self.active.saturating_sub(active) as u64;
            self.active = active;
        }
        let cache_scale = if self.cache_channels == 0 {
            1.0
        } else {
            self.schedule
                .bandwidth_scale(FaultTarget::Cache, at, self.cache_channels)
        };
        let mm_scale = self
            .schedule
            .bandwidth_scale(FaultTarget::MainMemory, at, self.mm_channels);
        Some(FaultTransition {
            applied,
            cleared,
            cache_scale,
            mm_scale,
        })
    }

    /// The next uncrossed fault boundary, `Cycle::MAX` once the schedule
    /// is exhausted.
    fn next_boundary(&self) -> Cycle {
        self.boundaries
            .get(self.next)
            .copied()
            .unwrap_or(Cycle::MAX)
    }
}

/// Channel count of the configured memory-side cache (per direction for
/// eDRAM), zero without one.
fn cache_channels(config: &SystemConfig) -> u32 {
    match &config.cache {
        CacheKind::None => 0,
        CacheKind::Sectored { dram, .. }
        | CacheKind::Alloy { dram, .. }
        | CacheKind::FlatTier { dram, .. } => dram.channels,
        CacheKind::Edram { direction, .. } => direction.channels,
    }
}

/// The memory subsystem below the shared L3.
pub struct MemorySubsystem {
    mm: DramModule,
    ms: Box<dyn MemSideCache>,
    policy: Box<dyn Partitioner>,
    stats: SimStats,
    telemetry: Option<SubsystemTelemetry>,
    /// Cycle-attribution profiler; created with the telemetry attachment
    /// when the build records telemetry and `DAP_PROFILE_SAMPLE` != 0.
    profiler: Option<AccessProfiler>,
    /// Sink receiving the profiler's per-window rollups (the same sink
    /// the DAP window trace goes to), retained so attachment order
    /// between telemetry and sink doesn't matter.
    profile_sink: Option<std::sync::Arc<dyn dap_core::TelemetrySink>>,
    faults: Option<FaultWatch>,
    /// Checked-mode served-access tally and the mode violations are
    /// reported in; `None` when the audit is off.
    audit: Option<(dap_core::AuditMode, ObservedAccesses)>,
}

impl MemorySubsystem {
    /// Builds the subsystem from a configuration and a policy. A fault
    /// schedule in the configuration is armed on both DRAM sides here,
    /// and its boundaries drive measured-bandwidth reports to the policy.
    pub fn new(config: &SystemConfig, policy: Box<dyn Partitioner>) -> Self {
        let mut mm = DramModule::new(config.mm.clone(), config.cpu_mhz);
        let mut ms = build_cache(config);
        let faults = config
            .faults
            .as_ref()
            .filter(|schedule| !schedule.is_empty())
            .map(|schedule| {
                mm.apply_faults(schedule, FaultTarget::MainMemory);
                ms.apply_faults(schedule);
                FaultWatch::new(schedule.clone(), cache_channels(config), config.mm.channels)
            });
        let audit_mode = dap_core::audit::default_mode();
        Self {
            mm,
            ms,
            policy,
            stats: SimStats::default(),
            telemetry: None,
            profiler: None,
            profile_sink: None,
            faults,
            audit: (audit_mode != dap_core::AuditMode::Off)
                .then(|| (audit_mode, ObservedAccesses::default())),
        }
    }

    /// Attaches simulator-side telemetry: demand reads/writes start
    /// feeding the queue-occupancy and latency histograms, sampled
    /// accesses get cycle-attribution profiled (see [`crate::profile`]),
    /// and [`Self::finalize`] folds in per-channel utilization. Without
    /// an attachment the hot paths pay one `Option` check.
    pub fn attach_telemetry(&mut self, telemetry: SubsystemTelemetry) {
        self.telemetry = Some(telemetry);
        self.profiler = AccessProfiler::from_env(self.policy.window_cycles().unwrap_or(64));
        if let (Some(profiler), Some(sink)) = (self.profiler.as_mut(), self.profile_sink.as_ref()) {
            profiler.attach_sink(sink.clone());
        }
    }

    /// Replaces the access profiler (tests and tools that need a fixed
    /// sampling interval; [`Self::attach_telemetry`] builds one from
    /// `DAP_PROFILE_SAMPLE` by default). A previously attached sink
    /// carries over.
    pub fn attach_profiler(&mut self, mut profiler: AccessProfiler) {
        if let Some(sink) = self.profile_sink.as_ref() {
            profiler.attach_sink(sink.clone());
        }
        self.profiler = Some(profiler);
    }

    /// Removes the access profiler (overhead-measurement tools that need
    /// telemetry attached but profiling off, independent of the
    /// environment). No-op when none is attached.
    pub fn detach_profiler(&mut self) {
        self.profiler = None;
    }

    /// Forwards a DAP window-trace sink to the policy (no-op for
    /// non-DAP policies) and to the access profiler's window rollups.
    pub fn attach_dap_sink(&mut self, sink: std::sync::Arc<dyn dap_core::TelemetrySink>) {
        if let Some(profiler) = self.profiler.as_mut() {
            profiler.attach_sink(sink.clone());
        }
        self.profile_sink = Some(sink.clone());
        self.policy.attach_dap_sink(sink);
    }

    /// Statistics collected so far (CAS totals are finalized by
    /// [`Self::finalize`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Mutable statistics (the hierarchy updates L3 counters here).
    pub fn stats_mut(&mut self) -> &mut SimStats {
        &mut self.stats
    }

    /// Main-memory module (diagnostics).
    pub fn main_memory(&self) -> &DramModule {
        &self.mm
    }

    /// Memory-side cache DRAM statistics (read+write path for eDRAM).
    pub fn ms_dram_stats(&self) -> Option<DramStats> {
        self.ms.dram_stats()
    }

    /// The sectored cache's tag-cache miss ratio, if applicable.
    pub fn tag_cache_miss_ratio(&self) -> Option<f64> {
        self.ms.tag_cache_miss_ratio()
    }

    /// Flushes buffered writes and folds DRAM CAS totals into the stats.
    pub fn finalize(&mut self, now: Cycle) {
        self.mm.flush_writes(now);
        self.ms.flush(now);
        self.stats.mm_cas = self.mm.stats().cas_total();
        self.stats.ms_cas = self.ms.cas_total();
        if let Some(profiler) = self.profiler.as_mut() {
            profiler.emit();
        }
        if self.telemetry.is_some() {
            let activity = self.mm.per_channel_activity();
            if let Some(telemetry) = self.telemetry.as_mut() {
                telemetry.record_channel_activity(&activity, now);
                telemetry.flush();
            }
        }
        self.check_served_conservation();
    }

    /// Checked mode: the bandwidth-bearing observations the routing layer
    /// emitted must equal what the policy's DAP controller accumulated —
    /// Eq. 1/2's access counts are conserved between the simulator's
    /// channel accounting and the partitioning model. Skipped for
    /// policies without a checked controller.
    fn check_served_conservation(&self) {
        let Some((mode, tally)) = self.audit.as_ref() else {
            return;
        };
        let Some((cache, mm)) = self.policy.audited_totals() else {
            return;
        };
        for (source, emitted, noted) in [("cache", tally.cache, cache), ("mm", tally.mm, mm)] {
            if emitted != noted {
                dap_core::audit::report_violation(
                    *mode,
                    dap_core::AuditViolation {
                        window_index: 0,
                        invariant: dap_core::Invariant::ServedConservation,
                        source,
                        expected: emitted as f64,
                        actual: noted as f64,
                        detail: format!(
                            "at finalize: {source} accesses emitted by routing ({emitted}) \
                             != accumulated by controller ({noted})"
                        ),
                    },
                );
            }
        }
    }

    /// DAP decision statistics, if the policy is DAP.
    pub fn dap_decisions(&self) -> Option<dap_core::DecisionStats> {
        self.policy.dap_decisions()
    }

    /// How far the relevant queues run ahead of `now` for a read to
    /// `block` (prefetch throttling signal).
    pub fn queue_pressure(&self, block: u64, now: Cycle) -> Cycle {
        self.ms
            .queue_wait(block, now)
            .max(self.mm.estimated_wait(block, now))
    }

    /// The earliest cycle strictly after `now` at which any component
    /// below the L3 has *scheduled* work: a fault-schedule boundary, a
    /// DRAM refresh-window start, or an opportunistic write-batch drain
    /// point (cache array or main memory). Every such event is applied
    /// lazily by whichever access next observes the crossing, so the
    /// value is advisory: the epoch-skipping kernel uses it only to bound
    /// how far it jumps, which keeps epoch accounting (and the
    /// cancellation check) aligned with device activity without changing
    /// any simulated state. `Cycle::MAX` when nothing is scheduled.
    pub fn next_scheduled_event(&self, now: Cycle) -> Cycle {
        let faults = self
            .faults
            .as_ref()
            .map_or(Cycle::MAX, FaultWatch::next_boundary);
        faults
            .min(self.mm.next_scheduled_event(now))
            .min(self.ms.next_scheduled_event(now))
    }

    /// A read arriving from the L3. Returns its completion cycle.
    pub fn read(
        &mut self,
        block: u64,
        core: usize,
        pc: u64,
        now: Cycle,
        kind: MemAccessKind,
    ) -> Cycle {
        self.poll_faults(now);
        self.policy.tick(now);
        self.apply_policy_maintenance(now);
        if kind == MemAccessKind::DemandRead {
            self.stats.demand_reads += 1;
        }
        // Cycle attribution: for the deterministic 1-in-N sample, capture
        // the pure `&self` pre-access state the decomposition needs —
        // both queue estimates, the technique counters, and the hit
        // counter that reveals which source served the read. Reads only
        // and never mutates, so profiling cannot perturb timing.
        let mut phase = PhaseSample::default();
        let pre = if kind == MemAccessKind::DemandRead
            && self.profiler.as_ref().is_some_and(|p| p.samples(block))
        {
            Some((
                self.ms.queue_wait(block, now),
                self.mm.estimated_wait(block, now),
                self.policy.dap_decisions().unwrap_or_default(),
                self.stats.ms_read_hits,
            ))
        } else {
            None
        };
        let mut env = RouteEnv {
            mm: &mut self.mm,
            policy: self.policy.as_mut(),
            stats: &mut self.stats,
            observed: self.audit.as_mut().map(|(_, tally)| tally),
            profile: pre.is_some().then_some(&mut phase),
        };
        let done = self.ms.read(&mut env, block, core, pc, now);
        if let Some((cache_wait, mm_wait, decisions_before, hits_before)) = pre {
            phase.cache_queue_wait = cache_wait;
            phase.mm_queue_wait = mm_wait;
            let after = self.policy.dap_decisions().unwrap_or_default();
            phase.granted = grant_fired(&decisions_before, &after);
            if phase.granted {
                phase.dap_decision = cache_wait.abs_diff(mm_wait);
            }
            let served_wait = if self.stats.ms_read_hits > hits_before {
                cache_wait
            } else {
                mm_wait
            };
            phase.channel_cas = done
                .saturating_sub(now)
                .saturating_sub(served_wait)
                .saturating_sub(phase.tag_probe + phase.cache_tag);
            if let Some(telemetry) = self.telemetry.as_mut() {
                telemetry.record_profile_sample(&phase);
            }
            if let Some(profiler) = self.profiler.as_mut() {
                profiler.record(now, &phase);
            }
        }
        if kind == MemAccessKind::DemandRead {
            self.stats.read_latency_sum += done.saturating_sub(now);
            self.stats.read_latency_count += 1;
            if self.telemetry.is_some() {
                let cache_wait = self.ms.queue_wait(block, now);
                let mm_wait = self.mm.estimated_wait(block, now);
                if let Some(telemetry) = self.telemetry.as_mut() {
                    telemetry.record_demand_read(done.saturating_sub(now), cache_wait, mm_wait);
                }
            }
        }
        done
    }

    /// A dirty eviction arriving from the L3.
    pub fn write(&mut self, block: u64, now: Cycle) {
        self.poll_faults(now);
        self.policy.tick(now);
        self.stats.demand_writes += 1;
        if let Some(telemetry) = self.telemetry.as_mut() {
            telemetry.record_demand_write();
        }
        // Writes have no completion cycle a core waits on, so a sampled
        // write attributes its tag phases, arrival queue waits, and grant
        // decision but leaves `channel_cas` at zero.
        let mut phase = PhaseSample {
            write: true,
            ..PhaseSample::default()
        };
        let pre = if self.profiler.as_ref().is_some_and(|p| p.samples(block)) {
            Some((
                self.ms.queue_wait(block, now),
                self.mm.estimated_wait(block, now),
                self.policy.dap_decisions().unwrap_or_default(),
            ))
        } else {
            None
        };
        let mut env = RouteEnv {
            mm: &mut self.mm,
            policy: self.policy.as_mut(),
            stats: &mut self.stats,
            observed: self.audit.as_mut().map(|(_, tally)| tally),
            profile: pre.is_some().then_some(&mut phase),
        };
        self.ms.write(&mut env, block, now);
        if let Some((cache_wait, mm_wait, decisions_before)) = pre {
            phase.cache_queue_wait = cache_wait;
            phase.mm_queue_wait = mm_wait;
            let after = self.policy.dap_decisions().unwrap_or_default();
            phase.granted = grant_fired(&decisions_before, &after);
            if phase.granted {
                phase.dap_decision = cache_wait.abs_diff(mm_wait);
            }
            if let Some(telemetry) = self.telemetry.as_mut() {
                telemetry.record_profile_sample(&phase);
            }
            if let Some(profiler) = self.profiler.as_mut() {
                profiler.record(now, &phase);
            }
        }
    }

    /// Crosses any fault-schedule boundaries reached by `now`: reports
    /// the new measured bandwidth to the policy and counts the
    /// applied/cleared events in telemetry. No-faults runs pay one
    /// `Option` check.
    fn poll_faults(&mut self, now: Cycle) {
        let Some(watch) = self.faults.as_mut() else {
            return;
        };
        let Some(transition) = watch.poll(now) else {
            return;
        };
        self.policy
            .note_bandwidth_scale(transition.cache_scale, transition.mm_scale, now);
        if let Some(telemetry) = self.telemetry.as_mut() {
            telemetry.record_fault_transition(transition.applied, transition.cleared);
        }
    }

    /// Drains the policy's pending maintenance (always, so non-sectored
    /// architectures discard it just like the policy expects) and hands it
    /// to the cache.
    fn apply_policy_maintenance(&mut self, now: Cycle) {
        let sets = self.policy.take_newly_disabled_sets();
        let sectors = self.policy.take_sectors_to_clean();
        if sets.is_empty() && sectors.is_empty() {
            return;
        }
        let mut env = RouteEnv {
            mm: &mut self.mm,
            policy: self.policy.as_mut(),
            stats: &mut self.stats,
            observed: self.audit.as_mut().map(|(_, tally)| tally),
            profile: None,
        };
        self.ms.apply_maintenance(&mut env, &sets, &sectors, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_watch_reports_only_on_boundary_crossings() {
        let schedule = FaultSchedule::new(1).throttle(FaultTarget::Cache, 2, 1, 100, 200);
        let mut watch = FaultWatch::new(schedule, 4, 2);
        assert!(watch.poll(50).is_none());
        let t = watch.poll(150).expect("throttle start crossed");
        assert_eq!((t.applied, t.cleared), (1, 0));
        assert!((t.cache_scale - 0.5).abs() < 1e-12);
        assert!((t.mm_scale - 1.0).abs() < 1e-12);
        assert!(watch.poll(180).is_none(), "active set unchanged");
        let t = watch.poll(5_000).expect("throttle end crossed");
        assert_eq!((t.applied, t.cleared), (0, 1));
        assert!((t.cache_scale - 1.0).abs() < 1e-12);
        assert!(watch.poll(9_000).is_none(), "schedule exhausted");
    }

    #[test]
    fn fault_watch_folds_multiple_boundaries_into_one_report() {
        // An outage fully inside a skipped span: both its start and end
        // are crossed in one poll, so it nets out applied=1, cleared=1
        // and the final scale is fault-free.
        let schedule = FaultSchedule::new(7).channel_outage(FaultTarget::MainMemory, 0, 100, 200);
        let mut watch = FaultWatch::new(schedule, 4, 2);
        let t = watch.poll(300).expect("two boundaries crossed");
        assert_eq!((t.applied, t.cleared), (1, 1));
        assert!((t.mm_scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cacheless_config_reports_full_cache_scale() {
        let schedule = FaultSchedule::new(3).throttle(FaultTarget::Cache, 4, 1, 0, 100);
        let mut watch = FaultWatch::new(schedule, 0, 2);
        let t = watch.poll(10).expect("boundary at zero crossed");
        assert!((t.cache_scale - 1.0).abs() < 1e-12, "no cache to degrade");
    }

    #[test]
    fn subsystem_arms_faults_and_notifies_measured_policy() {
        use crate::policy::DapPolicy;

        let schedule = FaultSchedule::new(11).throttle(FaultTarget::Cache, 2, 1, 1_000, u64::MAX);
        let config = SystemConfig::sectored_dram_cache(1).with_faults(schedule);
        let dap = dap_core::DapConfig::hbm_ddr4();
        let policy = Box::new(DapPolicy::with_measured_bandwidth(dap));
        let mut sub = MemorySubsystem::new(&config, policy);
        sub.read(
            0x1000 >> crate::BLOCK_SHIFT,
            0,
            0,
            10,
            MemAccessKind::DemandRead,
        );
        assert_eq!(
            sub.dap_decisions().expect("DAP policy").bandwidth_resolves,
            0,
            "before the throttle starts the budget is nominal"
        );
        sub.read(
            0x2000 >> crate::BLOCK_SHIFT,
            0,
            0,
            2_000,
            MemAccessKind::DemandRead,
        );
        let decisions = sub.dap_decisions().expect("DAP policy");
        assert_eq!(decisions.bandwidth_resolves, 1, "one boundary crossed");
    }
}
