//! Cycle-attribution profiling: where do a demand access's cycles go?
//!
//! The DAP paper's argument is about *queueing* — when the memory-side
//! cache saturates, reads pile up behind its channels while main-memory
//! bandwidth idles, and the controller's per-window grants should collapse
//! that cache-queue wait. This module makes the claim observable: a
//! deterministic 1-in-N sample of demand accesses is decomposed into the
//! phases of the Section IV service path
//!
//! | phase | meaning |
//! |---|---|
//! | `tag_probe` | SRAM tag-cache probe that resolved the metadata |
//! | `cache_tag` | DRAM-cache (or on-die eDRAM) tag access on a tag-cache miss |
//! | `cache_queue_wait` | memory-side-cache queue depth at arrival |
//! | `mm_queue_wait` | main-memory queue depth at arrival |
//! | `channel_cas` | residual service time at the serving source's channels |
//! | `dap_decision` | queue-wait gap `|cache - mm|` the grant decided across |
//!
//! and accumulated two ways: per-phase histograms in the shared metrics
//! registry (`prof.*`, flushed with the rest of
//! [`SubsystemTelemetry`](crate::telemetry::SubsystemTelemetry)), and
//! per-DAP-window [`ProfileWindow`] rollups pushed through the
//! `TelemetrySink` so a window trace shows the queue-wait shift in time.
//!
//! ## Determinism and cost
//!
//! Sampling is address-hash based (a SplitMix64 finalizer over the block
//! number) — no RNG, no state — so the same simulation samples the same
//! accesses at any thread count. Unsampled accesses pay one hash and one
//! branch; under the `telemetry-off` feature [`AccessProfiler::from_env`]
//! returns `None` and the entire subsystem compiles down to nothing.
//! Profiling reads only `&self` estimates and pre-existing statistics, so
//! it can never perturb simulation timing.

use std::sync::Arc;

use dap_core::{DecisionStats, ProfileWindow, TelemetrySink};

use crate::clock::Cycle;

/// Environment variable selecting the sampling interval: profile one in
/// `N` demand accesses (default [`DEFAULT_SAMPLE_INTERVAL`]); `0`
/// disables profiling entirely.
pub const SAMPLE_ENV: &str = "DAP_PROFILE_SAMPLE";

/// Default sampling interval: one in 64 demand accesses.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 64;

/// SplitMix64 finalizer: a statistically strong 64-bit mix, used to turn
/// block addresses into sampling decisions without any RNG state.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The phase decomposition of one sampled demand access. Cycles, except
/// the flags. Routing layers fill the tag phases through
/// `RouteEnv::profile`; the subsystem fills the rest centrally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSample {
    /// Whether this was a demand write (L3 dirty eviction).
    pub write: bool,
    /// Cycles resolving tags in the SRAM tag cache.
    pub tag_probe: u64,
    /// Cycles resolving tags in the cache array itself (tag-cache miss,
    /// or on-die eDRAM tag latency).
    pub cache_tag: u64,
    /// Memory-side-cache queue depth when the access arrived.
    pub cache_queue_wait: u64,
    /// Main-memory queue depth when the access arrived.
    pub mm_queue_wait: u64,
    /// Residual channel service time at the serving source (completion
    /// latency minus the serving queue wait and tag phases).
    pub channel_cas: u64,
    /// The queue-wait gap a DAP grant decided across (`|cache - mm|`),
    /// zero when no technique fired on this access.
    pub dap_decision: u64,
    /// Whether a DAP technique credit was applied to this access.
    pub granted: bool,
}

/// Returns `true` when any technique-application counter advanced between
/// the two [`DecisionStats`] snapshots — i.e. a DAP grant fired somewhere
/// inside the routed access.
#[must_use]
pub fn grant_fired(before: &DecisionStats, after: &DecisionStats) -> bool {
    after.fwb > before.fwb
        || after.wb > before.wb
        || after.ifrm > before.ifrm
        || after.sfrm > before.sfrm
        || after.write_through > before.write_through
}

/// Deterministic 1-in-N access sampler plus the per-window rollup state.
///
/// Created by [`AccessProfiler::from_env`] when the build records
/// telemetry and the interval is non-zero; the subsystem holds it as an
/// `Option` so disabled builds pay nothing.
pub struct AccessProfiler {
    interval: u64,
    window_cycles: u64,
    current: ProfileWindow,
    /// Whether `current` has accumulated anything since the last emit.
    dirty: bool,
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl AccessProfiler {
    /// Builds a profiler sampling one in `interval` accesses over DAP
    /// windows of `window_cycles`. Returns `None` for a zero interval.
    #[must_use]
    pub fn new(interval: u64, window_cycles: u32) -> Option<Self> {
        if interval == 0 || !dap_telemetry::enabled() {
            return None;
        }
        Some(Self {
            interval,
            window_cycles: u64::from(window_cycles.max(1)),
            current: ProfileWindow::default(),
            dirty: false,
            sink: None,
        })
    }

    /// Builds the profiler from [`SAMPLE_ENV`] (default 1-in-64; `0` or
    /// an unparseable value disables). Always `None` under the
    /// `telemetry-off` feature.
    #[must_use]
    pub fn from_env(window_cycles: u32) -> Option<Self> {
        if !dap_telemetry::enabled() {
            return None;
        }
        let interval = match std::env::var(SAMPLE_ENV) {
            Ok(raw) => raw.trim().parse::<u64>().ok().unwrap_or(0),
            Err(_) => DEFAULT_SAMPLE_INTERVAL,
        };
        Self::new(interval, window_cycles)
    }

    /// The sampling interval (one in `interval` accesses).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Whether the access to `block` is in the deterministic sample.
    #[inline]
    #[must_use]
    pub fn samples(&self, block: u64) -> bool {
        self.interval == 1 || mix64(block).is_multiple_of(self.interval)
    }

    /// Attaches the sink that receives per-window rollups (the same sink
    /// the DAP controller's window trace goes to).
    pub fn attach_sink(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.sink = Some(sink);
    }

    /// Folds one sampled access into the rollup of the window containing
    /// `now`, emitting the previous window to the sink when a boundary
    /// was crossed.
    pub fn record(&mut self, now: Cycle, sample: &PhaseSample) {
        let index = now / self.window_cycles;
        if index != self.current.window_index {
            self.emit();
            self.current.window_index = index;
        }
        self.dirty = true;
        self.current.samples += 1;
        self.current.grants += u64::from(sample.granted);
        self.current.tag_probe += sample.tag_probe;
        self.current.cache_tag += sample.cache_tag;
        self.current.cache_queue_wait += sample.cache_queue_wait;
        self.current.mm_queue_wait += sample.mm_queue_wait;
        self.current.channel_cas += sample.channel_cas;
        self.current.dap_decision += sample.dap_decision;
    }

    /// Emits the in-progress window (if non-empty) and resets it. Called
    /// at window boundaries and from `MemorySubsystem::finalize` so the
    /// trailing partial window is never lost.
    pub fn emit(&mut self) {
        if self.dirty {
            if let Some(sink) = self.sink.as_ref() {
                sink.record_profile_window(&self.current);
            }
        }
        let index = self.current.window_index;
        self.current = ProfileWindow {
            window_index: index,
            ..ProfileWindow::default()
        };
        self.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_near_target_rate() {
        let Some(profiler) = AccessProfiler::new(64, 64) else {
            assert!(!dap_telemetry::enabled());
            return;
        };
        let hits: Vec<u64> = (0..100_000u64).filter(|&b| profiler.samples(b)).collect();
        // The hash is uniform: 1-in-64 sampling over 100k distinct blocks
        // lands within a loose band around 1562.
        assert!(
            (1_000..2_300).contains(&hits.len()),
            "sampled {} of 100000",
            hits.len()
        );
        let again: Vec<u64> = (0..100_000u64).filter(|&b| profiler.samples(b)).collect();
        assert_eq!(hits, again, "address-hash sampling has no state");
        let every = AccessProfiler::new(1, 64).unwrap();
        assert!((0..1000u64).all(|b| every.samples(b)));
    }

    #[test]
    fn zero_interval_disables() {
        assert!(AccessProfiler::new(0, 64).is_none());
    }

    #[test]
    fn windows_roll_and_trailing_partial_is_emitted() {
        if !dap_telemetry::enabled() {
            return;
        }
        let recorder = Arc::new(dap_telemetry::WindowTraceRecorder::new(128));
        let mut profiler = AccessProfiler::new(1, 64).unwrap();
        profiler.attach_sink(recorder.clone());
        let sample = PhaseSample {
            cache_queue_wait: 10,
            granted: true,
            ..PhaseSample::default()
        };
        profiler.record(10, &sample);
        profiler.record(20, &sample);
        profiler.record(70, &sample); // crosses into window 1
        profiler.record(300, &sample); // crosses into window 4
        profiler.emit(); // finalize: flush the partial window 4
        let windows = recorder.profile_windows();
        assert_eq!(
            windows.iter().map(|w| w.window_index).collect::<Vec<_>>(),
            vec![0, 1, 4]
        );
        assert_eq!(windows[0].samples, 2);
        assert_eq!(windows[0].cache_queue_wait, 20);
        assert_eq!(windows[0].grants, 2);
        assert_eq!(windows[2].samples, 1);
        profiler.emit();
        assert_eq!(
            recorder.profile_windows().len(),
            3,
            "an empty emit adds nothing"
        );
    }

    #[test]
    fn grant_detection_diffs_every_technique_counter() {
        let before = DecisionStats::default();
        assert!(!grant_fired(&before, &before));
        for field in 0..5 {
            let mut after = DecisionStats::default();
            match field {
                0 => after.fwb = 1,
                1 => after.wb = 1,
                2 => after.ifrm = 1,
                3 => after.sfrm = 1,
                _ => after.write_through = 1,
            }
            assert!(grant_fired(&before, &after), "field {field}");
        }
        // Window bookkeeping advancing is not a grant.
        let after = DecisionStats {
            windows_total: 5,
            windows_partitioned: 2,
            bandwidth_resolves: 1,
            ..DecisionStats::default()
        };
        assert!(!grant_fired(&before, &after));
    }
}
