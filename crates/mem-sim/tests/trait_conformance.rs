//! Trait conformance: one mix through every `MemSideCache` implementation
//! (sectored DRAM, Alloy, eDRAM, flat tier, and the no-cache fallback),
//! checking the accounting invariants the routing contract promises —
//! whatever the architecture, retirement, hit/miss bookkeeping, and CAS
//! bandwidth attribution must stay coherent.

use mem_sim::mscache::PlacementGoal;
use mem_sim::{CacheKind, RunResult, System, SystemConfig};
use workloads::{rate_mode, spec};

const INSTR: u64 = 40_000;

fn run(config: SystemConfig) -> (RunResult, u64, Option<u64>) {
    let cores = config.cores;
    let mut system = System::new(config, rate_mode(spec("libquantum").unwrap(), cores));
    let result = system.run(INSTR);
    let mm_cas = system.memory().main_memory().stats().cas_total();
    let ms_cas = system.memory().ms_dram_stats().map(|s| s.cas_total());
    (result, mm_cas, ms_cas)
}

#[test]
fn every_architecture_upholds_accounting_invariants() {
    let configs: Vec<(&str, SystemConfig)> = vec![
        ("sectored", SystemConfig::sectored_dram_cache(2)),
        ("alloy", SystemConfig::alloy_cache(2)),
        ("edram", SystemConfig::edram_cache(2, 256)),
        (
            "flat-tier",
            SystemConfig::flat_tier(2, PlacementGoal::MaximizeFastHits),
        ),
        ("no-cache", SystemConfig::no_cache(2)),
    ];
    for (name, config) in configs {
        let has_cache = !matches!(config.cache, CacheKind::None);
        let (r, mm_cas, ms_cas) = run(config);

        // Retirement: every core completes its budget.
        assert_eq!(r.per_core.len(), 2, "{name}");
        assert!(
            r.per_core.iter().all(|c| c.instructions == INSTR),
            "{name}: cores must retire the full budget"
        );
        assert!(r.total_ipc() > 0.0, "{name}");

        let s = &r.stats;
        // Every routed read (demand, RFO, or prefetch) is accounted as
        // exactly one hit or miss, so the total covers at least the
        // demand reads.
        let reads = s.ms_read_hits + s.ms_read_misses;
        assert!(s.demand_reads > 0, "{name}: no demand reads");
        assert!(reads >= s.demand_reads, "{name}: unaccounted demand reads");
        assert!(
            (0.0..=1.0).contains(&s.ms_hit_ratio()),
            "{name}: hit ratio out of range"
        );
        assert!(s.avg_read_latency() > 0.0, "{name}");

        // CAS attribution: SimStats totals are exactly the DRAM modules'
        // counters, and every run moves main-memory data.
        assert_eq!(s.mm_cas, mm_cas, "{name}: main-memory CAS mismatch");
        assert!(s.mm_cas > 0, "{name}");
        match ms_cas {
            Some(cas) => {
                assert!(
                    has_cache,
                    "{name}: cacheless arch reported cache DRAM stats"
                );
                assert_eq!(s.ms_cas, cas, "{name}: cache CAS mismatch");
                assert!(
                    (0.0..=1.0).contains(&s.mm_cas_fraction()),
                    "{name}: CAS fraction out of range"
                );
            }
            None => {
                assert_eq!(s.ms_cas, 0, "{name}: phantom cache CAS");
                assert_eq!(s.ms_read_hits, 0, "{name}: hits without a cache");
                assert_eq!(
                    s.mm_cas_fraction(),
                    1.0,
                    "{name}: all CAS must be main memory"
                );
            }
        }
    }
}

/// The no-cache fallback and the flat tier never consult the partitioning
/// policy, so a DAP-specific counter must stay untouched there, while the
/// cache architectures route through it.
#[test]
fn cacheless_architectures_never_report_dap_decisions() {
    for config in [
        SystemConfig::no_cache(2),
        SystemConfig::flat_tier(2, PlacementGoal::BandwidthOptimal),
    ] {
        let (r, _, _) = run(config);
        assert!(r.dap_decisions.is_none());
        assert_eq!(r.stats.fills_bypassed, 0);
        assert_eq!(r.stats.forced_read_misses, 0);
        assert_eq!(r.stats.write_throughs, 0);
    }
}
