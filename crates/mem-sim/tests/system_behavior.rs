//! End-to-end behavioural tests of the simulator: the phenomena the paper
//! depends on must emerge from the model before any experiment is
//! meaningful.

use mem_sim::trace::{ChaseTrace, StrideTrace, TraceSource};
use mem_sim::{CacheKind, DapPolicy, System, SystemConfig};

fn rate_traces(
    cores: usize,
    make: impl Fn(u64) -> Box<dyn TraceSource>,
) -> Vec<Box<dyn TraceSource>> {
    // Rate mode: one copy per core in a disjoint address region. The
    // stride is not a power of two so cores do not alias onto the same
    // cache sets (real physical layouts are page-randomized).
    (0..cores)
        .map(|i| make(0x1000_0000 + (i as u64) * ((1 << 32) + 0x31_1000)))
        .collect()
}

/// A bandwidth-hungry streaming workload: low gap, large footprint.
fn streaming(cores: usize, footprint: u64) -> Vec<Box<dyn TraceSource>> {
    rate_traces(cores, |base| {
        Box::new(StrideTrace::new(base, 2, footprint, 0.2))
    })
}

#[test]
fn single_core_streaming_hits_the_sectored_cache() {
    // Footprint (12 MB) exceeds the 8 MB L3 yet fits the 256 MB cache:
    // after the first pass installs it, reads hit the memory-side cache.
    let mut sys = System::new(SystemConfig::sectored_dram_cache(1), streaming(1, 12 << 20));
    let r = sys.run(2_000_000);
    assert!(r.stats.demand_reads > 0);
    let hit = r.stats.ms_hit_ratio();
    assert!(hit > 0.6, "streaming should mostly hit after warmup: {hit}");
}

#[test]
fn cache_misses_when_footprint_exceeds_capacity() {
    // Footprint 4x the 256 MB scaled cache: hit rate must collapse.
    let config = SystemConfig::sectored_dram_cache(1);
    let mut sys = System::new(config, streaming(1, 1 << 30));
    let r = sys.run(300_000);
    assert!(
        r.stats.ms_hit_ratio() < 0.6,
        "thrashing footprint should miss: {}",
        r.stats.ms_hit_ratio()
    );
}

#[test]
fn eight_core_streaming_saturates_cache_bandwidth() {
    // Eight bandwidth-hungry cores: the baseline leaves main memory nearly
    // idle while the cache bus saturates — the paper's Figure 1/8 setup.
    let mut sys = System::new(SystemConfig::sectored_dram_cache(8), streaming(8, 4 << 20));
    let r = sys.run(600_000);
    let frac = r.stats.mm_cas_fraction();
    assert!(
        frac < 0.30,
        "baseline main-memory CAS fraction should be small: {frac}"
    );
}

#[test]
fn dap_raises_mm_cas_fraction_toward_optimal() {
    let baseline = {
        let mut sys = System::new(SystemConfig::sectored_dram_cache(8), streaming(8, 4 << 20));
        sys.run(600_000)
    };
    let dap = {
        let policy = DapPolicy::new(dap_core::DapConfig::hbm_ddr4());
        let mut sys = System::with_policy(
            SystemConfig::sectored_dram_cache(8),
            streaming(8, 4 << 20),
            Box::new(policy),
        );
        sys.run(600_000)
    };
    let (b, d) = (
        baseline.stats.mm_cas_fraction(),
        dap.stats.mm_cas_fraction(),
    );
    assert!(
        d > b,
        "DAP must move traffic to main memory: baseline {b}, dap {d}"
    );
    assert!(
        d > 0.10 && d < 0.45,
        "DAP CAS fraction should approach the optimal 0.27: got {d}"
    );
    assert!(dap.dap_decisions.expect("dap ran").total_decisions() > 0);
}

#[test]
fn dap_improves_bandwidth_bound_throughput() {
    let run = |with_dap: bool| {
        let config = SystemConfig::sectored_dram_cache(8);
        let traces = streaming(8, 4 << 20);
        let mut sys = if with_dap {
            let policy = DapPolicy::new(dap_core::DapConfig::hbm_ddr4());
            System::with_policy(config, traces, Box::new(policy))
        } else {
            System::new(config, traces)
        };
        sys.run(600_000).total_ipc()
    };
    let (base, dap) = (run(false), run(true));
    assert!(
        dap > base * 1.02,
        "DAP should speed up a bandwidth-bound workload: base {base}, dap {dap}"
    );
}

#[test]
fn dap_harmless_on_low_bandwidth_workload() {
    // A pointer chase with long gaps is latency-bound: DAP should seldom
    // partition and must not hurt.
    let make = || -> Vec<Box<dyn TraceSource>> {
        (0..8)
            .map(|i| {
                Box::new(ChaseTrace::new(
                    0x1000_0000 + (i as u64) * (1 << 32),
                    30,
                    4 << 20,
                )) as Box<dyn TraceSource>
            })
            .collect()
    };
    let base = System::new(SystemConfig::sectored_dram_cache(8), make()).run(120_000);
    let policy = DapPolicy::new(dap_core::DapConfig::hbm_ddr4());
    let dap = System::with_policy(
        SystemConfig::sectored_dram_cache(8),
        make(),
        Box::new(policy),
    )
    .run(120_000);
    let (b, d) = (base.total_ipc(), dap.total_ipc());
    assert!(
        d > b * 0.97,
        "DAP must not hurt latency-bound work: base {b}, dap {d}"
    );
}

#[test]
fn no_cache_system_serves_everything_from_mm() {
    let mut sys = System::new(SystemConfig::no_cache(1), streaming(1, 8 << 20));
    let r = sys.run(100_000);
    assert_eq!(r.stats.ms_cas, 0);
    assert!(r.stats.mm_cas > 0);
}

#[test]
fn alloy_cache_end_to_end() {
    let mut sys = System::new(SystemConfig::alloy_cache(8), streaming(8, 4 << 20));
    let r = sys.run(600_000);
    // Direct-mapped conflicts and write-no-allocate cap the Alloy hit rate
    // well below the sectored cache's.
    assert!(
        r.stats.ms_hit_ratio() > 0.35,
        "alloy hit rate: {}",
        r.stats.ms_hit_ratio()
    );
    // TAD reads mean the cache CAS count exceeds demand reads alone.
    assert!(r.stats.ms_cas > 0);
}

#[test]
fn alloy_dap_beats_alloy_baseline_under_pressure() {
    let run = |with_dap: bool| {
        let mut config = SystemConfig::alloy_cache(8);
        if let CacheKind::Alloy { bear, .. } = &mut config.cache {
            *bear = true; // DAP's DBC design builds on the BEAR presence bit
        }
        let traces = streaming(8, 4 << 20);
        let mut sys = if with_dap {
            let policy = DapPolicy::new(dap_core::DapConfig::alloy_hbm_ddr4());
            System::with_policy(config, traces, Box::new(policy))
        } else {
            System::new(config, traces)
        };
        sys.run(600_000)
    };
    let base = run(false);
    let dap = run(true);
    assert!(
        dap.stats.mm_cas_fraction() > base.stats.mm_cas_fraction(),
        "alloy DAP must shift CAS to main memory"
    );
}

#[test]
fn edram_cache_end_to_end_with_dap() {
    let run = |with_dap: bool| {
        let config = SystemConfig::edram_cache(8, 256);
        // 8 x 384 KB streams: past the scaled 2 MB L3, within the scaled
        // 4 MB eDRAM.
        let traces = streaming(8, 384 << 10);
        let mut sys = if with_dap {
            let policy = DapPolicy::new(dap_core::DapConfig::edram_ddr4());
            System::with_policy(config, traces, Box::new(policy))
        } else {
            System::new(config, traces)
        };
        sys.run(600_000)
    };
    let base = run(false);
    let dap = run(true);
    assert!(base.stats.ms_hit_ratio() > 0.5);
    assert!(
        dap.total_ipc() > base.total_ipc() * 0.95,
        "eDRAM DAP should not collapse performance: base {}, dap {}",
        base.total_ipc(),
        dap.total_ipc()
    );
}

#[test]
fn mpki_reflects_workload_locality() {
    let chase: Vec<Box<dyn TraceSource>> =
        vec![Box::new(ChaseTrace::new(0x1000_0000, 5, 64 << 20))];
    let small: Vec<Box<dyn TraceSource>> =
        vec![Box::new(StrideTrace::new(0x1000_0000, 5, 1 << 20, 0.0))];
    // Enough instructions that the 1 MB loop revisits its footprint many
    // times (it fits in L3), while the 64 MB chase keeps missing.
    let r_chase = System::new(SystemConfig::sectored_dram_cache(1), chase).run(600_000);
    let r_small = System::new(SystemConfig::sectored_dram_cache(1), small).run(600_000);
    assert!(
        r_chase.l3_mpki() > r_small.l3_mpki() * 2.0,
        "chase {} vs small {}",
        r_chase.l3_mpki(),
        r_small.l3_mpki()
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sys = System::new(SystemConfig::sectored_dram_cache(2), streaming(2, 4 << 20));
        sys.run(50_000)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.per_core[0].cycles, b.per_core[0].cycles);
}
