//! White-box tests of the memory subsystem's routing flows, driven through
//! purpose-built stub policies.

use mem_sim::clock::Cycle;
use mem_sim::system::MemAccessKind;
use mem_sim::{
    MemorySubsystem, Observation, Partitioner, ReadContext, ReadRoute, SystemConfig, WriteRoute,
};

/// A policy scripted to make one specific decision.
#[derive(Default)]
struct Scripted {
    force_hits: bool,
    bypass_writes: bool,
    bypass_fills: bool,
    write_through: bool,
    speculative: bool,
    steer: bool,
    /// Steering only engages from this cycle on (lets tests warm the cache
    /// with normal reads first).
    steer_after: Cycle,
    /// Sets that stay disabled for the whole run.
    disabled: Vec<u64>,
    /// Sets reported once for flushing.
    newly_disabled: Vec<u64>,
    clean_sectors: Vec<u64>,
    observations: std::cell::RefCell<Vec<Observation>>,
}

impl Partitioner for Scripted {
    fn observe(&mut self, event: Observation, _now: Cycle) {
        self.observations.get_mut().push(event);
    }
    fn route_read(&mut self, ctx: &ReadContext) -> ReadRoute {
        if self.speculative {
            ReadRoute::Speculative
        } else if self.steer && ctx.now >= self.steer_after {
            ReadRoute::SteerMainMemory
        } else {
            ReadRoute::Lookup
        }
    }
    fn force_clean_hit(&mut self, _ctx: &ReadContext) -> bool {
        self.force_hits
    }
    fn route_write(&mut self, _block: u64, _now: Cycle, hit: bool) -> WriteRoute {
        if self.write_through {
            WriteRoute::Both
        } else if self.bypass_writes && hit {
            WriteRoute::MainMemory
        } else {
            WriteRoute::Cache
        }
    }
    fn allow_fill(&mut self, _block: u64, _now: Cycle) -> bool {
        !self.bypass_fills
    }
    fn set_enabled(&mut self, set: u64, _now: Cycle) -> bool {
        !self.disabled.contains(&set)
    }
    fn take_newly_disabled_sets(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.newly_disabled)
    }
    fn take_sectors_to_clean(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.clean_sectors)
    }
}

fn subsystem(policy: Scripted) -> MemorySubsystem {
    MemorySubsystem::new(&SystemConfig::sectored_dram_cache(1), Box::new(policy))
}

const B: u64 = 0x5000; // an arbitrary block

#[test]
fn miss_then_fill_then_hit_counts() {
    let mut m = subsystem(Scripted::default());
    let t1 = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead);
    assert!(t1 > 1000);
    let t2 = m.read(B, 0, 0, t1, MemAccessKind::DemandRead);
    assert!(t2 > t1);
    let s = m.stats();
    assert_eq!(s.ms_read_misses, 1);
    assert_eq!(s.ms_read_hits, 1);
    assert_eq!(s.fills, 1);
}

#[test]
fn fill_bypass_keeps_block_absent() {
    let mut m = subsystem(Scripted {
        bypass_fills: true,
        ..Default::default()
    });
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead);
    let _ = m.read(B, 0, 0, 50_000, MemAccessKind::DemandRead);
    let s = m.stats();
    assert_eq!(
        s.ms_read_misses, 2,
        "bypassed fill means the re-read misses again"
    );
    assert_eq!(s.fills_bypassed, 2);
    assert_eq!(s.fills, 0);
}

#[test]
fn write_bypass_invalidates_cached_copy() {
    let mut m = subsystem(Scripted {
        bypass_writes: true,
        ..Default::default()
    });
    // Install the block via a read miss + fill.
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead);
    // The dirty eviction is bypassed to memory and the copy invalidated.
    m.write(B, 50_000);
    assert_eq!(m.stats().writes_bypassed, 1);
    // The next read must miss (the cached copy was invalidated).
    let _ = m.read(B, 0, 0, 100_000, MemAccessKind::DemandRead);
    assert_eq!(m.stats().ms_read_misses, 2);
}

#[test]
fn forced_clean_hit_served_by_main_memory() {
    let mut m = subsystem(Scripted {
        force_hits: true,
        ..Default::default()
    });
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead);
    let _ = m.read(B, 0, 0, 50_000, MemAccessKind::DemandRead);
    let s = m.stats();
    assert_eq!(s.forced_read_misses, 1);
    assert_eq!(s.ms_read_hits, 0, "forced hits count as served-by-memory");
}

#[test]
fn dirty_hit_never_forced() {
    let mut m = subsystem(Scripted {
        force_hits: true,
        ..Default::default()
    });
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead);
    m.write(B, 50_000); // block now dirty in the cache
    let _ = m.read(B, 0, 0, 100_000, MemAccessKind::DemandRead);
    let s = m.stats();
    assert_eq!(
        s.forced_read_misses, 0,
        "dirty data must come from the cache"
    );
    assert_eq!(s.ms_read_hits, 1);
}

#[test]
fn speculative_read_wasted_on_dirty_hit() {
    let mut m = subsystem(Scripted {
        speculative: true,
        ..Default::default()
    });
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead); // miss (speculation correct)
    m.write(B, 50_000); // dirty
    let _ = m.read(B, 0, 0, 100_000, MemAccessKind::DemandRead);
    let s = m.stats();
    assert_eq!(s.speculative_forced, 2);
    assert_eq!(
        s.speculative_wasted, 1,
        "the dirty hit wasted the speculative fetch"
    );
}

#[test]
fn steering_respects_dirty_blocks() {
    // Warm the cache with a normal read, dirty the block, then steer.
    let mut m = subsystem(Scripted {
        steer: true,
        steer_after: 10_000,
        ..Default::default()
    });
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead); // normal miss + fill
    m.write(B, 50_000); // block now dirty in the cache
                        // Steering would return stale data; the subsystem must use the cache.
    let _ = m.read(B, 0, 0, 100_000, MemAccessKind::DemandRead);
    assert_eq!(m.stats().ms_read_hits, 1);
}

#[test]
fn write_through_leaves_block_clean() {
    let mut m = subsystem(Scripted {
        write_through: true,
        ..Default::default()
    });
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead);
    m.write(B, 50_000);
    assert_eq!(m.stats().write_throughs, 1);
    // A forced-hit policy could now bypass it; simpler check: re-write with
    // bypassing disabled and confirm no dirty eviction is ever produced by
    // flushing a disabled set.
    let s = m.stats();
    assert_eq!(s.ms_dirty_evictions, 0);
}

#[test]
fn disabled_sets_miss_and_flush_dirty_blocks() {
    let config = SystemConfig::sectored_dram_cache(1);
    // First warm a block and dirty it with a permissive policy, then flip
    // to a policy that disables every set.
    let mut m = MemorySubsystem::new(
        &config,
        Box::new(Scripted {
            disabled: vec![(B >> 6) % 4096],
            newly_disabled: vec![(B >> 6) % 4096],
            ..Default::default()
        }),
    );
    // The disabled-set flush happens on the first access; afterwards the
    // set rejects fills, so reads keep missing.
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead);
    let _ = m.read(B, 0, 0, 50_000, MemAccessKind::DemandRead);
    assert_eq!(
        m.stats().ms_read_misses,
        2,
        "disabled set must not serve hits"
    );
}

#[test]
fn observations_cover_demand_and_miss_events() {
    let mut m = subsystem(Scripted::default());
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::DemandRead);
    // We can't inspect the moved-in policy, but the stats must agree.
    assert_eq!(m.stats().demand_reads, 1);
    assert_eq!(m.stats().ms_read_misses, 1);
}

#[test]
fn rfo_and_prefetch_do_not_count_latency() {
    let mut m = subsystem(Scripted::default());
    let _ = m.read(B, 0, 0, 1000, MemAccessKind::Rfo);
    let _ = m.read(B + 1, 0, 0, 1000, MemAccessKind::Prefetch);
    let s = m.stats();
    assert_eq!(s.read_latency_count, 0);
    assert_eq!(s.demand_reads, 0);
}

/// Drives one DAP subsystem over a fixed access pattern, optionally with
/// the cycle-attribution profiler sampling every access.
fn drive_profiled(
    profiled: bool,
) -> (
    mem_sim::SimStats,
    dap_telemetry::MetricsSnapshot,
    Vec<dap_core::ProfileWindow>,
) {
    use std::sync::Arc;

    let config = SystemConfig::sectored_dram_cache(1);
    let policy = Box::new(mem_sim::DapPolicy::new(dap_core::DapConfig::hbm_ddr4()));
    let mut m = MemorySubsystem::new(&config, policy);
    let registry = dap_telemetry::MetricsRegistry::new();
    let recorder = Arc::new(dap_telemetry::WindowTraceRecorder::new(4096));
    if profiled {
        m.attach_dap_sink(recorder.clone());
        m.attach_telemetry(mem_sim::SubsystemTelemetry::new(&registry));
        if let Some(profiler) = mem_sim::AccessProfiler::new(1, 64) {
            m.attach_profiler(profiler);
        }
    }
    let mut now = 1_000;
    for i in 0..400u64 {
        let block = (i % 48) * 8;
        now = now.max(m.read(block, 0, 0, now + 20, MemAccessKind::DemandRead));
        if i % 7 == 0 {
            m.write(block, now);
        }
    }
    m.finalize(now);
    (*m.stats(), registry.snapshot(), recorder.profile_windows())
}

#[test]
fn profiler_attributes_phases_without_perturbing_simulation() {
    let (plain, ..) = drive_profiled(false);
    let (profiled, snapshot, windows) = drive_profiled(true);
    assert_eq!(
        plain, profiled,
        "cycle-attribution profiling must never change simulation numbers"
    );
    if !dap_telemetry::enabled() {
        assert!(windows.is_empty(), "telemetry-off records nothing");
        return;
    }
    // Interval 1 samples every demand access.
    let sampled = snapshot.counters["prof.samples"];
    assert_eq!(sampled, plain.demand_reads + plain.demand_writes);
    assert_eq!(snapshot.histograms["prof.cache_queue_wait"].count, sampled);
    assert_eq!(snapshot.histograms["prof.mm_queue_wait"].count, sampled);
    assert!(
        snapshot.histograms["prof.tag_probe"].sum + snapshot.histograms["prof.cache_tag"].sum > 0,
        "tag resolution must attribute cycles somewhere"
    );
    assert!(
        snapshot.histograms["prof.channel_cas"].sum > 0,
        "channel service must attribute cycles"
    );
    // The per-window rollups conserve the same sample population.
    assert!(!windows.is_empty());
    let rolled: u64 = windows.iter().map(|w| w.samples).sum();
    assert_eq!(rolled, sampled);
    let mut indices: Vec<u64> = windows.iter().map(|w| w.window_index).collect();
    let mut sorted = indices.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(indices.len(), sorted.len(), "one rollup per window");
    indices.sort_unstable();
    assert_eq!(indices, sorted);
}
