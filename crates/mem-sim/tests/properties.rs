//! Property-based invariants of the simulator substrate.

use mem_sim::cache::{ReplacementKind, SetAssocCache};
use mem_sim::dram::{DramConfig, DramModule};
use mem_sim::mscache::{BlockState, SectoredDramCache};
use proptest::prelude::*;

proptest! {
    /// DRAM read completions are causal (after the request) and the bus
    /// reservation never runs backward.
    #[test]
    fn dram_completions_are_causal(
        blocks in prop::collection::vec(0u64..1 << 22, 1..200),
        gaps in prop::collection::vec(0u64..50, 1..200),
    ) {
        let mut m = DramModule::new(DramConfig::hbm_102(), 4000.0);
        let mut now = 0u64;
        for (b, g) in blocks.iter().zip(&gaps) {
            now += g;
            let done = m.read_block(*b, now);
            prop_assert!(done > now, "completion {done} must be after request {now}");
            prop_assert!(done - now < 100_000, "latency must stay bounded");
        }
    }

    /// The channel never serves more bandwidth than its peak: N same-row
    /// reads need at least N bursts of bus time.
    #[test]
    fn dram_bandwidth_never_exceeds_peak(n in 1u64..2000) {
        let mut m = DramModule::new(DramConfig::hbm_102(), 4000.0);
        let mut last = 0;
        for b in 0..n {
            last = last.max(m.read_block(b, 0));
        }
        // 102.4 GB/s @ 4 GHz = 0.4 blocks/cycle peak.
        let min_cycles = (n as f64 / 0.4).floor() as u64;
        prop_assert!(last >= min_cycles.saturating_sub(200),
            "{n} blocks in {last} cycles beats peak bandwidth");
    }

    /// Cache directory: a just-inserted key is present; an invalidated key
    /// is absent; occupancy never exceeds capacity.
    #[test]
    fn set_assoc_invariants(
        keys in prop::collection::vec(0u64..4096, 1..300),
        sets in prop::sample::select(vec![4u64, 16, 64]),
        ways in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        let mut c: SetAssocCache<u8> = SetAssocCache::new(sets, ways, ReplacementKind::Lru);
        for (i, &k) in keys.iter().enumerate() {
            if i % 5 == 4 {
                c.invalidate(k);
                prop_assert!(!c.contains(k));
            } else {
                c.insert(k, 0, i % 2 == 0);
                prop_assert!(c.contains(k), "key {k} vanished right after insert");
            }
            prop_assert!(c.occupancy() <= (sets as usize) * ways);
        }
    }

    /// Eviction keys always reconstruct to a previously inserted key.
    #[test]
    fn evictions_return_real_keys(keys in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut c: SetAssocCache<()> = SetAssocCache::new(8, 2, ReplacementKind::Nru);
        let mut inserted = std::collections::HashSet::new();
        for &k in &keys {
            if let Some(ev) = c.insert(k, (), false) {
                prop_assert!(inserted.contains(&ev.key),
                    "evicted key {} was never inserted", ev.key);
            }
            inserted.insert(k);
        }
    }

    /// Sectored cache state machine: write -> hit; invalidate -> miss;
    /// dirty blocks always reported on eviction exactly once.
    #[test]
    fn sectored_state_machine(ops in prop::collection::vec((0u64..1 << 14, any::<bool>()), 1..300)) {
        let mut c = SectoredDramCache::new(
            1 << 22, // 4 MB
            4096,
            4,
            DramConfig::hbm_102(),
            4000.0,
            true,
        );
        for (block, dirty) in ops {
            if !c.sector_present(block) {
                let _ = c.allocate(block, 0);
            }
            prop_assert!(c.write_data(block, 0, dirty));
            let expect = if dirty { BlockState::DirtyHit } else { c.state(block) };
            prop_assert_ne!(c.state(block), BlockState::Miss);
            if dirty {
                prop_assert_eq!(c.state(block), expect);
            }
            c.invalidate_block(block);
            prop_assert_eq!(c.state(block), BlockState::Miss);
        }
    }
}

#[test]
fn dram_modules_are_deterministic() {
    let run = || {
        let mut m = DramModule::new(DramConfig::ddr4_2400(), 4000.0);
        let mut acc = 0u64;
        for i in 0..5_000u64 {
            acc = acc.wrapping_add(m.read_block(i.wrapping_mul(2654435761) % (1 << 20), i * 3));
            if i % 3 == 0 {
                m.write_block(i % (1 << 20), i * 3);
            }
        }
        m.flush_writes(1 << 20);
        (acc, m.stats())
    };
    assert_eq!(run(), run());
}
