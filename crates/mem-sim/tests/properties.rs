//! Property-style invariants of the simulator substrate.
//!
//! Hermetic replacement for the former `proptest` suite: each property is
//! a loop over cases drawn from the in-tree seeded PRNG
//! ([`workloads::rng::SplitMix64`]), so the exact case set is fixed
//! forever and reproduces identically offline on every platform.

use mem_sim::cache::{ReplacementKind, SetAssocCache};
use mem_sim::dram::{DramConfig, DramModule};
use mem_sim::mscache::{BlockState, SectoredDramCache};
use workloads::rng::SplitMix64;

const CASES: u64 = 128;

/// DRAM read completions are causal (after the request) and the bus
/// reservation never runs backward.
#[test]
fn dram_completions_are_causal() {
    let mut rng = SplitMix64::new(0x51_0001);
    for _ in 0..CASES {
        let len = rng.range_u64(1, 200) as usize;
        let mut m = DramModule::new(DramConfig::hbm_102(), 4000.0);
        let mut now = 0u64;
        for _ in 0..len {
            let b = rng.below(1 << 22);
            now += rng.below(50);
            let done = m.read_block(b, now);
            assert!(done > now, "completion {done} must be after request {now}");
            assert!(done - now < 100_000, "latency must stay bounded");
        }
    }
}

/// The channel never serves more bandwidth than its peak: N same-row
/// reads need at least N bursts of bus time.
#[test]
fn dram_bandwidth_never_exceeds_peak() {
    let mut rng = SplitMix64::new(0x51_0002);
    for _ in 0..CASES {
        let n = rng.range_u64(1, 2000);
        let mut m = DramModule::new(DramConfig::hbm_102(), 4000.0);
        let mut last = 0;
        for b in 0..n {
            last = last.max(m.read_block(b, 0));
        }
        // 102.4 GB/s @ 4 GHz = 0.4 blocks/cycle peak.
        let min_cycles = (n as f64 / 0.4).floor() as u64;
        assert!(
            last >= min_cycles.saturating_sub(200),
            "{n} blocks in {last} cycles beats peak bandwidth"
        );
    }
}

/// Cache directory: a just-inserted key is present; an invalidated key
/// is absent; occupancy never exceeds capacity.
#[test]
fn set_assoc_invariants() {
    let mut rng = SplitMix64::new(0x51_0003);
    let set_choices = [4u64, 16, 64];
    let way_choices = [1usize, 2, 8];
    for _ in 0..CASES {
        let len = rng.range_u64(1, 300) as usize;
        let sets = set_choices[rng.index(set_choices.len())];
        let ways = way_choices[rng.index(way_choices.len())];
        let mut c: SetAssocCache<u8> = SetAssocCache::new(sets, ways, ReplacementKind::Lru);
        for i in 0..len {
            let k = rng.below(4096);
            if i % 5 == 4 {
                c.invalidate(k);
                assert!(!c.contains(k));
            } else {
                c.insert(k, 0, i % 2 == 0);
                assert!(c.contains(k), "key {k} vanished right after insert");
            }
            assert!(c.occupancy() <= (sets as usize) * ways);
        }
    }
}

/// Eviction keys always reconstruct to a previously inserted key.
#[test]
fn evictions_return_real_keys() {
    let mut rng = SplitMix64::new(0x51_0004);
    for _ in 0..CASES {
        let len = rng.range_u64(1, 300) as usize;
        let mut c: SetAssocCache<()> = SetAssocCache::new(8, 2, ReplacementKind::Nru);
        let mut inserted = std::collections::HashSet::new();
        for _ in 0..len {
            let k = rng.below(10_000);
            if let Some(ev) = c.insert(k, (), false) {
                assert!(
                    inserted.contains(&ev.key),
                    "evicted key {} was never inserted",
                    ev.key
                );
            }
            inserted.insert(k);
        }
    }
}

/// Sectored cache state machine: write -> hit; invalidate -> miss;
/// dirty blocks always reported on eviction exactly once.
#[test]
fn sectored_state_machine() {
    let mut rng = SplitMix64::new(0x51_0005);
    for _ in 0..CASES {
        let len = rng.range_u64(1, 300) as usize;
        let mut c = SectoredDramCache::new(
            1 << 22, // 4 MB
            4096,
            4,
            DramConfig::hbm_102(),
            4000.0,
            true,
        );
        for _ in 0..len {
            let block = rng.below(1 << 14);
            let dirty = rng.chance(0.5);
            if !c.sector_present(block) {
                let _ = c.allocate(block, 0);
            }
            assert!(c.write_data(block, 0, dirty));
            let expect = if dirty {
                BlockState::DirtyHit
            } else {
                c.state(block)
            };
            assert_ne!(c.state(block), BlockState::Miss);
            if dirty {
                assert_eq!(c.state(block), expect);
            }
            c.invalidate_block(block);
            assert_eq!(c.state(block), BlockState::Miss);
        }
    }
}

#[test]
fn dram_modules_are_deterministic() {
    let run = || {
        let mut m = DramModule::new(DramConfig::ddr4_2400(), 4000.0);
        let mut acc = 0u64;
        for i in 0..5_000u64 {
            acc = acc.wrapping_add(m.read_block(i.wrapping_mul(2654435761) % (1 << 20), i * 3));
            if i % 3 == 0 {
                m.write_block(i % (1 << 20), i * 3);
            }
        }
        m.flush_writes(1 << 20);
        (acc, m.stats())
    };
    assert_eq!(run(), run());
}
