//! DAP solver for Alloy caches (Section IV-B).
//!
//! The Alloy cache stores tag-and-data (TAD) fused in the DRAM array, which
//! constrains the techniques:
//!
//! * **No write bypass on hits** — invalidating the line would itself cost
//!   Alloy bandwidth.
//! * **No explicit fill bypass** — determining whether a fill is needed
//!   requires fetching the TAD anyway. (When a forced read miss targets a
//!   block that was *not* resident, the corresponding fill also does not
//!   happen — an implicit fill bypass.)
//! * **IFRM is the workhorse**, gated by the Dirty-Bit Cache (DBC): a read
//!   may be forced to main memory only if the DBC shows its direct-mapped
//!   set is not dirty.
//! * **Opportunistic write-through** keeps enough clean blocks around for
//!   IFRM, using 80% of the residual main-memory headroom.

use crate::window::{WindowBudget, WindowStats};

/// The partition plan for one window of an Alloy-cache system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlloyPlan {
    /// Informed forced read misses to perform (`N_IFRM`).
    pub n_ifrm: u32,
    /// Writes to mirror to main memory (write-through) this window.
    pub n_write_through: u32,
}

impl AlloyPlan {
    /// True if the plan performs no partitioning at all.
    pub fn is_idle(&self) -> bool {
        self.n_ifrm == 0 && self.n_write_through == 0
    }
}

/// Stateless solver for the Alloy-cache DAP variant.
///
/// `WindowStats::clean_read_hits` must be fed the number of reads whose DBC
/// lookup found a *non-dirty* set — those are the only IFRM candidates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlloyDapSolver {
    budget: WindowBudget,
}

impl AlloyDapSolver {
    /// Creates a solver for the given per-window budgets. The cache budget
    /// should already account for the TAD bandwidth bloat (only 2 of every
    /// 3 channel cycles move useful data, so `B_MS$ = (2/3) x peak`).
    pub fn new(budget: WindowBudget) -> Self {
        Self { budget }
    }

    /// The budgets this solver was built with.
    pub fn budget(&self) -> &WindowBudget {
        &self.budget
    }

    /// Computes the partition plan for the next window.
    pub fn solve(&self, stats: &WindowStats) -> AlloyPlan {
        let b = &self.budget;
        let num = i64::from(b.k.numerator());
        let den = i64::from(b.k.denominator());

        let a_cache = i64::from(stats.cache_accesses);
        let a_mm = i64::from(stats.mm_accesses);

        let mut plan = AlloyPlan::default();

        // IFRM only when the cache is over budget (Eq. 8).
        if a_cache > i64::from(b.cache_budget) {
            let ifrm_scaled = den * a_cache - num * a_mm;
            if ifrm_scaled > 0 {
                let n = (ifrm_scaled / (num + den)) as u32;
                plan.n_ifrm = n.min(stats.clean_read_hits);
            }
        }

        // Opportunistic write-through from residual MM headroom, after the
        // IFRM traffic this plan will add; runs even in calm windows so that
        // future IFRM finds clean sets.
        let headroom = i64::from(b.mm_budget) - a_mm - i64::from(plan.n_ifrm);
        if headroom > 0 {
            plan.n_write_through = (headroom * 4 / 5).min(i64::from(stats.writes)) as u32;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Alloy effective bandwidth = 2/3 of 102.4 GB/s = 68.27 GB/s;
    /// K = 68.27/38.4 ~ 1.78 -> 7/4. Budgets: cache 12, mm 7.
    fn alloy_budget() -> WindowBudget {
        WindowBudget::from_gbps(102.4 * 2.0 / 3.0, None, 38.4, 4.0, 64, 0.75)
    }

    fn solver() -> AlloyDapSolver {
        AlloyDapSolver::new(alloy_budget())
    }

    #[test]
    fn budget_reflects_tad_bloat() {
        let b = alloy_budget();
        assert_eq!(b.cache_budget, 12); // floor(0.7111 * 0.2667 * 64)
        assert!((b.k.as_f64() - 68.266 / 38.4).abs() < 0.09);
    }

    #[test]
    fn idle_when_cache_under_budget_and_no_writes() {
        let stats = WindowStats {
            cache_accesses: 5,
            mm_accesses: 7,
            ..Default::default()
        };
        assert!(solver().solve(&stats).is_idle());
    }

    #[test]
    fn ifrm_engages_under_pressure() {
        let stats = WindowStats {
            cache_accesses: 30,
            mm_accesses: 2,
            clean_read_hits: 20,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        assert!(plan.n_ifrm > 0);
        assert!(plan.n_ifrm <= 20);
    }

    #[test]
    fn ifrm_capped_by_dbc_clean_reads() {
        let stats = WindowStats {
            cache_accesses: 30,
            mm_accesses: 2,
            clean_read_hits: 1,
            ..Default::default()
        };
        assert_eq!(solver().solve(&stats).n_ifrm, 1);
    }

    #[test]
    fn no_ifrm_when_mm_is_bottleneck() {
        let stats = WindowStats {
            cache_accesses: 14,
            mm_accesses: 20,
            clean_read_hits: 10,
            ..Default::default()
        };
        assert_eq!(solver().solve(&stats).n_ifrm, 0);
    }

    #[test]
    fn write_through_uses_residual_headroom() {
        // Calm window with idle MM: write-through still engages so future
        // windows have clean blocks for IFRM.
        let stats = WindowStats {
            cache_accesses: 5,
            mm_accesses: 1,
            writes: 10,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        // headroom = 7 - 1 = 6 -> 0.8*6 = 4 (floor), min(writes=10).
        assert_eq!(plan.n_write_through, 4);
    }

    #[test]
    fn write_through_capped_by_writes_available() {
        let stats = WindowStats {
            cache_accesses: 5,
            mm_accesses: 0,
            writes: 2,
            ..Default::default()
        };
        assert_eq!(solver().solve(&stats).n_write_through, 2);
    }

    #[test]
    fn write_through_suppressed_when_mm_busy() {
        let stats = WindowStats {
            cache_accesses: 5,
            mm_accesses: 9,
            writes: 10,
            ..Default::default()
        };
        assert_eq!(solver().solve(&stats).n_write_through, 0);
    }

    #[test]
    fn ifrm_traffic_reduces_write_through() {
        let stats = WindowStats {
            cache_accesses: 30,
            mm_accesses: 0,
            writes: 10,
            clean_read_hits: 50,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        let headroom = 7i64 - i64::from(plan.n_ifrm);
        let expect = (headroom.max(0) * 4 / 5) as u32;
        assert_eq!(plan.n_write_through, expect.min(10));
    }
}
