//! Static DAP configuration and lifetime decision statistics.
//!
//! These types are shared by every embedding of the decision library: the
//! simulator-side `DapController` (in `dap-core`), the `dapd` daemon's
//! per-tenant engines, and ad-hoc users of the solvers. They carry no
//! behaviour beyond derivations from their own fields.

use crate::window::WindowBudget;

/// Which memory-side cache architecture the controller manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheArchitecture {
    /// Sectored DRAM cache with a single bidirectional channel set (HBM).
    SingleBus,
    /// Alloy cache: direct-mapped TADs, DBC-gated IFRM, write-through.
    Alloy,
    /// Sectored eDRAM cache with independent read and write channels.
    SplitChannel,
}

/// One of DAP's partitioning techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Drop an incoming read-miss fill.
    FillWriteBypass,
    /// Steer an L3 dirty eviction to main memory.
    WriteBypass,
    /// Serve a known-clean read hit from main memory.
    InformedForcedReadMiss,
    /// Send a read to main memory before its tag lookup resolves.
    SpeculativeForcedReadMiss,
    /// Mirror a write to main memory (Alloy cache only).
    WriteThrough,
}

impl Technique {
    /// All techniques, in the order DAP prefers them.
    pub const ALL: [Technique; 5] = [
        Technique::FillWriteBypass,
        Technique::WriteBypass,
        Technique::InformedForcedReadMiss,
        Technique::SpeculativeForcedReadMiss,
        Technique::WriteThrough,
    ];
}

/// Static configuration of a DAP controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DapConfig {
    /// The cache architecture being managed.
    pub architecture: CacheArchitecture,
    /// Window length `W` in CPU cycles (paper default: 64).
    pub window_cycles: u32,
    /// Bandwidth efficiency `E` in `(0, 1]` (paper default: 0.75).
    pub efficiency: f64,
    /// Memory-side cache effective peak bandwidth in GB/s (for Alloy this is
    /// already the TAD-adjusted 2/3 figure).
    pub cache_gbps: f64,
    /// Per-direction channel bandwidth for split-channel caches.
    pub split_channel_gbps: Option<f64>,
    /// Main memory peak bandwidth in GB/s.
    pub mm_gbps: f64,
    /// CPU clock in GHz (everything is accounted in CPU cycles).
    pub cpu_ghz: f64,
}

impl DapConfig {
    /// The paper's default system: 102.4 GB/s HBM DRAM cache + 38.4 GB/s
    /// dual-channel DDR4-2400, 4 GHz cores, `W = 64`, `E = 0.75`.
    pub fn hbm_ddr4() -> Self {
        Self {
            architecture: CacheArchitecture::SingleBus,
            window_cycles: 64,
            efficiency: 0.75,
            cache_gbps: 102.4,
            split_channel_gbps: None,
            mm_gbps: 38.4,
            cpu_ghz: 4.0,
        }
    }

    /// Alloy cache on the same system: the TAD transfer spends 3 channel
    /// cycles of which 2 move data, so effective bandwidth is 2/3 of peak.
    pub fn alloy_hbm_ddr4() -> Self {
        Self {
            architecture: CacheArchitecture::Alloy,
            cache_gbps: 102.4 * 2.0 / 3.0,
            ..Self::hbm_ddr4()
        }
    }

    /// Sectored eDRAM cache: 51.2 GB/s independent read and write channels.
    pub fn edram_ddr4() -> Self {
        Self {
            architecture: CacheArchitecture::SplitChannel,
            cache_gbps: 51.2,
            split_channel_gbps: Some(51.2),
            ..Self::hbm_ddr4()
        }
    }

    /// Replaces the window length (Table I sweeps 32/64/128).
    pub fn with_window(mut self, window_cycles: u32) -> Self {
        self.window_cycles = window_cycles;
        self
    }

    /// Replaces the bandwidth efficiency (Table I sweeps 0.5/0.75/1.0).
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Replaces the cache and main-memory bandwidths (Fig. 9/10 sweeps).
    pub fn with_bandwidths(mut self, cache_gbps: f64, mm_gbps: f64) -> Self {
        self.cache_gbps = cache_gbps;
        self.mm_gbps = mm_gbps;
        if self.split_channel_gbps.is_some() {
            self.split_channel_gbps = Some(cache_gbps);
        }
        self
    }

    /// Derives the per-window budgets.
    pub fn budget(&self) -> WindowBudget {
        WindowBudget::from_gbps(
            self.cache_gbps,
            self.split_channel_gbps,
            self.mm_gbps,
            self.cpu_ghz,
            self.window_cycles,
            self.efficiency,
        )
    }
}

/// Lifetime counts of DAP activity, for the paper's Fig. 7 decision-mix plot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Fill write bypasses applied.
    pub fwb: u64,
    /// Write bypasses applied.
    pub wb: u64,
    /// Informed forced read misses applied.
    pub ifrm: u64,
    /// Speculative forced read misses applied.
    pub sfrm: u64,
    /// Write-throughs applied (Alloy only).
    pub write_through: u64,
    /// Windows in which partitioning was active.
    pub windows_partitioned: u64,
    /// Total windows observed.
    pub windows_total: u64,
    /// Measured-bandwidth changes that re-derived the window budget.
    pub bandwidth_resolves: u64,
}

impl DecisionStats {
    /// Total partitioning decisions (FWB + WB + IFRM + SFRM; write-through
    /// is bookkept separately because the paper's Fig. 7 does not count it).
    pub fn total_decisions(&self) -> u64 {
        self.fwb + self.wb + self.ifrm + self.sfrm
    }

    /// Fraction of decisions contributed by each technique, in
    /// (FWB, WB, IFRM, SFRM) order; all zeros if no decisions were made.
    pub fn mix(&self) -> [f64; 4] {
        let total = self.total_decisions();
        if total == 0 {
            return [0.0; 4];
        }
        let t = total as f64;
        [
            self.fwb as f64 / t,
            self.wb as f64 / t,
            self.ifrm as f64 / t,
            self.sfrm as f64 / t,
        ]
    }
}
