//! `no_std`-safe float helpers.
//!
//! `f64::floor`/`f64::round` live in `std` (they lower to platform
//! intrinsics), so a `no_std` build cannot call them. The decision
//! arithmetic only ever floors/rounds *non-negative* values that fit the
//! target integer, and for that domain the integer-cast forms below are
//! exactly equivalent (Rust's float→int `as` casts truncate toward zero
//! and saturate). Using one implementation for both `std` and `no_std`
//! builds guarantees the two produce identical bits.

/// `floor(x) as u32` for non-negative finite `x` (saturating, like `as`).
#[inline]
pub(crate) fn floor_u32(x: f64) -> u32 {
    x as u32
}

/// `round(x) as u32` for non-negative finite `x`.
///
/// Equivalent to `x.round() as u32` (round half away from zero) on the
/// non-negative domain: adding 0.5 then truncating rounds ties up, which
/// coincides with away-from-zero for `x >= 0`. The addition is exact for
/// every value this crate rounds (|x| well below 2^52).
#[inline]
pub(crate) fn round_u32(x: f64) -> u32 {
    (x + 0.5) as u32
}

#[cfg(all(test, feature = "std"))]
mod tests {
    use super::*;
    use workloads::rng::SplitMix64;

    /// The cast forms must agree bit-for-bit with the std intrinsics over
    /// a dense seeded sweep of the domain the solvers use (ratios up to
    /// ~16k, budgets up to millions of accesses/window).
    #[test]
    fn cast_forms_match_std_intrinsics() {
        let mut rng = SplitMix64::new(0xDEC1_DE01);
        for _ in 0..100_000 {
            let x = rng.next_f64() * 16_384.0;
            assert_eq!(floor_u32(x), x.floor() as u32, "floor({x})");
            assert_eq!(round_u32(x), x.round() as u32, "round({x})");
        }
        for exact in [0.0, 0.5, 1.0, 1.5, 2.5, 63.5, 1024.0, 16384.5] {
            assert_eq!(round_u32(exact), exact.round() as u32, "round({exact})");
            assert_eq!(floor_u32(exact), exact.floor() as u32, "floor({exact})");
        }
        // Saturation and NaN behave like the original `as` casts did.
        assert_eq!(floor_u32(f64::from(u32::MAX) * 4.0), u32::MAX);
        assert_eq!(floor_u32(f64::NAN), 0);
    }
}
