//! DAP solver for sectored DRAM caches (Section IV-A, Figure 3).
//!
//! Systems with a die-stacked HBM DRAM cache have two bandwidth sources
//! beyond the SRAM hierarchy: the cache's single bidirectional channel set
//! and the DDR main memory. When the previous window's cache demand
//! `A_MS$` exceeds what the cache can serve (`B_MS$ . W`), the solver
//! escalates through the four techniques in cost order:
//!
//! 1. **FWB** — drop read-miss fills (needs no immediate MM bandwidth),
//! 2. **WB** — steer L3 dirty evictions to main memory,
//! 3. **IFRM** — serve clean read *hits* from main memory,
//! 4. **SFRM** — speculatively send reads to MM before the tag lookup
//!    resolves, using at most 80% of the remaining MM headroom.
//!
//! All arithmetic is integer, scaled by the power-of-two denominator of
//! `K = B_MS$ / B_MM`, exactly as shift-and-add hardware would compute it.

use crate::window::{WindowBudget, WindowStats};

/// The partition plan for one window of a sectored-DRAM-cache system.
///
/// `wb_scaled` and `ifrm_scaled` hold `den.(K+1).N` — the exact register
/// contents of Eq. 7/8 — so they can be loaded into
/// [`ScaledCreditCounter`](crate::credits::ScaledCreditCounter)s verbatim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SectoredPlan {
    /// Fill write bypasses to perform (`N_FWB`).
    pub n_fwb: u32,
    /// Write bypass solution in `den.(K+1)` scaled units.
    pub wb_scaled: u32,
    /// Informed forced read miss solution in `den.(K+1)` scaled units.
    pub ifrm_scaled: u32,
    /// Speculative forced read misses to perform (`N_SFRM`).
    pub n_sfrm: u32,
    /// Scale factor `num + den` to convert scaled units to applications.
    pub k_plus_one_num: u32,
}

impl SectoredPlan {
    /// Write bypasses implied by the scaled solution.
    pub fn n_wb(&self) -> u32 {
        self.wb_scaled.checked_div(self.k_plus_one_num).unwrap_or(0)
    }

    /// Informed forced read misses implied by the scaled solution.
    pub fn n_ifrm(&self) -> u32 {
        self.ifrm_scaled
            .checked_div(self.k_plus_one_num)
            .unwrap_or(0)
    }

    /// True if the plan performs no partitioning at all.
    pub fn is_idle(&self) -> bool {
        self.n_fwb == 0 && self.wb_scaled == 0 && self.ifrm_scaled == 0 && self.n_sfrm == 0
    }
}

/// Stateless solver implementing the Figure 3 flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SectoredDapSolver {
    budget: WindowBudget,
}

impl SectoredDapSolver {
    /// Creates a solver for the given per-window budgets.
    pub fn new(budget: WindowBudget) -> Self {
        Self { budget }
    }

    /// The budgets this solver was built with.
    pub fn budget(&self) -> &WindowBudget {
        &self.budget
    }

    /// Computes the partition plan for the next window from the previous
    /// window's observations.
    pub fn solve(&self, stats: &WindowStats) -> SectoredPlan {
        let b = &self.budget;
        let num = i64::from(b.k.numerator());
        let den = i64::from(b.k.denominator());
        let k_plus_one = (num + den) as u32;

        let a_cache = i64::from(stats.cache_accesses);
        let a_mm = i64::from(stats.mm_accesses);
        let rm = i64::from(stats.read_misses);
        let wm = i64::from(stats.writes);

        let mut plan = SectoredPlan {
            k_plus_one_num: k_plus_one,
            ..Default::default()
        };

        // Partitioning is invoked only when the cache demand exceeded what
        // the cache could serve.
        if a_cache <= i64::from(b.cache_budget) {
            return plan;
        }
        // Main-memory headroom this window. Fill write bypass is always
        // safe (it costs no immediate MM bandwidth), but WB/IFRM/SFRM add
        // MM traffic and must fit in this headroom — a bursty window with
        // transiently low A_MM must not defeat the "main memory is a
        // bottleneck" exit.
        let mm_headroom = (i64::from(b.mm_budget) - a_mm).max(0);

        // --- Fill Write Bypass (Eq. 6): den.N_FWB = den.A_MS$ - num.A_MM.
        let fwb_scaled = den * a_cache - num * a_mm;
        if fwb_scaled <= 0 {
            // Main memory is the bottleneck: exit partitioning entirely.
            return plan;
        }
        // Cap at the partitioning actually needed and at the fills available.
        let needed = (a_cache - i64::from(b.cache_budget)).max(0);
        let fwb_target = (fwb_scaled / den).min(needed);
        if fwb_target <= rm {
            plan.n_fwb = fwb_target.max(0) as u32;
            plan.n_sfrm = self.sfrm_count(a_mm, 0, 0);
            return plan;
        }
        plan.n_fwb = rm as u32;

        // --- Write Bypass (Eq. 7): (den+num).N_WB = den.A_MS$ - num.A_MM - den.Rm.
        let wb_scaled = den * a_cache - num * a_mm - den * rm;
        if wb_scaled <= 0 {
            plan.n_sfrm = self.sfrm_count(a_mm, 0, 0);
            return plan;
        }
        let wb_cap_scaled = ((num + den) * wm).min((num + den) * mm_headroom);
        if wb_scaled <= wb_cap_scaled {
            plan.wb_scaled = wb_scaled as u32;
            plan.n_sfrm = self.sfrm_count(a_mm, i64::from(plan.n_wb()), 0);
            return plan;
        }
        plan.wb_scaled = wb_cap_scaled.max(0) as u32;

        // --- Informed Forced Read Miss (Eq. 8, after folding in the write
        // bypasses): (den+num).N_IFRM = den.A_MS$ - num.(A_MM + Wm)
        //                               - den.(Rm + Wm).
        let ifrm_scaled = den * a_cache - num * (a_mm + wm) - den * (rm + wm);
        if ifrm_scaled > 0 {
            let ifrm_headroom = mm_headroom - i64::from(plan.n_wb());
            let cap_scaled = ((num + den) * i64::from(stats.clean_read_hits))
                .min((num + den) * ifrm_headroom.max(0));
            plan.ifrm_scaled = ifrm_scaled.min(cap_scaled).max(0) as u32;
        }

        plan.n_sfrm = self.sfrm_count(a_mm, wm, i64::from(plan.n_ifrm()));
        plan
    }

    /// `N_SFRM = 0.8 (B_MM.W - A_MM - N_WB - N_IFRM)`, clamped at zero.
    fn sfrm_count(&self, a_mm: i64, n_wb: i64, n_ifrm: i64) -> u32 {
        let headroom = i64::from(self.budget.mm_budget) - a_mm - n_wb - n_ifrm;
        if headroom <= 0 {
            0
        } else {
            (headroom * 4 / 5) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Default HBM (102.4 GB/s) + DDR4 (38.4 GB/s), W=64, E=0.75, 4 GHz.
    /// cache_budget = 19, mm_budget = 7, K = 11/4.
    fn hbm_budget() -> WindowBudget {
        WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75)
    }

    fn solver() -> SectoredDapSolver {
        SectoredDapSolver::new(hbm_budget())
    }

    #[test]
    fn no_partitioning_when_cache_has_headroom() {
        let stats = WindowStats {
            cache_accesses: 10,
            mm_accesses: 3,
            ..Default::default()
        };
        assert!(solver().solve(&stats).is_idle());
    }

    #[test]
    fn no_partitioning_when_mm_is_bottleneck() {
        // A_MS$ > budget but K.A_MM already exceeds A_MS$: N_FWB < 0 => exit.
        let stats = WindowStats {
            cache_accesses: 25,
            mm_accesses: 20,
            ..Default::default()
        };
        assert!(solver().solve(&stats).is_idle());
    }

    #[test]
    fn fwb_alone_when_fills_suffice() {
        // A_MS$ = 30, A_MM = 2: eq gives N_FWB = 30 - 2.75*2 = 24 (floored);
        // needed = 30 - 19 = 11; Rm = 12 fills available => FWB only.
        let stats = WindowStats {
            cache_accesses: 30,
            mm_accesses: 2,
            read_misses: 12,
            writes: 4,
            clean_read_hits: 5,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        assert_eq!(plan.n_fwb, 11, "capped at the needed partitioning");
        assert_eq!(plan.n_wb(), 0);
        assert_eq!(plan.n_ifrm(), 0);
        // MM headroom 7 - 2 = 5 -> 0.8 * 5 = 4 speculative forced misses.
        assert_eq!(plan.n_sfrm, 4);
    }

    #[test]
    fn escalates_to_write_bypass_when_fills_run_out() {
        // A_MS$ = 40, A_MM = 2, Rm = 3 fills, Wm = 10 writes.
        // FWB eq = 40 - 5 = 35, needed = 21, > Rm => FWB = 3.
        // WB scaled: 4*40 - 11*2 - 4*3 = 126, but capped by the main-memory
        // headroom (7 - 2 = 5 writes): 15*5 = 75 => N_WB = 5.
        let stats = WindowStats {
            cache_accesses: 40,
            mm_accesses: 2,
            read_misses: 3,
            writes: 10,
            clean_read_hits: 20,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        assert_eq!(plan.n_fwb, 3);
        assert_eq!(plan.wb_scaled, 75);
        assert_eq!(plan.n_wb(), 5);
        assert_eq!(plan.n_ifrm(), 0, "headroom exhausted by WB, so no IFRM");
    }

    #[test]
    fn escalates_to_ifrm_when_writes_run_out() {
        // A_MS$ = 60, A_MM = 2, Rm = 3, Wm = 4 (cap), plenty of clean hits.
        // WB scaled = 4*60 - 22 - 12 = 206 > 15*4 = 60 => N_WB = 4.
        // IFRM eq gives 146 scaled, but only 7-2-4 = 1 main-memory access
        // of headroom remains => N_IFRM = 1.
        let stats = WindowStats {
            cache_accesses: 60,
            mm_accesses: 2,
            read_misses: 3,
            writes: 4,
            clean_read_hits: 30,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        assert_eq!(plan.n_fwb, 3);
        assert_eq!(plan.n_wb(), 4);
        assert_eq!(plan.ifrm_scaled, 15);
        assert_eq!(plan.n_ifrm(), 1);
    }

    #[test]
    fn ifrm_capped_by_clean_hits() {
        // Only one clean hit available: even with headroom, IFRM <= clean.
        let stats = WindowStats {
            cache_accesses: 60,
            mm_accesses: 0,
            read_misses: 3,
            writes: 4,
            clean_read_hits: 1,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        assert_eq!(plan.n_ifrm(), 1);
    }

    #[test]
    fn sfrm_reserves_twenty_percent_headroom() {
        // With WB+IFRM traffic eating MM budget, SFRM shrinks accordingly.
        let stats = WindowStats {
            cache_accesses: 60,
            mm_accesses: 2,
            read_misses: 3,
            writes: 4,
            clean_read_hits: 30,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        // headroom = 7 - 2 - 4 (WB) - 9 (IFRM) = -8 => no SFRM.
        assert_eq!(plan.n_sfrm, 0);
    }

    #[test]
    fn sfrm_positive_when_mm_idle() {
        let stats = WindowStats {
            cache_accesses: 25,
            mm_accesses: 0,
            read_misses: 10,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        // needed = 6, all from FWB; headroom = 7 -> 0.8*7 = 5 (floor).
        assert_eq!(plan.n_fwb, 6);
        assert_eq!(plan.n_sfrm, 5);
    }

    #[test]
    fn balance_improves_toward_optimal_ratio() {
        // After applying the plan, the access split should move toward
        // B_MS$/B_MM = 11/4: cache' / mm' ~ K.
        let stats = WindowStats {
            cache_accesses: 100,
            mm_accesses: 4,
            read_misses: 20,
            writes: 30,
            clean_read_hits: 40,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        let moved = plan.n_fwb + plan.n_wb() + plan.n_ifrm();
        let cache_after = f64::from(stats.cache_accesses - moved);
        let mm_after = f64::from(stats.mm_accesses + plan.n_wb() + plan.n_ifrm());
        let ratio_before = f64::from(stats.cache_accesses) / f64::from(stats.mm_accesses);
        let ratio_after = cache_after / mm_after;
        let k = 2.75;
        assert!(
            (ratio_after - k).abs() < (ratio_before - k).abs(),
            "ratio should move toward K: before {ratio_before}, after {ratio_after}"
        );
    }

    #[test]
    fn zero_traffic_window_is_idle() {
        assert!(solver().solve(&WindowStats::default()).is_idle());
    }
}
