//! Hardware-friendly rational arithmetic for the bandwidth ratio `K`.
//!
//! DAP's window solver multiplies access counts by `K = B_MS$ / B_MM`, which
//! may be fractional (102.4 / 38.4 = 8/3). Hardware cannot afford a divider
//! on this path, so the paper approximates `K` by a small rational with a
//! power-of-two denominator (8/3 ≈ 11/4) so that multiplication reduces to a
//! shift-and-add. [`Ratio`] reproduces that arithmetic exactly.

use core::fmt;

use crate::math::round_u32;

/// A non-negative rational `num / den` with a power-of-two denominator.
///
/// ```
/// use dap_decide::Ratio;
/// let k = Ratio::approximate(102.4 / 38.4); // 8/3 -> 11/4
/// assert_eq!((k.numerator(), k.denominator()), (11, 4));
/// assert_eq!(k.mul_int(8), 22); // floor(8 * 11/4)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u32,
    den: u32,
}

impl Ratio {
    /// Maximum denominator used by [`Ratio::approximate`]. A 4-bit shift is
    /// the paper's example (den = 4); we allow up to 16 for finer ratios.
    pub const MAX_DEN: u32 = 16;

    /// Creates a ratio from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or not a power of two.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(
            den != 0 && den.is_power_of_two(),
            "denominator must be a power of two"
        );
        Self { num, den }
    }

    /// Approximates a positive real ratio by `round(k * den) / den`, picking
    /// the smallest power-of-two `den <= MAX_DEN` that gets within 5% of the
    /// target (matching the paper's 8/3 -> 11/4 example).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite and positive.
    pub fn approximate(k: f64) -> Self {
        assert!(
            k.is_finite() && k > 0.0,
            "ratio must be finite and positive"
        );
        let mut den = 1u32;
        loop {
            let num = round_u32(k * f64::from(den));
            let approx = f64::from(num) / f64::from(den);
            if num > 0 && (approx - k).abs() / k <= 0.05 {
                return Self { num, den };
            }
            if den >= Self::MAX_DEN {
                return Self {
                    num: round_u32(k * f64::from(den)).max(1),
                    den,
                };
            }
            den *= 2;
        }
    }

    /// The numerator.
    pub fn numerator(&self) -> u32 {
        self.num
    }

    /// The denominator (a power of two).
    pub fn denominator(&self) -> u32 {
        self.den
    }

    /// `floor(x * self)` — the shift-and-add a hardware multiplier performs.
    /// The intermediate product is computed in 128 bits so inputs near
    /// `u64::MAX` cannot overflow; a result wider than 64 bits saturates
    /// at `u64::MAX` (a hardware multiplier would likewise clamp at its
    /// register width).
    pub fn mul_int(&self, x: u64) -> u64 {
        let wide = u128::from(x) * u128::from(self.num) / u128::from(self.den);
        u64::try_from(wide).unwrap_or(u64::MAX)
    }

    /// `floor(x * self)` for signed inputs (rounds toward negative infinity,
    /// as an arithmetic right shift does). Like [`mul_int`](Self::mul_int),
    /// the product is widened to 128 bits and the result saturates at the
    /// `i64` limits.
    pub fn mul_i64(&self, x: i64) -> i64 {
        let wide = (i128::from(x) * i128::from(self.num)).div_euclid(i128::from(self.den));
        i64::try_from(wide).unwrap_or(if wide < 0 { i64::MIN } else { i64::MAX })
    }

    /// The ratio as a float (for reporting only).
    pub fn as_f64(&self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }

    /// `self + 1` as a scaled integer pair: returns `num + den` over `den`,
    /// i.e. the `(K + 1)` factor the credit counters store. Saturates at
    /// `u32::MAX` for extreme ratios instead of overflowing.
    pub fn plus_one_num(&self) -> u32 {
        self.num.saturating_add(self.den)
    }

    /// `2*self + 1` scaled by `den` — the `(2K + 1)` factor of Eq. 12.
    /// Saturates at `u32::MAX` for extreme ratios instead of overflowing.
    pub fn twice_plus_one_num(&self) -> u32 {
        self.num.saturating_mul(2).saturating_add(self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_k_eight_thirds_becomes_eleven_fourths() {
        let k = Ratio::approximate(102.4 / 38.4);
        assert_eq!((k.numerator(), k.denominator()), (11, 4));
        assert!((k.as_f64() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn integral_ratios_stay_exact() {
        let k = Ratio::approximate(2.0);
        assert_eq!((k.numerator(), k.denominator()), (2, 1));
        let k = Ratio::approximate(4.0);
        assert_eq!(k.mul_int(10), 40);
    }

    #[test]
    fn edram_k_is_four_thirds() {
        // 51.2 / 38.4 = 4/3 ~ 1.333; den=4 gives 5/4=1.25 (6.25% off), so
        // approximate() should go to den=8: 11/8 = 1.375 (3.1% off).
        let k = Ratio::approximate(51.2 / 38.4);
        let err = (k.as_f64() - 4.0 / 3.0).abs() / (4.0 / 3.0);
        assert!(err <= 0.05, "approximation error {err} too large for {k}");
    }

    #[test]
    fn mul_int_floors() {
        let k = Ratio::new(11, 4);
        assert_eq!(k.mul_int(3), 8); // 33/4 = 8.25
        assert_eq!(k.mul_int(0), 0);
    }

    #[test]
    fn mul_i64_handles_negatives() {
        let k = Ratio::new(11, 4);
        assert_eq!(k.mul_i64(-3), -9); // -33/4 = -8.25 -> floor -9
        assert_eq!(k.mul_i64(4), 11);
    }

    #[test]
    fn plus_one_factors() {
        let k = Ratio::new(11, 4);
        assert_eq!(k.plus_one_num(), 15); // (K+1) scaled by 4
        assert_eq!(k.twice_plus_one_num(), 26); // (2K+1) scaled by 4
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_denominator_rejected() {
        let _ = Ratio::new(8, 3);
    }
}
