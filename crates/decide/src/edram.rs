//! DAP solver for sectored eDRAM caches (Section IV-C).
//!
//! eDRAM caches expose *three* bandwidth sources beyond the SRAM hierarchy:
//! independent read channels (`B_MS$-R`), independent write channels
//! (`B_MS$-W`), and the DDR main memory (`B_MM`). Metadata lives on die, so
//! SFRM is unnecessary; the solver picks among FWB, WB, and IFRM depending
//! on which channel set is short (the paper's cases i–iii):
//!
//! * **(i) read shortage only** — IFRM via Eq. 9;
//! * **(ii) write shortage only** — FWB then WB via Eq. 10/11;
//! * **(iii) both short** — FWB via Eq. 10, then the simultaneous solution
//!   of Eq. 12 for WB and IFRM.
//!
//! The paper assumes `B_MS$-R = B_MS$-W = B_MS$` and `K = B_MS$ / B_MM`.

use crate::window::{WindowBudget, WindowStats};

/// The partition plan for one window of an eDRAM-cache system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdramPlan {
    /// Fill write bypasses to perform (`N_FWB`).
    pub n_fwb: u32,
    /// Write bypasses to perform (`N_WB`).
    pub n_wb: u32,
    /// Informed forced read misses to perform (`N_IFRM`).
    pub n_ifrm: u32,
}

impl EdramPlan {
    /// True if the plan performs no partitioning at all.
    pub fn is_idle(&self) -> bool {
        self.n_fwb == 0 && self.n_wb == 0 && self.n_ifrm == 0
    }
}

/// Stateless solver for the three-source eDRAM DAP variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdramDapSolver {
    budget: WindowBudget,
}

impl EdramDapSolver {
    /// Creates a solver for the given budgets. `budget.cache_channel_budget`
    /// must hold the per-direction (read = write) channel budget.
    pub fn new(budget: WindowBudget) -> Self {
        Self { budget }
    }

    /// The budgets this solver was built with.
    pub fn budget(&self) -> &WindowBudget {
        &self.budget
    }

    /// Computes the partition plan from the previous window's observations.
    /// Uses `stats.cache_read_accesses` (`A_MS$-R`) and
    /// `stats.cache_write_accesses` (`A_MS$-W`).
    pub fn solve(&self, stats: &WindowStats) -> EdramPlan {
        let b = &self.budget;
        let num = i64::from(b.k.numerator());
        let den = i64::from(b.k.denominator());
        let channel_budget = i64::from(b.cache_channel_budget);

        let a_r = i64::from(stats.cache_read_accesses);
        let a_w = i64::from(stats.cache_write_accesses);
        let a_mm = i64::from(stats.mm_accesses);
        let rm = i64::from(stats.read_misses);
        let wm = i64::from(stats.writes);
        let clean = i64::from(stats.clean_read_hits);

        let read_short = a_r > channel_budget;
        let write_short = a_w > channel_budget;
        let mut plan = EdramPlan::default();

        // Main memory already at or beyond its own budget: partitioning
        // would push traffic onto the bottleneck — exit immediately (the
        // paper's "main memory is a bottleneck" exit, applied before the
        // per-technique equations so bursty windows cannot defeat it).
        let mm_headroom = i64::from(b.mm_budget) - a_mm;
        if mm_headroom <= 0 {
            return plan;
        }

        let plan = match (read_short, write_short) {
            (false, false) => plan,
            // Case (i): read shortage only. Eq. 9 rearranges to
            // (den+num).N_IFRM = den.A_R - num.A_MM.
            (true, false) => {
                let scaled = den * a_r - num * a_mm;
                if scaled > 0 {
                    plan.n_ifrm = ((scaled / (num + den)).min(clean)) as u32;
                }
                plan
            }
            // Case (ii): write shortage only. Eq. 10: N_FWB = A_W - K.A_MM,
            // capped at the fills available; then Eq. 11:
            // (den+num).N_WB = den.(A_W - N_FWB) - num.A_MM.
            (false, true) => {
                let fwb_scaled = den * a_w - num * a_mm;
                if fwb_scaled <= 0 {
                    return plan;
                }
                plan.n_fwb = (fwb_scaled / den).min(rm).max(0) as u32;
                let wb_scaled = den * (a_w - i64::from(plan.n_fwb)) - num * a_mm;
                if wb_scaled > 0 {
                    plan.n_wb = ((wb_scaled / (num + den)).min(wm)) as u32;
                }
                plan
            }
            // Case (iii): both short. FWB via Eq. 10, then Eq. 12 jointly:
            // (2num+den).N_WB  = (num+den).(A_W - N_FWB) - num.A_R - num.A_MM
            // (2num+den).N_IFRM = (num+den).A_R - num.(A_W - N_FWB) - num.A_MM
            (true, true) => {
                let fwb_scaled = den * a_w - num * a_mm;
                if fwb_scaled > 0 {
                    plan.n_fwb = (fwb_scaled / den).min(rm).max(0) as u32;
                }
                let w_eff = a_w - i64::from(plan.n_fwb);
                let denom = 2 * num + den;
                let wb_scaled = (num + den) * w_eff - num * a_r - num * a_mm;
                if wb_scaled > 0 {
                    plan.n_wb = ((wb_scaled / denom).min(wm)) as u32;
                }
                let ifrm_scaled = (num + den) * a_r - num * w_eff - num * a_mm;
                if ifrm_scaled > 0 {
                    plan.n_ifrm = ((ifrm_scaled / denom).min(clean)) as u32;
                }
                plan
            }
        };

        // The techniques that add main-memory traffic (WB, IFRM) must fit
        // in the remaining main-memory headroom.
        let mut plan = plan;
        let mut headroom = mm_headroom as u32;
        plan.n_wb = plan.n_wb.min(headroom);
        headroom -= plan.n_wb;
        plan.n_ifrm = plan.n_ifrm.min(headroom);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// eDRAM: 51.2 GB/s per direction, DDR4 38.4 GB/s, W=64, E=0.75, 4 GHz.
    /// channel budget = 9, mm budget = 7, K ~ 4/3 (approximated 11/8).
    fn edram_budget() -> WindowBudget {
        WindowBudget::from_gbps(51.2, Some(51.2), 38.4, 4.0, 64, 0.75)
    }

    fn solver() -> EdramDapSolver {
        EdramDapSolver::new(edram_budget())
    }

    #[test]
    fn idle_when_both_channels_have_headroom() {
        let stats = WindowStats {
            cache_read_accesses: 5,
            cache_write_accesses: 5,
            mm_accesses: 1,
            ..Default::default()
        };
        assert!(solver().solve(&stats).is_idle());
    }

    #[test]
    fn read_shortage_uses_ifrm_only() {
        let stats = WindowStats {
            cache_read_accesses: 20,
            cache_write_accesses: 3,
            mm_accesses: 2,
            read_misses: 5,
            writes: 5,
            clean_read_hits: 15,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        assert!(plan.n_ifrm > 0);
        assert_eq!(plan.n_fwb, 0);
        assert_eq!(plan.n_wb, 0);
    }

    #[test]
    fn write_shortage_uses_fwb_then_wb() {
        // A_W = 20 over budget 9; A_MM = 2; Rm = 4 fills.
        // FWB eq = 20 - 1.375*2 = 17 -> capped at Rm = 4.
        // WB: scaled = 8*(20-4) - 11*2 = 106; /19 = 5 writes.
        let stats = WindowStats {
            cache_read_accesses: 5,
            cache_write_accesses: 20,
            mm_accesses: 2,
            read_misses: 4,
            writes: 12,
            clean_read_hits: 10,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        assert_eq!(plan.n_fwb, 4);
        assert_eq!(plan.n_wb, 5);
        assert_eq!(plan.n_ifrm, 0, "read channels are fine; no IFRM");
    }

    #[test]
    fn both_short_solves_simultaneously() {
        let stats = WindowStats {
            cache_read_accesses: 20,
            cache_write_accesses: 20,
            mm_accesses: 1,
            read_misses: 4,
            writes: 12,
            clean_read_hits: 15,
            ..Default::default()
        };
        let plan = solver().solve(&stats);
        assert!(plan.n_fwb > 0);
        assert!(plan.n_wb > 0 || plan.n_ifrm > 0);
        // The joint solution must not bypass more writes than exist or more
        // reads than there are clean hits.
        assert!(plan.n_wb <= 12);
        assert!(plan.n_ifrm <= 15);
    }

    #[test]
    fn joint_solution_balances_three_sources_within_mm_headroom() {
        // The joint solution moves the read and write ratios toward K, but
        // never adds more main-memory traffic than the MM budget allows.
        let stats = WindowStats {
            cache_read_accesses: 30,
            cache_write_accesses: 30,
            mm_accesses: 2,
            read_misses: 10,
            writes: 20,
            clean_read_hits: 25,
            ..Default::default()
        };
        let budget = edram_budget();
        let plan = solver().solve(&stats);
        let headroom = budget.mm_budget - stats.mm_accesses;
        assert!(
            plan.n_wb + plan.n_ifrm <= headroom,
            "WB+IFRM must fit MM headroom"
        );
        let k = budget.k.as_f64();
        let ratio = |cache: u32, moved: u32, mm_extra: u32| {
            f64::from(cache - moved) / f64::from(stats.mm_accesses + mm_extra)
        };
        let r_before = f64::from(stats.cache_read_accesses) / f64::from(stats.mm_accesses);
        let r_after = ratio(
            stats.cache_read_accesses,
            plan.n_ifrm,
            plan.n_wb + plan.n_ifrm,
        );
        assert!(
            (r_after - k).abs() < (r_before - k).abs(),
            "read ratio must move toward K"
        );
        let w_before = f64::from(stats.cache_write_accesses) / f64::from(stats.mm_accesses);
        let w_after = ratio(
            stats.cache_write_accesses,
            plan.n_fwb + plan.n_wb,
            plan.n_wb + plan.n_ifrm,
        );
        assert!(
            (w_after - k).abs() < (w_before - k).abs(),
            "write ratio must move toward K"
        );
    }

    #[test]
    fn mm_bottleneck_produces_idle_plan() {
        let stats = WindowStats {
            cache_read_accesses: 10,
            cache_write_accesses: 10,
            mm_accesses: 30,
            read_misses: 5,
            writes: 5,
            clean_read_hits: 5,
            ..Default::default()
        };
        assert!(solver().solve(&stats).is_idle());
    }
}
