//! Analytical bandwidth model (Section III of the paper).
//!
//! A system has `n` distinct, non-blocking, parallel bandwidth sources.
//! Source `i` can serve `B_i` accesses per unit time; it is asked to serve a
//! fraction `f_i` of the `A` total accesses. The time to finish all accesses
//! is dominated by the slowest source, so the delivered bandwidth is
//! `min_i(B_i / f_i)` (Eq. 2) and its maximum over all feasible partitions is
//! `sum_i(B_i)`, attained when `f_i = B_i / sum(B)` (Eq. 3/4).
//!
//! With maintenance traffic (fills, dirty evictions, metadata), the served
//! access volume inflates by a factor `C >= 1` and the maximum delivered
//! *demand* bandwidth becomes `sum_i(B_i) / C` — which is why DAP both
//! partitions accesses *and* prefers techniques (like fill write bypass) that
//! reduce `C`.

#[cfg(not(feature = "std"))]
use alloc::{string::String, vec, vec::Vec};
use core::fmt;

/// A single bandwidth source: a named channel group with a peak bandwidth.
///
/// Bandwidth is expressed in *accesses per unit time*, where every access
/// transfers a fixed payload (64 bytes throughout the paper). Use
/// [`BandwidthSource::from_gbps`] to convert a GB/s figure.
///
/// ```
/// use dap_decide::BandwidthSource;
/// let hbm = BandwidthSource::from_gbps("HBM", 102.4);
/// let ddr = BandwidthSource::from_gbps("DDR4", 38.4);
/// assert!(hbm.accesses_per_sec() > ddr.accesses_per_sec());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthSource {
    name: String,
    accesses_per_sec: f64,
}

impl BandwidthSource {
    /// Bytes moved per access everywhere in this model (one cache block).
    pub const BYTES_PER_ACCESS: f64 = 64.0;

    /// Creates a source from a raw accesses-per-second rate. A rate of
    /// exactly zero is allowed and means the source is currently dark
    /// (delivering nothing — see [`crate::degrade`]).
    ///
    /// # Panics
    ///
    /// Panics if `accesses_per_sec` is not finite and non-negative.
    pub fn new(name: impl Into<String>, accesses_per_sec: f64) -> Self {
        assert!(
            accesses_per_sec.is_finite() && accesses_per_sec >= 0.0,
            "bandwidth must be finite and non-negative, got {accesses_per_sec}"
        );
        Self {
            name: name.into(),
            accesses_per_sec,
        }
    }

    /// Creates a source from a GB/s figure (1 GB = 1e9 bytes, as in the
    /// paper's 102.4 GB/s / 38.4 GB/s style numbers).
    pub fn from_gbps(name: impl Into<String>, gbps: f64) -> Self {
        Self::new(name, gbps * 1e9 / Self::BYTES_PER_ACCESS)
    }

    /// The source's label (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Peak rate in accesses per second.
    pub fn accesses_per_sec(&self) -> f64 {
        self.accesses_per_sec
    }

    /// Peak rate in GB/s.
    pub fn gbps(&self) -> f64 {
        self.accesses_per_sec * Self::BYTES_PER_ACCESS / 1e9
    }
}

impl fmt::Display for BandwidthSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.1} GB/s)", self.name, self.gbps())
    }
}

/// Delivered bandwidth of a partition (Eq. 2): `min_i(B_i / f_i)`.
///
/// `sources` and `fractions` must have equal, non-zero length and the
/// fractions must be non-negative. Fractions need not sum exactly to 1 — the
/// caller may be exploring infeasible points — but a source with `f_i = 0`
/// simply does not constrain the minimum.
///
/// Returns the delivered bandwidth in accesses per second.
///
/// # Panics
///
/// Panics if lengths differ, the slices are empty, or any fraction is
/// negative/NaN.
///
/// ```
/// use dap_decide::{delivered_bandwidth, BandwidthSource};
/// let m1 = BandwidthSource::from_gbps("M1", 102.4);
/// let m2 = BandwidthSource::from_gbps("M2", 51.2);
/// // Half the accesses to each: bottlenecked by M2 at 102.4 GB/s total.
/// let b = delivered_bandwidth(&[m1, m2], &[0.5, 0.5]);
/// assert!((b * 64.0 / 1e9 - 102.4).abs() < 1e-6);
/// ```
pub fn delivered_bandwidth(sources: &[BandwidthSource], fractions: &[f64]) -> f64 {
    assert_eq!(sources.len(), fractions.len(), "one fraction per source");
    assert!(!sources.is_empty(), "need at least one source");
    let mut min = f64::INFINITY;
    for (s, &f) in sources.iter().zip(fractions) {
        assert!(
            f >= 0.0 && f.is_finite(),
            "fractions must be finite and non-negative"
        );
        if f > 0.0 {
            min = min.min(s.accesses_per_sec / f);
        }
    }
    // Every fraction zero means no source is assigned any accesses:
    // nothing is delivered (rather than the vacuous infinite minimum).
    if min == f64::INFINITY {
        return 0.0;
    }
    min
}

/// Optimal access fractions (Eq. 3): `f_i = B_i / sum(B)`.
///
/// Distributing accesses in proportion to source bandwidths equalizes
/// `B_i / f_i` and achieves the maximum delivered bandwidth `sum(B_i)`.
///
/// # Panics
///
/// Panics if `sources` is empty.
///
/// ```
/// use dap_decide::{optimal_fractions, BandwidthSource};
/// let f = optimal_fractions(&[
///     BandwidthSource::from_gbps("M1", 102.4),
///     BandwidthSource::from_gbps("M2", 51.2),
/// ]);
/// assert!((f[0] - 2.0 / 3.0).abs() < 1e-12);
/// assert!((f[1] - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn optimal_fractions(sources: &[BandwidthSource]) -> Vec<f64> {
    assert!(!sources.is_empty(), "need at least one source");
    let total: f64 = sources.iter().map(|s| s.accesses_per_sec).sum();
    if total <= 0.0 {
        // Every source dark: there is no stream to partition. All-zero
        // fractions (not NaN from 0/0) keep downstream arithmetic sane.
        return vec![0.0; sources.len()];
    }
    sources.iter().map(|s| s.accesses_per_sec / total).collect()
}

/// A multi-source system together with its maintenance inflation factor `C`.
///
/// `C >= 1` is the ratio of *actual* accesses served (demand plus fills,
/// dirty evictions, metadata reads/updates, ...) to demand accesses. The
/// maximum demand bandwidth deliverable is `sum(B_i) / C`.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemBandwidth {
    sources: Vec<BandwidthSource>,
    inflation: f64,
}

impl SystemBandwidth {
    /// Builds a system description.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or `inflation < 1.0`.
    pub fn new(sources: Vec<BandwidthSource>, inflation: f64) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        assert!(inflation >= 1.0 && inflation.is_finite(), "C must be >= 1");
        Self { sources, inflation }
    }

    /// The bandwidth sources.
    pub fn sources(&self) -> &[BandwidthSource] {
        &self.sources
    }

    /// The access-volume inflation factor `C`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// Maximum deliverable *demand* bandwidth, `sum(B_i) / C`, in accesses/s.
    pub fn max_demand_bandwidth(&self) -> f64 {
        self.sources.iter().map(|s| s.accesses_per_sec).sum::<f64>() / self.inflation
    }

    /// Optimal fractions of the (inflated) access stream per source.
    pub fn optimal_fractions(&self) -> Vec<f64> {
        optimal_fractions(&self.sources)
    }

    /// Delivered demand bandwidth for a given partition of the inflated
    /// stream: `min_i(B_i/f_i) / C`.
    pub fn delivered_demand_bandwidth(&self, fractions: &[f64]) -> f64 {
        delivered_bandwidth(&self.sources, fractions) / self.inflation
    }

    /// How far a measured per-source access split is from optimal, as the
    /// largest absolute fraction error. Useful for validating that a policy
    /// converged (the paper's Fig. 8 check that the main-memory CAS fraction
    /// approaches 0.27).
    pub fn partition_error(&self, measured_fractions: &[f64]) -> f64 {
        let opt = self.optimal_fractions();
        assert_eq!(
            opt.len(),
            measured_fractions.len(),
            "one fraction per source"
        );
        opt.iter()
            .zip(measured_fractions)
            .map(|(o, m)| (o - m).abs())
            .fold(0.0, f64::max)
    }
}

/// Delivered read bandwidth of the paper's Figure 1 microbenchmark model.
///
/// A read-only stream hits the memory-side cache with probability `h`.
///
/// * Single-bus cache (HBM DRAM cache): read hits *and* miss fills share the
///   cache's one set of channels, while misses are served by main memory.
///   Per demand read, the cache serves `h` (hit reads) plus `1 - h` (fill
///   writes), and main memory serves `1 - h`.
/// * Split-channel cache (eDRAM): fills go to separate write channels, so
///   the read channels serve `h` and main memory serves `1 - h`; total
///   delivered read bandwidth is the *sum* of both contributions until the
///   read channels saturate.
///
/// Returns delivered bandwidth in accesses per second.
pub fn read_kernel_bandwidth(
    cache_read: &BandwidthSource,
    cache_write: Option<&BandwidthSource>,
    main_memory: &BandwidthSource,
    hit_rate: f64,
) -> f64 {
    assert!(
        (0.0..=1.0).contains(&hit_rate),
        "hit rate must be in [0, 1]"
    );
    let h = hit_rate;
    let miss = 1.0 - h;
    match cache_write {
        // Split channels: reads limited by read channels at h per access and
        // by MM at (1-h); fills ride the write channels (limit fills too).
        Some(w) => {
            // Time per demand access on each resource; bandwidth = 1 / max.
            let t_read = if h > 0.0 {
                h / cache_read.accesses_per_sec
            } else {
                0.0
            };
            let t_mm = if miss > 0.0 {
                miss / main_memory.accesses_per_sec
            } else {
                0.0
            };
            let t_fill = if miss > 0.0 {
                miss / w.accesses_per_sec
            } else {
                0.0
            };
            // Read channels and MM operate in parallel: the stream completes
            // when the slower of the *serial* chains finishes. Misses occupy
            // MM and (for the fill) the write channels concurrently.
            let t = t_read.max(t_mm).max(t_fill);
            if t == 0.0 {
                cache_read.accesses_per_sec
            } else {
                1.0 / t
            }
        }
        // Single bus: h hit reads + (1-h) miss fills all occupy the cache
        // bus, i.e. exactly one cache-bus transfer per demand read.
        None => {
            let t_cache = 1.0 / cache_read.accesses_per_sec;
            let t_mm = if miss > 0.0 {
                miss / main_memory.accesses_per_sec
            } else {
                0.0
            };
            1.0 / t_cache.max(t_mm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbps(b: f64) -> f64 {
        b * BandwidthSource::BYTES_PER_ACCESS / 1e9
    }

    #[test]
    fn paper_example_equal_split_is_bottlenecked() {
        // Section III example: M1 = 102.4, M2 = 51.2; f = (0.5, 0.5) delivers
        // only 102.4 GB/s, bottlenecked by M2.
        let m1 = BandwidthSource::from_gbps("M1", 102.4);
        let m2 = BandwidthSource::from_gbps("M2", 51.2);
        let b = delivered_bandwidth(&[m1, m2], &[0.5, 0.5]);
        assert!((gbps(b) - 102.4).abs() < 1e-9);
    }

    #[test]
    fn paper_example_optimal_split_sums_bandwidths() {
        // 2/3 to M1 and 1/3 to M2 delivers 153.6 GB/s.
        let m1 = BandwidthSource::from_gbps("M1", 102.4);
        let m2 = BandwidthSource::from_gbps("M2", 51.2);
        let f = optimal_fractions(&[m1.clone(), m2.clone()]);
        let b = delivered_bandwidth(&[m1, m2], &f);
        assert!((gbps(b) - 153.6).abs() < 1e-9);
    }

    #[test]
    fn all_accesses_to_one_source() {
        let m1 = BandwidthSource::from_gbps("M1", 102.4);
        let m2 = BandwidthSource::from_gbps("M2", 51.2);
        let b = delivered_bandwidth(&[m1, m2], &[1.0, 0.0]);
        assert!((gbps(b) - 102.4).abs() < 1e-9);
    }

    #[test]
    fn optimal_fractions_sum_to_one() {
        let f = optimal_fractions(&[
            BandwidthSource::from_gbps("a", 10.0),
            BandwidthSource::from_gbps("b", 20.0),
            BandwidthSource::from_gbps("c", 70.0),
        ]);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn inflation_scales_max_demand_bandwidth() {
        let sys = SystemBandwidth::new(
            vec![
                BandwidthSource::from_gbps("cache", 102.4),
                BandwidthSource::from_gbps("mm", 38.4),
            ],
            1.25,
        );
        assert!((gbps(sys.max_demand_bandwidth()) - (102.4 + 38.4) / 1.25).abs() < 1e-9);
    }

    #[test]
    fn partition_error_zero_at_optimum() {
        let sys = SystemBandwidth::new(
            vec![
                BandwidthSource::from_gbps("cache", 102.4),
                BandwidthSource::from_gbps("mm", 38.4),
            ],
            1.0,
        );
        let f = sys.optimal_fractions();
        assert!(sys.partition_error(&f) < 1e-12);
        // MM's optimal fraction is the paper's 0.27.
        assert!((f[1] - 38.4 / 140.8).abs() < 1e-12);
    }

    #[test]
    fn read_kernel_single_bus_plateaus_after_crossover() {
        // HBM 102.4 single bus, DDR4 38.4: Figure 1 "DRAM$" curve — rises,
        // then stays ~flat from ~70% to 100%.
        let hbm = BandwidthSource::from_gbps("HBM", 102.4);
        let ddr = BandwidthSource::from_gbps("DDR", 38.4);
        let b0 = read_kernel_bandwidth(&hbm, None, &ddr, 0.0);
        let b70 = read_kernel_bandwidth(&hbm, None, &ddr, 0.70);
        let b100 = read_kernel_bandwidth(&hbm, None, &ddr, 1.0);
        assert!(b70 > b0, "bandwidth should rise with hit rate initially");
        // Plateau: 70% and 100% within ~10% of each other.
        assert!((gbps(b70) - gbps(b100)).abs() / gbps(b100) < 0.12);
        assert!((gbps(b100) - 102.4).abs() < 1e-9);
    }

    #[test]
    fn read_kernel_split_channels_peak_before_full_hit_rate() {
        // eDRAM 51.2+51.2 split channels: Figure 1 "EDRAM$" curve — delivered
        // bandwidth *falls* as hit rate goes beyond the optimum toward 100%.
        let rd = BandwidthSource::from_gbps("eDRAM-R", 51.2);
        let wr = BandwidthSource::from_gbps("eDRAM-W", 51.2);
        let ddr = BandwidthSource::from_gbps("DDR", 38.4);
        let b50 = read_kernel_bandwidth(&rd, Some(&wr), &ddr, 0.50);
        let b90 = read_kernel_bandwidth(&rd, Some(&wr), &ddr, 0.90);
        let b100 = read_kernel_bandwidth(&rd, Some(&wr), &ddr, 1.0);
        assert!(
            b50 > b100,
            "50% hit rate should beat 100% on split channels"
        );
        assert!(b90 > b100);
        assert!((gbps(b100) - 51.2).abs() < 1e-9);
    }

    #[test]
    fn zero_bandwidth_means_dark_source() {
        // Zero is representable (a dark source — see `degrade`); only
        // negative or non-finite rates are rejected.
        let dark = BandwidthSource::new("dark", 0.0);
        assert_eq!(dark.accesses_per_sec(), 0.0);
        let f = optimal_fractions(&[BandwidthSource::from_gbps("live", 38.4), dark]);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite and non-negative")]
    fn negative_bandwidth_rejected() {
        let _ = BandwidthSource::new("bad", -1.0);
    }

    #[test]
    fn all_dark_sources_yield_zero_fractions_and_bandwidth() {
        let sources = [
            BandwidthSource::new("d0", 0.0),
            BandwidthSource::new("d1", 0.0),
        ];
        let f = optimal_fractions(&sources);
        assert_eq!(f, vec![0.0, 0.0], "no NaN from 0/0");
        assert_eq!(delivered_bandwidth(&sources, &f), 0.0);
    }

    #[test]
    #[should_panic(expected = "one fraction per source")]
    fn mismatched_lengths_rejected() {
        let m = BandwidthSource::from_gbps("m", 1.0);
        let _ = delivered_bandwidth(&[m], &[0.5, 0.5]);
    }

    #[test]
    fn display_formats_gbps() {
        let m = BandwidthSource::from_gbps("HBM", 102.4);
        assert_eq!(m.to_string(), "HBM (102.4 GB/s)");
    }
}
