//! Per-window observation state.
//!
//! DAP divides execution into windows of `W` CPU cycles. During window `N`
//! the hardware counts the accesses demanded from each bandwidth source;
//! at the window boundary those counts are fed to a solver which computes
//! the partitioning credits for window `N + 1`.

use crate::math::floor_u32;
use crate::ratio::Ratio;

/// Access counts observed during one window.
///
/// All counts are in 64-byte accesses. `cache_accesses` is the paper's
/// `A_MS$` — *everything* demanded from the memory-side cache: read hits,
/// writes (L3 dirty evictions), fill writes, reads for dirty evictions, and
/// metadata traffic. `mm_accesses` is `A_MM`: read misses plus dirty
/// evictions written to main memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// `A_MS$`: total accesses demanded from the memory-side cache.
    pub cache_accesses: u32,
    /// `A_MS$-R`: accesses demanded from the cache's *read* channels (only
    /// meaningful for split-channel eDRAM caches; zero otherwise).
    pub cache_read_accesses: u32,
    /// `A_MS$-W`: accesses demanded from the cache's *write* channels (only
    /// meaningful for split-channel eDRAM caches; zero otherwise).
    pub cache_write_accesses: u32,
    /// `A_MM`: accesses demanded from main memory.
    pub mm_accesses: u32,
    /// `Rm`: read misses in the memory-side cache (each implies a fill).
    pub read_misses: u32,
    /// `Wm`: writes arriving at the memory-side cache (L3 dirty evictions).
    pub writes: u32,
    /// Read hits to *clean* lines (IFRM candidates).
    pub clean_read_hits: u32,
}

impl WindowStats {
    /// A window with no traffic.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another window's counts into this one (used when aggregating
    /// statistics across windows for reporting).
    pub fn merge(&mut self, other: &WindowStats) {
        self.cache_accesses += other.cache_accesses;
        self.cache_read_accesses += other.cache_read_accesses;
        self.cache_write_accesses += other.cache_write_accesses;
        self.mm_accesses += other.mm_accesses;
        self.read_misses += other.read_misses;
        self.writes += other.writes;
        self.clean_read_hits += other.clean_read_hits;
    }
}

/// Per-window access budgets derived from source bandwidths.
///
/// `B_MS$ . W` and `B_MM . W` from the paper, discounted by the bandwidth
/// efficiency `E` (the paper's default is 0.75: row-buffer misses, scheduler
/// slack, and write-induced turnarounds keep effective bandwidth below peak).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowBudget {
    /// Window length in CPU cycles (`W`).
    pub window_cycles: u32,
    /// Accesses the memory-side cache can serve per window (`E.B_MS$.W`).
    pub cache_budget: u32,
    /// Accesses each split channel set can serve per window, when the cache
    /// has independent read and write channels; equals `cache_budget` for
    /// single-bus caches.
    pub cache_channel_budget: u32,
    /// Accesses main memory can serve per window (`E.B_MM.W`).
    pub mm_budget: u32,
    /// `K = B_MS$ / B_MM` as hardware-friendly rational.
    pub k: Ratio,
}

impl WindowBudget {
    /// Derives budgets from GB/s bandwidths and a CPU frequency.
    ///
    /// `split_channel_gbps` is `Some(per-direction GB/s)` for eDRAM-style
    /// caches with independent read/write channels; `cache_gbps` should then
    /// be the per-direction bandwidth as well (the paper's `B_MS$-R =
    /// B_MS$-W = B_MS$` assumption).
    ///
    /// # Panics
    ///
    /// Panics if any rate or the window length is non-positive, or if
    /// `efficiency` is outside `(0, 1]`.
    pub fn from_gbps(
        cache_gbps: f64,
        split_channel_gbps: Option<f64>,
        mm_gbps: f64,
        cpu_ghz: f64,
        window_cycles: u32,
        efficiency: f64,
    ) -> Self {
        assert!(
            cache_gbps > 0.0 && mm_gbps > 0.0 && cpu_ghz > 0.0,
            "rates must be positive"
        );
        assert!(window_cycles > 0, "window must be non-empty");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        let accesses_per_window = |gbps: f64| -> u32 {
            let per_cycle = gbps * 1e9 / 64.0 / (cpu_ghz * 1e9);
            floor_u32(efficiency * per_cycle * f64::from(window_cycles))
        };
        let cache_budget = accesses_per_window(cache_gbps).max(1);
        let cache_channel_budget = split_channel_gbps
            .map(|g| accesses_per_window(g).max(1))
            .unwrap_or(cache_budget);
        let mm_budget = accesses_per_window(mm_gbps).max(1);
        Self {
            window_cycles,
            cache_budget,
            cache_channel_budget,
            mm_budget,
            k: Ratio::approximate(cache_gbps / mm_gbps),
        }
    }

    /// Derives budgets from *measured* (possibly degraded) GB/s rates.
    ///
    /// Unlike [`WindowBudget::from_gbps`] this tolerates zero rates: a
    /// dark source gets a budget of exactly zero (no `.max(1)` floor) and
    /// `K` is computed by [`crate::degrade::degraded_k`], so the solvers
    /// stop assigning that source any traffic instead of panicking.
    /// Negative rates are treated as zero.
    ///
    /// # Panics
    ///
    /// Panics if the CPU clock or window length is non-positive, or if
    /// `efficiency` is outside `(0, 1]` — those are configuration
    /// constants, not measurements, so they can never legitimately
    /// degrade.
    pub fn from_effective_gbps(
        cache_gbps: f64,
        split_channel_gbps: Option<f64>,
        mm_gbps: f64,
        cpu_ghz: f64,
        window_cycles: u32,
        efficiency: f64,
    ) -> Self {
        assert!(cpu_ghz > 0.0, "CPU clock must be positive");
        assert!(window_cycles > 0, "window must be non-empty");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        let accesses_per_window = |gbps: f64| -> u32 {
            if gbps <= 0.0 {
                return 0;
            }
            let per_cycle = gbps * 1e9 / 64.0 / (cpu_ghz * 1e9);
            floor_u32(efficiency * per_cycle * f64::from(window_cycles))
        };
        let cache_budget = accesses_per_window(cache_gbps);
        Self {
            window_cycles,
            cache_budget,
            cache_channel_budget: split_channel_gbps
                .map(&accesses_per_window)
                .unwrap_or(cache_budget),
            mm_budget: accesses_per_window(mm_gbps),
            k: crate::degrade::degraded_k(cache_gbps, mm_gbps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hbm_budget_matches_hand_calculation() {
        // 102.4 GB/s @ 4 GHz = 0.4 accesses/cycle; W=64, E=0.75 -> 19.
        // 38.4 GB/s -> 0.15/cycle -> 7 (floor of 7.2).
        let b = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75);
        assert_eq!(b.cache_budget, 19);
        assert_eq!(b.mm_budget, 7);
        assert_eq!(b.cache_channel_budget, 19);
        assert_eq!((b.k.numerator(), b.k.denominator()), (11, 4));
    }

    #[test]
    fn split_channel_budget_tracks_per_direction_rate() {
        let b = WindowBudget::from_gbps(51.2, Some(51.2), 38.4, 4.0, 64, 0.75);
        // 51.2 GB/s @4GHz = 0.2/cycle; *64*0.75 = 9.6 -> 9.
        assert_eq!(b.cache_channel_budget, 9);
        assert_eq!(b.cache_budget, 9);
    }

    #[test]
    fn full_efficiency_raises_budgets() {
        let b = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 1.0);
        assert_eq!(b.cache_budget, 25); // floor(0.4 * 64)
        assert_eq!(b.mm_budget, 9); // floor(0.15 * 64)
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = WindowStats {
            cache_accesses: 1,
            mm_accesses: 2,
            ..Default::default()
        };
        let b = WindowStats {
            cache_accesses: 10,
            cache_read_accesses: 3,
            cache_write_accesses: 4,
            mm_accesses: 20,
            read_misses: 5,
            writes: 6,
            clean_read_hits: 7,
        };
        a.merge(&b);
        assert_eq!(a.cache_accesses, 11);
        assert_eq!(a.mm_accesses, 22);
        assert_eq!(a.clean_read_hits, 7);
    }

    #[test]
    #[should_panic(expected = "efficiency must be in (0, 1]")]
    fn zero_efficiency_rejected() {
        let _ = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.0);
    }

    #[test]
    fn effective_budget_matches_nominal_when_undegraded() {
        let nominal = WindowBudget::from_gbps(102.4, None, 38.4, 4.0, 64, 0.75);
        let effective = WindowBudget::from_effective_gbps(102.4, None, 38.4, 4.0, 64, 0.75);
        assert_eq!(nominal, effective);
    }

    #[test]
    fn effective_budget_allows_dark_sources() {
        let b = WindowBudget::from_effective_gbps(0.0, None, 38.4, 4.0, 64, 0.75);
        assert_eq!(b.cache_budget, 0);
        assert_eq!(b.cache_channel_budget, 0);
        assert_eq!(b.mm_budget, 7);
        assert_eq!(b.k.numerator(), 0);
        let b = WindowBudget::from_effective_gbps(102.4, None, -1.0, 4.0, 64, 0.75);
        assert_eq!(b.mm_budget, 0);
        assert!(b.k.numerator() > b.k.denominator() * 100);
    }

    #[test]
    fn tiny_budgets_clamped_to_one() {
        // Pathologically slow source still yields a budget of at least one
        // access so partitioning arithmetic never divides by zero.
        let b = WindowBudget::from_gbps(0.1, None, 0.1, 4.0, 4, 0.5);
        assert!(b.cache_budget >= 1 && b.mm_budget >= 1);
    }
}
