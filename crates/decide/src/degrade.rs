//! Degradation seam: measured bandwidth inputs for re-solving Eq. 4.
//!
//! The solvers in this crate normally derive their per-window budgets from
//! the *nominal* source bandwidths in [`DapConfig`] — a fixed `B_i` per
//! source. Real parts throttle under thermal load, lose channels, and
//! suffer refresh storms, so the delivered bandwidth can sit far below
//! nominal exactly when partitioning matters most. [`EffectiveBandwidth`]
//! carries the *measured* per-source rates; feeding it to an embedding's
//! controller (`DapController::set_effective_bandwidth` in `dap-core`,
//! the re-solve path in `dapd`) re-derives the window budget
//! (and `K = B_MS$ / B_MM`) so every subsequent window boundary solves
//! Eq. 4 against what the sources actually deliver.
//!
//! A source delivering zero bandwidth ("dark" — e.g. every channel
//! outaged) is representable: its budget becomes zero, its Eq. 4 ideal
//! fraction becomes exactly zero, and rebuilding the credit bank drains
//! any credits that would have steered traffic toward it.

use crate::config::DapConfig;
use crate::ratio::Ratio;
use crate::window::WindowBudget;

/// `K` substitute when main memory is dark: large enough that the solver
/// steers essentially everything cache-side, small enough that scaled
/// credit arithmetic (`(K.num + K.den) * 63`) stays far from overflow.
const K_MM_DARK: u32 = 1024;

/// Measured per-source delivered bandwidth, in GB/s.
///
/// Mirrors the bandwidth fields of [`DapConfig`]; a value of `0.0` means
/// the source is currently dark. Values are what the *device* can deliver
/// under current conditions (post-throttle, post-outage), not an
/// instantaneous traffic observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveBandwidth {
    /// Memory-side cache delivered bandwidth in GB/s (for Alloy this is
    /// the TAD-adjusted figure, like [`DapConfig::cache_gbps`]).
    pub cache_gbps: f64,
    /// Per-direction channel bandwidth for split-channel caches; `None`
    /// for single-bus architectures.
    pub split_channel_gbps: Option<f64>,
    /// Main memory delivered bandwidth in GB/s.
    pub mm_gbps: f64,
}

impl EffectiveBandwidth {
    /// The nominal (fault-free) rates of `config`.
    pub fn nominal(config: &DapConfig) -> Self {
        Self {
            cache_gbps: config.cache_gbps,
            split_channel_gbps: config.split_channel_gbps,
            mm_gbps: config.mm_gbps,
        }
    }

    /// Nominal rates scaled by per-target degradation factors in `[0, 1]`
    /// (so architecture-specific adjustments baked into the config — like
    /// Alloy's 2/3 TAD factor — are preserved).
    pub fn scaled(config: &DapConfig, cache_scale: f64, mm_scale: f64) -> Self {
        let clamp = |s: f64| s.clamp(0.0, 1.0);
        Self {
            cache_gbps: config.cache_gbps * clamp(cache_scale),
            split_channel_gbps: config.split_channel_gbps.map(|g| g * clamp(cache_scale)),
            mm_gbps: config.mm_gbps * clamp(mm_scale),
        }
    }

    /// Whether the memory-side cache is delivering no bandwidth.
    pub fn cache_dark(&self) -> bool {
        self.cache_gbps <= 0.0
    }

    /// Whether main memory is delivering no bandwidth.
    pub fn mm_dark(&self) -> bool {
        self.mm_gbps <= 0.0
    }

    /// Derives the per-window budgets for these measured rates, taking
    /// window length, efficiency, and CPU clock from `config`. Unlike
    /// [`DapConfig::budget`] this tolerates zero rates (a dark source gets
    /// a zero budget, not a panic).
    pub fn budget(&self, config: &DapConfig) -> WindowBudget {
        // A config without split channels ignores any split rate; a config
        // *with* them falls back to the cache rate if none was measured.
        let split = match (config.split_channel_gbps, self.split_channel_gbps) {
            (None, _) => None,
            (Some(_), Some(measured)) => Some(measured),
            (Some(_), None) => Some(self.cache_gbps),
        };
        WindowBudget::from_effective_gbps(
            self.cache_gbps,
            split,
            self.mm_gbps,
            config.cpu_ghz,
            config.window_cycles,
            config.efficiency,
        )
    }
}

/// `K = B_MS$ / B_MM` for possibly-degraded rates.
///
/// * cache dark → `0/1` (no access belongs cache-side);
/// * main memory dark → [`K_MM_DARK`]`/1` (everything belongs cache-side);
/// * otherwise the ratio, clamped into a range [`Ratio::approximate`]
///   can always represent.
pub fn degraded_k(cache_gbps: f64, mm_gbps: f64) -> Ratio {
    if cache_gbps <= 0.0 {
        return Ratio::new(0, 1);
    }
    if mm_gbps <= 0.0 {
        return Ratio::new(K_MM_DARK, 1);
    }
    let k = (cache_gbps / mm_gbps).clamp(1.0 / 16.0, f64::from(K_MM_DARK));
    Ratio::approximate(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_config() {
        let config = DapConfig::hbm_ddr4();
        let eff = EffectiveBandwidth::nominal(&config);
        assert_eq!(eff.cache_gbps, 102.4);
        assert_eq!(eff.mm_gbps, 38.4);
        assert_eq!(eff.budget(&config), config.budget());
    }

    #[test]
    fn scaling_preserves_alloy_tad_factor() {
        let config = DapConfig::alloy_hbm_ddr4();
        let eff = EffectiveBandwidth::scaled(&config, 0.5, 1.0);
        assert!((eff.cache_gbps - 102.4 * 2.0 / 3.0 * 0.5).abs() < 1e-9);
        assert_eq!(eff.mm_gbps, 38.4);
    }

    #[test]
    fn dark_cache_budget_is_zero_with_k_zero() {
        let config = DapConfig::hbm_ddr4();
        let eff = EffectiveBandwidth::scaled(&config, 0.0, 1.0);
        assert!(eff.cache_dark());
        let b = eff.budget(&config);
        assert_eq!(b.cache_budget, 0);
        assert_eq!(b.k.numerator(), 0);
        assert!(b.mm_budget > 0);
    }

    #[test]
    fn dark_mm_gets_huge_k() {
        let k = degraded_k(102.4, 0.0);
        assert_eq!((k.numerator(), k.denominator()), (K_MM_DARK, 1));
    }

    #[test]
    fn mild_degradation_shifts_k() {
        // Halving the cache rate halves K: 102.4/2 / 38.4 = 4/3.
        let k = degraded_k(51.2, 38.4);
        let v = f64::from(k.numerator()) / f64::from(k.denominator());
        assert!((v - 51.2 / 38.4).abs() / (51.2 / 38.4) <= 0.05, "k = {v}");
    }

    #[test]
    fn split_channel_budget_follows_measured_rate() {
        let config = DapConfig::edram_ddr4();
        let eff = EffectiveBandwidth::scaled(&config, 0.5, 1.0);
        let b = eff.budget(&config);
        // 51.2/2 = 25.6 GB/s per direction @4GHz, W=64, E=0.75 -> 4.
        assert_eq!(b.cache_channel_budget, 4);
    }
}
