//! Saturating credit counters.
//!
//! At the start of each window DAP loads the computed partition plan into
//! four credit counters (one per technique). During the window, every
//! application of a technique consumes one credit; a technique may be applied
//! only while its counter is non-zero. Counters saturate rather than wrap.
//!
//! To avoid a hardware divider, the write-bypass and IFRM solutions are kept
//! in `(K + 1)`-scaled form (Eq. 7/8): the counter is loaded with
//! `(K + 1) * N` and each application subtracts `(K + 1)`, both held as
//! integers scaled by `K`'s power-of-two denominator.

use crate::ratio::Ratio;

/// The paper caps each per-window technique count at 63 so the scaled value
/// fits an eight-bit counter.
pub const MAX_APPLICATIONS_PER_WINDOW: u32 = 63;

/// A plain saturating credit counter (used for FWB and SFRM, whose solutions
/// are unscaled access counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CreditCounter {
    value: u32,
}

impl CreditCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads `n` credits, saturating at [`MAX_APPLICATIONS_PER_WINDOW`].
    pub fn refill(&mut self, n: u32) {
        self.value = (self.value + n).min(MAX_APPLICATIONS_PER_WINDOW);
    }

    /// Clears all credits (used when the solver decides to exit partitioning).
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// Consumes one credit; returns `false` (without consuming) if empty.
    pub fn try_consume(&mut self) -> bool {
        if self.value > 0 {
            self.value -= 1;
            true
        } else {
            false
        }
    }

    /// Remaining credits.
    pub fn remaining(&self) -> u32 {
        self.value
    }
}

/// A saturating credit counter holding a `(K + 1)`-scaled solution.
///
/// The stored value is `den * (K + 1) * N = (num + den) * N`; each
/// application subtracts `num + den`. This is exactly the counter the paper
/// sizes at eight bits for `N <= 63`, `K = 11/4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaledCreditCounter {
    scaled_value: u32,
    per_application: u32,
    max_scaled: u32,
}

impl ScaledCreditCounter {
    /// Creates a counter for the given bandwidth ratio.
    pub fn new(k: Ratio) -> Self {
        let per_application = k.plus_one_num();
        Self {
            scaled_value: 0,
            per_application,
            max_scaled: per_application * MAX_APPLICATIONS_PER_WINDOW,
        }
    }

    /// Loads a scaled solution value `den*(K+1)*N` directly (this is what
    /// Eq. 7/8 compute), saturating.
    pub fn refill_scaled(&mut self, scaled: u32) {
        self.scaled_value = (self.scaled_value + scaled).min(self.max_scaled);
    }

    /// Loads `n` applications worth of credits, saturating.
    pub fn refill_applications(&mut self, n: u32) {
        self.refill_scaled(n.saturating_mul(self.per_application));
    }

    /// Clears all credits.
    pub fn clear(&mut self) {
        self.scaled_value = 0;
    }

    /// Consumes one application's worth of credits; a partial remainder
    /// smaller than one application does not permit another application.
    pub fn try_consume(&mut self) -> bool {
        if self.scaled_value >= self.per_application {
            self.scaled_value -= self.per_application;
            true
        } else {
            false
        }
    }

    /// Whole applications remaining.
    pub fn remaining_applications(&self) -> u32 {
        self.scaled_value / self.per_application
    }
}

/// The four credit counters of a DAP controller plus lifetime decision
/// statistics, with a storage-budget accounting mirroring the paper's
/// sixteen-byte claim.
#[derive(Debug, Clone)]
pub struct CreditBank {
    /// Fill write bypass credits.
    pub fwb: CreditCounter,
    /// Write bypass credits, `(K+1)`-scaled.
    pub wb: ScaledCreditCounter,
    /// Informed forced read miss credits, `(K+1)`-scaled.
    pub ifrm: ScaledCreditCounter,
    /// Speculative forced read miss credits.
    pub sfrm: CreditCounter,
}

impl CreditBank {
    /// Creates an empty bank for the given bandwidth ratio.
    pub fn new(k: Ratio) -> Self {
        Self {
            fwb: CreditCounter::new(),
            wb: ScaledCreditCounter::new(k),
            ifrm: ScaledCreditCounter::new(k),
            sfrm: CreditCounter::new(),
        }
    }

    /// Clears every counter.
    pub fn clear(&mut self) {
        self.fwb.clear();
        self.wb.clear();
        self.ifrm.clear();
        self.sfrm.clear();
    }

    /// Total hardware storage of the DAP mechanism in bits: five 12-bit
    /// window observation counters (`A_MS$`, `A_MM`, `Rm`, `Wm`, clean hits),
    /// four 8-bit solution registers, and four 8-bit credit counters —
    /// the paper's "only about sixteen bytes".
    pub fn storage_bits() -> u32 {
        const OBSERVATION_COUNTERS: u32 = 5 * 12;
        const SOLUTION_REGISTERS: u32 = 4 * 8;
        const CREDIT_COUNTERS: u32 = 4 * 8;
        OBSERVATION_COUNTERS + SOLUTION_REGISTERS + CREDIT_COUNTERS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_counter_consumes_down_to_zero() {
        let mut c = CreditCounter::new();
        c.refill(3);
        assert!(c.try_consume());
        assert!(c.try_consume());
        assert!(c.try_consume());
        assert!(!c.try_consume());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn plain_counter_saturates() {
        let mut c = CreditCounter::new();
        c.refill(1000);
        assert_eq!(c.remaining(), MAX_APPLICATIONS_PER_WINDOW);
        c.refill(5);
        assert_eq!(c.remaining(), MAX_APPLICATIONS_PER_WINDOW);
    }

    #[test]
    fn scaled_counter_consumes_k_plus_one_per_application() {
        let k = Ratio::new(11, 4); // per application = 15
        let mut c = ScaledCreditCounter::new(k);
        c.refill_scaled(31); // two applications (30) + remainder 1
        assert_eq!(c.remaining_applications(), 2);
        assert!(c.try_consume());
        assert!(c.try_consume());
        assert!(
            !c.try_consume(),
            "remainder below one application must not fire"
        );
    }

    #[test]
    fn scaled_counter_saturates_at_63_applications() {
        let k = Ratio::new(11, 4);
        let mut c = ScaledCreditCounter::new(k);
        c.refill_applications(1000);
        assert_eq!(c.remaining_applications(), MAX_APPLICATIONS_PER_WINDOW);
    }

    #[test]
    fn clear_empties_everything() {
        let mut bank = CreditBank::new(Ratio::new(11, 4));
        bank.fwb.refill(5);
        bank.wb.refill_applications(5);
        bank.ifrm.refill_applications(5);
        bank.sfrm.refill(5);
        bank.clear();
        assert!(!bank.fwb.try_consume());
        assert!(!bank.wb.try_consume());
        assert!(!bank.ifrm.try_consume());
        assert!(!bank.sfrm.try_consume());
    }

    #[test]
    fn storage_fits_sixteen_bytes() {
        assert!(CreditBank::storage_bits() <= 16 * 8);
    }
}
