//! # dap-decide — the pure DAP decision library
//!
//! The decision core of *"Near-Optimal Access Partitioning for Memory
//! Hierarchies with Multiple Heterogeneous Bandwidth Sources"* (HPCA 2017),
//! extracted from `dap-core` so that it can be embedded anywhere a routing
//! decision is made: the cycle-accurate simulator (`mem-sim` via
//! `dap-core`), the multi-tenant partitioning daemon (`dapd`), a firmware
//! memory controller, or a fleet-scale cache tier.
//!
//! Everything here is *pure decision arithmetic* — no I/O, no clocks, no
//! simulator types, and (almost) no allocation:
//!
//! * [`bandwidth`] — the analytical model of Section III: delivered
//!   bandwidth `min_i(B_i/f_i)` (Eq. 2) and the bandwidth-proportional
//!   optimum `f_i = B_i/ΣB` (Eq. 3/4).
//! * [`sectored`] / [`alloy`] / [`edram`] — the per-architecture window
//!   solvers of Section IV (Eq. 6–8 and the eDRAM cases i–iii, Eq. 9–12).
//! * [`credits`] — the saturating `(K+1)`-scaled credit counters the
//!   solvers load and datapaths drain.
//! * [`ratio`] — shift-and-add rational arithmetic for `K = B_MS$/B_MM`.
//! * [`window`] — per-window observation counts and derived budgets.
//! * [`degrade`] — measured (possibly zero) per-source bandwidth inputs
//!   for re-solving Eq. 4 against what devices actually deliver.
//! * [`config`] — the static controller configuration and decision
//!   statistics shared by every embedding.
//!
//! ## `no_std`
//!
//! The crate is `#![no_std]` without the default `std` feature; the
//! handful of `Vec`/`String`-returning helpers in [`bandwidth`] use
//! `alloc`. The float paths avoid std-only intrinsics (`floor`/`round`)
//! via the exact integer-cast forms in the private `math` module, so the
//! same bits are computed with and without `std`.

#![cfg_attr(not(feature = "std"), no_std)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(not(feature = "std"))]
extern crate alloc;

pub mod alloy;
pub mod bandwidth;
pub mod config;
pub mod credits;
pub mod degrade;
pub mod edram;
mod math;
pub mod ratio;
pub mod sectored;
pub mod window;

pub use alloy::{AlloyDapSolver, AlloyPlan};
pub use bandwidth::{
    delivered_bandwidth, optimal_fractions, read_kernel_bandwidth, BandwidthSource, SystemBandwidth,
};
pub use config::{CacheArchitecture, DapConfig, DecisionStats, Technique};
pub use credits::{CreditBank, CreditCounter, ScaledCreditCounter};
pub use degrade::{degraded_k, EffectiveBandwidth};
pub use edram::{EdramDapSolver, EdramPlan};
pub use ratio::Ratio;
pub use sectored::{SectoredDapSolver, SectoredPlan};
pub use window::{WindowBudget, WindowStats};
