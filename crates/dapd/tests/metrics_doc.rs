//! Drift check: the README metric reference vs the live registry.
//!
//! The README's "Metric reference" tables promise operators a complete
//! list of everything `GET /metrics` can serve. This test compares the
//! `dapd` table against a real server's exposition in both directions:
//! a family the server exports but the table omits fails, and a table
//! row naming a family the server no longer exports fails. The `# TYPE`
//! kind must match the table's type column too, so a counter quietly
//! becoming a gauge is also a doc bug.

use dapd::{Engine, EngineConfig, Server};

const README: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"));

/// Extracts `(family, kind)` pairs from `# TYPE` lines of an exposition.
fn live_families(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|rest| {
            let (family, kind) = rest.split_once(' ')?;
            Some((family.to_string(), kind.to_string()))
        })
        .collect()
}

/// Returns the README slice between the named begin/end markers.
fn table_section(marker: &str) -> &'static str {
    let begin = format!("<!-- {marker}:begin -->");
    let end = format!("<!-- {marker}:end -->");
    let start = README
        .find(&begin)
        .unwrap_or_else(|| panic!("README is missing the {begin} marker"));
    let stop = README
        .find(&end)
        .unwrap_or_else(|| panic!("README is missing the {end} marker"));
    &README[start..stop]
}

/// Extracts the backticked family name of each table row whose name
/// starts with one of `prefixes`.
fn documented_families<'a>(table: &'a str, prefixes: &[&str]) -> Vec<&'a str> {
    table
        .lines()
        .filter_map(|l| l.strip_prefix("| `"))
        .filter_map(|rest| rest.split_once('`').map(|(name, _)| name))
        .filter(|name| prefixes.iter().any(|p| name.starts_with(p)))
        .collect()
}

#[test]
fn readme_dapd_metric_table_matches_the_live_exposition() {
    let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).expect("stock config");
    let server = Server::bind_tcp("127.0.0.1:0", engine).expect("bind");
    let handle = server.spawn().expect("spawn");
    let text = handle.ops_view().metrics_text();
    handle.request_stop();
    handle.join().expect("join");

    dap_telemetry::check_exposition(&text).expect("well-formed exposition");
    let live = live_families(&text);
    assert!(
        live.len() >= 20,
        "expected the full dapd family set, got {}: {live:?}",
        live.len()
    );

    let table = table_section("dapd-metric-table");
    for (family, kind) in &live {
        let row = format!("| `{family}` | {kind} |");
        assert!(
            table.contains(&row),
            "README dapd metric table is missing `{family}` (type {kind}); \
             add a `{row} ... |` row to the table in README.md"
        );
    }

    let live_names: Vec<&str> = live.iter().map(|(f, _)| f.as_str()).collect();
    let documented = documented_families(table, &["dapd_"]);
    assert!(!documented.is_empty(), "dapd table parsed to zero rows");
    for name in documented {
        assert!(
            live_names.contains(&name),
            "README documents `{name}` but the server no longer exports it; \
             drop the row or restore the metric"
        );
    }
}
