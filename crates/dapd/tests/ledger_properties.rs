//! Seeded-PRNG property tests for [`dapd::TenantLedger`].
//!
//! The invariant under test: at every instant, for *any* funding shape
//! and *any* interleaving of tenant spends,
//!
//! ```text
//! Σ reserved_remaining + pool_remaining + drained == global
//! ```
//!
//! and overdraft equals exactly the demand that exceeded the budget.
//! No proptest — cases are generated from a SplitMix64 stream, so every
//! failure is reproducible from the printed seed.

use dapd::TenantLedger;
use workloads::rng::SplitMix64;

const SEEDS: [u64; 4] = [0xDA9D_0001, 0xDA9D_0002, 0xC0FF_EE00, 42];
const CASES_PER_SEED: usize = 250;
const SPENDS_PER_CASE: usize = 200;

/// Draws a funding shape: a global budget plus per-tenant reservations
/// that may deliberately oversubscribe it.
fn arbitrary_funding(rng: &mut SplitMix64) -> (u64, Vec<u64>) {
    let global = rng.below(1 << 30);
    let tenants = 1 + rng.index(8);
    let reserved: Vec<u64> = (0..tenants)
        .map(|_| {
            if rng.chance(0.3) {
                // Sometimes reserve far beyond the global budget to
                // exercise the clipping path.
                rng.below(1 << 31)
            } else {
                rng.below(global / tenants as u64 + 1)
            }
        })
        .collect();
    (global, reserved)
}

#[test]
fn conservation_holds_across_any_interleaving() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        for case in 0..CASES_PER_SEED {
            let (global, reserved) = arbitrary_funding(&mut rng);
            let mut ledger = TenantLedger::fund(global, &reserved);
            assert!(
                ledger.conserves(),
                "seed {seed:#x} case {case}: freshly funded ledger must conserve"
            );
            // Funding never grants more than the budget, clipped in
            // tenant order.
            assert!(
                ledger.reserved_remaining().iter().sum::<u64>() <= global,
                "seed {seed:#x} case {case}: reservations exceed budget"
            );

            let mut demanded = 0u64;
            for step in 0..SPENDS_PER_CASE {
                let tenant = rng.index(reserved.len());
                // Mix tiny spends, block-sized spends, and budget-scale
                // spends so both the funded and the overdraft paths run.
                let bytes = match rng.index(3) {
                    0 => rng.below(64),
                    1 => 64 * (1 + rng.below(64)),
                    _ => rng.below(global + 1),
                };
                demanded += bytes;
                let short = ledger.spend(tenant, bytes);
                assert!(
                    short <= bytes,
                    "seed {seed:#x} case {case} step {step}: overdraft exceeds demand"
                );
                assert!(
                    ledger.conserves(),
                    "seed {seed:#x} case {case} step {step}: conservation violated \
                     (reserved {:?} pool {} drained {} global {})",
                    ledger.reserved_remaining(),
                    ledger.pool_remaining(),
                    ledger.drained(),
                    ledger.global(),
                );
                // Every demanded byte is either funded (drained) or
                // recorded as overdraft — none vanish, none are minted.
                assert_eq!(
                    ledger.drained() + ledger.overdraft(),
                    demanded,
                    "seed {seed:#x} case {case} step {step}: demand leaked"
                );
            }
        }
    }
}

#[test]
fn oversubscribed_reservations_clip_in_tenant_order() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0x5EED);
        for _ in 0..CASES_PER_SEED {
            let (global, reserved) = arbitrary_funding(&mut rng);
            let ledger = TenantLedger::fund(global, &reserved);
            // Replaying the clipping by hand must match: earlier tenants
            // win, later tenants get what's left.
            let mut remaining = global;
            for (t, (&want, &got)) in reserved.iter().zip(ledger.reserved_remaining()).enumerate() {
                assert_eq!(got, want.min(remaining), "tenant {t}");
                remaining -= got;
            }
            assert_eq!(ledger.pool_remaining(), remaining);
        }
    }
}

#[test]
fn drained_credits_never_resurrect() {
    // Spending everything leaves exactly zero unspent credit and a fully
    // drained budget; further spends are pure overdraft.
    let mut ledger = TenantLedger::fund(1000, &[300, 0]);
    assert_eq!(ledger.spend(0, 2000), 1000); // 300 reserved + 700 pool
    assert_eq!(ledger.drained(), 1000);
    assert_eq!(ledger.pool_remaining(), 0);
    assert_eq!(ledger.reserved_remaining(), &[0, 0]);
    for _ in 0..10 {
        assert_eq!(ledger.spend(1, 64), 64, "drained ledger only overdrafts");
    }
    assert!(ledger.conserves());
}
