//! Seeded chaos soak for the hardened daemon.
//!
//! A deterministic in-process proxy sits between `Client` and `Server`
//! on Unix sockets and injects faults from a seed: mid-stream byte
//! corruption, partial writes (split + flush + delay), connection
//! drops, and stalls longer than both ends' deadlines. Fault positions
//! are *absolute byte offsets* per connection per direction, so OS read
//! chunking cannot change which bytes are faulted — the same seed
//! replays the same abuse.
//!
//! The soak drives a loadgen-shaped workload through the proxy,
//! tolerating per-call failures (that is the client's contract under
//! chaos: typed errors, never hangs or panics), then asserts the things
//! that must survive *any* amount of transport abuse:
//!
//! * the daemon never dies — it sheds over-cap bursts with
//!   `Reject(Overloaded)` and keeps serving;
//! * a clean client afterwards converges to the measured Eq. 4 optimum
//!   (f_hbm = 102.4 / 140.8 ≈ 0.727), i.e. chaos never poisons the
//!   bandwidth estimator permanently;
//! * the `TenantLedger` conservation invariant holds exactly;
//! * every fault class actually fired (the harness isn't vacuous), and
//!   the server counted deadline/garbage closes in its metrics;
//! * the proxy's flight ring, dumped post-soak, names every injected
//!   fault class and its drop accounting is *exact* (`dropped` =
//!   `total - capacity` once the ring wraps), and the daemon's own
//!   flight ring recorded both `resolve` and `reject` events.

use dap_telemetry::flight::{parse_flight_dump, FlightKind, FlightRecorder};
use dapd::{Client, Engine, EngineConfig, Message, RejectCode, RetryPolicy, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use workloads::rng::SplitMix64;
use workloads::{spec, RequestStream};

const SEED: u64 = 0x000C_4A05_5EED;
/// Server-side read/write deadline: short so the soak runs fast.
const SERVER_DEADLINE: Duration = Duration::from_millis(300);
/// Client per-operation socket timeout; below the stall length so a
/// stall surfaces as `TimedOut` at the client.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_millis(250);
/// How long a stall fault pauses the pump — past both deadlines.
const STALL: Duration = Duration::from_millis(400);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// XOR one byte in flight.
    Corrupt,
    /// Write up to the offset, flush, pause briefly: a partial write.
    Split,
    /// Stop forwarding and close both sides.
    Drop,
    /// Pause the pump past every deadline, then continue.
    Stall,
}

#[derive(Debug, Clone, Copy)]
struct Fault {
    /// Absolute byte offset in this direction's stream.
    offset: u64,
    kind: FaultKind,
}

#[derive(Default)]
struct FaultCounters {
    corruptions: AtomicU64,
    splits: AtomicU64,
    drops: AtomicU64,
    stalls: AtomicU64,
}

impl FaultCounters {
    fn total(&self) -> u64 {
        self.corruptions.load(Ordering::Relaxed)
            + self.splits.load(Ordering::Relaxed)
            + self.drops.load(Ordering::Relaxed)
            + self.stalls.load(Ordering::Relaxed)
    }
}

/// The per-connection fault plans, derived purely from (seed, index):
/// client→server gets two partial writes, then a killing fault cycling
/// corrupt/drop/stall, then an unconditional drop as backstop (a
/// corrupted byte sometimes decodes as a *valid* different message, so
/// corruption alone does not guarantee the connection dies — and every
/// connection must die for the next plan in the cycle to run).
/// Every fourth connection also corrupts one server→client reply byte.
fn plans(index: u64, seed: u64) -> (Vec<Fault>, Vec<Fault>) {
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let split_a = 40 + rng.below(160);
    let split_b = split_a + 60 + rng.below(200);
    let kill_at = split_b + 300 + rng.below(400);
    let kill = match index % 3 {
        0 => FaultKind::Corrupt,
        1 => FaultKind::Drop,
        _ => FaultKind::Stall,
    };
    let c2s = vec![
        Fault {
            offset: split_a,
            kind: FaultKind::Split,
        },
        Fault {
            offset: split_b,
            kind: FaultKind::Split,
        },
        Fault {
            offset: kill_at,
            kind: kill,
        },
        Fault {
            offset: kill_at + 800,
            kind: FaultKind::Drop,
        },
    ];
    let s2c = if index % 4 == 3 {
        vec![Fault {
            offset: 60 + rng.below(600),
            kind: FaultKind::Corrupt,
        }]
    } else {
        Vec::new()
    };
    (c2s, s2c)
}

/// Forwards bytes `src` → `dst`, applying `faults` at their absolute
/// offsets. Returns when either side closes or a Drop fault fires;
/// both sides are shut down on exit so the paired pump unblocks too.
/// Ring capacity for the proxy's flight recorder: small enough that a
/// soak wraps it many times over, so the drop-accounting assertion is
/// exercised for real.
const PROXY_FLIGHT_CAPACITY: usize = 128;

fn pump(
    mut src: UnixStream,
    mut dst: UnixStream,
    faults: Vec<Fault>,
    counters: Arc<FaultCounters>,
    flight: Arc<FlightRecorder>,
) {
    let mut pos: u64 = 0;
    let mut next = 0usize;
    let mut buf = [0u8; 256];
    'forward: loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = buf[..n].to_vec();
        let mut written = 0usize;
        while next < faults.len() && faults[next].offset < pos + n as u64 {
            let at = (faults[next].offset - pos) as usize;
            let fault_vals = [faults[next].offset as i64, 0, 0, 0, 0, 0];
            match faults[next].kind {
                FaultKind::Corrupt => {
                    chunk[at] ^= 0x20;
                    counters.corruptions.fetch_add(1, Ordering::Relaxed);
                    flight.record(FlightKind::Fault, "corrupt", fault_vals);
                }
                FaultKind::Split => {
                    if dst.write_all(&chunk[written..=at]).is_err() {
                        break 'forward;
                    }
                    let _ = dst.flush();
                    thread::sleep(Duration::from_millis(1));
                    written = at + 1;
                    counters.splits.fetch_add(1, Ordering::Relaxed);
                    flight.record(FlightKind::Fault, "split", fault_vals);
                }
                FaultKind::Stall => {
                    if dst.write_all(&chunk[written..at]).is_err() {
                        break 'forward;
                    }
                    let _ = dst.flush();
                    written = at;
                    counters.stalls.fetch_add(1, Ordering::Relaxed);
                    flight.record(FlightKind::Fault, "stall", fault_vals);
                    thread::sleep(STALL);
                }
                FaultKind::Drop => {
                    let _ = dst.write_all(&chunk[written..at]);
                    counters.drops.fetch_add(1, Ordering::Relaxed);
                    flight.record(FlightKind::Fault, "drop", fault_vals);
                    break 'forward;
                }
            }
            next += 1;
        }
        if written < chunk.len() && dst.write_all(&chunk[written..]).is_err() {
            break;
        }
        pos += n as u64;
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// A chaos proxy: accepts on `listen`, forwards to `upstream`, faulting
/// each connection per its seeded plan.
struct Proxy {
    stop: Arc<AtomicBool>,
    acceptor: thread::JoinHandle<()>,
    counters: Arc<FaultCounters>,
    flight: Arc<FlightRecorder>,
    path: PathBuf,
}

impl Proxy {
    fn spawn(listen: &Path, upstream: &Path, seed: u64) -> Proxy {
        let listener = UnixListener::bind(listen).expect("proxy bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(FaultCounters::default());
        let flight = Arc::new(FlightRecorder::new(PROXY_FLIGHT_CAPACITY));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let flight = Arc::clone(&flight);
            let upstream = upstream.to_path_buf();
            thread::spawn(move || {
                let mut index: u64 = 0;
                let mut pumps = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let server = match UnixStream::connect(&upstream) {
                                Ok(s) => s,
                                Err(_) => continue, // upstream gone: drop the client
                            };
                            let (c2s, s2c) = plans(index, seed);
                            index += 1;
                            let (ca, cb) = (client.try_clone().unwrap(), client);
                            let (sa, sb) = (server.try_clone().unwrap(), server);
                            let up = (Arc::clone(&counters), Arc::clone(&flight));
                            let down = (Arc::clone(&counters), Arc::clone(&flight));
                            pumps.push(thread::spawn(move || pump(ca, sa, c2s, up.0, up.1)));
                            pumps.push(thread::spawn(move || pump(sb, cb, s2c, down.0, down.1)));
                            pumps.retain(|p| !p.is_finished());
                        }
                        Err(_) => thread::sleep(Duration::from_millis(2)),
                    }
                }
                // Deadlines on both real endpoints bound every pump.
                for p in pumps {
                    let _ = p.join();
                }
            })
        };
        Proxy {
            stop,
            acceptor,
            counters,
            flight,
            path: listen.to_path_buf(),
        }
    }

    fn shutdown(self) -> (Arc<FaultCounters>, Arc<FlightRecorder>) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.acceptor.join();
        let _ = std::fs::remove_file(&self.path);
        (self.counters, self.flight)
    }
}

/// Loadgen-shaped driver: route, then report synthetic service at
/// `rates`, tolerating per-call errors (`chaos` mode) or demanding
/// success (`clean` mode). Returns per-backend routed bytes and the
/// number of successfully acked reports.
fn drive(
    client: &mut Client,
    stream: &mut RequestStream,
    carry_ns: &mut [f64],
    rates: &[f64],
    requests: u32,
    tolerate_errors: bool,
) -> (Vec<u64>, u64) {
    let mut routed = vec![0u64; rates.len()];
    let mut acked = 0u64;
    for _ in 0..requests {
        let r = stream.next_request();
        let d = match client.get_route(r.tenant, r.bytes) {
            Ok(d) => d,
            Err(e) if tolerate_errors => {
                // Typed failure, never a hang: that is the contract.
                let _ = e;
                continue;
            }
            Err(e) => panic!("clean-mode route failed: {e}"),
        };
        if d.backend >= rates.len() {
            // A corrupted reply smuggled in an out-of-range backend;
            // report_served would be rejected, so just skip.
            assert!(tolerate_errors, "corrupt route outside chaos");
            continue;
        }
        routed[d.backend] += u64::from(r.bytes);
        carry_ns[d.backend] += f64::from(r.bytes) / rates[d.backend];
        let nanos = carry_ns[d.backend] as u32;
        carry_ns[d.backend] -= f64::from(nanos);
        match client.report_served(d.backend as u8, r.bytes, nanos) {
            Ok(()) => acked += 1,
            Err(e) if tolerate_errors => {
                let _ = e;
            }
            Err(e) => panic!("clean-mode report failed: {e}"),
        }
    }
    (routed, acked)
}

fn counter_value(stats: &str, name: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .map(|v| v.trim().parse().unwrap())
        .unwrap_or(0)
}

#[test]
fn seeded_chaos_soak_converges_and_conserves() {
    let dir = std::env::temp_dir();
    let server_path = dir.join(format!("dapd-chaos-srv-{}.sock", std::process::id()));
    let proxy_path = dir.join(format!("dapd-chaos-proxy-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&server_path);
    let _ = std::fs::remove_file(&proxy_path);

    let config = EngineConfig::hbm_ddr4_pair();
    let resolve_every = config.resolve_every;
    let nominal: Vec<f64> = config.backends.iter().map(|b| b.nominal_gbps).collect();
    let engine = Engine::new(config).expect("stock config");
    let handle = Server::bind_unix(&server_path, engine)
        .expect("bind")
        .with_config(ServerConfig {
            read_deadline: SERVER_DEADLINE,
            write_deadline: SERVER_DEADLINE,
            max_connections: 8,
            ..ServerConfig::default()
        })
        .expect("config")
        .spawn()
        .expect("spawn");
    let proxy = Proxy::spawn(&proxy_path, &server_path, SEED);

    // Phase 1 — chaos. Drive a loadgen-shaped workload through the
    // faulting proxy. Per-call errors are expected; hangs and panics are
    // not, and the daemon must survive.
    let mut chaos_client = Client::connect_unix_with(
        &proxy_path,
        RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            deadline: Duration::from_secs(10),
            io_timeout: Some(CLIENT_IO_TIMEOUT),
            seed: SEED ^ 1,
        },
    )
    .expect("connect through proxy");
    let mut stream = RequestStream::from_spec(spec("mcf").expect("mcf exists"), 2, SEED ^ 2);
    let mut carry_ns = vec![0.0f64; nominal.len()];
    let (_, chaos_acked) = drive(
        &mut chaos_client,
        &mut stream,
        &mut carry_ns,
        &nominal,
        4_000,
        true,
    );
    let reconnects = chaos_client.reconnects();
    drop(chaos_client);
    let (counters, proxy_flight) = proxy.shutdown();

    // The harness must not be vacuous: every fault class fired, many
    // times, and the client lived through them by reconnecting.
    assert!(
        counters.total() >= 100,
        "expected hundreds of faults, got {} (corrupt {} split {} drop {} stall {})",
        counters.total(),
        counters.corruptions.load(Ordering::Relaxed),
        counters.splits.load(Ordering::Relaxed),
        counters.drops.load(Ordering::Relaxed),
        counters.stalls.load(Ordering::Relaxed),
    );
    for (name, c) in [
        ("corruptions", &counters.corruptions),
        ("splits", &counters.splits),
        ("drops", &counters.drops),
        ("stalls", &counters.stalls),
    ] {
        assert!(c.load(Ordering::Relaxed) > 0, "no {name} injected");
    }
    assert!(reconnects > 0, "chaos without a single reconnect");
    assert!(
        chaos_acked > 1_000,
        "only {chaos_acked} acked reports under chaos"
    );

    // The proxy's flight ring is the black box for the soak: its dump
    // must name every injected fault class, and — because the ring is
    // far smaller than the fault count — its drop accounting must be
    // exact: dropped = total - capacity once wrapped, and the dump's
    // meta line must agree with the live recorder.
    let dump = proxy_flight.dump_jsonl("chaos-proxy");
    let (dumped_dropped, events) = parse_flight_dump(&dump).expect("valid flight dump");
    let total = proxy_flight.total();
    assert!(
        total > PROXY_FLIGHT_CAPACITY as u64,
        "soak too small to wrap the {PROXY_FLIGHT_CAPACITY}-slot ring (total {total})"
    );
    assert_eq!(events.len(), PROXY_FLIGHT_CAPACITY, "ring not full");
    assert_eq!(
        dumped_dropped,
        total - PROXY_FLIGHT_CAPACITY as u64,
        "inexact drop accounting"
    );
    assert_eq!(dumped_dropped, proxy_flight.dropped(), "meta/live disagree");
    for class in ["corrupt", "split", "drop", "stall"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("cause").and_then(|c| c.as_str()) == Some(class)),
            "fault class {class:?} missing from flight dump:\n{dump}"
        );
    }
    // Events must be oldest-first by sequence number, with no gaps.
    let seqs: Vec<u64> = events
        .iter()
        .map(|e| e.get("seq").and_then(|s| s.as_u64()).expect("seq"))
        .collect();
    for w in seqs.windows(2) {
        assert_eq!(w[1], w[0] + 1, "flight dump not contiguous: {seqs:?}");
    }
    assert_eq!(seqs[0], dumped_dropped, "oldest surviving seq != dropped");

    // Phase 2 — overload burst straight at the daemon: fill the
    // connection cap with idle peers, then verify extras are shed with
    // a typed Overloaded reject and the daemon stays up.
    let pins: Vec<UnixStream> = (0..8)
        .map(|_| UnixStream::connect(&server_path).expect("pin"))
        .collect();
    thread::sleep(Duration::from_millis(100)); // let workers spawn
    for _ in 0..3 {
        let mut extra = UnixStream::connect(&server_path).expect("extra");
        extra
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        match dapd::wire::read_frame(&mut extra) {
            Ok(Some(Message::Reject(RejectCode::Overloaded))) => {}
            other => panic!("expected Overloaded shed, got {other:?}"),
        }
    }
    drop(pins);

    // Phase 3 — clean convergence. A direct, fault-free client must pull
    // the router back to the measured Eq. 4 optimum: chaos may not leave
    // the estimator or the ledger in a wedged state.
    let mut clean = Client::connect_unix(&server_path).expect("direct connect");
    drive(
        &mut clean,
        &mut stream,
        &mut carry_ns,
        &nominal,
        resolve_every * 2,
        false,
    );
    let (routed, _) = drive(
        &mut clean,
        &mut stream,
        &mut carry_ns,
        &nominal,
        resolve_every * 40,
        false,
    );
    let f_hbm = routed[0] as f64 / routed.iter().sum::<u64>() as f64;
    let eq4 = 102.4 / (102.4 + 38.4);
    assert!(
        (f_hbm - eq4).abs() < 0.02,
        "post-chaos hbm fraction {f_hbm}, Eq. 4 wants {eq4}"
    );

    // The server counted its side of the abuse.
    let stats = clean.snapshot_stats().expect("stats");
    assert!(
        counter_value(&stats, "dapd_shed_total") >= 3,
        "shed burst not counted: {stats}"
    );
    assert!(
        counter_value(&stats, "dapd_rejected_total{cause=\"overloaded\"}") >= 3,
        "overloaded rejects not counted"
    );
    assert!(
        counter_value(&stats, "dapd_rejected_total{cause=\"deadline\"}") >= 1,
        "stalls never tripped the server deadline"
    );
    assert!(
        counter_value(&stats, "dapd_rejected_total{cause=\"garbage\"}") >= 1,
        "corruption never registered as garbage"
    );

    // Exact credit conservation survived every fault, and the daemon's
    // own flight ring holds both sides of the story: window re-solves
    // and the rejects the abuse provoked.
    handle.with_engine(|e| {
        assert!(e.ledger().conserves(), "ledger conservation violated");
        assert_eq!(e.ledger().overdraft(), 0, "ledger overdraft");
        let kinds: Vec<FlightKind> = e.flight().snapshot().iter().map(|ev| ev.kind).collect();
        assert!(
            kinds.contains(&FlightKind::Resolve),
            "no resolve events in daemon flight ring"
        );
        assert!(
            kinds.contains(&FlightKind::Reject) || kinds.contains(&FlightKind::Shed),
            "no reject/shed events in daemon flight ring: {kinds:?}"
        );
    });

    clean.shutdown().expect("clean shutdown");
    handle.join().expect("daemon exits cleanly");
    assert!(!server_path.exists(), "socket cleaned up");
}

/// Same seed, same faults: two runs of the plan generator agree, so a
/// soak failure reproduces exactly.
#[test]
fn fault_plans_are_deterministic() {
    for index in 0..32 {
        let (a_c2s, a_s2c) = plans(index, SEED);
        let (b_c2s, b_s2c) = plans(index, SEED);
        assert_eq!(a_c2s.len(), b_c2s.len());
        for (x, y) in a_c2s.iter().zip(&b_c2s) {
            assert_eq!(x.offset, y.offset);
            assert_eq!(x.kind, y.kind);
        }
        assert_eq!(a_s2c.len(), b_s2c.len());
        for (x, y) in a_s2c.iter().zip(&b_s2c) {
            assert_eq!(x.offset, y.offset);
            assert_eq!(x.kind, y.kind);
        }
        // Offsets strictly increase, so the pump applies them in order.
        for w in a_c2s.windows(2) {
            assert!(w[0].offset < w[1].offset);
        }
    }
}
