//! End-to-end daemon test: a backend throttles mid-run and the measured-
//! bandwidth re-solve shifts routing to the new Eq. 4 optimum.
//!
//! The whole exchange goes over a real socket through the wire protocol —
//! client-side carry-accumulated nanosecond reports, server-side windowed
//! re-solve — and is deterministic: a seeded request stream, synthetic
//! service times, and window boundaries driven purely by decision count.

use dapd::{Client, Engine, EngineConfig, Server};
use workloads::{spec, RequestStream};

/// Routes `requests` through the daemon, reporting synthetic service at
/// `rates[backend]` GB/s, and returns the per-backend routed bytes.
fn drive(
    client: &mut Client,
    stream: &mut RequestStream,
    carry_ns: &mut [f64],
    rates: &[f64],
    requests: u32,
) -> Vec<u64> {
    let mut routed = vec![0u64; rates.len()];
    for _ in 0..requests {
        let r = stream.next_request();
        let d = client.get_route(r.tenant, r.bytes).expect("route");
        routed[d.backend] += u64::from(r.bytes);
        // One byte per nanosecond is 1 GB/s; fractional nanoseconds
        // carry between reports so window busy time integrates exactly.
        carry_ns[d.backend] += f64::from(r.bytes) / rates[d.backend];
        let nanos = carry_ns[d.backend] as u32;
        carry_ns[d.backend] -= f64::from(nanos);
        client
            .report_served(d.backend as u8, r.bytes, nanos)
            .expect("report");
    }
    routed
}

fn fraction0(routed: &[u64]) -> f64 {
    routed[0] as f64 / routed.iter().sum::<u64>() as f64
}

#[test]
fn throttled_backend_shifts_routing_to_measured_eq4_optimum() {
    let config = EngineConfig::hbm_ddr4_pair();
    let resolve_every = config.resolve_every;
    let nominal: Vec<f64> = config.backends.iter().map(|b| b.nominal_gbps).collect();
    let engine = Engine::new(config).expect("stock config");
    let server = Server::bind_tcp("127.0.0.1:0", engine).expect("bind");
    let addr = server.local_addr().expect("tcp addr").to_string();
    let handle = server.spawn().expect("spawn");

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let mut stream = RequestStream::from_spec(spec("mcf").expect("mcf exists"), 2, 0xE2E_5EED);
    let mut carry_ns = vec![0.0f64; nominal.len()];

    // Phase 1 — both backends deliver nominal. After a warm-up window the
    // byte split must chase Eq. 4 for (102.4, 38.4): f_hbm ≈ 0.727.
    drive(
        &mut client,
        &mut stream,
        &mut carry_ns,
        &nominal,
        resolve_every,
    );
    let healthy = drive(
        &mut client,
        &mut stream,
        &mut carry_ns,
        &nominal,
        resolve_every * 40,
    );
    let f_healthy = fraction0(&healthy);
    let eq4_healthy = 102.4 / (102.4 + 38.4);
    assert!(
        (f_healthy - eq4_healthy).abs() < 0.02,
        "healthy hbm fraction {f_healthy}, Eq. 4 wants {eq4_healthy}"
    );

    // Phase 2 — HBM thermally throttles to a quarter rate (25.6 GB/s).
    // The daemon only learns this through the served reports; one full
    // window of measurements later, routing must sit at the *measured*
    // Eq. 4 optimum f_hbm = 25.6 / (25.6 + 38.4) = 0.4, which no nominal-
    // rate solver would ever choose.
    let throttled = vec![nominal[0] * 0.25, nominal[1]];
    drive(
        &mut client,
        &mut stream,
        &mut carry_ns,
        &throttled,
        resolve_every * 2,
    );
    let degraded = drive(
        &mut client,
        &mut stream,
        &mut carry_ns,
        &throttled,
        resolve_every * 40,
    );
    let f_degraded = fraction0(&degraded);
    let eq4_degraded = (102.4 * 0.25) / (102.4 * 0.25 + 38.4);
    assert!(
        (f_degraded - eq4_degraded).abs() < 0.02,
        "throttled hbm fraction {f_degraded}, Eq. 4 wants {eq4_degraded}"
    );

    // The stats surface must reflect the measured (not nominal) estimate:
    // ~25.6 GB/s = ~25600 milli-GB/s on the hbm gauge.
    let stats = client.snapshot_stats().expect("stats");
    let mbps: i64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("dapd_effective_mbps{backend=\"hbm\"} "))
        .expect("hbm gauge present")
        .trim()
        .parse()
        .expect("gauge is integer");
    assert!(
        (mbps - 25_600).abs() < 600,
        "measured hbm estimate {mbps} milli-GB/s, expected ~25600"
    );

    // Phase 3 — the throttle lifts; measurements revive the full rate and
    // routing returns to the nominal optimum.
    drive(
        &mut client,
        &mut stream,
        &mut carry_ns,
        &nominal,
        resolve_every * 2,
    );
    let recovered = drive(
        &mut client,
        &mut stream,
        &mut carry_ns,
        &nominal,
        resolve_every * 40,
    );
    let f_recovered = fraction0(&recovered);
    assert!(
        (f_recovered - eq4_healthy).abs() < 0.02,
        "recovered hbm fraction {f_recovered}, Eq. 4 wants {eq4_healthy}"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}
