//! A loadgen-shaped client survives a mid-run daemon restart through
//! retry/backoff — and the served-byte accounting stays exact.
//!
//! The core claim under test is the client's idempotency contract:
//! `ReportServed` is retried only when the failure proves the server
//! never saw a complete frame (connect/send failures, typed rejects),
//! and *never* after the frame was fully written (a lost ack). So with
//! `served` summed over both daemon incarnations' `dapd_served_bytes_total`
//! counters, every run must satisfy
//!
//! ```text
//! acked_bytes <= served <= acked_bytes + indeterminate_bytes
//! ```
//!
//! where `acked_bytes` are reports the client saw acked and
//! `indeterminate_bytes` are reports that failed at the recv stage (the
//! daemon may or may not have applied them). A double-count — one
//! report applied twice via a retry — breaks the upper bound; a lost
//! acked report breaks the lower bound.

use dapd::{Client, Engine, EngineConfig, RetryPolicy, Server, ServerConfig, ServerHandle};
use std::io;
use std::path::Path;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;
use workloads::{spec, RequestStream};

fn spawn_server(path: &Path) -> ServerHandle {
    let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).expect("stock config");
    Server::bind_unix(path, engine)
        .expect("bind")
        .with_config(ServerConfig {
            // Short deadlines so the old daemon's workers drain fast and
            // the restart window stays small.
            read_deadline: Duration::from_millis(200),
            write_deadline: Duration::from_millis(200),
            ..ServerConfig::default()
        })
        .expect("config")
        .spawn()
        .expect("spawn")
}

fn served_bytes_total(stats: &str) -> u64 {
    stats
        .lines()
        .filter_map(|l| {
            l.strip_prefix("dapd_served_bytes_total{")
                .and_then(|rest| rest.split_once("} "))
                .map(|(_, v)| v.trim().parse::<u64>().unwrap())
        })
        .sum()
}

#[test]
fn loadgen_survives_mid_run_restart_without_double_counts() {
    let path = std::env::temp_dir().join(format!("dapd-restart-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let first = spawn_server(&path);

    // The restart controller. On signal: stop the first daemon, capture
    // its final served total (after the stop flag lands, every new
    // request is drained with `ShuttingDown`, so the total is frozen),
    // join it (which unlinks the socket — the client sees
    // NotFound/ConnectionRefused, both retryable), hold a deliberate
    // outage window, then bind a fresh daemon on the same path.
    let (restart_tx, restart_rx) = mpsc::channel::<()>();
    let controller = {
        let path = path.clone();
        thread::spawn(move || -> (u64, ServerHandle) {
            restart_rx.recv().expect("restart signal");
            first.request_stop();
            // Let the (at most one, single client) in-flight request
            // finish before freezing the total.
            thread::sleep(Duration::from_millis(50));
            let served_first = served_bytes_total(&first.stats_text());
            first.join().expect("first daemon exits");
            thread::sleep(Duration::from_millis(150)); // hard outage
            (served_first, spawn_server(&path))
        })
    };

    let mut client = Client::connect_unix_with(
        &path,
        RetryPolicy {
            max_attempts: 30,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            deadline: Duration::from_secs(20),
            io_timeout: Some(Duration::from_millis(500)),
            seed: 0x02E5_7A27,
        },
    )
    .expect("connect");

    let mut stream = RequestStream::from_spec(spec("mcf").expect("mcf exists"), 2, 0x02E5_7A27);
    let mut acked_bytes = 0u64;
    let mut indeterminate_bytes = 0u64;
    let mut failed_reports = 0u64;
    let total_requests = 3_000u32;
    let restart_at = 1_000u32;

    for i in 0..total_requests {
        if i == restart_at {
            restart_tx.send(()).expect("controller alive");
        }
        let r = stream.next_request();
        // GetRoute is idempotent: through the whole restart, retries must
        // absorb every transient failure. An error here means the
        // policy's 20s budget was exhausted — a real failure.
        let d = client
            .get_route(r.tenant, r.bytes)
            .unwrap_or_else(|e| panic!("get_route failed despite retry policy (request {i}): {e}"));
        // 1 GB/s synthetic service: bytes == busy nanoseconds.
        match client.report_served(d.backend as u8, r.bytes, r.bytes) {
            Ok(()) => acked_bytes += u64::from(r.bytes),
            Err(e) => {
                // Only a lost-ack (recv-stage) failure may surface:
                // everything else is provably-unapplied and must have
                // been retried internally.
                assert!(
                    matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::BrokenPipe
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::WouldBlock
                            | io::ErrorKind::ConnectionAborted
                    ),
                    "report_served failed with a non-recv-looking error: {e}"
                );
                indeterminate_bytes += u64::from(r.bytes);
                failed_reports += 1;
            }
        }
    }

    let (served_first, second) = controller.join().expect("controller thread");
    assert!(
        client.reconnects() > 0,
        "the restart was never observed by the client"
    );
    assert_eq!(
        client.indeterminate_reports(),
        failed_reports,
        "client's indeterminate ledger disagrees with the test's"
    );

    let stats = client.snapshot_stats().expect("stats from second daemon");
    let served = served_first + served_bytes_total(&stats);
    assert!(
        served <= acked_bytes + indeterminate_bytes,
        "served {served} > acked {acked_bytes} + indeterminate {indeterminate_bytes}: \
         a ReportServed was double-counted"
    );
    assert!(
        served >= acked_bytes,
        "served {served} < acked {acked_bytes}: an acked report was lost"
    );
    assert!(
        served_bytes_total(&stats) > 0,
        "second daemon served nothing — the client never cut over"
    );

    client.shutdown().expect("shutdown");
    second.join().expect("second daemon exits");
    assert!(!path.exists(), "socket cleaned up");
}
