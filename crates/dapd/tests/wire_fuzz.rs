//! Seeded fuzz coverage for `wire` decoding: arbitrary bytes, arbitrary
//! mutations of valid frames, and truncation at every offset must never
//! panic, and must always yield either `Truncated` or a typed garbage
//! error — extending the enumerated negative cases in the wire module's
//! unit tests to tens of thousands of adversarial inputs.
//!
//! Everything is driven by `SplitMix64` seeds, so a failure reproduces
//! exactly and CI runs are deterministic.

use dapd::wire::{decode_frame, encode_frame, read_frame, WireError};
use dapd::{Message, RejectCode, MAX_PAYLOAD};
use std::io::{self, Cursor};
use workloads::rng::SplitMix64;

const SEED: u64 = 0xF022_5EED;

fn sample_messages(rng: &mut SplitMix64) -> Message {
    match rng.below(8) {
        0 => Message::GetRoute {
            tenant: rng.below(1 << 16) as u16,
            bytes: rng.next_u64() as u32,
        },
        1 => Message::ReportServed {
            source: rng.below(256) as u8,
            bytes: rng.next_u64() as u32,
            latency_ns: rng.next_u64() as u32,
        },
        2 => Message::SnapshotStats,
        3 => Message::Shutdown,
        4 => Message::Route {
            source: rng.below(256) as u8,
            window: rng.next_u64() as u32,
        },
        5 => Message::Ack,
        6 => {
            let len = rng.below(64) as usize;
            let text: String = (0..len)
                .map(|_| char::from(b'a' + rng.below(26) as u8))
                .collect();
            Message::Stats(text)
        }
        _ => Message::Reject(match rng.below(4) {
            0 => RejectCode::UnknownTenant,
            1 => RejectCode::UnknownBackend,
            2 => RejectCode::ShuttingDown,
            _ => RejectCode::Overloaded,
        }),
    }
}

/// decode_frame is total: random byte soup either parses (with a sane
/// consumed length) or fails with a typed error. It must never panic.
#[test]
fn random_bytes_never_panic_the_decoder() {
    let mut rng = SplitMix64::new(SEED);
    for _ in 0..20_000 {
        let len = rng.below(64) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        match decode_frame(&buf) {
            Ok((_, consumed)) => assert!(consumed <= buf.len(), "consumed beyond input"),
            Err(
                WireError::Truncated { .. }
                | WireError::UnknownType(_)
                | WireError::BadPayloadLen { .. }
                | WireError::FrameTooLarge(_)
                | WireError::BadUtf8
                | WireError::BadRejectCode(_)
                | WireError::BadShutdownToken,
            ) => {}
        }
    }
}

/// Truncating a valid frame at EVERY offset yields `Truncated` with an
/// honest byte count — never a panic, never a misparse — for a large
/// seeded sample of messages, not just the unit tests' fixed list.
#[test]
fn truncation_at_every_offset_is_reported_honestly() {
    let mut rng = SplitMix64::new(SEED ^ 1);
    for _ in 0..2_000 {
        let msg = sample_messages(&mut rng);
        let frame = encode_frame(&msg);
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(WireError::Truncated { needed, got }) => {
                    assert_eq!(got, cut, "honest 'got' for {msg:?}");
                    assert!(needed > cut, "claimed need {needed} <= have {cut}");
                }
                other => panic!("cut={cut} of {msg:?}: expected Truncated, got {other:?}"),
            }
        }
    }
}

/// Mutating valid frames (random byte stomps) never panics, and the
/// result is either a successful parse of *some* message or a typed
/// error — and never a forged `Shutdown` (the token makes that require
/// at least eight coordinated payload bytes, which random stomps of
/// non-Shutdown frames cannot produce with a wrong-length payload).
#[test]
fn mutated_frames_decode_totally() {
    let mut rng = SplitMix64::new(SEED ^ 2);
    for _ in 0..5_000 {
        let msg = sample_messages(&mut rng);
        let mut frame = encode_frame(&msg);
        let stomps = 1 + rng.below(4) as usize;
        for _ in 0..stomps {
            let i = rng.index(frame.len());
            frame[i] = rng.next_u64() as u8;
        }
        if let Ok((Message::Shutdown, _)) = decode_frame(&frame) {
            // Only a frame that was already a shutdown (with stomps that
            // happened to restore it) may decode as one.
            assert_eq!(msg, Message::Shutdown, "stomped {msg:?} forged a shutdown");
        }
    }
}

/// The stream reader classifies every failure as either UnexpectedEof
/// (truncated stream) or InvalidData (typed garbage) — the two cases a
/// server loop needs to distinguish — and never panics or hangs.
#[test]
fn stream_reader_yields_only_eof_or_invalid_data() {
    let mut rng = SplitMix64::new(SEED ^ 3);
    for _ in 0..20_000 {
        let len = rng.below(48) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let mut cursor = Cursor::new(buf);
        match read_frame(&mut cursor) {
            Ok(_) => {}
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ),
                "unexpected error kind {:?}",
                e.kind()
            ),
        }
    }
}

/// A hostile length prefix larger than MAX_PAYLOAD is rejected before
/// allocation for every type byte, so no seed can make the reader
/// reserve gigabytes.
#[test]
fn oversized_prefixes_never_allocate() {
    let mut rng = SplitMix64::new(SEED ^ 4);
    for _ in 0..2_000 {
        let len = MAX_PAYLOAD + 1 + (rng.next_u64() as u32 & 0x7fff_ffff).min(u32::MAX >> 2);
        let ty = rng.below(256) as u8;
        let mut frame = len.to_le_bytes().to_vec();
        frame.push(ty);
        assert_eq!(decode_frame(&frame), Err(WireError::FrameTooLarge(len)));
        let err = read_frame(&mut Cursor::new(frame)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
