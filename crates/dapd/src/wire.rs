//! `dap-wire`: the daemon's length-prefixed binary protocol.
//!
//! Every frame on the socket is
//!
//! ```text
//! +----------------+----------+-------------------+
//! | payload_len u32 | type u8 | payload (LE ints) |
//! +----------------+----------+-------------------+
//! ```
//!
//! with `payload_len` little-endian and *not* counting the type byte.
//! Integers inside payloads are little-endian. Request types occupy
//! `1..=4`, response types `129..=131` plus the `Reject` type `255`, so a
//! client that accidentally feeds a response back to the server (or vice
//! versa) fails loudly with [`WireError::UnknownType`] rather than being
//! misparsed.
//!
//! Decoding is total: any byte sequence either parses to exactly one
//! [`Message`] plus a consumed length, or returns a typed [`WireError`].
//! Truncated input is distinguished from garbage so stream readers know
//! whether to wait for more bytes or drop the connection.
//!
//! `Shutdown` — the one request that takes the daemon down — must carry
//! the eight-byte [`SHUTDOWN_TOKEN`] payload, so neither random garbage
//! nor a bit-flipped legitimate frame can ever be parsed as a shutdown
//! order ([`WireError::BadShutdownToken`] otherwise).

use std::fmt;
use std::io::{self, Read, Write};

/// Maximum payload length a peer may send (1 MiB). Larger frames are
/// rejected before allocation, so a hostile length prefix cannot OOM the
/// daemon.
pub const MAX_PAYLOAD: u32 = 1 << 20;

const TYPE_GET_ROUTE: u8 = 1;
const TYPE_REPORT_SERVED: u8 = 2;
const TYPE_SNAPSHOT_STATS: u8 = 3;
const TYPE_SHUTDOWN: u8 = 4;
const TYPE_ROUTE: u8 = 129;
const TYPE_ACK: u8 = 130;
const TYPE_STATS: u8 = 131;
const TYPE_REJECT: u8 = 255;

/// The payload every `Shutdown` frame must carry. Shutdown is the one
/// request that takes the whole service down, so it is the one frame a
/// corrupted stream or a garbage-spewing peer must never be able to
/// forge: a single flipped byte can turn one request type into another,
/// but it cannot conjure these eight bytes.
pub const SHUTDOWN_TOKEN: [u8; 8] = *b"DAPDHALT";

/// Why the daemon refused a request (payload of [`Message::Reject`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectCode {
    /// The tenant id is outside the configured tenant table.
    UnknownTenant = 1,
    /// The backend id is outside the configured backend table.
    UnknownBackend = 2,
    /// A request arrived while the daemon was shutting down.
    ShuttingDown = 3,
    /// The daemon is at its connection cap or this connection exhausted
    /// its frame/byte budget; the connection is closed after this frame.
    /// Clients should back off and reconnect.
    Overloaded = 4,
}

impl RejectCode {
    fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(RejectCode::UnknownTenant),
            2 => Some(RejectCode::UnknownBackend),
            3 => Some(RejectCode::ShuttingDown),
            4 => Some(RejectCode::Overloaded),
            _ => None,
        }
    }
}

/// One protocol message, request or response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → daemon: which backend should serve `bytes` for `tenant`?
    GetRoute {
        /// Index into the daemon's tenant table.
        tenant: u16,
        /// Size of the access being routed, in bytes.
        bytes: u32,
    },
    /// Client → daemon: backend `source` just served `bytes` in
    /// `latency_ns` nanoseconds of busy time. Feeds the measured-
    /// bandwidth estimate for the next re-solve.
    ReportServed {
        /// Index into the daemon's backend table.
        source: u8,
        /// Bytes the backend delivered.
        bytes: u32,
        /// Busy time spent delivering them, in microseconds.
        latency_ns: u32,
    },
    /// Client → daemon: render the current stats as Prometheus text.
    SnapshotStats,
    /// Client → daemon: stop accepting connections and exit cleanly.
    Shutdown,
    /// Daemon → client: serve the access from backend `source`.
    Route {
        /// The chosen backend index.
        source: u8,
        /// The resolve-window sequence number the decision was made in.
        window: u32,
    },
    /// Daemon → client: request applied, nothing to return.
    Ack,
    /// Daemon → client: the stats exposition text.
    Stats(String),
    /// Daemon → client: request refused.
    Reject(RejectCode),
}

impl Message {
    fn type_byte(&self) -> u8 {
        match self {
            Message::GetRoute { .. } => TYPE_GET_ROUTE,
            Message::ReportServed { .. } => TYPE_REPORT_SERVED,
            Message::SnapshotStats => TYPE_SNAPSHOT_STATS,
            Message::Shutdown => TYPE_SHUTDOWN,
            Message::Route { .. } => TYPE_ROUTE,
            Message::Ack => TYPE_ACK,
            Message::Stats(_) => TYPE_STATS,
            Message::Reject(_) => TYPE_REJECT,
        }
    }
}

/// A typed decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ends before a complete frame: `needed` total bytes are
    /// required but only `got` are present. Stream readers should wait
    /// for more input; datagram-style consumers should treat this as
    /// corruption.
    Truncated {
        /// Total bytes the frame needs.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The type byte does not name any protocol message.
    UnknownType(u8),
    /// The payload length does not match the fixed size of this type.
    BadPayloadLen {
        /// The frame's type byte.
        ty: u8,
        /// The length the prefix claimed.
        got: u32,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    FrameTooLarge(u32),
    /// A `Stats` payload was not valid UTF-8.
    BadUtf8,
    /// A `Reject` payload carried an unassigned code.
    BadRejectCode(u8),
    /// A `Shutdown` frame did not carry [`SHUTDOWN_TOKEN`]. Corruption or
    /// garbage must never be able to stop the daemon.
    BadShutdownToken,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            WireError::UnknownType(t) => write!(f, "unknown message type {t:#04x}"),
            WireError::BadPayloadLen { ty, got } => {
                write!(f, "bad payload length {got} for message type {ty:#04x}")
            }
            WireError::FrameTooLarge(len) => {
                write!(f, "frame payload {len} exceeds max {MAX_PAYLOAD}")
            }
            WireError::BadUtf8 => write!(f, "stats payload is not valid UTF-8"),
            WireError::BadRejectCode(c) => write!(f, "unassigned reject code {c}"),
            WireError::BadShutdownToken => write!(f, "shutdown frame lacks the magic token"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message as a complete frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let mut payload: Vec<u8> = Vec::new();
    match msg {
        Message::GetRoute { tenant, bytes } => {
            payload.extend_from_slice(&tenant.to_le_bytes());
            payload.extend_from_slice(&bytes.to_le_bytes());
        }
        Message::ReportServed {
            source,
            bytes,
            latency_ns,
        } => {
            payload.push(*source);
            payload.extend_from_slice(&bytes.to_le_bytes());
            payload.extend_from_slice(&latency_ns.to_le_bytes());
        }
        Message::SnapshotStats | Message::Ack => {}
        Message::Shutdown => payload.extend_from_slice(&SHUTDOWN_TOKEN),
        Message::Route { source, window } => {
            payload.push(*source);
            payload.extend_from_slice(&window.to_le_bytes());
        }
        Message::Stats(text) => payload.extend_from_slice(text.as_bytes()),
        Message::Reject(code) => payload.push(*code as u8),
    }
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.push(msg.type_byte());
    frame.extend_from_slice(&payload);
    frame
}

fn fixed_len(ty: u8) -> Option<usize> {
    match ty {
        TYPE_GET_ROUTE => Some(6),
        TYPE_REPORT_SERVED => Some(9),
        TYPE_SNAPSHOT_STATS | TYPE_ACK => Some(0),
        TYPE_SHUTDOWN => Some(SHUTDOWN_TOKEN.len()),
        TYPE_ROUTE => Some(5),
        TYPE_REJECT => Some(1),
        TYPE_STATS => None, // variable
        _ => None,
    }
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Decodes one frame from the front of `buf`.
///
/// On success returns the message and the total number of bytes consumed
/// (header + payload), so stream readers can advance their buffer.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), WireError> {
    if buf.len() < 5 {
        return Err(WireError::Truncated {
            needed: 5,
            got: buf.len(),
        });
    }
    let payload_len = le_u32(&buf[0..4]);
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::FrameTooLarge(payload_len));
    }
    let ty = buf[4];
    // Reject unknown types and wrong fixed lengths *before* waiting for
    // the payload: garbage should fail fast even when "truncated".
    match ty {
        TYPE_GET_ROUTE | TYPE_REPORT_SERVED | TYPE_SNAPSHOT_STATS | TYPE_SHUTDOWN | TYPE_ROUTE
        | TYPE_ACK | TYPE_STATS | TYPE_REJECT => {}
        other => return Err(WireError::UnknownType(other)),
    }
    if let Some(expected) = fixed_len(ty) {
        if payload_len as usize != expected {
            return Err(WireError::BadPayloadLen {
                ty,
                got: payload_len,
            });
        }
    }
    let total = 5 + payload_len as usize;
    if buf.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    let p = &buf[5..total];
    let msg = match ty {
        TYPE_GET_ROUTE => Message::GetRoute {
            tenant: le_u16(&p[0..2]),
            bytes: le_u32(&p[2..6]),
        },
        TYPE_REPORT_SERVED => Message::ReportServed {
            source: p[0],
            bytes: le_u32(&p[1..5]),
            latency_ns: le_u32(&p[5..9]),
        },
        TYPE_SNAPSHOT_STATS => Message::SnapshotStats,
        TYPE_SHUTDOWN => {
            if p != SHUTDOWN_TOKEN {
                return Err(WireError::BadShutdownToken);
            }
            Message::Shutdown
        }
        TYPE_ROUTE => Message::Route {
            source: p[0],
            window: le_u32(&p[1..5]),
        },
        TYPE_ACK => Message::Ack,
        TYPE_STATS => {
            Message::Stats(String::from_utf8(p.to_vec()).map_err(|_| WireError::BadUtf8)?)
        }
        TYPE_REJECT => {
            Message::Reject(RejectCode::from_u8(p[0]).ok_or(WireError::BadRejectCode(p[0]))?)
        }
        _ => unreachable!("type validated above"),
    };
    Ok((msg, total))
}

/// Reads exactly one frame from a blocking stream.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary; EOF mid-frame is
/// an [`io::ErrorKind::UnexpectedEof`] error, and protocol violations
/// surface as [`io::ErrorKind::InvalidData`] wrapping the [`WireError`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Message>> {
    Ok(read_frame_counted(r)?.map(|(msg, _)| msg))
}

/// Like [`read_frame`], but also reports the frame's total wire size
/// (header + payload) so callers can enforce per-connection byte budgets
/// without re-encoding the message.
pub fn read_frame_counted<R: Read>(r: &mut R) -> io::Result<Option<(Message, usize)>> {
    let mut header = [0u8; 5];
    match r.read(&mut header)? {
        0 => return Ok(None),
        n => r.read_exact(&mut header[n..])?,
    }
    let payload_len = le_u32(&header[0..4]);
    if payload_len > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::FrameTooLarge(payload_len),
        ));
    }
    let mut frame = header.to_vec();
    frame.resize(5 + payload_len as usize, 0);
    r.read_exact(&mut frame[5..])?;
    match decode_frame(&frame) {
        Ok((msg, consumed)) => {
            debug_assert_eq!(consumed, frame.len());
            Ok(Some((msg, consumed)))
        }
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
    }
}

/// Writes one frame to a blocking stream.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    w.write_all(&encode_frame(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::GetRoute {
                tenant: 7,
                bytes: 4096,
            },
            Message::GetRoute {
                tenant: u16::MAX,
                bytes: u32::MAX,
            },
            Message::ReportServed {
                source: 1,
                bytes: 65_536,
                latency_ns: 42,
            },
            Message::SnapshotStats,
            Message::Shutdown,
            Message::Route {
                source: 0,
                window: 9,
            },
            Message::Ack,
            Message::Stats(String::new()),
            Message::Stats("dapd_decisions_total 12\n".to_string()),
            Message::Reject(RejectCode::UnknownTenant),
            Message::Reject(RejectCode::UnknownBackend),
            Message::Reject(RejectCode::ShuttingDown),
            Message::Reject(RejectCode::Overloaded),
        ]
    }

    #[test]
    fn round_trip_every_message_type() {
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            let (decoded, consumed) = decode_frame(&frame).expect("decode");
            assert_eq!(decoded, msg);
            assert_eq!(consumed, frame.len(), "whole frame consumed for {msg:?}");
        }
    }

    #[test]
    fn round_trip_through_streams() {
        let mut buf = Vec::new();
        for msg in all_messages() {
            write_frame(&mut buf, &msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in all_messages() {
            assert_eq!(read_frame(&mut cursor).unwrap(), Some(msg));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn every_truncation_is_detected() {
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            for cut in 0..frame.len() {
                match decode_frame(&frame[..cut]) {
                    Err(WireError::Truncated { needed, got }) => {
                        assert_eq!(got, cut);
                        assert!(needed > cut, "claimed need {needed} <= have {cut}");
                    }
                    other => panic!("cut={cut} of {msg:?}: expected Truncated, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn garbage_type_byte_rejected() {
        for ty in [0u8, 5, 100, 128, 132, 200, 254] {
            let mut frame = vec![0, 0, 0, 0, ty];
            frame.extend_from_slice(&[0; 16]);
            // Unknown type must be detected from the 5-byte header alone.
            assert_eq!(decode_frame(&frame), Err(WireError::UnknownType(ty)));
            assert_eq!(decode_frame(&frame[..5]), Err(WireError::UnknownType(ty)));
        }
    }

    #[test]
    fn wrong_fixed_payload_length_rejected() {
        // GetRoute claims 7 payload bytes instead of 6.
        let mut frame = vec![7, 0, 0, 0, 1];
        frame.extend_from_slice(&[0; 7]);
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::BadPayloadLen { ty: 1, got: 7 })
        );
        // ... detected even before the payload arrives.
        assert_eq!(
            decode_frame(&frame[..5]),
            Err(WireError::BadPayloadLen { ty: 1, got: 7 })
        );
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let frame = [(MAX_PAYLOAD + 1).to_le_bytes().as_slice(), &[3u8]].concat();
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::FrameTooLarge(MAX_PAYLOAD + 1))
        );
        let mut cursor = std::io::Cursor::new(frame);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn non_utf8_stats_rejected() {
        let mut frame = vec![2, 0, 0, 0, TYPE_STATS];
        frame.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode_frame(&frame), Err(WireError::BadUtf8));
    }

    #[test]
    fn unassigned_reject_code_rejected() {
        let frame = vec![1, 0, 0, 0, TYPE_REJECT, 99];
        assert_eq!(decode_frame(&frame), Err(WireError::BadRejectCode(99)));
    }

    #[test]
    fn shutdown_without_token_rejected() {
        // Right length, wrong bytes: a forged or corrupted shutdown.
        let mut frame = vec![8, 0, 0, 0, TYPE_SHUTDOWN];
        frame.extend_from_slice(b"xxxxxxxx");
        assert_eq!(decode_frame(&frame), Err(WireError::BadShutdownToken));
        // Wrong length fails even earlier, as a length mismatch.
        let frame = vec![0, 0, 0, 0, TYPE_SHUTDOWN];
        assert_eq!(
            decode_frame(&frame),
            Err(WireError::BadPayloadLen {
                ty: TYPE_SHUTDOWN,
                got: 0
            })
        );
    }

    #[test]
    fn single_byte_corruption_never_yields_shutdown() {
        // The whole point of the token: flip any one byte of any valid
        // frame and the result must never decode as Shutdown (except a
        // frame that already was one).
        for msg in all_messages() {
            if msg == Message::Shutdown {
                continue;
            }
            let frame = encode_frame(&msg);
            for i in 0..frame.len() {
                for bit in 0..8u8 {
                    let mut corrupt = frame.clone();
                    corrupt[i] ^= 1 << bit;
                    if let Ok((Message::Shutdown, _)) = decode_frame(&corrupt) {
                        panic!("bit {bit} of byte {i} in {msg:?} forged a shutdown");
                    }
                }
            }
        }
    }

    #[test]
    fn eof_mid_frame_is_unexpected_eof() {
        let msg = Message::GetRoute {
            tenant: 1,
            bytes: 64,
        };
        let frame = encode_frame(&msg);
        for cut in 1..frame.len() {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            let err = read_frame(&mut cursor).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut={cut}");
        }
    }

    #[test]
    fn decode_reports_consumed_length_with_trailing_bytes() {
        let msg = Message::Route {
            source: 2,
            window: 5,
        };
        let mut buf = encode_frame(&msg);
        let frame_len = buf.len();
        buf.extend_from_slice(&encode_frame(&Message::Ack));
        let (decoded, consumed) = decode_frame(&buf).unwrap();
        assert_eq!(decoded, msg);
        assert_eq!(consumed, frame_len, "first frame only");
        let (next, _) = decode_frame(&buf[consumed..]).unwrap();
        assert_eq!(next, Message::Ack);
    }
}
