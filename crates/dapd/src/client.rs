//! Blocking client for the daemon's wire protocol, with optional
//! retry/backoff for fault-tolerant callers.
//!
//! One request, one response, in order, per connection — the protocol
//! has no pipelining, which keeps both ends trivially correct and is
//! plenty for a control-plane service (routing *decisions* are returned,
//! not data).
//!
//! ## Retry semantics
//!
//! A [`RetryPolicy`] gives the client jittered exponential backoff with
//! a total deadline budget, and transparent reconnect when the daemon
//! drops the connection (broken pipe, restart, shed). Retries are
//! **idempotency-aware**, keyed on where the failure happened:
//!
//! * **Connect/Send failures** are always safe to retry, even for
//!   `ReportServed`: the protocol is length-prefixed, and `write_all`
//!   failing means at least the final byte of the frame was never
//!   submitted — the server discards truncated frames, so the request
//!   was provably not applied.
//! * **Typed rejects** (`Overloaded`, `ShuttingDown`) are safe to retry
//!   for the same reason: the server answered *instead of* applying the
//!   request.
//! * **Recv failures** (the reply lost after the frame was fully
//!   written) are retried only for idempotent calls (`GetRoute`,
//!   `SnapshotStats`). A `ReportServed` whose ack vanished is
//!   *indeterminate* — retrying could double-count served bytes in the
//!   engine's bandwidth measurement — so it fails the call and is
//!   counted in [`Client::indeterminate_reports`].

use crate::engine::RouteDecision;
use crate::wire::{read_frame, write_frame, Message, RejectCode};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Retry/backoff configuration for a [`Client`].
///
/// Backoff for attempt *n* (1-based) is drawn uniformly from
/// `[exp/2, exp]` where `exp = min(base_delay · 2^(n-1), max_delay)` —
/// "equal jitter", so a fleet of clients hitting the same outage does
/// not reconnect in lockstep. The jitter source is a seeded in-tree
/// SplitMix64, so a given `(seed, failure sequence)` produces the same
/// delays on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call (1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay; doubles each attempt.
    pub base_delay: Duration,
    /// Ceiling on a single backoff delay.
    pub max_delay: Duration,
    /// Total budget per call, covering all attempts and sleeps. When the
    /// next sleep would cross it, the call fails with the last error.
    pub deadline: Duration,
    /// Per-operation socket read/write timeout, so a stalled daemon
    /// surfaces as a retryable `TimedOut` instead of hanging the caller.
    pub io_timeout: Option<Duration>,
    /// Seed for the jitter PRNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            deadline: Duration::from_secs(30),
            io_timeout: Some(Duration::from_secs(5)),
            seed: 0xDA9D,
        }
    }
}

impl RetryPolicy {
    /// No retries, no socket timeouts: the original fail-fast client
    /// behavior. Used by [`Client::connect_tcp`] / [`Client::connect_unix`].
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            deadline: Duration::from_secs(u64::MAX >> 1),
            io_timeout: None,
            seed: 0,
        }
    }
}

/// Where in a call's lifecycle a failure happened — this, not the error
/// kind, decides whether a non-idempotent call may retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Establishing the connection. Nothing was sent.
    Connect,
    /// Writing the request frame. An error here proves the frame was
    /// incomplete at the server, which discards truncated frames.
    Send,
    /// Reading the reply after a fully-written request. The server may
    /// or may not have applied it.
    Recv,
    /// The server answered with a retryable reject *instead of*
    /// applying the request.
    Rejected,
}

/// SplitMix64 — same generator as `workloads::rng`, inlined so the
/// client crate's dependency set stays unchanged.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A client bound to one daemon address, reconnecting as its policy
/// allows.
pub struct Client {
    target: Target,
    stream: Option<Stream>,
    policy: RetryPolicy,
    rng: SplitMix64,
    connects: u64,
    indeterminate_reports: u64,
}

enum Target {
    Tcp(String),
    Unix(PathBuf),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn reject_to_error(code: RejectCode) -> io::Error {
    let kind = match code {
        RejectCode::UnknownTenant | RejectCode::UnknownBackend => io::ErrorKind::PermissionDenied,
        RejectCode::ShuttingDown => io::ErrorKind::ConnectionAborted,
        RejectCode::Overloaded => io::ErrorKind::ResourceBusy,
    };
    let what = match code {
        RejectCode::UnknownTenant => "unknown tenant",
        RejectCode::UnknownBackend => "unknown backend",
        RejectCode::ShuttingDown => "daemon is shutting down",
        RejectCode::Overloaded => "daemon is overloaded",
    };
    io::Error::new(kind, format!("daemon rejected request: {what}"))
}

/// Transient failures worth another attempt. `PermissionDenied`
/// (unknown tenant/backend) and `InvalidData` (protocol violation) are
/// definitive and never retried.
fn is_retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::NotFound
            | io::ErrorKind::ResourceBusy
            | io::ErrorKind::Interrupted
    )
}

impl Client {
    /// Connects over TCP (`host:port`), fail-fast (no retries).
    pub fn connect_tcp(addr: &str) -> io::Result<Self> {
        Self::connect_tcp_with(addr, RetryPolicy::none())
    }

    /// Connects to a Unix-domain socket, fail-fast (no retries).
    pub fn connect_unix(path: &Path) -> io::Result<Self> {
        Self::connect_unix_with(path, RetryPolicy::none())
    }

    /// Connects over TCP with retry/backoff under `policy`.
    pub fn connect_tcp_with(addr: &str, policy: RetryPolicy) -> io::Result<Self> {
        Self::connect(Target::Tcp(addr.to_string()), policy)
    }

    /// Connects to a Unix-domain socket with retry/backoff under
    /// `policy`.
    pub fn connect_unix_with(path: &Path, policy: RetryPolicy) -> io::Result<Self> {
        Self::connect(Target::Unix(path.to_path_buf()), policy)
    }

    fn connect(target: Target, policy: RetryPolicy) -> io::Result<Self> {
        let rng = SplitMix64::new(policy.seed);
        let mut client = Self {
            target,
            stream: None,
            policy,
            rng,
            connects: 0,
            indeterminate_reports: 0,
        };
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match client.ensure_connected() {
                Ok(()) => return Ok(client),
                Err(e) => client.pause_or_fail(&start, attempt, Stage::Connect, true, e)?,
            }
        }
    }

    /// Connections established over this client's lifetime beyond the
    /// first — i.e. how many times retry logic had to reconnect.
    pub fn reconnects(&self) -> u64 {
        self.connects.saturating_sub(1)
    }

    /// `ReportServed` calls that failed after the request frame was
    /// fully written (reply lost): the daemon *may* have counted the
    /// bytes, so they were not retried. The true served total lies in
    /// `[acked, acked + indeterminate]`.
    pub fn indeterminate_reports(&self) -> u64 {
        self.indeterminate_reports
    }

    fn ensure_connected(&mut self) -> io::Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let stream = match &self.target {
            Target::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_read_timeout(self.policy.io_timeout)?;
                s.set_write_timeout(self.policy.io_timeout)?;
                Stream::Tcp(s)
            }
            Target::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(self.policy.io_timeout)?;
                s.set_write_timeout(self.policy.io_timeout)?;
                Stream::Unix(s)
            }
        };
        self.stream = Some(stream);
        self.connects += 1;
        Ok(())
    }

    /// One attempt: connect if needed, send, receive. Tags the error
    /// with the stage it happened in.
    fn try_call(&mut self, msg: &Message) -> Result<Message, (Stage, io::Error)> {
        self.ensure_connected().map_err(|e| (Stage::Connect, e))?;
        let stream = self.stream.as_mut().expect("connected above");
        write_frame(stream, msg).map_err(|e| (Stage::Send, e))?;
        match read_frame(stream) {
            Ok(Some(Message::Reject(code))) => {
                let err = reject_to_error(code);
                let stage = match code {
                    // The server rejected instead of applying: safe to
                    // retry regardless of idempotency. It also closes
                    // the connection after Overloaded/ShuttingDown.
                    RejectCode::Overloaded | RejectCode::ShuttingDown => Stage::Rejected,
                    RejectCode::UnknownTenant | RejectCode::UnknownBackend => Stage::Recv,
                };
                Err((stage, err))
            }
            Ok(Some(reply)) => Ok(reply),
            Ok(None) => Err((
                Stage::Recv,
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection mid-call",
                ),
            )),
            Err(e) => Err((Stage::Recv, e)),
        }
    }

    /// Sleeps the backoff for `attempt` if another try is allowed, or
    /// returns `err`. `retry_stage_ok` is the idempotency verdict for
    /// the failed stage.
    fn pause_or_fail(
        &mut self,
        start: &Instant,
        attempt: u32,
        stage: Stage,
        idempotent: bool,
        err: io::Error,
    ) -> io::Result<()> {
        let stage_ok = match stage {
            Stage::Connect | Stage::Send | Stage::Rejected => true,
            Stage::Recv => idempotent,
        };
        if !stage_ok || !is_retryable(err.kind()) || attempt >= self.policy.max_attempts {
            return Err(err);
        }
        let delay = self.backoff_delay(attempt);
        if start.elapsed() + delay > self.policy.deadline {
            return Err(io::Error::new(
                err.kind(),
                format!("retry deadline exhausted after {attempt} attempts: {err}"),
            ));
        }
        std::thread::sleep(delay);
        Ok(())
    }

    /// Equal-jitter exponential backoff: uniform in `[exp/2, exp]`.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .policy
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.policy.max_delay);
        let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
        let half = nanos / 2;
        Duration::from_nanos(half + self.rng.below(nanos - half + 1))
    }

    fn call(&mut self, msg: &Message, idempotent: bool) -> io::Result<Message> {
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.try_call(msg) {
                Ok(reply) => return Ok(reply),
                Err((stage, err)) => {
                    // Every failure (including a reject, after which the
                    // server closes) poisons the connection: reconnect
                    // on the next attempt rather than reuse a stream in
                    // an unknown framing state.
                    self.stream = None;
                    // A retryable-kind Recv failure is a transport loss
                    // (the reply vanished); a definitive kind means a
                    // reply *arrived*, so the outcome is known.
                    if stage == Stage::Recv
                        && matches!(msg, Message::ReportServed { .. })
                        && is_retryable(err.kind())
                    {
                        self.indeterminate_reports += 1;
                    }
                    self.pause_or_fail(&start, attempt, stage, idempotent, err)?;
                }
            }
        }
    }

    /// Asks which backend should serve `bytes` for `tenant`.
    /// Idempotent: retried freely under the policy.
    pub fn get_route(&mut self, tenant: u16, bytes: u32) -> io::Result<RouteDecision> {
        match self.call(&Message::GetRoute { tenant, bytes }, true)? {
            Message::Route { source, window } => Ok(RouteDecision {
                backend: source as usize,
                window,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Reports that `source` delivered `bytes` in `latency_ns`
    /// nanoseconds of busy time. Not idempotent: only Connect/Send
    /// failures and typed rejects are retried (see module docs); a lost
    /// ack fails the call and bumps [`Client::indeterminate_reports`].
    pub fn report_served(&mut self, source: u8, bytes: u32, latency_ns: u32) -> io::Result<()> {
        match self.call(
            &Message::ReportServed {
                source,
                bytes,
                latency_ns,
            },
            false,
        )? {
            Message::Ack => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the Prometheus-text stats dump. Idempotent.
    pub fn snapshot_stats(&mut self) -> io::Result<String> {
        match self.call(&Message::SnapshotStats, true)? {
            Message::Stats(text) => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to exit cleanly. Not retried on a lost ack: once
    /// the daemon is down, further attempts can only fail.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Message::Shutdown, false)? {
            Message::Ack => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(msg: Message) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply from daemon: {msg:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy_for_test() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            deadline: Duration::from_secs(5),
            io_timeout: Some(Duration::from_millis(200)),
            seed: 42,
        }
    }

    #[test]
    fn backoff_is_jittered_bounded_and_deterministic() {
        let make = || Client {
            target: Target::Tcp("127.0.0.1:9".into()),
            stream: None,
            policy: RetryPolicy {
                base_delay: Duration::from_millis(10),
                max_delay: Duration::from_millis(80),
                ..RetryPolicy::default()
            },
            rng: SplitMix64::new(7),
            connects: 0,
            indeterminate_reports: 0,
        };
        let mut a = make();
        let mut b = make();
        for attempt in 1..=10 {
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << (attempt - 1).min(20))
                .min(Duration::from_millis(80));
            let d = a.backoff_delay(attempt);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d:?} vs {exp:?}"
            );
            assert_eq!(d, b.backoff_delay(attempt), "same seed, same delays");
        }
    }

    #[test]
    fn connect_to_dead_address_fails_after_budgeted_attempts() {
        // Nothing listens on this socket path.
        let path = std::env::temp_dir().join(format!("dapd-nosuch-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let start = Instant::now();
        let err = Client::connect_unix_with(&path, policy_for_test())
            .map(|_| ())
            .unwrap_err();
        assert!(is_retryable(err.kind()), "{err}");
        // Three attempts with millisecond backoff: fast, not hung.
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.io_timeout, None);
    }

    #[test]
    fn definitive_errors_are_not_retryable() {
        assert!(!is_retryable(io::ErrorKind::PermissionDenied));
        assert!(!is_retryable(io::ErrorKind::InvalidData));
        assert!(is_retryable(io::ErrorKind::ConnectionRefused));
        assert!(is_retryable(io::ErrorKind::ResourceBusy));
    }
}
