//! Blocking client for the daemon's wire protocol.
//!
//! One request, one response, in order, per connection — the protocol
//! has no pipelining, which keeps both ends trivially correct and is
//! plenty for a control-plane service (routing *decisions* are returned,
//! not data).

use crate::engine::RouteDecision;
use crate::wire::{read_frame, write_frame, Message, RejectCode};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected client.
pub struct Client {
    stream: Stream,
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn reject_to_error(code: RejectCode) -> io::Error {
    let kind = match code {
        RejectCode::UnknownTenant | RejectCode::UnknownBackend => io::ErrorKind::PermissionDenied,
        RejectCode::ShuttingDown => io::ErrorKind::ConnectionAborted,
    };
    let what = match code {
        RejectCode::UnknownTenant => "unknown tenant",
        RejectCode::UnknownBackend => "unknown backend",
        RejectCode::ShuttingDown => "daemon is shutting down",
    };
    io::Error::new(kind, format!("daemon rejected request: {what}"))
}

impl Client {
    /// Connects over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> io::Result<Self> {
        Ok(Self {
            stream: Stream::Tcp(TcpStream::connect(addr)?),
        })
    }

    /// Connects to a Unix-domain socket.
    pub fn connect_unix(path: &Path) -> io::Result<Self> {
        Ok(Self {
            stream: Stream::Unix(UnixStream::connect(path)?),
        })
    }

    fn call(&mut self, msg: &Message) -> io::Result<Message> {
        write_frame(&mut self.stream, msg)?;
        match read_frame(&mut self.stream)? {
            Some(Message::Reject(code)) => Err(reject_to_error(code)),
            Some(reply) => Ok(reply),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-call",
            )),
        }
    }

    /// Asks which backend should serve `bytes` for `tenant`.
    pub fn get_route(&mut self, tenant: u16, bytes: u32) -> io::Result<RouteDecision> {
        match self.call(&Message::GetRoute { tenant, bytes })? {
            Message::Route { source, window } => Ok(RouteDecision {
                backend: source as usize,
                window,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Reports that `source` delivered `bytes` in `latency_ns` nanoseconds
    /// of busy time.
    pub fn report_served(&mut self, source: u8, bytes: u32, latency_ns: u32) -> io::Result<()> {
        match self.call(&Message::ReportServed {
            source,
            bytes,
            latency_ns,
        })? {
            Message::Ack => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the Prometheus-text stats dump.
    pub fn snapshot_stats(&mut self) -> io::Result<String> {
        match self.call(&Message::SnapshotStats)? {
            Message::Stats(text) => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to exit cleanly.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(&Message::Shutdown)? {
            Message::Ack => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(msg: Message) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply from daemon: {msg:?}"),
    )
}
