//! The multi-tenant decision engine.
//!
//! [`Engine`] is the daemon's core: `N` tenants share `M` backends, and
//! every `GetRoute` answers "which backend serves these bytes?" so that
//! the byte split across backends chases the paper's Eq. 4 optimum
//! `f_i = B_i / ΣB` — computed not from nominal datasheet rates but from
//! the bandwidth each backend *measurably* delivered in the previous
//! resolve window ([`dap_decide::degrade`]'s philosophy, lifted from
//! per-64-cycle hardware windows to per-`resolve_every`-request service
//! windows).
//!
//! ## Tenant model (Memshare-style)
//!
//! Tenants are either *reserved* — entitled to a fixed GB/s share, funded
//! first out of every window's byte budget — or *best-effort*, drawing
//! from the pool that remains. [`TenantLedger`] tracks the split with
//! exact integer arithmetic and maintains a conservation invariant: at
//! any instant, unspent reserved credits + unspent pool credits + drained
//! credits equals the window's global budget, regardless of how route
//! calls interleave.
//!
//! ## Degradation
//!
//! A backend that was routed traffic but served zero bytes in a window is
//! *dark*: its Eq. 4 fraction becomes exactly zero and the router stops
//! selecting it. A later `ReportServed` with non-zero bytes revives it at
//! the measured rate. A backend that simply wasn't exercised keeps its
//! previous estimate (absence of evidence is not darkness).

use dap_decide::config::DapConfig;
use dap_decide::degrade::{degraded_k, EffectiveBandwidth};
use dap_telemetry::json::{obj, Json};
use dap_telemetry::{
    labeled, render_exposition, Counter, FlightKind, FlightRecorder, Histogram, MetricsRegistry,
};
use std::fmt;
use std::sync::Arc;

/// Credit bytes granted per GB/s of effective bandwidth per resolve
/// window (1 MiB): a deterministic integer scale tying the ledger's byte
/// budget to measured rates, playing the role `E·B·W` plays in
/// [`dap_decide::window::WindowBudget`].
pub const BYTES_PER_GBPS: u64 = 1 << 20;

/// One bandwidth backend (a memory tier, a cache shard, a storage class).
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSpec {
    /// Label used in metrics.
    pub name: String,
    /// Datasheet bandwidth in GB/s; the routing weight until measurements
    /// arrive, and the cap on measured estimates.
    pub nominal_gbps: f64,
}

/// How a tenant is funded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantClass {
    /// Guaranteed `gbps` of the global budget, funded before the pool.
    Reserved {
        /// The guaranteed share in GB/s.
        gbps: f64,
    },
    /// Draws from whatever the reserved tenants leave behind.
    BestEffort,
}

/// One tenant of the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Label used in metrics.
    pub name: String,
    /// Funding class.
    pub class: TenantClass,
}

/// Static engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// The bandwidth backends, in routing order.
    pub backends: Vec<BackendSpec>,
    /// The tenants, in ledger-funding order.
    pub tenants: Vec<TenantSpec>,
    /// Decisions per re-solve window (the daemon's `W`).
    pub resolve_every: u32,
    /// Bandwidth efficiency `E` in `(0, 1]` applied to measured rates
    /// when funding the ledger (paper default 0.75).
    pub efficiency: f64,
}

impl EngineConfig {
    /// The paper's two-source system as daemon backends: 102.4 GB/s HBM
    /// cache tier + 38.4 GB/s DDR4, one reserved tenant guaranteed
    /// 40 GB/s and one best-effort tenant, re-solving every 64 decisions.
    pub fn hbm_ddr4_pair() -> Self {
        Self {
            backends: vec![
                BackendSpec {
                    name: "hbm".to_string(),
                    nominal_gbps: 102.4,
                },
                BackendSpec {
                    name: "ddr4".to_string(),
                    nominal_gbps: 38.4,
                },
            ],
            tenants: vec![
                TenantSpec {
                    name: "reserved0".to_string(),
                    class: TenantClass::Reserved { gbps: 40.0 },
                },
                TenantSpec {
                    name: "besteffort0".to_string(),
                    class: TenantClass::BestEffort,
                },
            ],
            resolve_every: 64,
            efficiency: 0.75,
        }
    }

    fn validate(&self) -> Result<(), EngineError> {
        if self.backends.is_empty() {
            return Err(EngineError::Config("need at least one backend"));
        }
        if self.backends.len() > u8::MAX as usize {
            return Err(EngineError::Config("at most 255 backends"));
        }
        if self.tenants.is_empty() {
            return Err(EngineError::Config("need at least one tenant"));
        }
        if self.tenants.len() > u16::MAX as usize {
            return Err(EngineError::Config("at most 65535 tenants"));
        }
        if self.resolve_every == 0 {
            return Err(EngineError::Config("resolve_every must be non-zero"));
        }
        if !(self.efficiency > 0.0 && self.efficiency <= 1.0) {
            return Err(EngineError::Config("efficiency must be in (0, 1]"));
        }
        if self
            .backends
            .iter()
            .any(|b| !(b.nominal_gbps.is_finite() && b.nominal_gbps > 0.0))
        {
            return Err(EngineError::Config("nominal rates must be positive"));
        }
        Ok(())
    }
}

/// Engine-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The configuration is unusable.
    Config(&'static str),
    /// `tenant` in a route request is outside the tenant table.
    UnknownTenant(u16),
    /// `source` in a served report is outside the backend table.
    UnknownBackend(u8),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(why) => write!(f, "bad engine config: {why}"),
            EngineError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            EngineError::UnknownBackend(b) => write!(f, "unknown backend {b}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The answer to a route request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Index of the backend that should serve the access.
    pub backend: usize,
    /// The resolve window the decision was made in.
    pub window: u32,
}

/// Per-window credit accounting for the tenant set.
///
/// All amounts are bytes. The ledger is (re)funded at every window
/// boundary from the window's global budget: reserved tenants first (in
/// tenant order, each capped by what remains), then the pool gets the
/// remainder. Spending drains a tenant's reserved allowance before
/// touching the pool; demand beyond both is *overdraft* — recorded, never
/// funded, so the invariant stays exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLedger {
    global: u64,
    reserved_remaining: Vec<u64>,
    pool_remaining: u64,
    drained: u64,
    overdraft: u64,
}

impl TenantLedger {
    /// Funds a fresh window. `reserved_bytes[t]` is tenant `t`'s
    /// guaranteed share (0 for best-effort tenants); grants are clipped
    /// in tenant order so they never exceed `global`.
    pub fn fund(global: u64, reserved_bytes: &[u64]) -> Self {
        let mut remaining = global;
        let reserved_remaining: Vec<u64> = reserved_bytes
            .iter()
            .map(|&want| {
                let got = want.min(remaining);
                remaining -= got;
                got
            })
            .collect();
        Self {
            global,
            reserved_remaining,
            pool_remaining: remaining,
            drained: 0,
            overdraft: 0,
        }
    }

    /// Spends `bytes` on behalf of `tenant`: reserved allowance first,
    /// then the pool; any shortfall is recorded as overdraft. Returns the
    /// overdraft amount (0 when fully funded).
    pub fn spend(&mut self, tenant: usize, bytes: u64) -> u64 {
        let from_reserved = bytes.min(self.reserved_remaining[tenant]);
        self.reserved_remaining[tenant] -= from_reserved;
        let rest = bytes - from_reserved;
        let from_pool = rest.min(self.pool_remaining);
        self.pool_remaining -= from_pool;
        self.drained += from_reserved + from_pool;
        let short = rest - from_pool;
        self.overdraft += short;
        short
    }

    /// The window's total byte budget.
    pub fn global(&self) -> u64 {
        self.global
    }

    /// Unspent reserved credits per tenant.
    pub fn reserved_remaining(&self) -> &[u64] {
        &self.reserved_remaining
    }

    /// Unspent best-effort pool credits.
    pub fn pool_remaining(&self) -> u64 {
        self.pool_remaining
    }

    /// Credits spent so far this window.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Demand that exceeded the window budget.
    pub fn overdraft(&self) -> u64 {
        self.overdraft
    }

    /// The conservation invariant: unspent + spent credits always equal
    /// the funded budget. Overdraft is demand that was never funded, so
    /// it does not enter the equation.
    pub fn conserves(&self) -> bool {
        self.reserved_remaining.iter().sum::<u64>() + self.pool_remaining + self.drained
            == self.global
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BackendWindow {
    routed_bytes: u64,
    served_bytes: u64,
    busy_ns: u64,
}

/// The multi-tenant partitioning engine.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    /// Current effective-bandwidth estimate per backend, GB/s.
    effective_gbps: Vec<f64>,
    /// Eq. 4 fractions derived from `effective_gbps`.
    weights: Vec<f64>,
    /// Smooth-deficit state for the byte-weighted router.
    deficit: Vec<f64>,
    per_backend: Vec<BackendWindow>,
    ledger: TenantLedger,
    decisions_in_window: u32,
    window_seq: u32,
    metrics: MetricsRegistry,
    flight: Arc<FlightRecorder>,
    // Metric handles are pre-resolved: `route` is the daemon's hot path
    // and must not pay a name `format!` + registry lookup per decision.
    m_decisions: Counter,
    m_overdraft: Counter,
    m_routed_bytes: Vec<Counter>,
    m_served_bytes: Vec<Counter>,
    m_dark_windows: Vec<Counter>,
    m_tenant_requests: Vec<Counter>,
    m_report_latency: Histogram,
    m_resolves: Counter,
    m_unmeasured: Counter,
    m_all_dark: Counter,
}

impl Engine {
    /// Builds an engine; backends start at their nominal rates.
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        config.validate()?;
        let effective_gbps: Vec<f64> = config.backends.iter().map(|b| b.nominal_gbps).collect();
        let n = config.backends.len();
        let metrics = MetricsRegistry::new();
        for (name, help) in [
            ("dapd_decisions_total", "Route decisions answered."),
            (
                "dapd_overdraft_bytes_total",
                "Demand bytes beyond the window budget (never funded).",
            ),
            (
                "dapd_routed_bytes_total",
                "Bytes routed to each backend by the Eq. 4 router.",
            ),
            (
                "dapd_served_bytes_total",
                "Bytes each backend reported actually serving.",
            ),
            (
                "dapd_dark_windows_total",
                "Windows in which a backend was routed traffic but served zero bytes.",
            ),
            ("dapd_tenant_requests_total", "Route requests per tenant."),
            (
                "dapd_report_latency_ns",
                "Reported busy time per served report, nanoseconds.",
            ),
            ("dapd_resolves_total", "Window re-solves performed."),
            (
                "dapd_unmeasured_windows_total",
                "Windows that carried no served-bytes measurement at all.",
            ),
            (
                "dapd_all_dark_windows_total",
                "Windows in which every backend went dark (nominal fallback used).",
            ),
            ("dapd_window", "Current resolve-window sequence number."),
            ("dapd_budget_bytes", "Current window byte budget."),
            (
                "dapd_weight_ppm",
                "Current Eq. 4 fraction per backend, parts per million.",
            ),
            (
                "dapd_effective_mbps",
                "Measured effective bandwidth per backend, MB/s.",
            ),
            (
                "dapd_k_milli",
                "Degraded K = B_MS$/B_MM ratio, thousandths (two-backend engines).",
            ),
            (
                "dapd_hw_cache_budget",
                "Per-window cache access budget the hardware DAP would run with.",
            ),
            (
                "dapd_hw_mm_budget",
                "Per-window main-memory access budget the hardware DAP would run with.",
            ),
        ] {
            metrics.describe(name, help);
        }
        let per_backend_counter = |family: &str| -> Vec<Counter> {
            config
                .backends
                .iter()
                .map(|b| metrics.counter(&labeled(family, &[("backend", &b.name)])))
                .collect()
        };
        let m_decisions = metrics.counter("dapd_decisions_total");
        let m_overdraft = metrics.counter("dapd_overdraft_bytes_total");
        let m_routed_bytes = per_backend_counter("dapd_routed_bytes_total");
        let m_served_bytes = per_backend_counter("dapd_served_bytes_total");
        let m_dark_windows = per_backend_counter("dapd_dark_windows_total");
        let m_tenant_requests = config
            .tenants
            .iter()
            .map(|t| {
                metrics.counter(&labeled(
                    "dapd_tenant_requests_total",
                    &[("tenant", &t.name)],
                ))
            })
            .collect();
        let m_report_latency = metrics.histogram("dapd_report_latency_ns");
        let m_resolves = metrics.counter("dapd_resolves_total");
        let m_unmeasured = metrics.counter("dapd_unmeasured_windows_total");
        let m_all_dark = metrics.counter("dapd_all_dark_windows_total");
        let mut engine = Self {
            effective_gbps,
            weights: vec![0.0; n],
            deficit: vec![0.0; n],
            per_backend: vec![BackendWindow::default(); n],
            ledger: TenantLedger::fund(0, &[]),
            decisions_in_window: 0,
            window_seq: 0,
            metrics,
            flight: FlightRecorder::with_default_capacity(),
            m_decisions,
            m_overdraft,
            m_routed_bytes,
            m_served_bytes,
            m_dark_windows,
            m_tenant_requests,
            m_report_latency,
            m_resolves,
            m_unmeasured,
            m_all_dark,
            config,
        };
        engine.recompute_weights();
        engine.refund_ledger();
        engine.publish_gauges();
        Ok(engine)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current Eq. 4 fractions (one per backend, summing to 1).
    pub fn fractions(&self) -> &[f64] {
        &self.weights
    }

    /// Current effective-bandwidth estimates in GB/s.
    pub fn effective_gbps(&self) -> &[f64] {
        &self.effective_gbps
    }

    /// The current window's ledger (for tests and introspection).
    pub fn ledger(&self) -> &TenantLedger {
        &self.ledger
    }

    /// The resolve-window sequence number.
    pub fn window_seq(&self) -> u32 {
        self.window_seq
    }

    /// Routes `bytes` for `tenant`, advancing window accounting.
    pub fn route(&mut self, tenant: u16, bytes: u32) -> Result<RouteDecision, EngineError> {
        let t = tenant as usize;
        if t >= self.config.tenants.len() {
            return Err(EngineError::UnknownTenant(tenant));
        }
        let short = self.ledger.spend(t, u64::from(bytes));
        if short > 0 {
            self.m_overdraft.add(short);
        }

        // Byte-weighted smooth deficit routing: every backend accrues
        // credit proportional to its Eq. 4 fraction, the most-owed
        // backend serves. Deterministic (ties break to the lowest
        // index), and over any run of requests each backend's byte share
        // converges to its weight.
        let b = f64::from(bytes.max(1));
        for (d, w) in self.deficit.iter_mut().zip(&self.weights) {
            *d += w * b;
        }
        let mut chosen = 0usize;
        let mut best = f64::NEG_INFINITY;
        for (i, (&d, &w)) in self.deficit.iter().zip(&self.weights).enumerate() {
            if w > 0.0 && d > best {
                best = d;
                chosen = i;
            }
        }
        self.deficit[chosen] -= b;

        self.per_backend[chosen].routed_bytes += u64::from(bytes);
        self.m_routed_bytes[chosen].add(u64::from(bytes));
        self.m_decisions.incr();
        self.m_tenant_requests[t].incr();

        let decision = RouteDecision {
            backend: chosen,
            window: self.window_seq,
        };
        self.decisions_in_window += 1;
        if self.decisions_in_window >= self.config.resolve_every {
            self.resolve();
        }
        Ok(decision)
    }

    /// Records that backend `source` delivered `bytes` in `latency_ns`
    /// nanoseconds of busy time; feeds the next re-solve.
    ///
    /// Nanosecond granularity matters: at 100 GB/s-class backends a
    /// whole 64-decision window of cache blocks is well under a
    /// microsecond of busy time, so any coarser unit would quantize the
    /// measurement to zero. Clients integrate fractional nanoseconds
    /// themselves and report whole ones (see `dapctl loadgen`).
    pub fn report_served(
        &mut self,
        source: u8,
        bytes: u32,
        latency_ns: u32,
    ) -> Result<(), EngineError> {
        let s = source as usize;
        if s >= self.config.backends.len() {
            return Err(EngineError::UnknownBackend(source));
        }
        self.per_backend[s].served_bytes += u64::from(bytes);
        self.per_backend[s].busy_ns += u64::from(latency_ns);
        self.m_served_bytes[s].add(u64::from(bytes));
        self.m_report_latency.record(u64::from(latency_ns));
        Ok(())
    }

    /// Forces a window boundary now (also runs automatically every
    /// `resolve_every` decisions).
    pub fn resolve(&mut self) {
        // A window in which *nothing* was served carries no measurement
        // at all (the report stream is absent, not the backends): keep
        // every estimate. Dark-marking below only applies when the window
        // did measure traffic somewhere, so "routed but served nothing"
        // is evidence against that one backend specifically.
        let any_served = self.per_backend.iter().any(|w| w.served_bytes > 0);
        if !any_served {
            self.m_unmeasured.incr();
        }
        for (i, w) in self.per_backend.iter().enumerate() {
            if !any_served {
                break;
            }
            if w.served_bytes > 0 {
                // Measured delivered rate: one byte per nanosecond is
                // exactly 1 GB/s, so GB/s = bytes / busy_ns. A window
                // whose whole busy time truncates to zero carries no
                // usable rate — cap at nominal rather than divide by
                // zero.
                let nominal = self.config.backends[i].nominal_gbps;
                let gbps = if w.busy_ns == 0 {
                    nominal
                } else {
                    (w.served_bytes as f64 / w.busy_ns as f64).min(nominal)
                };
                self.effective_gbps[i] = gbps;
            } else if w.routed_bytes > 0 {
                // We sent it traffic and it delivered nothing: dark.
                self.effective_gbps[i] = 0.0;
                self.m_dark_windows[i].incr();
            }
            // No traffic routed and nothing served: keep the previous
            // estimate. Absence of evidence is not darkness.
        }
        self.recompute_weights();
        self.refund_ledger();
        self.per_backend.fill(BackendWindow::default());
        self.decisions_in_window = 0;
        self.window_seq = self.window_seq.wrapping_add(1);
        self.m_resolves.incr();
        self.publish_gauges();
        // Flight-record the re-solve: inputs (measured MB/s of the first
        // two backends) and outputs (first fraction in ppm, window
        // budget, K·1000 for two-backend engines; -1 where undefined).
        // This is the only flight hook on the engine path — one ring
        // write per `resolve_every` decisions, nothing per route.
        let mbps = |i: usize| {
            self.effective_gbps
                .get(i)
                .map_or(-1, |&g| (g * 1000.0) as i64)
        };
        let k_milli = if let [cache, mm] = self.effective_gbps[..] {
            (degraded_k(cache, mm).as_f64() * 1000.0) as i64
        } else {
            -1
        };
        self.flight.record(
            FlightKind::Resolve,
            if any_served { "measured" } else { "unmeasured" },
            [
                i64::from(self.window_seq),
                mbps(0),
                mbps(1),
                (self.weights[0] * 1e6) as i64,
                self.ledger.global().min(i64::MAX as u64) as i64,
                k_milli,
            ],
        );
    }

    /// Renders the current metrics as Prometheus exposition text.
    pub fn stats_text(&self) -> String {
        render_exposition(&self.metrics.snapshot())
    }

    /// Resolves (creating if absent) a named counter in the engine's
    /// metrics registry. The server layer uses this to count shed
    /// connections and per-cause rejects (`dapd_shed_total`,
    /// `dapd_rejected_total{cause="..."}`) in the same exposition the
    /// routing metrics live in, so one `SnapshotStats` shows the whole
    /// picture.
    pub fn counter(&self, name: &str) -> Counter {
        self.metrics.counter(name)
    }

    /// Resolves (creating if absent) a named histogram in the engine's
    /// metrics registry (the server layer's decision-latency histogram
    /// lives here for the same single-exposition reason as
    /// [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.metrics.histogram(name)
    }

    /// Registers `# HELP` text for a metric family in the engine's
    /// registry (see [`dap_telemetry::MetricsRegistry::describe`]).
    pub fn describe(&self, name: &str, help: &str) {
        self.metrics.describe(name, help);
    }

    /// The engine's flight recorder: the last N re-solves (recorded
    /// here) plus whatever the server layer adds (rejects, sheds).
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// A JSON operator snapshot for `GET /varz`: per-backend measured
    /// bandwidth and current Eq. 4 fraction next to the nominal ideal,
    /// per-tenant ledger balances, window/budget state, every counter,
    /// and p99 latencies. Not a hot path — it snapshots the registry.
    pub fn varz_json(&self) -> Json {
        let snapshot = self.metrics.snapshot();
        let nominal_total: f64 = self.config.backends.iter().map(|b| b.nominal_gbps).sum();
        let backends: Vec<Json> = self
            .config
            .backends
            .iter()
            .enumerate()
            .map(|(i, b)| {
                obj([
                    ("name", Json::Str(b.name.clone())),
                    ("nominal_gbps", Json::Num(b.nominal_gbps)),
                    ("effective_gbps", Json::Num(self.effective_gbps[i])),
                    ("fraction", Json::Num(self.weights[i])),
                    // Eq. 4 over datasheet rates: where the solved
                    // fraction would sit with nothing degraded.
                    ("ideal_fraction", Json::Num(b.nominal_gbps / nominal_total)),
                ])
            })
            .collect();
        let tenants: Vec<Json> = self
            .config
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (class, gbps) = match t.class {
                    TenantClass::Reserved { gbps } => ("reserved", gbps),
                    TenantClass::BestEffort => ("besteffort", 0.0),
                };
                obj([
                    ("name", Json::Str(t.name.clone())),
                    ("class", Json::Str(class.to_string())),
                    ("reserved_gbps", Json::Num(gbps)),
                    (
                        "reserved_remaining_bytes",
                        Json::Num(self.ledger.reserved_remaining()[i] as f64),
                    ),
                ])
            })
            .collect();
        let counters = Json::Obj(
            snapshot
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                .collect(),
        );
        let p99 = |name: &str| {
            snapshot
                .histograms
                .get(name)
                .and_then(|h| h.quantile(0.99))
                .map_or(Json::Null, |v| Json::Num(v as f64))
        };
        obj([
            ("service", Json::Str("dapd".to_string())),
            ("window", Json::Num(f64::from(self.window_seq))),
            (
                "resolve_every",
                Json::Num(f64::from(self.config.resolve_every)),
            ),
            ("budget_bytes", Json::Num(self.ledger.global() as f64)),
            ("backends", Json::Arr(backends)),
            ("tenants", Json::Arr(tenants)),
            (
                "ledger",
                obj([
                    ("global", Json::Num(self.ledger.global() as f64)),
                    (
                        "pool_remaining",
                        Json::Num(self.ledger.pool_remaining() as f64),
                    ),
                    ("drained", Json::Num(self.ledger.drained() as f64)),
                    ("overdraft", Json::Num(self.ledger.overdraft() as f64)),
                    ("conserves", Json::Bool(self.ledger.conserves())),
                ]),
            ),
            ("counters", counters),
            ("p99_report_latency_ns", p99("dapd_report_latency_ns")),
            ("p99_decision_ns", p99("dapd_decision_ns")),
            (
                "flight",
                obj([
                    ("total", Json::Num(self.flight.total() as f64)),
                    ("dropped", Json::Num(self.flight.dropped() as f64)),
                ]),
            ),
        ])
    }

    fn recompute_weights(&mut self) {
        let total: f64 = self.effective_gbps.iter().sum();
        if total > 0.0 {
            // Eq. 4: f_i = B_i / ΣB over *measured* rates.
            for (w, &g) in self.weights.iter_mut().zip(&self.effective_gbps) {
                *w = g / total;
            }
        } else {
            // Every backend dark: fall back to nominal proportions so
            // routing stays defined (the operator's least-bad guess).
            self.m_all_dark.incr();
            let nom: f64 = self.config.backends.iter().map(|b| b.nominal_gbps).sum();
            for (w, b) in self.weights.iter_mut().zip(&self.config.backends) {
                *w = b.nominal_gbps / nom;
            }
        }
        // Weight changes invalidate accumulated deficits (a dark backend
        // must not inherit a large positive deficit from its past).
        self.deficit.fill(0.0);
    }

    fn budget_bytes(&self, gbps: f64) -> u64 {
        if gbps <= 0.0 {
            return 0;
        }
        (gbps * self.config.efficiency * BYTES_PER_GBPS as f64) as u64
    }

    fn refund_ledger(&mut self) {
        let global: u64 = self
            .effective_gbps
            .iter()
            .map(|&g| self.budget_bytes(g))
            .sum();
        let reserved: Vec<u64> = self
            .config
            .tenants
            .iter()
            .map(|t| match t.class {
                TenantClass::Reserved { gbps } => self.budget_bytes(gbps),
                TenantClass::BestEffort => 0,
            })
            .collect();
        self.ledger = TenantLedger::fund(global, &reserved);
        debug_assert!(self.ledger.conserves());
    }

    fn publish_gauges(&self) {
        self.metrics
            .gauge("dapd_window")
            .set(i64::from(self.window_seq));
        self.metrics
            .gauge("dapd_budget_bytes")
            .set(self.ledger.global().min(i64::MAX as u64) as i64);
        for (i, b) in self.config.backends.iter().enumerate() {
            self.metrics
                .gauge(&labeled("dapd_weight_ppm", &[("backend", &b.name)]))
                .set((self.weights[i] * 1e6) as i64);
            self.metrics
                .gauge(&labeled("dapd_effective_mbps", &[("backend", &b.name)]))
                .set((self.effective_gbps[i] * 1000.0) as i64);
        }
        // For the paper's two-source shape, also publish the degraded
        // K = B_MS$/B_MM ratio and the per-window access budgets the
        // hardware algorithm would run with, via dap-decide's seam.
        if let [cache, mm] = self.effective_gbps[..] {
            let k = degraded_k(cache, mm);
            self.metrics
                .gauge("dapd_k_milli")
                .set((k.as_f64() * 1000.0) as i64);
            let config = DapConfig {
                cache_gbps: self.config.backends[0].nominal_gbps,
                mm_gbps: self.config.backends[1].nominal_gbps,
                efficiency: self.config.efficiency,
                ..DapConfig::hbm_ddr4()
            };
            let budget = EffectiveBandwidth {
                cache_gbps: cache,
                split_channel_gbps: None,
                mm_gbps: mm,
            }
            .budget(&config);
            self.metrics
                .gauge("dapd_hw_cache_budget")
                .set(i64::from(budget.cache_budget));
            self.metrics
                .gauge("dapd_hw_mm_budget")
                .set(i64::from(budget.mm_budget));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap()
    }

    fn routed_split(e: &mut Engine, requests: u32, bytes: u32) -> Vec<u64> {
        let mut out = vec![0u64; e.config().backends.len()];
        for i in 0..requests {
            let d = e.route((i % 2) as u16, bytes).unwrap();
            out[d.backend] += u64::from(bytes);
        }
        out
    }

    #[test]
    fn routing_tracks_eq4_fractions() {
        let mut e = engine();
        let split = routed_split(&mut e, 10_000, 4096);
        let total: u64 = split.iter().sum();
        let f0 = split[0] as f64 / total as f64;
        // Eq. 4 for 102.4 + 38.4: f_hbm = 102.4/140.8 ≈ 0.727.
        assert!((f0 - 102.4 / 140.8).abs() < 0.01, "hbm fraction {f0}");
    }

    #[test]
    fn measured_throttle_shifts_routing() {
        let mut e = engine();
        // Backend 0 measurably throttles to 38.4 GB/s: equal split.
        e.report_served(0, 38_400, 1000).unwrap(); // 38.4 GB/s
        e.report_served(1, 38_400, 1000).unwrap();
        e.resolve();
        assert!((e.fractions()[0] - 0.5).abs() < 1e-9);
        let split = routed_split(&mut e, 10_000, 4096);
        let f0 = split[0] as f64 / (split[0] + split[1]) as f64;
        assert!((f0 - 0.5).abs() < 0.01, "post-throttle hbm fraction {f0}");
    }

    #[test]
    fn dark_backend_gets_exactly_zero_traffic() {
        let mut e = engine();
        // Window with traffic routed to both but only ddr4 serving.
        routed_split(&mut e, 64, 4096); // triggers a resolve... but no reports
        e.report_served(1, 38_400, 1000).unwrap();
        routed_split(&mut e, 64, 4096); // resolve sees hbm routed, served 0
        assert_eq!(e.fractions()[0], 0.0, "dark backend fraction");
        let split = routed_split(&mut e, 1000, 4096);
        assert_eq!(split[0], 0, "dark backend must receive no bytes");
        assert!(split[1] > 0);
    }

    #[test]
    fn dark_backend_revives_on_served_report() {
        let mut e = engine();
        e.report_served(1, 38_400, 1000).unwrap();
        routed_split(&mut e, 128, 4096);
        assert_eq!(e.fractions()[0], 0.0);
        // It comes back at half nominal.
        e.report_served(0, 51_200, 1000).unwrap(); // 51.2 GB/s
        e.resolve();
        assert!(
            e.fractions()[0] > 0.5,
            "revived fraction {}",
            e.fractions()[0]
        );
        let split = routed_split(&mut e, 1000, 4096);
        assert!(split[0] > split[1]);
    }

    #[test]
    fn unmeasured_windows_retain_estimates() {
        let mut e = engine();
        routed_split(&mut e, 64, 4096); // routed, nobody reports serving
        assert!((e.fractions()[0] - 102.4 / 140.8).abs() < 1e-9);
        let split = routed_split(&mut e, 1000, 4096);
        assert!(split[0] > 0 && split[1] > 0, "routing stays defined");
        assert!(e.stats_text().contains("dapd_unmeasured_windows"));
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut e = engine();
        assert_eq!(e.route(99, 64), Err(EngineError::UnknownTenant(99)));
        assert_eq!(
            e.report_served(9, 64, 1),
            Err(EngineError::UnknownBackend(9))
        );
    }

    #[test]
    fn ledger_funds_reserved_before_pool() {
        let l = TenantLedger::fund(100, &[30, 0]);
        assert_eq!(l.reserved_remaining(), &[30, 0]);
        assert_eq!(l.pool_remaining(), 70);
        assert!(l.conserves());
    }

    #[test]
    fn ledger_clips_oversubscribed_reservations() {
        let l = TenantLedger::fund(50, &[40, 40]);
        assert_eq!(l.reserved_remaining(), &[40, 10]);
        assert_eq!(l.pool_remaining(), 0);
        assert!(l.conserves());
    }

    #[test]
    fn ledger_spend_order_reserved_then_pool_then_overdraft() {
        let mut l = TenantLedger::fund(100, &[30, 0]);
        assert_eq!(l.spend(0, 50), 0); // 30 reserved + 20 pool
        assert_eq!(l.reserved_remaining()[0], 0);
        assert_eq!(l.pool_remaining(), 50);
        assert_eq!(l.spend(1, 60), 10); // 50 pool + 10 overdraft
        assert_eq!(l.pool_remaining(), 0);
        assert_eq!(l.overdraft(), 10);
        assert_eq!(l.drained(), 100);
        assert!(l.conserves());
    }

    #[test]
    fn stats_text_is_prometheus_exposition() {
        let mut e = engine();
        routed_split(&mut e, 10, 64);
        let text = e.stats_text();
        assert!(text.contains("dapd_decisions_total 10"), "{text}");
        assert!(text.contains("# TYPE dapd_decisions_total counter"));
        assert!(text.contains("# HELP dapd_decisions_total "), "{text}");
        assert!(text.contains("dapd_weight_ppm{backend=\"hbm\"}"), "{text}");
        assert!(
            text.contains("dapd_routed_bytes_total{backend=\"hbm\"}"),
            "{text}"
        );
        dap_telemetry::check_exposition(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    }

    #[test]
    fn varz_reports_fractions_ledger_and_counters() {
        let mut e = engine();
        routed_split(&mut e, 130, 4096); // two full resolves and change
        let varz = e.varz_json();
        assert_eq!(
            varz.get("service").and_then(Json::as_str),
            Some("dapd"),
            "{varz:?}"
        );
        let backends = varz.get("backends").and_then(Json::as_arr).unwrap();
        assert_eq!(backends.len(), 2);
        let hbm = &backends[0];
        assert_eq!(hbm.get("name").and_then(Json::as_str), Some("hbm"));
        let ideal = hbm.get("ideal_fraction").and_then(Json::as_f64).unwrap();
        assert!((ideal - 102.4 / 140.8).abs() < 1e-9);
        let ledger = varz.get("ledger").unwrap();
        assert_eq!(ledger.get("conserves").and_then(Json::as_bool), Some(true));
        assert_eq!(
            varz.get("counters")
                .and_then(|c| c.get("dapd_decisions_total"))
                .and_then(Json::as_u64),
            Some(if dap_telemetry::enabled() { 130 } else { 0 })
        );
        // The snapshot round-trips through the in-tree JSON parser.
        dap_telemetry::json::parse(&varz.to_string_compact()).unwrap();
    }

    #[test]
    fn resolve_flight_records_inputs_and_outputs() {
        let mut e = engine();
        if !dap_telemetry::enabled() {
            e.resolve();
            assert_eq!(e.flight().total(), 0);
            return;
        }
        e.report_served(0, 38_400, 1000).unwrap();
        e.report_served(1, 38_400, 1000).unwrap();
        e.resolve();
        let events = e.flight().snapshot();
        let last = events.last().expect("resolve recorded");
        assert_eq!(last.kind, dap_telemetry::FlightKind::Resolve);
        assert_eq!(last.cause, "measured");
        // vals: [window, mbps0, mbps1, weight_ppm0, budget, k_milli]
        assert_eq!(last.vals[0], i64::from(e.window_seq()));
        assert_eq!(last.vals[1], 38_400); // 38.4 GB/s in MB/s
        assert_eq!(last.vals[3], 500_000); // equal split, ppm
        assert_eq!(last.vals[5], 1000); // K = 1.0 at equal rates
    }

    #[test]
    fn two_backend_engines_publish_hw_budgets() {
        let e = engine();
        let text = e.stats_text();
        // Nominal 102.4/38.4 at E=0.75, W=64 → the paper's 19/7 budgets.
        assert!(text.contains("dapd_hw_cache_budget 19"), "{text}");
        assert!(text.contains("dapd_hw_mm_budget 7"), "{text}");
        assert!(text.contains("dapd_k_milli 2750"), "{text}");
    }
}
