//! # dapd — DAP as a service
//!
//! A multi-tenant bandwidth-partitioning daemon built on the pure
//! [`dap_decide`] decision library. Where `dap-core`'s `DapController`
//! embeds the HPCA 2017 window algorithm inside a cycle-accurate memory
//! simulator, `dapd` serves the same Eq. 4 arithmetic over a socket:
//! clients ask "which backend should serve these bytes?" and report what
//! each backend actually delivered, and the daemon re-solves the
//! bandwidth-proportional partition (`f_i = B_i / ΣB`) from the *measured*
//! rates at every window boundary.
//!
//! The three layers:
//!
//! * [`wire`] — the length-prefixed binary protocol (`GetRoute`,
//!   `ReportServed`, `SnapshotStats`, `Shutdown` and their responses),
//!   with typed decode errors.
//! * [`engine`] — the decision engine: per-backend measured-bandwidth
//!   accounting, a deterministic byte-weighted deficit router chasing the
//!   Eq. 4 optimum, and a Memshare-style tenant ledger (reserved shares +
//!   best-effort pool) with an exact credit-conservation invariant.
//! * [`server`] — a std-only, thread-per-connection TCP/Unix-socket
//!   server plus the matching blocking [`client::Client`], and a
//!   Prometheus-text stats dump via `dap-telemetry`.
//!
//! The serving path is hardened for overload and partial failure: the
//! server runs every connection under a [`server::ServerConfig`]
//! (read/write deadlines, a hard connection cap with
//! `Reject(Overloaded)` load shedding, per-connection frame/byte
//! budgets), and the client takes a [`client::RetryPolicy`] for
//! jittered-exponential-backoff retries with idempotency-aware
//! semantics. Shed and reject events are counted in the same Prometheus
//! exposition as the routing metrics (`dapd_shed_total`,
//! `dapd_rejected_total{cause=...}`).
//!
//! The live ops plane rides on `dap-telemetry`: [`server::OpsView`] +
//! [`server::ops_router`] mount `/metrics`, `/healthz`, `/varz`, and
//! `/debug/flight` on an [`OpsServer`](dap_telemetry::http::OpsServer),
//! and the engine feeds a crash-safe
//! [`FlightRecorder`](dap_telemetry::FlightRecorder) that dumps the last
//! N decisions on panic, `SIGUSR1`, or a reject-rate spike.
//!
//! Everything is hermetic: no async runtime, no registry dependencies —
//! just `std::net`, `std::os::unix::net`, and the workspace crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod server;
pub mod wire;

pub use client::{Client, RetryPolicy};
pub use engine::{
    BackendSpec, Engine, EngineConfig, RouteDecision, TenantClass, TenantLedger, TenantSpec,
};
pub use server::{ops_router, OpsView, Server, ServerConfig, ServerHandle};
pub use wire::{Message, RejectCode, WireError, MAX_PAYLOAD};
