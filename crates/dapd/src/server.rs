//! The daemon: a std-only, thread-per-connection socket server,
//! hardened for overload and partial failure.
//!
//! Listens on a TCP address or a Unix-domain socket, speaks the
//! [`crate::wire`] protocol, and multiplexes all connections onto one
//! shared [`Engine`] behind a mutex (decisions are microseconds; the
//! lock, not the solver, is the ceiling — and the bench harness measures
//! exactly that ceiling honestly).
//!
//! ## Overload hardening
//!
//! Every connection runs under a [`ServerConfig`]:
//!
//! * **Read/write deadlines** — a peer that stalls mid-frame (or simply
//!   goes idle) is disconnected after `read_deadline`, so a slow-loris
//!   client can never pin a worker thread. Counted in
//!   `dapd_rejected_total{cause="deadline"}`.
//! * **Connection cap with deterministic load shedding** — beyond
//!   `max_connections` live workers, new connections are accepted, sent
//!   one [`Message::Reject`] with [`RejectCode::Overloaded`], and closed.
//!   Nothing queues unboundedly. Counted in `dapd_shed_total` and
//!   `dapd_rejected_total{cause="overloaded"}`.
//! * **Per-connection frame/byte budgets** — a connection that exceeds
//!   `max_frames_per_conn` or `max_bytes_per_conn` is told `Overloaded`
//!   and closed (`dapd_rejected_total{cause="frame_budget"}` /
//!   `{cause="byte_budget"}`), so a garbage-spewing or runaway
//!   client costs a bounded amount of work.
//! * **Garbage isolation** — undecodable bytes close only the offending
//!   connection (`dapd_rejected_total{cause="garbage"}`); the wire
//!   layer's [`crate::wire::SHUTDOWN_TOKEN`] guarantees garbage can
//!   never spoof a shutdown order.
//!
//! ## Observability
//!
//! Every shed and reject is also recorded in the engine's
//! [`FlightRecorder`] with its cause, and `GetRoute` handling is timed
//! into the `dapd_decision_ns` histogram (server path only — the
//! in-process bench drives [`Engine`] directly and stays uninstrumented).
//! If [`ServerConfig::flight_dump_path`] is set, the accept loop watches
//! the reject rate once per second and dumps the flight ring when it
//! spikes past [`ServerConfig::reject_spike_per_sec`], so the window
//! around an incident is preserved even if nobody was scraping.
//! [`ServerHandle::ops_view`] exposes the `/metrics`, `/healthz`,
//! `/varz`, and `/debug/flight` endpoints for an
//! [`OpsServer`](dap_telemetry::http::OpsServer) via [`ops_router`].
//!
//! Finished worker handles are pruned in the accept loop (the live count
//! is what the connection cap is checked against), so the worker table
//! stays bounded for the life of the server.
//!
//! Shutdown is cooperative: any client may send [`Message::Shutdown`];
//! the acceptor notices within one poll interval (10 ms), stops
//! accepting, and [`ServerHandle::join`] returns once the acceptor
//! thread exits. Draining workers answer in-flight requests with
//! `Reject(ShuttingDown)` and close; because every worker wakes at least
//! once per `read_deadline`, the join is bounded even with silent peers.

use crate::engine::{Engine, EngineError};
use crate::wire::{read_frame_counted, write_frame, Message, RejectCode};
use dap_telemetry::http::OpsResponse;
use dap_telemetry::{labeled, Counter, FlightKind, FlightRecorder, Histogram};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Overload and deadline knobs for a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// How long a worker waits for the next byte before dropping the
    /// connection. Doubles as the idle timeout: a healthy client either
    /// pipelines its next request within this window or reconnects.
    pub read_deadline: Duration,
    /// How long a worker may block writing a reply (or a shed reject)
    /// before the connection is dropped.
    pub write_deadline: Duration,
    /// Hard cap on concurrently served connections. Beyond it, new
    /// connections are shed: accepted, told `Reject(Overloaded)`, closed.
    pub max_connections: usize,
    /// Frames one connection may send before being shed.
    pub max_frames_per_conn: u64,
    /// Wire bytes (headers + payloads) one connection may send before
    /// being shed.
    pub max_bytes_per_conn: u64,
    /// Where to dump the flight ring when the reject rate spikes.
    /// `None` disables spike dumps (the ring is still reachable via
    /// `/debug/flight` and `SIGUSR1`).
    pub flight_dump_path: Option<PathBuf>,
    /// Reject-rate threshold (rejects observed within one second) that
    /// triggers a flight dump to [`flight_dump_path`]. Zero disables
    /// the watcher.
    ///
    /// [`flight_dump_path`]: Self::flight_dump_path
    pub reject_spike_per_sec: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_deadline: Duration::from_secs(5),
            write_deadline: Duration::from_secs(5),
            max_connections: 64,
            max_frames_per_conn: 1 << 24,
            max_bytes_per_conn: 1 << 32,
            flight_dump_path: None,
            reject_spike_per_sec: 50,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> io::Result<()> {
        if self.read_deadline.is_zero() || self.write_deadline.is_zero() {
            // A zero socket timeout means "no timeout" to the OS — the
            // opposite of what a caller asking for a zero deadline wants.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server deadlines must be non-zero",
            ));
        }
        if self.max_connections == 0
            || self.max_frames_per_conn == 0
            || self.max_bytes_per_conn == 0
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server caps and budgets must be non-zero",
            ));
        }
        Ok(())
    }
}

/// Counter/histogram/flight handles for the shed/reject bookkeeping,
/// resolved once at spawn (they live in the engine's registry so
/// `SnapshotStats` shows them) and cloned into every worker.
#[derive(Clone)]
struct ServerMetrics {
    shed: Counter,
    rejected_overloaded: Counter,
    rejected_deadline: Counter,
    rejected_garbage: Counter,
    rejected_frame_budget: Counter,
    rejected_byte_budget: Counter,
    rejected_unknown_id: Counter,
    decision_ns: Histogram,
    flight: Arc<FlightRecorder>,
}

impl ServerMetrics {
    fn new(engine: &Engine) -> Self {
        engine.describe("dapd_shed_total", "Connections shed at the admission cap.");
        engine.describe(
            "dapd_rejected_total",
            "Requests/connections rejected at a fault boundary, by cause.",
        );
        engine.describe(
            "dapd_decision_ns",
            "GetRoute handling latency on the server path, nanoseconds.",
        );
        let cause = |c: &str| -> Counter {
            engine.counter(&labeled("dapd_rejected_total", &[("cause", c)]))
        };
        Self {
            shed: engine.counter("dapd_shed_total"),
            rejected_overloaded: cause("overloaded"),
            rejected_deadline: cause("deadline"),
            rejected_garbage: cause("garbage"),
            rejected_frame_budget: cause("frame_budget"),
            rejected_byte_budget: cause("byte_budget"),
            rejected_unknown_id: cause("unknown_id"),
            decision_ns: engine.histogram("dapd_decision_ns"),
            flight: Arc::clone(engine.flight()),
        }
    }

    /// One reject: bump the cause counter and flight-record it.
    fn reject(&self, counter: &Counter, cause: &'static str, frames: u64, bytes: u64) {
        counter.incr();
        self.flight.record(
            FlightKind::Reject,
            cause,
            [frames as i64, bytes as i64, 0, 0, 0, 0],
        );
    }

    /// Total rejects across all causes (for the spike watcher).
    fn rejects_total(&self) -> u64 {
        self.rejected_overloaded.value()
            + self.rejected_deadline.value()
            + self.rejected_garbage.value()
            + self.rejected_frame_budget.value()
            + self.rejected_byte_budget.value()
            + self.rejected_unknown_id.value()
    }
}

/// Socket-type-independent view of one accepted connection: blocking
/// I/O plus OS-level read/write deadlines.
trait Conn: io::Read + io::Write + Send + 'static {
    fn set_deadlines(&self, read: Duration, write: Duration) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_deadlines(&self, read: Duration, write: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(read))?;
        self.set_write_timeout(Some(write))
    }
}

impl Conn for UnixStream {
    fn set_deadlines(&self, read: Duration, write: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(read))?;
        self.set_write_timeout(Some(write))
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: Listener,
    engine: Arc<Mutex<Engine>>,
    config: ServerConfig,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// Handle to a running daemon.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    acceptor: thread::JoinHandle<io::Result<()>>,
    engine: Arc<Mutex<Engine>>,
    /// Unix socket path to unlink on join, if any.
    unlink: Option<PathBuf>,
}

impl Server {
    /// Binds a TCP listener. `addr` may use port 0 to let the OS pick;
    /// [`Server::local_addr`] reports the result.
    pub fn bind_tcp(addr: &str, engine: Engine) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener: Listener::Tcp(listener),
            engine: Arc::new(Mutex::new(engine)),
            config: ServerConfig::default(),
        })
    }

    /// Binds a Unix-domain socket.
    ///
    /// If a socket file already exists at `path`, it is probed first: a
    /// connection attempt that is *refused* means the file is stale — a
    /// crashed daemon never unlinks — so it is removed and the path
    /// rebound. A probe that connects means a live daemon owns the path,
    /// and binding fails with [`io::ErrorKind::AddrInUse`] instead of
    /// yanking the socket out from under it.
    pub fn bind_unix(path: &Path, engine: Engine) -> io::Result<Self> {
        let listener = match UnixListener::bind(path) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => match UnixStream::connect(path) {
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("{}: another daemon is listening", path.display()),
                    ));
                }
                Err(probe)
                    if probe.kind() == io::ErrorKind::ConnectionRefused
                        || probe.kind() == io::ErrorKind::NotFound =>
                {
                    // Stale socket file from a crashed daemon (or it
                    // vanished between bind and probe): reclaim the path.
                    let _ = std::fs::remove_file(path);
                    UnixListener::bind(path)?
                }
                Err(probe) => return Err(probe),
            },
            Err(e) => return Err(e),
        };
        Ok(Self {
            listener: Listener::Unix(listener, path.to_path_buf()),
            engine: Arc::new(Mutex::new(engine)),
            config: ServerConfig::default(),
        })
    }

    /// Replaces the default overload/deadline configuration.
    pub fn with_config(mut self, config: ServerConfig) -> io::Result<Self> {
        config.validate()?;
        self.config = config;
        Ok(self)
    }

    /// The active overload/deadline configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The bound TCP address (None for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(..) => None,
        }
    }

    /// Starts the accept loop on a background thread.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let stop = Arc::new(AtomicBool::new(false));
        let engine = Arc::clone(&self.engine);
        let metrics = ServerMetrics::new(&engine.lock().unwrap());
        let unlink = match &self.listener {
            Listener::Unix(_, path) => Some(path.clone()),
            Listener::Tcp(_) => None,
        };
        let acceptor = {
            let stop = Arc::clone(&stop);
            let engine = Arc::clone(&self.engine);
            let config = self.config;
            match self.listener {
                Listener::Tcp(l) => {
                    l.set_nonblocking(true)?;
                    thread::spawn(move || accept_loop(l, stop, engine, config, metrics, accept_tcp))
                }
                Listener::Unix(l, _) => {
                    l.set_nonblocking(true)?;
                    thread::spawn(move || {
                        accept_loop(l, stop, engine, config, metrics, accept_unix)
                    })
                }
            }
        };
        Ok(ServerHandle {
            stop,
            acceptor,
            engine,
            unlink,
        })
    }
}

fn accept_tcp(l: &TcpListener) -> io::Result<TcpStream> {
    l.accept().map(|(s, _)| s)
}

fn accept_unix(l: &UnixListener) -> io::Result<UnixStream> {
    l.accept().map(|(s, _)| s)
}

/// Sheds one over-cap connection: best-effort `Reject(Overloaded)`, then
/// close (by drop). The write deadline bounds how long a non-reading
/// peer can hold the acceptor.
fn shed<S: Conn>(mut stream: S, config: &ServerConfig, metrics: &ServerMetrics) {
    metrics.shed.incr();
    metrics.reject(&metrics.rejected_overloaded, "overloaded", 0, 0);
    metrics
        .flight
        .record(FlightKind::Shed, "overloaded", [0; 6]);
    let _ = stream.set_deadlines(config.read_deadline, config.write_deadline);
    let _ = write_frame(&mut stream, &Message::Reject(RejectCode::Overloaded));
}

/// Once-per-second reject-rate watcher: when the last second's rejects
/// exceed the configured threshold, the flight ring is dumped so the
/// decisions *around* the incident survive even if nobody is scraping.
struct SpikeWatcher {
    window_start: Instant,
    base_rejects: u64,
}

impl SpikeWatcher {
    fn new(metrics: &ServerMetrics) -> Self {
        Self {
            window_start: Instant::now(),
            base_rejects: metrics.rejects_total(),
        }
    }

    fn tick(&mut self, config: &ServerConfig, metrics: &ServerMetrics) {
        let Some(path) = &config.flight_dump_path else {
            return;
        };
        if config.reject_spike_per_sec == 0 || self.window_start.elapsed() < Duration::from_secs(1)
        {
            return;
        }
        let now_total = metrics.rejects_total();
        if now_total - self.base_rejects >= config.reject_spike_per_sec {
            if let Err(e) = metrics.flight.dump_to(path, "dapd") {
                eprintln!(
                    "dapd: reject-spike flight dump to {} failed: {e}",
                    path.display()
                );
            } else {
                eprintln!(
                    "dapd: reject-rate spike ({} in 1s >= {}); flight dumped to {}",
                    now_total - self.base_rejects,
                    config.reject_spike_per_sec,
                    path.display()
                );
            }
        }
        self.window_start = Instant::now();
        self.base_rejects = now_total;
    }
}

fn accept_loop<L, S>(
    listener: L,
    stop: Arc<AtomicBool>,
    engine: Arc<Mutex<Engine>>,
    config: ServerConfig,
    metrics: ServerMetrics,
    accept: fn(&L) -> io::Result<S>,
) -> io::Result<()>
where
    L: Send + 'static,
    S: Conn,
{
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut spikes = SpikeWatcher::new(&metrics);
    while !stop.load(Ordering::SeqCst) {
        spikes.tick(&config, &metrics);
        match accept(&listener) {
            Ok(stream) => {
                // Prune finished workers first: the live count is what
                // the cap is checked against, and the table must not
                // grow for the life of the server.
                workers.retain(|w| !w.is_finished());
                if workers.len() >= config.max_connections {
                    shed(stream, &config, &metrics);
                    continue;
                }
                if stream
                    .set_deadlines(config.read_deadline, config.write_deadline)
                    .is_err()
                {
                    // A socket we cannot arm deadlines on could pin a
                    // worker forever; refuse it.
                    continue;
                }
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                let config = config.clone();
                let metrics = metrics.clone();
                workers.push(thread::spawn(move || {
                    let _ = serve_connection(stream, engine, stop, &config, &metrics);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                workers.retain(|w| !w.is_finished());
                thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // Deadlines bound this join: every worker wakes from its blocking
    // read within one read_deadline and exits (drain reject or timeout).
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

fn serve_connection<S: io::Read + io::Write>(
    mut stream: S,
    engine: Arc<Mutex<Engine>>,
    stop: Arc<AtomicBool>,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) -> io::Result<()> {
    let mut frames: u64 = 0;
    let mut bytes: u64 = 0;
    loop {
        let (msg, frame_bytes) = match read_frame_counted(&mut stream) {
            Ok(Some(m)) => m,
            Ok(None) => return Ok(()), // clean EOF
            Err(e) => {
                match e.kind() {
                    // The OS read timeout fired: the peer stalled
                    // mid-frame or idled past the deadline.
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                        metrics.reject(&metrics.rejected_deadline, "deadline", frames, bytes)
                    }
                    // Undecodable bytes: drop this connection only.
                    io::ErrorKind::InvalidData => {
                        metrics.reject(&metrics.rejected_garbage, "garbage", frames, bytes)
                    }
                    _ => {}
                }
                return Err(e);
            }
        };
        frames += 1;
        bytes += frame_bytes as u64;
        if frames > config.max_frames_per_conn {
            metrics.reject(
                &metrics.rejected_frame_budget,
                "frame_budget",
                frames,
                bytes,
            );
            let _ = write_frame(&mut stream, &Message::Reject(RejectCode::Overloaded));
            return Ok(());
        }
        if bytes > config.max_bytes_per_conn {
            metrics.reject(&metrics.rejected_byte_budget, "byte_budget", frames, bytes);
            let _ = write_frame(&mut stream, &Message::Reject(RejectCode::Overloaded));
            return Ok(());
        }
        if stop.load(Ordering::SeqCst) && !matches!(msg, Message::Shutdown) {
            // Draining: answer and close, so shutdown never waits on us.
            let _ = write_frame(&mut stream, &Message::Reject(RejectCode::ShuttingDown));
            return Ok(());
        }
        let reply = match msg {
            Message::GetRoute { tenant, bytes } => {
                // Timed here, not in the engine: the in-process bench
                // drives `Engine::route` directly and must not pay for
                // server-path instrumentation.
                let t0 = Instant::now();
                let routed = engine.lock().unwrap().route(tenant, bytes);
                metrics
                    .decision_ns
                    .record(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                match routed {
                    Ok(d) => Message::Route {
                        source: d.backend as u8,
                        window: d.window,
                    },
                    Err(EngineError::UnknownTenant(_)) => {
                        metrics.reject(
                            &metrics.rejected_unknown_id,
                            "unknown_id",
                            frames,
                            u64::from(bytes),
                        );
                        Message::Reject(RejectCode::UnknownTenant)
                    }
                    Err(_) => {
                        metrics.reject(
                            &metrics.rejected_unknown_id,
                            "unknown_id",
                            frames,
                            u64::from(bytes),
                        );
                        Message::Reject(RejectCode::UnknownBackend)
                    }
                }
            }
            Message::ReportServed {
                source,
                bytes,
                latency_ns,
            } => match engine
                .lock()
                .unwrap()
                .report_served(source, bytes, latency_ns)
            {
                Ok(()) => Message::Ack,
                Err(_) => {
                    metrics.reject(
                        &metrics.rejected_unknown_id,
                        "unknown_id",
                        frames,
                        u64::from(bytes),
                    );
                    Message::Reject(RejectCode::UnknownBackend)
                }
            },
            Message::SnapshotStats => Message::Stats(engine.lock().unwrap().stats_text()),
            Message::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                write_frame(&mut stream, &Message::Ack)?;
                return Ok(());
            }
            // Response types arriving at the server are a protocol
            // violation; drop the connection.
            Message::Route { .. } | Message::Ack | Message::Stats(_) | Message::Reject(_) => {
                metrics.rejected_garbage.incr();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response message sent to server",
                ));
            }
        };
        write_frame(&mut stream, &reply)?;
    }
}

/// A cheap, clonable view of a running daemon for the ops plane: each
/// method takes the engine lock briefly and renders. Detached from the
/// [`ServerHandle`] lifetime so it can move into an
/// [`OpsServer`](dap_telemetry::http::OpsServer) router closure.
#[derive(Clone)]
pub struct OpsView {
    engine: Arc<Mutex<Engine>>,
}

impl OpsView {
    /// The Prometheus exposition (`GET /metrics` body).
    pub fn metrics_text(&self) -> String {
        self.engine.lock().unwrap().stats_text()
    }

    /// The JSON operator snapshot (`GET /varz` body).
    pub fn varz_text(&self) -> String {
        self.engine.lock().unwrap().varz_json().to_string_compact()
    }

    /// The flight-recorder dump (`GET /debug/flight` body). The engine
    /// lock is held only to clone the ring handle, not to render.
    pub fn flight_jsonl(&self) -> String {
        let flight = Arc::clone(self.engine.lock().unwrap().flight());
        flight.dump_jsonl("dapd")
    }

    /// Runs `f` against the shared engine (same contract as
    /// [`ServerHandle::with_engine`]).
    pub fn with_engine<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.engine.lock().unwrap())
    }
}

/// Routes the four ops endpoints — `/metrics`, `/healthz`, `/varz`,
/// `/debug/flight` — onto `view`, for mounting with
/// [`OpsServer::spawn`](dap_telemetry::http::OpsServer::spawn).
pub fn ops_router(view: OpsView) -> dap_telemetry::http::OpsRouter {
    Arc::new(move |path: &str| match path {
        "/metrics" => OpsResponse::ok_text(view.metrics_text()),
        "/healthz" => OpsResponse::ok_text("ok\n".to_string()),
        "/varz" => OpsResponse::ok_json(view.varz_text()),
        "/debug/flight" => OpsResponse::ok_text(view.flight_jsonl()),
        _ => OpsResponse::not_found(),
    })
}

impl ServerHandle {
    /// Asks the daemon to stop without a client round-trip.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// A clonable ops-plane view of the daemon (see [`OpsView`]).
    pub fn ops_view(&self) -> OpsView {
        OpsView {
            engine: Arc::clone(&self.engine),
        }
    }

    /// Whether a shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Renders the engine's current stats (works while running).
    pub fn stats_text(&self) -> String {
        self.engine.lock().unwrap().stats_text()
    }

    /// Runs `f` against the shared engine — introspection for tests and
    /// operators (e.g. checking the [`crate::TenantLedger`] conservation
    /// invariant on a live daemon).
    pub fn with_engine<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.engine.lock().unwrap())
    }

    /// Waits for the acceptor to exit and cleans up the socket file.
    pub fn join(self) -> io::Result<()> {
        let result = self
            .acceptor
            .join()
            .map_err(|_| io::Error::other("acceptor thread panicked"))?;
        if let Some(path) = &self.unlink {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::engine::EngineConfig;
    use crate::wire::read_frame;
    use std::io::{Read, Write};

    fn spawn_tcp() -> (ServerHandle, SocketAddr) {
        let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let server = Server::bind_tcp("127.0.0.1:0", engine).unwrap();
        let addr = server.local_addr().unwrap();
        (server.spawn().unwrap(), addr)
    }

    fn spawn_tcp_with(config: ServerConfig) -> (ServerHandle, SocketAddr) {
        let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let server = Server::bind_tcp("127.0.0.1:0", engine)
            .unwrap()
            .with_config(config)
            .unwrap();
        let addr = server.local_addr().unwrap();
        (server.spawn().unwrap(), addr)
    }

    fn counter_value(stats: &str, name: &str) -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .map(|v| v.trim().parse().unwrap())
            .unwrap_or(0)
    }

    #[test]
    fn tcp_route_report_stats_shutdown() {
        let (handle, addr) = spawn_tcp();
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let d = client.get_route(0, 4096).unwrap();
        assert!(d.backend < 2);
        client.report_served(1, 38_400, 1000).unwrap();
        let stats = client.snapshot_stats().unwrap();
        assert!(stats.contains("dapd_decisions_total 1"), "{stats}");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("dapd-test-{}.sock", std::process::id()));
        let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let handle = Server::bind_unix(&path, engine).unwrap().spawn().unwrap();
        let mut client = Client::connect_unix(&path).unwrap();
        for i in 0..100u32 {
            client.get_route((i % 2) as u16, 4096).unwrap();
        }
        let stats = client.snapshot_stats().unwrap();
        assert!(stats.contains("dapd_decisions_total 100"), "{stats}");
        client.shutdown().unwrap();
        handle.join().unwrap();
        assert!(!path.exists(), "socket file cleaned up");
    }

    #[test]
    fn stale_unix_socket_is_reclaimed() {
        let path = std::env::temp_dir().join(format!("dapd-stale-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // A crashed daemon: the listener is gone but the file remains
        // (dropping a UnixListener does not unlink its socket file).
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists(), "crash leaves a stale socket file");
        let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let handle = Server::bind_unix(&path, engine)
            .expect("stale socket must be reclaimed")
            .spawn()
            .unwrap();
        let mut client = Client::connect_unix(&path).unwrap();
        client.get_route(0, 64).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn live_unix_socket_is_not_stolen() {
        let path = std::env::temp_dir().join(format!("dapd-live-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let handle = Server::bind_unix(&path, engine).unwrap().spawn().unwrap();
        let second = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let err = Server::bind_unix(&path, second).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "{err}");
        // The live daemon kept its socket and still serves.
        let mut client = Client::connect_unix(&path).unwrap();
        client.get_route(0, 64).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn unknown_tenant_gets_typed_reject() {
        let (handle, addr) = spawn_tcp();
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let err = client.get_route(999, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied, "{err}");
        assert!(err.to_string().contains("unknown tenant"), "{err}");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_clients_share_one_engine() {
        let (handle, addr) = spawn_tcp();
        let mut threads = Vec::new();
        for _ in 0..4 {
            let addr = addr.to_string();
            threads.push(thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).unwrap();
                for i in 0..250u32 {
                    client.get_route((i % 2) as u16, 1024).unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let stats = handle.stats_text();
        assert!(stats.contains("dapd_decisions_total 1000"), "{stats}");
        handle.request_stop();
        handle.join().unwrap();
    }

    #[test]
    fn over_cap_connections_are_shed_with_overloaded_reject() {
        let (handle, addr) = spawn_tcp_with(ServerConfig {
            max_connections: 2,
            read_deadline: Duration::from_secs(2),
            write_deadline: Duration::from_secs(2),
            ..ServerConfig::default()
        });
        // Two idle connections pin both worker slots (their deadline is
        // comfortably longer than this test).
        let pin_a = TcpStream::connect(addr).unwrap();
        let pin_b = TcpStream::connect(addr).unwrap();
        // Give the acceptor time to spawn both workers.
        thread::sleep(Duration::from_millis(200));
        // The third connection is shed: one Overloaded reject, then EOF.
        let mut extra = TcpStream::connect(addr).unwrap();
        extra
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        match read_frame(&mut extra) {
            Ok(Some(Message::Reject(RejectCode::Overloaded))) => {}
            other => panic!("expected Overloaded reject, got {other:?}"),
        }
        assert_eq!(read_frame(&mut extra).unwrap(), None, "then closed");
        let stats = handle.stats_text();
        assert!(counter_value(&stats, "dapd_shed_total") >= 1, "{stats}");
        assert!(
            counter_value(&stats, "dapd_rejected_total{cause=\"overloaded\"}") >= 1,
            "{stats}"
        );
        drop(pin_a);
        drop(pin_b);
        handle.request_stop();
        handle.join().unwrap();
    }

    #[test]
    fn stalled_peer_is_dropped_at_the_read_deadline() {
        let (handle, addr) = spawn_tcp_with(ServerConfig {
            read_deadline: Duration::from_millis(100),
            write_deadline: Duration::from_millis(100),
            ..ServerConfig::default()
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        // Half a GetRoute frame, then silence: a slow-loris peer.
        let frame = crate::wire::encode_frame(&Message::GetRoute {
            tenant: 0,
            bytes: 64,
        });
        stream.write_all(&frame[..4]).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        // The server must hang up (EOF), not wait forever.
        let mut buf = [0u8; 16];
        assert_eq!(stream.read(&mut buf).unwrap(), 0, "dropped at deadline");
        let stats = handle.stats_text();
        assert!(
            counter_value(&stats, "dapd_rejected_total{cause=\"deadline\"}") >= 1,
            "{stats}"
        );
        handle.request_stop();
        handle.join().unwrap();
    }

    #[test]
    fn garbage_bytes_close_only_the_offending_connection() {
        let (handle, addr) = spawn_tcp();
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(&[0xDE; 32]).unwrap();
        garbage
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        // The server drops the connection with our garbage still
        // unread, so the close may arrive as an RST (ConnectionReset)
        // rather than a clean EOF.
        let mut buf = [0u8; 16];
        match garbage.read(&mut buf) {
            Ok(0) => {}
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {}
            other => panic!("expected close, got {other:?}"),
        }
        // The daemon is still alive and serving.
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        client.get_route(0, 64).unwrap();
        let stats = client.snapshot_stats().unwrap();
        assert!(
            counter_value(&stats, "dapd_rejected_total{cause=\"garbage\"}") >= 1,
            "{stats}"
        );
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn frame_budget_exhaustion_sheds_the_connection() {
        let (handle, addr) = spawn_tcp_with(ServerConfig {
            max_frames_per_conn: 5,
            ..ServerConfig::default()
        });
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        for _ in 0..5 {
            client.get_route(0, 64).unwrap();
        }
        let err = client.get_route(0, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ResourceBusy, "{err}");
        let stats = handle.stats_text();
        assert!(
            counter_value(&stats, "dapd_rejected_total{cause=\"frame_budget\"}") >= 1,
            "{stats}"
        );
        // A fresh connection gets a fresh budget.
        let mut fresh = Client::connect_tcp(&addr.to_string()).unwrap();
        fresh.get_route(0, 64).unwrap();
        fresh.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn byte_budget_exhaustion_sheds_the_connection() {
        let (handle, addr) = spawn_tcp_with(ServerConfig {
            max_bytes_per_conn: 30, // two 11-byte GetRoute frames, not three
            ..ServerConfig::default()
        });
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        client.get_route(0, 64).unwrap();
        client.get_route(0, 64).unwrap();
        let err = client.get_route(0, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ResourceBusy, "{err}");
        let stats = handle.stats_text();
        assert!(
            counter_value(&stats, "dapd_rejected_total{cause=\"byte_budget\"}") >= 1,
            "{stats}"
        );
        handle.request_stop();
        handle.join().unwrap();
    }

    #[test]
    fn ops_endpoints_serve_metrics_varz_and_flight() {
        use dap_telemetry::http::{http_get, OpsServer};

        let (handle, addr) = spawn_tcp();
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        client.get_route(0, 4096).unwrap();
        client.report_served(0, 4096, 100).unwrap();

        let ops = OpsServer::bind("127.0.0.1:0")
            .unwrap()
            .spawn(ops_router(handle.ops_view()))
            .unwrap();
        let ops_addr = ops.addr().to_string();
        let timeout = Duration::from_secs(5);

        let (status, body) = http_get(&ops_addr, "/metrics", timeout).unwrap();
        assert_eq!(status, 200);
        dap_telemetry::check_exposition(&body).unwrap();
        assert!(body.contains("dapd_decisions_total"), "{body}");

        let (status, body) = http_get(&ops_addr, "/healthz", timeout).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, body) = http_get(&ops_addr, "/varz", timeout).unwrap();
        assert_eq!(status, 200);
        let varz = dap_telemetry::json::parse(&body).unwrap();
        assert!(varz.get("backends").is_some(), "{body}");
        assert!(varz.get("ledger").is_some(), "{body}");

        let (status, body) = http_get(&ops_addr, "/debug/flight", timeout).unwrap();
        assert_eq!(status, 200);
        dap_telemetry::flight::parse_flight_dump(&body).unwrap();

        let (status, _) = http_get(&ops_addr, "/nope", timeout).unwrap();
        assert_eq!(status, 404);

        drop(ops);
        handle.request_stop();
        handle.join().unwrap();
    }

    #[test]
    fn zero_deadline_config_is_rejected() {
        let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let err = Server::bind_tcp("127.0.0.1:0", engine)
            .unwrap()
            .with_config(ServerConfig {
                read_deadline: Duration::ZERO,
                ..ServerConfig::default()
            })
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
