//! The daemon: a std-only, thread-per-connection socket server.
//!
//! Listens on a TCP address or a Unix-domain socket, speaks the
//! [`crate::wire`] protocol, and multiplexes all connections onto one
//! shared [`Engine`] behind a mutex (decisions are microseconds; the
//! lock, not the solver, is the ceiling — and the bench harness measures
//! exactly that ceiling honestly).
//!
//! Shutdown is cooperative: any client may send [`Message::Shutdown`];
//! the acceptor notices within one poll interval (10 ms), stops
//! accepting, and [`ServerHandle::join`] returns once the acceptor
//! thread exits. In-flight connections see their streams shut down.

use crate::engine::{Engine, EngineError};
use crate::wire::{read_frame, write_frame, Message, RejectCode};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: Listener,
    engine: Arc<Mutex<Engine>>,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// Handle to a running daemon.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    acceptor: thread::JoinHandle<io::Result<()>>,
    engine: Arc<Mutex<Engine>>,
    /// Unix socket path to unlink on join, if any.
    unlink: Option<PathBuf>,
}

impl Server {
    /// Binds a TCP listener. `addr` may use port 0 to let the OS pick;
    /// [`Server::local_addr`] reports the result.
    pub fn bind_tcp(addr: &str, engine: Engine) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener: Listener::Tcp(listener),
            engine: Arc::new(Mutex::new(engine)),
        })
    }

    /// Binds a Unix-domain socket, replacing a stale socket file if one
    /// exists at `path`.
    pub fn bind_unix(path: &Path, engine: Engine) -> io::Result<Self> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        Ok(Self {
            listener: Listener::Unix(listener, path.to_path_buf()),
            engine: Arc::new(Mutex::new(engine)),
        })
    }

    /// The bound TCP address (None for Unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(..) => None,
        }
    }

    /// Starts the accept loop on a background thread.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let stop = Arc::new(AtomicBool::new(false));
        let engine = Arc::clone(&self.engine);
        let unlink = match &self.listener {
            Listener::Unix(_, path) => Some(path.clone()),
            Listener::Tcp(_) => None,
        };
        let acceptor = {
            let stop = Arc::clone(&stop);
            let engine = Arc::clone(&self.engine);
            match self.listener {
                Listener::Tcp(l) => {
                    l.set_nonblocking(true)?;
                    thread::spawn(move || accept_loop(l, stop, engine, accept_tcp))
                }
                Listener::Unix(l, _) => {
                    l.set_nonblocking(true)?;
                    thread::spawn(move || accept_loop(l, stop, engine, accept_unix))
                }
            }
        };
        Ok(ServerHandle {
            stop,
            acceptor,
            engine,
            unlink,
        })
    }
}

fn accept_tcp(l: &TcpListener) -> io::Result<TcpStream> {
    l.accept().map(|(s, _)| s)
}

fn accept_unix(l: &UnixListener) -> io::Result<UnixStream> {
    l.accept().map(|(s, _)| s)
}

fn accept_loop<L, S>(
    listener: L,
    stop: Arc<AtomicBool>,
    engine: Arc<Mutex<Engine>>,
    accept: fn(&L) -> io::Result<S>,
) -> io::Result<()>
where
    L: Send + 'static,
    S: io::Read + io::Write + Send + 'static,
{
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match accept(&listener) {
            Ok(stream) => {
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                workers.push(thread::spawn(move || {
                    let _ = serve_connection(stream, engine, stop);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

fn serve_connection<S: io::Read + io::Write>(
    mut stream: S,
    engine: Arc<Mutex<Engine>>,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    loop {
        let msg = match read_frame(&mut stream)? {
            Some(m) => m,
            None => return Ok(()), // clean EOF
        };
        if stop.load(Ordering::SeqCst) && !matches!(msg, Message::Shutdown) {
            write_frame(&mut stream, &Message::Reject(RejectCode::ShuttingDown))?;
            continue;
        }
        let reply = match msg {
            Message::GetRoute { tenant, bytes } => {
                match engine.lock().unwrap().route(tenant, bytes) {
                    Ok(d) => Message::Route {
                        source: d.backend as u8,
                        window: d.window,
                    },
                    Err(EngineError::UnknownTenant(_)) => {
                        Message::Reject(RejectCode::UnknownTenant)
                    }
                    Err(_) => Message::Reject(RejectCode::UnknownBackend),
                }
            }
            Message::ReportServed {
                source,
                bytes,
                latency_ns,
            } => match engine
                .lock()
                .unwrap()
                .report_served(source, bytes, latency_ns)
            {
                Ok(()) => Message::Ack,
                Err(_) => Message::Reject(RejectCode::UnknownBackend),
            },
            Message::SnapshotStats => Message::Stats(engine.lock().unwrap().stats_text()),
            Message::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                write_frame(&mut stream, &Message::Ack)?;
                return Ok(());
            }
            // Response types arriving at the server are a protocol
            // violation; drop the connection.
            Message::Route { .. } | Message::Ack | Message::Stats(_) | Message::Reject(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "response message sent to server",
                ));
            }
        };
        write_frame(&mut stream, &reply)?;
    }
}

impl ServerHandle {
    /// Asks the daemon to stop without a client round-trip.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Renders the engine's current stats (works while running).
    pub fn stats_text(&self) -> String {
        self.engine.lock().unwrap().stats_text()
    }

    /// Waits for the acceptor to exit and cleans up the socket file.
    pub fn join(self) -> io::Result<()> {
        let result = self
            .acceptor
            .join()
            .map_err(|_| io::Error::other("acceptor thread panicked"))?;
        if let Some(path) = &self.unlink {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::engine::EngineConfig;

    fn spawn_tcp() -> (ServerHandle, SocketAddr) {
        let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let server = Server::bind_tcp("127.0.0.1:0", engine).unwrap();
        let addr = server.local_addr().unwrap();
        (server.spawn().unwrap(), addr)
    }

    #[test]
    fn tcp_route_report_stats_shutdown() {
        let (handle, addr) = spawn_tcp();
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let d = client.get_route(0, 4096).unwrap();
        assert!(d.backend < 2);
        client.report_served(1, 38_400, 1000).unwrap();
        let stats = client.snapshot_stats().unwrap();
        assert!(stats.contains("dapd_decisions_total 1"), "{stats}");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("dapd-test-{}.sock", std::process::id()));
        let engine = Engine::new(EngineConfig::hbm_ddr4_pair()).unwrap();
        let handle = Server::bind_unix(&path, engine).unwrap().spawn().unwrap();
        let mut client = Client::connect_unix(&path).unwrap();
        for i in 0..100u32 {
            client.get_route((i % 2) as u16, 4096).unwrap();
        }
        let stats = client.snapshot_stats().unwrap();
        assert!(stats.contains("dapd_decisions_total 100"), "{stats}");
        client.shutdown().unwrap();
        handle.join().unwrap();
        assert!(!path.exists(), "socket file cleaned up");
    }

    #[test]
    fn unknown_tenant_gets_typed_reject() {
        let (handle, addr) = spawn_tcp();
        let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
        let err = client.get_route(999, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied, "{err}");
        assert!(err.to_string().contains("unknown tenant"), "{err}");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_clients_share_one_engine() {
        let (handle, addr) = spawn_tcp();
        let mut threads = Vec::new();
        for _ in 0..4 {
            let addr = addr.to_string();
            threads.push(thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).unwrap();
                for i in 0..250u32 {
                    client.get_route((i % 2) as u16, 1024).unwrap();
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let stats = handle.stats_text();
        assert!(stats.contains("dapd_decisions_total 1000"), "{stats}");
        handle.request_stop();
        handle.join().unwrap();
    }
}
