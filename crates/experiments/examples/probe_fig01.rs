//! Fig. 1 eDRAM anomaly probe.
use mem_sim::trace::TraceSource;
use mem_sim::{System, SystemConfig};
use workloads::ReadKernel;

fn main() {
    for hit in [0.5, 1.0] {
        let mut config = SystemConfig::edram_cache(8, 2048);
        config.prefetch_degree = std::env::var("PF").map(|v| v.parse().unwrap()).unwrap_or(2);
        let cores = config.cores;
        let traces: Vec<Box<dyn TraceSource>> = (0..cores)
            .map(|i| {
                Box::new(ReadKernel::new(
                    0x1000_0000 + (i as u64) * ((1 << 36) + 0x31_1000),
                    1 << 20,
                    hit,
                    i as u64 + 1,
                )) as Box<dyn TraceSource>
            })
            .collect();
        let mut system = System::new(config, traces);
        let r = system.run(1_200_000);
        let s = &r.stats;
        let cycles = r.per_core.iter().map(|c| c.cycles).max().unwrap();
        println!(
            "h={hit}: cycles {} l3acc {} l3miss {} dr {} ms_cas {} mm_cas {} hit {:.3}",
            cycles,
            s.l3_accesses,
            s.l3_misses,
            s.demand_reads,
            s.ms_cas,
            s.mm_cas,
            s.ms_hit_ratio()
        );
        let ipcs: Vec<String> = r
            .per_core
            .iter()
            .map(|c| format!("{:.3}", c.ipc()))
            .collect();
        println!("  per-core IPC: {}", ipcs.join(" "));
    }
}
