//! eDRAM-specific probe.
use experiments::runner::{run_mix, PolicyKind};
use mem_sim::SystemConfig;
use workloads::{rate_mix, spec};

fn main() {
    let instr: u64 = 600_000;
    for cap in [256u64, 512] {
        let config = SystemConfig::edram_cache(8, cap);
        for name in ["libquantum", "sjeng", "parboil-lbm"] {
            let mix = rate_mix(spec(name).unwrap(), 8);
            for kind in [PolicyKind::Baseline, PolicyKind::Dap] {
                let r = run_mix(&config, kind, &mix, instr);
                let s = &r.stats;
                println!(
                    "{cap}MB {name:12} {kind:?}: IPC {:.3} hit {:.3} mmfrac {:.3} lat {:.0} fwb {} wb {} ifrm {}",
                    r.total_ipc(), s.ms_hit_ratio(), s.mm_cas_fraction(), s.avg_read_latency(),
                    s.fills_bypassed, s.writes_bypassed, s.forced_read_misses,
                );
            }
        }
    }
}
