//! Per-workload probe: baseline vs DAP stats for selected clones.
use experiments::runner::{run_mix, PolicyKind};
use mem_sim::SystemConfig;
use workloads::{rate_mix, spec};

fn probe_modules(config: &mem_sim::SystemConfig, mix: &workloads::Mix, instr: u64) {
    use experiments::runner::build_policy;
    let mut sys = mem_sim::System::with_policy(
        config.clone(),
        mix.traces(),
        build_policy(PolicyKind::Baseline, config).expect("baseline always builds"),
    );
    let r = sys.run(instr);
    let cycles = r.per_core.iter().map(|c| c.cycles).max().unwrap() as f64;
    let ms = sys.memory().ms_dram_stats().unwrap();
    let mm = sys.memory().main_memory().stats();
    let gbps = |cas: u64| cas as f64 * 64.0 / (cycles / 4e9) / 1e9;
    println!(
        "    modules: ms {:.1} GB/s (rowhit {:.2}) mm {:.1} GB/s (rowhit {:.2}) over {:.1}M cyc",
        gbps(ms.cas_total()),
        ms.row_hit_rate(),
        gbps(mm.cas_total()),
        mm.row_hit_rate(),
        cycles / 1e6,
    );
}

fn main() {
    let instr: u64 = std::env::var("DAP_INSTRUCTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500_000);
    let config = SystemConfig::sectored_dram_cache(8);
    for name in [
        "mcf",
        "omnetpp",
        "libquantum",
        "hpcg",
        "gcc.expr",
        "parboil-lbm",
    ] {
        let mix = rate_mix(spec(name).unwrap(), 8);
        probe_modules(&config, &mix, instr);
        for kind in [PolicyKind::Baseline, PolicyKind::Dap] {
            let r = run_mix(&config, kind, &mix, instr);
            let s = &r.stats;
            println!(
                "{name:14} {kind:?}: IPC {:.3} hit {:.3} mmfrac {:.3} tagmiss {:.3} lat {:.0} mpki {:.1} meta {} dr {}",
                r.total_ipc(), s.ms_hit_ratio(), s.mm_cas_fraction(),
                s.tag_cache_miss_ratio(), s.avg_read_latency(), r.l3_mpki(),
                s.metadata_cas, s.demand_reads,
            );
            if let Some(d) = r.dap_decisions {
                println!(
                    "                mix {:?} windows {}/{}",
                    d.mix(),
                    d.windows_partitioned,
                    d.windows_total
                );
            }
        }
    }
}
