//! Extensions beyond the paper's evaluation.
//!
//! [`os_visible_tiering`] realizes the claim of Section II that the
//! partitioning algorithms "can easily be extended to OS-visible
//! implementations": with the fast memory exposed as flat, OS-managed
//! capacity, Eq. 4 becomes a *placement* rule — stop promoting hot pages
//! once the fast tier's share of accesses reaches the bandwidth-optimal
//! fraction, instead of packing it full.

use mem_sim::mscache::PlacementGoal;
use mem_sim::SystemConfig;

use crate::exec::run_variant_grid;
use crate::figures::sensitive_mixes;
use crate::metrics::{FigureResult, Row};
use crate::runner::{AloneIpcCache, PolicyKind};

/// OS-visible tiering: conventional hot-page packing vs bandwidth-optimal
/// placement, both normalized to the conventional system, plus the
/// cache-mode DAP system for reference.
pub fn os_visible_tiering(instructions: u64) -> FigureResult {
    let hits = SystemConfig::flat_tier(8, PlacementGoal::MaximizeFastHits);
    let balanced = SystemConfig::flat_tier(8, PlacementGoal::BandwidthOptimal);
    let cache_mode = SystemConfig::sectored_dram_cache(8);
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    let grid = run_variant_grid(
        &[
            (&hits, PolicyKind::Baseline),
            (&balanced, PolicyKind::Baseline),
            (&cache_mode, PolicyKind::Baseline),
            (&cache_mode, PolicyKind::Dap),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [base, bal, cache_base, cache_dap] = &runs[..] else {
                unreachable!()
            };
            Row::new(
                mix.name.clone(),
                vec![
                    bal.weighted_speedup / base.weighted_speedup,
                    cache_dap.weighted_speedup / cache_base.weighted_speedup,
                    base.result.stats.ms_hit_ratio(),
                    bal.result.stats.ms_hit_ratio(),
                ],
            )
        })
        .collect();
    FigureResult {
        id: "Extension D",
        title: "OS-visible tiering: bandwidth-optimal placement vs hot-page packing \
                (cache-mode DAP shown for reference)"
            .into(),
        columns: vec![
            "balanced WS".into(),
            "cache DAP WS".into(),
            "fast frac (hits)".into(),
            "fast frac (bal)".into(),
        ],
        rows,
        summary: vec![],
    }
    .with_geomean()
}
