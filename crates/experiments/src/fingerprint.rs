//! Structural fingerprints of system configurations.
//!
//! [`AloneIpcCache`](crate::runner::AloneIpcCache) keys cached alone-run
//! IPCs by configuration. A `format!("{config:?}")` string key works but
//! allocates a long string per lookup and silently depends on `Debug`
//! formatting stability; [`ConfigFingerprint`] instead encodes every field
//! that affects a run into a canonical word sequence with derived `Hash`,
//! so two configurations collide exactly when they are equal.

use mem_sim::dram::DramConfig;
use mem_sim::mscache::PlacementGoal;
use mem_sim::{CacheKind, FaultKind, FaultSchedule, FaultTarget, SystemConfig};

/// A canonical, hashable encoding of a [`SystemConfig`].
///
/// Every field is framed (variable-length data is length-prefixed, enum
/// variants are tagged) so distinct configurations produce distinct word
/// sequences — no field boundary can alias another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfigFingerprint(Vec<u64>);

impl ConfigFingerprint {
    /// Fingerprints a configuration.
    pub fn of(config: &SystemConfig) -> Self {
        let mut e = Encoder(Vec::with_capacity(64));
        e.word(config.cores as u64);
        e.f64(config.cpu_mhz);
        e.word(u64::from(config.width));
        e.word(config.rob as u64);
        for level in [config.l1, config.l2, config.l3] {
            e.word(level.0);
            e.word(level.1 as u64);
            e.word(level.2);
        }
        e.word(u64::from(config.prefetch_degree));
        e.dram(&config.mm);
        e.cache(&config.cache);
        e.faults(config.faults.as_ref());
        Self(e.0)
    }

    /// The canonical word sequence (for digesting into checkpoint keys).
    pub fn words(&self) -> &[u64] {
        &self.0
    }
}

struct Encoder(Vec<u64>);

impl Encoder {
    fn word(&mut self, w: u64) {
        self.0.push(w);
    }

    fn f64(&mut self, v: f64) {
        self.0.push(v.to_bits());
    }

    /// Length-prefixed UTF-8 bytes packed into words.
    fn str(&mut self, s: &str) {
        self.word(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(w));
        }
    }

    fn dram(&mut self, d: &DramConfig) {
        self.str(d.name);
        self.f64(d.device_mhz);
        self.word(u64::from(d.channels));
        self.word(u64::from(d.banks_per_channel));
        self.word(d.row_bytes);
        self.word(u64::from(d.burst_clocks));
        self.word(u64::from(d.t_cas));
        self.word(u64::from(d.t_rcd));
        self.word(u64::from(d.t_rp));
        self.word(u64::from(d.t_ras));
        self.word(d.io_delay_cpu);
        self.word(d.write_batch as u64);
        match d.refresh {
            None => self.word(0),
            Some(r) => {
                self.word(1);
                self.word(u64::from(r.t_refi));
                self.word(u64::from(r.t_rfc));
            }
        }
    }

    fn faults(&mut self, faults: Option<&FaultSchedule>) {
        let Some(schedule) = faults else {
            self.word(0);
            return;
        };
        self.word(1);
        self.word(schedule.seed());
        self.word(schedule.events().len() as u64);
        for event in schedule.events() {
            self.word(match event.target {
                FaultTarget::Cache => 0,
                FaultTarget::MainMemory => 1,
            });
            match event.kind {
                FaultKind::ChannelOutage { channel } => {
                    self.word(0);
                    self.word(u64::from(channel));
                }
                FaultKind::Throttle { num, den } => {
                    self.word(1);
                    self.word(u64::from(num));
                    self.word(u64::from(den));
                }
                FaultKind::RefreshStorm { interval, stall } => {
                    self.word(2);
                    self.word(interval);
                    self.word(stall);
                }
                FaultKind::LatencyJitter { max_extra } => {
                    self.word(3);
                    self.word(max_extra);
                }
            }
            self.word(event.start);
            self.word(event.end);
        }
    }

    fn cache(&mut self, cache: &CacheKind) {
        match cache {
            CacheKind::None => self.word(0),
            CacheKind::Sectored {
                capacity_bytes,
                sector_bytes,
                ways,
                dram,
                tag_cache,
            } => {
                self.word(1);
                self.word(*capacity_bytes);
                self.word(*sector_bytes);
                self.word(*ways as u64);
                self.dram(dram);
                self.word(u64::from(*tag_cache));
            }
            CacheKind::Alloy {
                capacity_bytes,
                dram,
                bear,
            } => {
                self.word(2);
                self.word(*capacity_bytes);
                self.dram(dram);
                self.word(u64::from(*bear));
            }
            CacheKind::FlatTier {
                capacity_bytes,
                dram,
                goal,
            } => {
                self.word(3);
                self.word(*capacity_bytes);
                self.dram(dram);
                self.word(match goal {
                    PlacementGoal::MaximizeFastHits => 0,
                    PlacementGoal::BandwidthOptimal => 1,
                });
            }
            CacheKind::Edram {
                capacity_bytes,
                sector_bytes,
                ways,
                direction,
            } => {
                self.word(4);
                self.word(*capacity_bytes);
                self.word(*sector_bytes);
                self.word(*ways as u64);
                self.dram(direction);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::dram::RefreshTiming;

    /// The experiment grid's distinct configurations must never collide.
    #[test]
    fn distinct_configs_never_collide() {
        let mut with_refresh = SystemConfig::sectored_dram_cache(8);
        with_refresh.mm = with_refresh.mm.with_refresh(RefreshTiming::ddr4());
        let mut no_tag_cache = SystemConfig::sectored_dram_cache(8);
        if let CacheKind::Sectored { tag_cache, .. } = &mut no_tag_cache.cache {
            *tag_cache = false;
        }
        let mut bear = SystemConfig::alloy_cache(8);
        if let CacheKind::Alloy { bear, .. } = &mut bear.cache {
            *bear = true;
        }
        let configs =
            [
                SystemConfig::sectored_dram_cache(8),
                SystemConfig::sectored_dram_cache(16),
                SystemConfig::sectored_dram_cache(8).with_l3_sets(4096),
                SystemConfig::sectored_dram_cache(8)
                    .with_mm(mem_sim::dram::DramConfig::ddr4_3200()),
                with_refresh,
                no_tag_cache,
                SystemConfig::alloy_cache(8),
                bear,
                SystemConfig::edram_cache(8, 256),
                SystemConfig::edram_cache(8, 512),
                SystemConfig::flat_tier(8, PlacementGoal::MaximizeFastHits),
                SystemConfig::flat_tier(8, PlacementGoal::BandwidthOptimal),
                SystemConfig::no_cache(8),
                SystemConfig::sectored_dram_cache(8).with_faults(
                    FaultSchedule::new(7).channel_outage(FaultTarget::Cache, 0, 100, 200),
                ),
                SystemConfig::sectored_dram_cache(8).with_faults(
                    FaultSchedule::new(7).channel_outage(FaultTarget::MainMemory, 0, 100, 200),
                ),
                SystemConfig::sectored_dram_cache(8).with_faults(
                    FaultSchedule::new(8).channel_outage(FaultTarget::Cache, 0, 100, 200),
                ),
                SystemConfig::sectored_dram_cache(8).with_faults(FaultSchedule::new(7).throttle(
                    FaultTarget::Cache,
                    2,
                    1,
                    100,
                    200,
                )),
            ];
        let prints: Vec<ConfigFingerprint> = configs.iter().map(ConfigFingerprint::of).collect();
        for (i, a) in prints.iter().enumerate() {
            for (j, b) in prints.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "configs {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn equal_configs_agree() {
        let a = ConfigFingerprint::of(&SystemConfig::sectored_dram_cache(8));
        let b = ConfigFingerprint::of(&SystemConfig::sectored_dram_cache(8));
        assert_eq!(a, b);
    }
}
