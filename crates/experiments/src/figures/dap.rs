//! Section VI-A DAP-on-sectored-cache experiments: Fig. 6, 7, 8, Table I.

use mem_sim::{RunResult, SystemConfig};

use crate::exec::{run_variant_grid, ExperimentPlan, ParallelExecutor};
use crate::metrics::{geomean, FigureResult, Row};
use crate::runner::{build_policy_with, run_mix, AloneIpcCache, PolicyKind};

use super::sensitive_mixes;

/// Fig. 6: DAP's weighted speedup over the optimized baseline (top panel)
/// and its normalized average L3 read-miss latency (bottom panel).
pub fn fig06_dap_sectored(instructions: u64) -> FigureResult {
    let config = SystemConfig::sectored_dram_cache(8);
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    let grid = run_variant_grid(
        &[(&config, PolicyKind::Baseline), (&config, PolicyKind::Dap)],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [base, dap] = &runs[..] else {
                unreachable!()
            };
            Row::new(
                mix.name.clone(),
                vec![
                    dap.weighted_speedup / base.weighted_speedup,
                    dap.result.stats.avg_read_latency() / base.result.stats.avg_read_latency(),
                ],
            )
        })
        .collect();
    FigureResult {
        id: "Fig. 6",
        title: "DAP on the sectored DRAM cache: speedup and normalized L3 read-miss latency".into(),
        columns: vec!["norm. WS".into(), "norm. latency".into()],
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// Fig. 7: the share of DAP decisions contributed by each technique.
pub fn fig07_decision_mix(instructions: u64) -> FigureResult {
    let config = SystemConfig::sectored_dram_cache(8);
    let mixes = sensitive_mixes(8);
    let mut plan = ExperimentPlan::new();
    {
        let config = &config;
        for mix in &mixes {
            plan.add(move || run_mix(config, PolicyKind::Dap, mix, instructions));
        }
    }
    let results = ParallelExecutor::from_env().run(plan);
    let mut rows = Vec::new();
    let mut totals = [0.0f64; 4];
    let mut counted = 0usize;
    for (mix, r) in mixes.iter().zip(results) {
        // invariant: every plan cell above runs PolicyKind::Dap, which
        // always reports decision statistics.
        let d = r.dap_decisions.expect("DAP ran");
        let mix_shares = d.mix();
        if d.total_decisions() > 0 {
            for (t, m) in totals.iter_mut().zip(mix_shares) {
                *t += m;
            }
            counted += 1;
        }
        rows.push(Row::new(mix.name.clone(), mix_shares.to_vec()));
    }
    let mean: Vec<f64> = totals.iter().map(|t| t / counted.max(1) as f64).collect();
    FigureResult {
        id: "Fig. 7",
        title: "Contribution of FWB / WB / IFRM / SFRM to DAP decisions".into(),
        columns: vec!["FWB".into(), "WB".into(), "IFRM".into(), "SFRM".into()],
        rows,
        summary: vec![("MEAN".into(), mean)],
    }
}

/// Fig. 8: the fraction of CAS operations served by main memory (top:
/// baseline vs DAP; optimal is `B_MM/(B_MM+B_MS$)` = 0.27) and the
/// memory-side cache hit ratio (bottom: baseline, FWB+WB only, full DAP).
pub fn fig08_cas_fraction(instructions: u64) -> FigureResult {
    let config = SystemConfig::sectored_dram_cache(8);
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    let grid = run_variant_grid(
        &[
            (&config, PolicyKind::Baseline),
            (&config, PolicyKind::DapFwbWbOnly),
            (&config, PolicyKind::Dap),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [base, fwb_wb, dap] = &runs[..] else {
                unreachable!()
            };
            Row::new(
                mix.name.clone(),
                vec![
                    base.result.stats.mm_cas_fraction(),
                    dap.result.stats.mm_cas_fraction(),
                    base.result.stats.ms_hit_ratio(),
                    fwb_wb.result.stats.ms_hit_ratio(),
                    dap.result.stats.ms_hit_ratio(),
                ],
            )
        })
        .collect();
    FigureResult {
        id: "Fig. 8",
        title: "Main-memory CAS fraction (optimal 0.27) and memory-side cache hit ratio".into(),
        columns: vec![
            "MM CAS base".into(),
            "MM CAS DAP".into(),
            "hit base".into(),
            "hit FWB+WB".into(),
            "hit DAP".into(),
        ],
        rows,
        summary: vec![],
    }
    .with_mean()
}

/// Weighted speedup against unit alone-IPCs (homogeneous rate mixes: the
/// alone term cancels when two such speedups are divided).
fn unit_ws(result: &RunResult) -> f64 {
    result.weighted_speedup(&vec![1.0; result.per_core.len()])
}

/// Table I: geometric-mean DAP speedup while sweeping the window size
/// `W in {32, 64, 128}` (at `E = 0.75`) and the bandwidth efficiency
/// `E in {0.5, 0.75, 1.0}` (at `W = 64`).
pub fn table1_w_e_sensitivity(instructions: u64) -> FigureResult {
    const PARAMS: [(u32, f64); 5] = [(32, 0.75), (64, 0.75), (128, 0.75), (64, 0.50), (64, 1.00)];
    let config = SystemConfig::sectored_dram_cache(8);
    let mixes = sensitive_mixes(8);
    let mut plan = ExperimentPlan::new();
    {
        let config = &config;
        for mix in &mixes {
            plan.add(move || unit_ws(&run_mix(config, PolicyKind::Baseline, mix, instructions)));
        }
        for &(window, efficiency) in &PARAMS {
            for mix in &mixes {
                plan.add(move || {
                    // invariant: the sectored DRAM-cache config always
                    // carries the bandwidth fields DAP solves against.
                    let policy = build_policy_with(PolicyKind::Dap, config, window, efficiency)
                        .expect("the sectored cache supports DAP");
                    let mut system =
                        mem_sim::System::with_policy(config.clone(), mix.traces(), policy);
                    unit_ws(&system.run(instructions))
                });
            }
        }
    }
    let ws = ParallelExecutor::from_env().run(plan);
    let (base, sweeps) = ws.split_at(mixes.len());
    let rows = PARAMS
        .iter()
        .zip(sweeps.chunks(mixes.len()))
        .map(|(&(w, e), dap)| {
            let ratios: Vec<f64> = dap.iter().zip(base).map(|(d, b)| d / b).collect();
            Row::new(format!("W={w} E={e:.2}"), vec![geomean(ratios)])
        })
        .collect();
    FigureResult {
        id: "Table I",
        title: "DAP speedup sensitivity to window size W and bandwidth efficiency E".into(),
        columns: vec!["geomean norm. WS".into()],
        rows,
        summary: vec![],
    }
}
