//! Section II / V motivation experiments: Fig. 1, 2, 4, 5.

use dap_core::{read_kernel_bandwidth, BandwidthSource};
use mem_sim::{CacheKind, System, SystemConfig};
use workloads::{all_specs, rate_mix, Mix, ReadKernel};

use crate::exec::{run_variant_grid, ExperimentPlan, ParallelExecutor};
use crate::metrics::{FigureResult, Row};
use crate::runner::{AloneIpcCache, PolicyKind};

use super::sensitive_mixes;

/// Simulates the gap-0 read kernel at a target hit rate and reports the
/// delivered bandwidth in GB/s.
fn read_kernel_gbps(config: SystemConfig, warm_bytes: u64, hit: f64, instructions: u64) -> f64 {
    let warm_bytes = warm_bytes.min((instructions * 64 / 4).max(64 * 128));
    let traces: Vec<Box<dyn mem_sim::trace::TraceSource>> = (0..config.cores)
        .map(|i| {
            Box::new(ReadKernel::new(
                0x1000_0000 + (i as u64) * ((1 << 36) + 0x31_1000),
                warm_bytes,
                hit,
                i as u64 + 1,
            )) as Box<dyn mem_sim::trace::TraceSource>
        })
        .collect();
    let cores = config.cores;
    let mut system = System::new(config, traces);
    let r = system.run(instructions);
    // Gap-0 kernel: every instruction moves one 64-byte block.
    let total_bytes = (instructions * cores as u64 * 64) as f64;
    let max_cycles = r.per_core.iter().map(|c| c.cycles).max().unwrap_or(1) as f64;
    total_bytes / (max_cycles / 4e9) / 1e9
}

/// Fig. 1: delivered read bandwidth against memory-side cache hit rate,
/// for the single-bus HBM DRAM cache and the split-channel eDRAM cache.
/// Columns: analytic model (Eq. 2) and simulation, in GB/s.
pub fn fig01_bw_vs_hitrate(instructions: u64) -> FigureResult {
    const HITS: [f64; 6] = [0.0, 0.25, 0.50, 0.70, 0.90, 1.0];
    let hbm = BandwidthSource::from_gbps("HBM", 102.4);
    let ed_r = BandwidthSource::from_gbps("eDRAM-R", 51.2);
    let ed_w = BandwidthSource::from_gbps("eDRAM-W", 51.2);
    let ddr = BandwidthSource::from_gbps("DDR4", 38.4);
    let gbps = |acc_per_s: f64| acc_per_s * 64.0 / 1e9;

    let mut plan = ExperimentPlan::new();
    for &hit in &HITS {
        // Warm regions sized so eight copies fit their cache with headroom
        // (the paper's kernel assumes the warm set is always resident) while
        // still exceeding each core's shared-L3 slice. The eDRAM kernel uses
        // a larger-capacity part: Fig. 1 studies bandwidth, not capacity.
        plan.add(move || {
            read_kernel_gbps(
                SystemConfig::sectored_dram_cache(8),
                3 << 20,
                hit,
                instructions,
            )
        });
        plan.add(move || {
            read_kernel_gbps(
                SystemConfig::edram_cache(8, 2048),
                1 << 20,
                hit,
                instructions,
            )
        });
    }
    let sims = ParallelExecutor::from_env().run(plan);

    let rows = HITS
        .iter()
        .zip(sims.chunks(2))
        .map(|(&hit, sim)| {
            let analytic_dram = gbps(read_kernel_bandwidth(&hbm, None, &ddr, hit));
            let analytic_edram = gbps(read_kernel_bandwidth(&ed_r, Some(&ed_w), &ddr, hit));
            Row::new(
                format!("{}%", (hit * 100.0) as u32),
                vec![analytic_dram, sim[0], analytic_edram, sim[1]],
            )
        })
        .collect();
    FigureResult {
        id: "Fig. 1",
        title: "Delivered bandwidth (GB/s) vs memory-side cache hit rate".into(),
        columns: vec![
            "DRAM$ model".into(),
            "DRAM$ sim".into(),
            "eDRAM$ model".into(),
            "eDRAM$ sim".into(),
        ],
        rows,
        summary: vec![],
    }
}

/// Fig. 2: weighted speedup of a 512 MB eDRAM cache normalized to 256 MB,
/// and the drop in miss rate (percentage points), for the twelve
/// bandwidth-sensitive workloads.
pub fn fig02_edram_capacity(instructions: u64) -> FigureResult {
    let small = SystemConfig::edram_cache(8, 256);
    let large = SystemConfig::edram_cache(8, 512);
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    let grid = run_variant_grid(
        &[
            (&small, PolicyKind::Baseline),
            (&large, PolicyKind::Baseline),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [a, b] = &runs[..] else { unreachable!() };
            let ws = b.weighted_speedup / a.weighted_speedup;
            let miss_drop =
                (a.result.stats.ms_hit_ratio() - b.result.stats.ms_hit_ratio()) * -100.0;
            Row::new(mix.name.clone(), vec![ws, miss_drop])
        })
        .collect();
    FigureResult {
        id: "Fig. 2",
        title: "512 MB vs 256 MB eDRAM cache: speedup and miss-rate drop".into(),
        columns: vec!["norm. WS".into(), "miss drop (pp)".into()],
        rows,
        summary: vec![],
    }
    .with_mean()
}

/// Fig. 4: weighted speedup from doubling the DRAM-cache bandwidth
/// (204.8 GB/s vs 102.4 GB/s) and L3 MPKI, for all seventeen benchmarks.
/// Bandwidth-sensitive rows first, as in the paper.
pub fn fig04_bw_sensitivity(instructions: u64) -> FigureResult {
    let base = SystemConfig::sectored_dram_cache(8);
    let mut doubled = base.clone();
    if let CacheKind::Sectored { dram, .. } = &mut doubled.cache {
        *dram = mem_sim::dram::DramConfig::hbm_204();
    }
    let alone = AloneIpcCache::new();
    let mut specs: Vec<_> = all_specs().iter().collect();
    specs.sort_by_key(|s| s.sensitivity == workloads::Sensitivity::BandwidthInsensitive);
    let mixes: Vec<Mix> = specs.iter().map(|&s| rate_mix(s, 8)).collect();
    let grid = run_variant_grid(
        &[
            (&base, PolicyKind::Baseline),
            (&doubled, PolicyKind::Baseline),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = specs
        .iter()
        .zip(&grid)
        .map(|(spec, runs)| {
            let [a, b] = &runs[..] else { unreachable!() };
            Row::new(
                spec.name,
                vec![b.weighted_speedup / a.weighted_speedup, a.result.l3_mpki()],
            )
        })
        .collect();
    FigureResult {
        id: "Fig. 4",
        title: "Speedup from doubling DRAM-cache bandwidth; L3 MPKI".into(),
        columns: vec!["norm. WS (2x BW)".into(), "L3 MPKI".into()],
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// Fig. 5: weighted speedup from adding the 32K-entry SRAM tag cache to
/// the sectored DRAM cache baseline, plus the tag cache's miss ratio.
pub fn fig05_tag_cache(instructions: u64) -> FigureResult {
    let with_tc = SystemConfig::sectored_dram_cache(8);
    let mut without_tc = with_tc.clone();
    if let CacheKind::Sectored { tag_cache, .. } = &mut without_tc.cache {
        *tag_cache = false;
    }
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    let grid = run_variant_grid(
        &[
            (&without_tc, PolicyKind::Baseline),
            (&with_tc, PolicyKind::Baseline),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [a, b] = &runs[..] else { unreachable!() };
            Row::new(
                mix.name.clone(),
                vec![
                    b.weighted_speedup / a.weighted_speedup,
                    b.result.stats.tag_cache_miss_ratio(),
                ],
            )
        })
        .collect();
    FigureResult {
        id: "Fig. 5",
        title: "Tag-cache speedup over no-tag-cache baseline; tag-cache miss ratio".into(),
        columns: vec!["norm. WS".into(), "TC miss ratio".into()],
        rows,
        summary: vec![],
    }
    .with_geomean()
}
