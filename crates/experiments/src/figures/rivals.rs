//! Comparisons and architecture generalization: Fig. 11 (related
//! proposals), Fig. 12 (all 44 workloads), Fig. 14 (Alloy cache),
//! Fig. 15 (eDRAM cache).

use mem_sim::{CacheKind, SystemConfig};
use workloads::all_44_workloads;

use crate::exec::run_variant_grid;
use crate::metrics::{FigureResult, Row};
use crate::runner::{AloneIpcCache, PolicyKind};

use super::sensitive_mixes;

/// Fig. 11: SBD, SBD-WT, and BATMAN against DAP, all normalized to the
/// optimized baseline, on the sectored DRAM cache.
pub fn fig11_related_proposals(instructions: u64) -> FigureResult {
    let config = SystemConfig::sectored_dram_cache(8);
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    let grid = run_variant_grid(
        &[
            (&config, PolicyKind::Baseline),
            (&config, PolicyKind::Sbd),
            (&config, PolicyKind::SbdWt),
            (&config, PolicyKind::Batman),
            (&config, PolicyKind::Dap),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            // invariant: the variant list above is non-empty and fixed,
            // so every grid row has a baseline plus rivals.
            let (base, rivals) = runs.split_first().expect("five runs per mix");
            let values = rivals
                .iter()
                .map(|r| r.weighted_speedup / base.weighted_speedup)
                .collect();
            Row::new(mix.name.clone(), values)
        })
        .collect();
    FigureResult {
        id: "Fig. 11",
        title: "Related proposals vs DAP (normalized weighted speedup)".into(),
        columns: vec!["SBD".into(), "SBD-WT".into(), "BATMAN".into(), "DAP".into()],
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// Fig. 12: DAP across all 44 workloads — twelve bandwidth-sensitive
/// rate-8 mixes, five bandwidth-insensitive rate-8 mixes, and the 27
/// heterogeneous mixes.
pub fn fig12_all_workloads(instructions: u64) -> FigureResult {
    let config = SystemConfig::sectored_dram_cache(8);
    let alone = AloneIpcCache::new();
    let mixes = all_44_workloads(8);
    let grid = run_variant_grid(
        &[(&config, PolicyKind::Baseline), (&config, PolicyKind::Dap)],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [base, dap] = &runs[..] else {
                unreachable!()
            };
            Row::new(
                mix.name.clone(),
                vec![dap.weighted_speedup / base.weighted_speedup],
            )
        })
        .collect();
    FigureResult {
        id: "Fig. 12",
        title: "DAP across all 44 workloads (normalized weighted speedup)".into(),
        columns: vec!["norm. WS".into()],
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// Fig. 14: the Alloy cache — BEAR and DAP, each normalized to the plain
/// Alloy baseline, plus the main-memory CAS fraction for all three
/// (the paper's optimal for Alloy's 2/3-effective bandwidth is 0.36).
pub fn fig14_alloy(instructions: u64) -> FigureResult {
    let alloy = SystemConfig::alloy_cache(8);
    let mut alloy_bear = alloy.clone();
    if let CacheKind::Alloy { bear, .. } = &mut alloy_bear.cache {
        *bear = true;
    }
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    // DAP's Alloy design builds on the BEAR presence bits + DBC.
    let grid = run_variant_grid(
        &[
            (&alloy, PolicyKind::Baseline),
            (&alloy_bear, PolicyKind::Baseline),
            (&alloy_bear, PolicyKind::Dap),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [base, bear, dap] = &runs[..] else {
                unreachable!()
            };
            Row::new(
                mix.name.clone(),
                vec![
                    bear.weighted_speedup / base.weighted_speedup,
                    dap.weighted_speedup / base.weighted_speedup,
                    base.result.stats.mm_cas_fraction(),
                    bear.result.stats.mm_cas_fraction(),
                    dap.result.stats.mm_cas_fraction(),
                ],
            )
        })
        .collect();
    FigureResult {
        id: "Fig. 14",
        title: "Alloy cache: BEAR and Alloy+DAP speedups; main-memory CAS fractions".into(),
        columns: vec![
            "BEAR WS".into(),
            "DAP WS".into(),
            "MM CAS base".into(),
            "MM CAS BEAR".into(),
            "MM CAS DAP".into(),
        ],
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// Fig. 15: the eDRAM cache — DAP on 256 MB, baseline 512 MB, and DAP on
/// 512 MB, all normalized to the 256 MB baseline, plus each system's hit
/// rate *change* versus the 256 MB baseline (percentage points).
pub fn fig15_edram(instructions: u64) -> FigureResult {
    let small = SystemConfig::edram_cache(8, 256);
    let large = SystemConfig::edram_cache(8, 512);
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    let grid = run_variant_grid(
        &[
            (&small, PolicyKind::Baseline),
            (&small, PolicyKind::Dap),
            (&large, PolicyKind::Baseline),
            (&large, PolicyKind::Dap),
        ],
        &mixes,
        instructions,
        &alone,
    );
    let rows = mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [base, dap_small, base_large, dap_large] = &runs[..] else {
                unreachable!()
            };
            let h0 = base.result.stats.ms_hit_ratio();
            Row::new(
                mix.name.clone(),
                vec![
                    dap_small.weighted_speedup / base.weighted_speedup,
                    base_large.weighted_speedup / base.weighted_speedup,
                    dap_large.weighted_speedup / base.weighted_speedup,
                    (dap_small.result.stats.ms_hit_ratio() - h0) * 100.0,
                    (base_large.result.stats.ms_hit_ratio() - h0) * 100.0,
                    (dap_large.result.stats.ms_hit_ratio() - h0) * 100.0,
                ],
            )
        })
        .collect();
    FigureResult {
        id: "Fig. 15",
        title: "eDRAM cache: DAP at 256/512 MB vs the 256 MB baseline; hit-rate change (pp)".into(),
        columns: vec![
            "256MB DAP WS".into(),
            "512MB base WS".into(),
            "512MB DAP WS".into(),
            "256MB DAP dHit".into(),
            "512MB base dHit".into(),
            "512MB DAP dHit".into(),
        ],
        rows,
        summary: vec![],
    }
    .with_mean()
}
