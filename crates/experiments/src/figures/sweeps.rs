//! Sensitivity sweeps: Fig. 9 (main-memory technology), Fig. 10 (cache
//! capacity and bandwidth), Fig. 13 (16-core scaling).

use mem_sim::dram::DramConfig;
use mem_sim::{CacheKind, SystemConfig, CAPACITY_SCALE};

use crate::exec::run_variant_grid;
use crate::metrics::{FigureResult, Row};
use crate::runner::{AloneIpcCache, PolicyKind};

use super::sensitive_mixes;

fn dap_over_baseline(config: &SystemConfig, instructions: u64, alone: &AloneIpcCache) -> Vec<Row> {
    let mixes = sensitive_mixes(config.cores);
    let grid = run_variant_grid(
        &[(config, PolicyKind::Baseline), (config, PolicyKind::Dap)],
        &mixes,
        instructions,
        alone,
    );
    mixes
        .iter()
        .zip(&grid)
        .map(|(mix, runs)| {
            let [base, dap] = &runs[..] else {
                unreachable!()
            };
            Row::new(
                mix.name.clone(),
                vec![dap.weighted_speedup / base.weighted_speedup],
            )
        })
        .collect()
}

/// Fig. 9: DAP speedup under four main-memory technologies — default
/// DDR4-2400, DDR4-2400 without I/O latency, LPDDR4-2400 (same bandwidth,
/// ~70% higher latency), and DDR4-3200 (higher bandwidth).
pub fn fig09_mm_technology(instructions: u64) -> FigureResult {
    let memories = [
        DramConfig::ddr4_2400(),
        DramConfig::ddr4_2400_no_io(),
        DramConfig::lpddr4_2400(),
        DramConfig::ddr4_3200(),
    ];
    let alone = AloneIpcCache::new();
    let mut columns = Vec::new();
    let mut per_memory_rows: Vec<Vec<Row>> = Vec::new();
    for mm in memories {
        columns.push(mm.name.to_string());
        let config = SystemConfig::sectored_dram_cache(8).with_mm(mm);
        per_memory_rows.push(dap_over_baseline(&config, instructions, &alone));
    }
    let rows = merge_columns(per_memory_rows);
    FigureResult {
        id: "Fig. 9",
        title: "DAP speedup vs main-memory latency and bandwidth".into(),
        columns,
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// Fig. 10: DAP speedup as the memory-side cache capacity varies over
/// {2, 4, 8} GB (at 102.4 GB/s) and its bandwidth over {102.4, 128,
/// 204.8} GB/s (at 4 GB).
pub fn fig10_capacity_bandwidth(instructions: u64) -> FigureResult {
    let alone = AloneIpcCache::new();
    let mut columns = Vec::new();
    let mut groups: Vec<Vec<Row>> = Vec::new();

    for capacity_gb in [2u64, 4, 8] {
        columns.push(format!("{capacity_gb} GB"));
        let mut config = SystemConfig::sectored_dram_cache(8);
        if let CacheKind::Sectored { capacity_bytes, .. } = &mut config.cache {
            *capacity_bytes = (capacity_gb << 30) / CAPACITY_SCALE;
        }
        groups.push(dap_over_baseline(&config, instructions, &alone));
    }
    for dram in [
        DramConfig::hbm_102(),
        DramConfig::hbm_128(),
        DramConfig::hbm_204(),
    ] {
        columns.push(format!("{:.1} GB/s", dram.peak_gbps()));
        let mut config = SystemConfig::sectored_dram_cache(8);
        if let CacheKind::Sectored { dram: d, .. } = &mut config.cache {
            *d = dram;
        }
        groups.push(dap_over_baseline(&config, instructions, &alone));
    }
    let rows = merge_columns(groups);
    FigureResult {
        id: "Fig. 10",
        title: "DAP speedup vs memory-side cache capacity and bandwidth".into(),
        columns,
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// Fig. 13: DAP on a sixteen-core system — 16 MB L3, 8 GB / 204.8 GB/s
/// memory-side cache, dual-channel DDR4-3200 (51.2 GB/s).
pub fn fig13_sixteen_cores(instructions: u64) -> FigureResult {
    let mut config = SystemConfig::sectored_dram_cache(16)
        .with_mm(DramConfig::ddr4_3200())
        .with_l3_sets(4096);
    if let CacheKind::Sectored {
        capacity_bytes,
        dram,
        ..
    } = &mut config.cache
    {
        *capacity_bytes = (8u64 << 30) / CAPACITY_SCALE;
        *dram = DramConfig::hbm_204();
    }
    let alone = AloneIpcCache::new();
    let rows = dap_over_baseline(&config, instructions, &alone);
    FigureResult {
        id: "Fig. 13",
        title: "DAP speedup on a 16-core system (rate-16)".into(),
        columns: vec!["norm. WS".into()],
        rows,
        summary: vec![],
    }
    .with_geomean()
}

/// Zips single-column row groups into one multi-column row set.
fn merge_columns(groups: Vec<Vec<Row>>) -> Vec<Row> {
    let mut iter = groups.into_iter();
    let mut rows = iter.next().unwrap_or_default();
    for group in iter {
        for (row, extra) in rows.iter_mut().zip(group) {
            debug_assert_eq!(row.name, extra.name);
            row.values.extend(extra.values);
        }
    }
    rows
}
