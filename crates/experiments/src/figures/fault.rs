//! Fault-injection degradation experiment: does re-solving Eq. 4 against
//! measured bandwidth keep DAP near-optimal when a source degrades?

use mem_sim::{FaultSchedule, FaultTarget, SystemConfig, BLOCK_BYTES};

use crate::checkpoint::CheckpointManifest;
use crate::exec::run_variant_grid_recovered;
use crate::metrics::{FigureResult, Row};
use crate::runner::{AloneIpcCache, PolicyKind, WorkloadRun};

use super::sensitive_mixes;

/// Total bandwidth the run extracted from both sources, in GB/s:
/// every CAS on either bus moves one block, over the run's wall time.
pub fn delivered_gbps(run: &WorkloadRun, cpu_ghz: f64) -> f64 {
    let cycles = run
        .result
        .per_core
        .iter()
        .map(|c| c.cycles)
        .max()
        .unwrap_or(0)
        .max(1);
    let bytes = (run.result.stats.ms_cas + run.result.stats.mm_cas) as f64 * BLOCK_BYTES as f64;
    bytes * cpu_ghz / cycles as f64
}

/// The fault scenarios the figure sweeps, with the degradation starting a
/// quarter of the way into the run (`start` in CPU cycles) so most of the
/// measured window is degraded.
fn scenarios(start: u64) -> Vec<(&'static str, Option<FaultSchedule>)> {
    vec![
        ("healthy", None),
        (
            "hbm-half",
            Some(FaultSchedule::new(11).throttle(FaultTarget::Cache, 2, 1, start, u64::MAX)),
        ),
        (
            "hbm-quarter",
            Some(FaultSchedule::new(12).throttle(FaultTarget::Cache, 4, 1, start, u64::MAX)),
        ),
        (
            "hbm-ch-outage",
            Some(
                FaultSchedule::new(13)
                    .channel_outage(FaultTarget::Cache, 0, start, u64::MAX)
                    .channel_outage(FaultTarget::Cache, 1, start, u64::MAX),
            ),
        ),
        (
            "mm-half",
            Some(FaultSchedule::new(14).throttle(FaultTarget::MainMemory, 2, 1, start, u64::MAX)),
        ),
    ]
}

/// Fault-degradation figure: total delivered bandwidth (GB/s, mean over
/// the bandwidth-sensitive mixes) for no partitioning, static-Eq.4 DAP,
/// and measured-bandwidth DAP, per fault scenario — plus the ratio of
/// measured over static DAP and the number of measured-bandwidth budget
/// re-solves. Honors `DAP_RESUME` for checkpoint/resume.
pub fn fig_fault_degradation(instructions: u64) -> FigureResult {
    let manifest = match CheckpointManifest::from_env() {
        Some(Ok(m)) => Some(m),
        Some(Err(e)) => {
            eprintln!("warning: ignoring unreadable DAP_RESUME manifest: {e}");
            None
        }
        None => None,
    };
    let alone = AloneIpcCache::new();
    let mixes = sensitive_mixes(8);
    let cpu_ghz = SystemConfig::sectored_dram_cache(8).cpu_ghz();
    let mut rows = Vec::new();
    for (name, schedule) in scenarios(instructions / 4) {
        let mut config = SystemConfig::sectored_dram_cache(8);
        if let Some(schedule) = schedule {
            config = config.with_faults(schedule);
        }
        let grid = run_variant_grid_recovered(
            &[
                (&config, PolicyKind::Baseline),
                (&config, PolicyKind::Dap),
                (&config, PolicyKind::DapMeasured),
            ],
            &mixes,
            instructions,
            &alone,
            manifest.as_ref(),
            0,
        );
        let cancelled = grid.cancelled();
        for error in &grid.errors {
            // A cancelled grid is expected to be incomplete; only genuine
            // failures deserve per-cell warnings.
            if error.kind != crate::exec::CellErrorKind::Cancelled {
                eprintln!("warning: {error}");
            }
        }
        let mut sums = [0.0f64; 3];
        let mut counted = 0usize;
        let mut resolves = 0u64;
        for runs in &grid.runs {
            let [Some(base), Some(dap), Some(measured)] = &runs[..] else {
                continue;
            };
            sums[0] += delivered_gbps(base, cpu_ghz);
            sums[1] += delivered_gbps(dap, cpu_ghz);
            sums[2] += delivered_gbps(measured, cpu_ghz);
            resolves += measured
                .result
                .dap_decisions
                .map_or(0, |d| d.bandwidth_resolves);
            counted += 1;
        }
        let n = counted.max(1) as f64;
        rows.push(Row::new(
            name.to_string(),
            vec![
                sums[0] / n,
                sums[1] / n,
                sums[2] / n,
                sums[2] / sums[1].max(f64::MIN_POSITIVE),
                resolves as f64,
            ],
        ));
        if cancelled {
            // Stop starting new scenarios: finished cells are in the
            // checkpoint manifest, and `DAP_RESUME` picks up from here.
            eprintln!("fig_fault_degradation: cancelled after scenario {name}; partial figure");
            break;
        }
    }
    FigureResult {
        id: "Fig. F",
        title: "Delivered bandwidth under injected faults: static Eq. 4 vs measured-bandwidth DAP"
            .into(),
        columns: vec![
            "no-DAP GB/s".into(),
            "static DAP GB/s".into(),
            "measured DAP GB/s".into(),
            "measured/static".into(),
            "resolves".into(),
        ],
        rows,
        summary: vec![],
    }
}
