//! One function per paper figure/table.
//!
//! | Function | Reproduces |
//! |---|---|
//! | [`fig01_bw_vs_hitrate`] | Fig. 1 — delivered bandwidth vs hit rate |
//! | [`fig02_edram_capacity`] | Fig. 2 — 512 MB vs 256 MB eDRAM |
//! | [`fig04_bw_sensitivity`] | Fig. 4 — bandwidth-sensitivity classification |
//! | [`fig05_tag_cache`] | Fig. 5 — the tag-cache optimized baseline |
//! | [`fig06_dap_sectored`] | Fig. 6 — DAP speedup + read-miss latency |
//! | [`fig07_decision_mix`] | Fig. 7 — FWB/WB/IFRM/SFRM decision shares |
//! | [`fig08_cas_fraction`] | Fig. 8 — main-memory CAS fraction + hit rates |
//! | [`table1_w_e_sensitivity`] | Table I — window size and efficiency sweep |
//! | [`fig09_mm_technology`] | Fig. 9 — main-memory technology sweep |
//! | [`fig10_capacity_bandwidth`] | Fig. 10 — cache capacity and bandwidth sweep |
//! | [`fig11_related_proposals`] | Fig. 11 — SBD / SBD-WT / BATMAN vs DAP |
//! | [`fig12_all_workloads`] | Fig. 12 — all 44 workloads |
//! | [`fig13_sixteen_cores`] | Fig. 13 — 16-core scaling |
//! | [`fig14_alloy`] | Fig. 14 — Alloy cache + BEAR vs DAP |
//! | [`fig15_edram`] | Fig. 15 — eDRAM capacities with DAP |
//! | [`fig_fault_degradation`] | Extension — delivered bandwidth under injected faults |

mod dap;
mod fault;
mod motivation;
mod rivals;
mod sweeps;

pub use dap::{fig06_dap_sectored, fig07_decision_mix, fig08_cas_fraction, table1_w_e_sensitivity};
pub use fault::{delivered_gbps, fig_fault_degradation};
pub use motivation::{
    fig01_bw_vs_hitrate, fig02_edram_capacity, fig04_bw_sensitivity, fig05_tag_cache,
};
pub use rivals::{fig11_related_proposals, fig12_all_workloads, fig14_alloy, fig15_edram};
pub use sweeps::{fig09_mm_technology, fig10_capacity_bandwidth, fig13_sixteen_cores};

use workloads::{bandwidth_sensitive, rate_mix, Mix};

/// The twelve bandwidth-sensitive rate-`cores` mixes.
pub(crate) fn sensitive_mixes(cores: usize) -> Vec<Mix> {
    bandwidth_sensitive()
        .into_iter()
        .map(|s| rate_mix(s, cores))
        .collect()
}
