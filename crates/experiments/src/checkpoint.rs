//! Crash-tolerant checkpointing for experiment grids.
//!
//! A [`CheckpointManifest`] is an append-only JSONL file (or an in-memory
//! map, for tests) of finished grid cells, each keyed by [`cell_key`] — a
//! digest of the cell's full [`SystemConfig`] fingerprint (fault schedule
//! included), policy, mix, and instruction budget. A grid run through
//! [`run_variant_grid_recovered`] records every finished cell here; after
//! a crash or kill, re-running the same grid with the same manifest (see
//! `DAP_RESUME`) answers the finished cells from the manifest and only
//! simulates the rest.
//!
//! Loading is lenient by construction: a process killed mid-append leaves
//! a truncated final line, which must cost that one cell, not the whole
//! manifest — malformed lines are skipped and counted in
//! [`CheckpointManifest::parse_errors`].
//!
//! [`run_variant_grid_recovered`]: crate::exec::run_variant_grid_recovered

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dap_flock::FlockGuard;
use dap_telemetry::json::{obj, parse, Json};
use mem_sim::{CoreResult, RunResult, SimStats, SystemConfig};
use workloads::Mix;

use crate::exec::lock_unpoisoned;
use crate::fingerprint::ConfigFingerprint;
use crate::runner::{PolicyKind, WorkloadRun};

/// Environment variable naming the checkpoint manifest to resume from
/// (and append to): `DAP_RESUME=grid.ckpt fig_fault_degradation`.
pub const RESUME_ENV: &str = "DAP_RESUME";

/// The manifest path requested via [`RESUME_ENV`], if set and non-empty.
pub fn resume_path_from_env() -> Option<PathBuf> {
    match std::env::var(RESUME_ENV) {
        Ok(path) if !path.is_empty() => Some(PathBuf::from(path)),
        _ => None,
    }
}

/// The stable identity of one grid cell: FNV-1a over the configuration
/// fingerprint (every run-affecting field, fault schedule included), the
/// policy, the mix name, and the instruction budget, prefixed with the
/// human-readable cell coordinates.
pub fn cell_key(config: &SystemConfig, kind: PolicyKind, mix: &Mix, instructions: u64) -> String {
    let mut hash = 0xcbf29ce484222325u64;
    let mut eat = |w: u64| {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    for &w in ConfigFingerprint::of(config).words() {
        eat(w);
    }
    for b in format!("{kind:?}").bytes() {
        eat(u64::from(b));
    }
    for b in mix.name.bytes() {
        eat(u64::from(b));
    }
    eat(instructions);
    format!("{}/{kind:?}-{hash:016x}", mix.name)
}

/// The raw durable-append primitive: one `write_all` of line + newline
/// (a single buffer, so the kernel sees one write syscall, not a line
/// that could interleave with another process between its body and its
/// newline), then flush and `sync_data` so the record survives an
/// immediately following crash or power cut — a checkpoint that only
/// lives in the page cache protects against process death but not
/// machine death.
///
/// Takes **no lock**: callers that already hold a [`FlockGuard`] on
/// `file` (the lease log holds one across its whole read-validate-append
/// cycle) must use this directly — `flock` locks belong to the open file
/// description, so a nested guard's drop would release the outer lock.
pub(crate) fn write_line_synced(mut file: &File, line: &str) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    file.write_all(&buf)?;
    file.flush()?;
    file.sync_data()
}

/// The shared-file append primitive: takes an exclusive `flock(2)` on
/// the file around [`write_line_synced`], so concurrent *processes*
/// appending to the same manifest or lease log cannot interleave torn
/// lines. Lenient loading stays as the backstop for crashes mid-append
/// (the lock does not make a half-written line impossible, only an
/// interleaved one).
pub(crate) fn append_line_synced(file: &File, line: &str) -> std::io::Result<()> {
    let _guard = FlockGuard::exclusive(file)?;
    write_line_synced(file, line)
}

struct ManifestInner {
    file: Option<File>,
    path: Option<PathBuf>,
    completed: HashMap<String, WorkloadRun>,
    /// Earlier records overwritten by a later line with the same key —
    /// kept (not just counted) so the merge can verify the copies were
    /// bit-identical. Arises when a restarted worker re-runs a cell it
    /// had already recorded (crash between the manifest record and the
    /// lease `done`, then stealing its own expired lease back).
    superseded: Vec<(String, WorkloadRun)>,
    parse_errors: u64,
}

/// An append-only store of finished grid cells keyed by [`cell_key`].
///
/// Thread-safe: [`run_variant_grid_recovered`] workers record finished
/// cells concurrently. Each record is one flushed JSONL line, so a crash
/// loses at most the line being written — which lenient loading skips.
///
/// [`run_variant_grid_recovered`]: crate::exec::run_variant_grid_recovered
pub struct CheckpointManifest {
    inner: Mutex<ManifestInner>,
}

impl CheckpointManifest {
    /// Opens (creating if absent) a manifest file, loading every parseable
    /// completed cell and skipping corrupt or truncated lines.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the file. Corrupt *content* is never
    /// an error — it is counted in [`Self::parse_errors`].
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut completed = HashMap::new();
        let mut superseded = Vec::new();
        let mut parse_errors = 0u64;
        let mut torn_tail = false;
        if path.exists() {
            let text = std::fs::read_to_string(path)?;
            torn_tail = !text.is_empty() && !text.ends_with('\n');
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match parse(line).ok().and_then(|v| run_from_json(&v)) {
                    Some((key, run)) => {
                        if let Some(prev) = completed.insert(key.clone(), run) {
                            superseded.push((key, prev));
                        }
                    }
                    None => parse_errors += 1,
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if torn_tail {
            // A crash mid-append left a line without its newline; terminate
            // it (durably, through the same helper every append uses) so
            // the next record starts on a fresh line instead of gluing
            // onto the torn one.
            append_line_synced(&file, "")?;
        }
        Ok(Self {
            inner: Mutex::new(ManifestInner {
                file: Some(file),
                path: Some(path.to_path_buf()),
                completed,
                superseded,
                parse_errors,
            }),
        })
    }

    /// Opens the manifest named by `DAP_RESUME`, when the variable is set.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the named file.
    pub fn from_env() -> Option<std::io::Result<Self>> {
        resume_path_from_env().map(|p| Self::open(&p))
    }

    /// A manifest backed by memory only (tests, or intra-process reuse).
    pub fn in_memory() -> Self {
        Self {
            inner: Mutex::new(ManifestInner {
                file: None,
                path: None,
                completed: HashMap::new(),
                superseded: Vec::new(),
                parse_errors: 0,
            }),
        }
    }

    /// Number of completed cells loaded or recorded.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).completed.len()
    }

    /// Whether no cell has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Corrupt or truncated lines skipped while loading.
    pub fn parse_errors(&self) -> u64 {
        lock_unpoisoned(&self.inner).parse_errors
    }

    /// The backing file path (`None` for in-memory manifests).
    pub fn path(&self) -> Option<PathBuf> {
        lock_unpoisoned(&self.inner).path.clone()
    }

    /// Every completed cell, sorted by key (deterministic iteration for
    /// merge and canonical re-serialization).
    pub fn entries(&self) -> Vec<(String, WorkloadRun)> {
        let inner = lock_unpoisoned(&self.inner);
        let mut out: Vec<_> = inner
            .completed
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The completed cell stored under `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<WorkloadRun> {
        lock_unpoisoned(&self.inner).completed.get(key).cloned()
    }

    /// Records that were overwritten by a later line with the same key
    /// when the file was loaded. A sharded worker that crashed between
    /// recording a cell and marking its lease done, then stole its own
    /// expired lease back after restart, leaves such a pair — the merge
    /// verifies the copies were bit-identical just like duplicates
    /// across different workers' manifests.
    pub fn superseded(&self) -> Vec<(String, WorkloadRun)> {
        lock_unpoisoned(&self.inner).superseded.clone()
    }

    /// Records a finished cell: one appended, fsync'd JSONL line (via
    /// [`append_line_synced`]) plus the in-memory entry. Recording the
    /// same key again overwrites (the runs are deterministic, so the
    /// values agree).
    pub fn record(&self, key: &str, run: &WorkloadRun) {
        let line = run_to_json(key, run).to_string_compact();
        let mut inner = lock_unpoisoned(&self.inner);
        if let Some(file) = inner.file.as_ref() {
            // A failed append degrades the manifest to in-memory for this
            // cell; the grid result is unaffected, but say so — a user
            // relying on resume deserves to know durability was lost.
            if let Err(e) = append_line_synced(file, &line) {
                eprintln!("warning: checkpoint append for {key} failed ({e}); kept in memory only");
            }
        }
        inner.completed.insert(key.to_string(), run.clone());
    }
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn sim_stats_to_json(s: &SimStats) -> Json {
    obj([
        ("demand_reads", num(s.demand_reads)),
        ("demand_writes", num(s.demand_writes)),
        ("ms_read_hits", num(s.ms_read_hits)),
        ("ms_read_misses", num(s.ms_read_misses)),
        ("ms_write_hits", num(s.ms_write_hits)),
        ("ms_write_misses", num(s.ms_write_misses)),
        ("ms_cas", num(s.ms_cas)),
        ("mm_cas", num(s.mm_cas)),
        ("fills", num(s.fills)),
        ("fills_bypassed", num(s.fills_bypassed)),
        ("writes_bypassed", num(s.writes_bypassed)),
        ("forced_read_misses", num(s.forced_read_misses)),
        ("speculative_forced", num(s.speculative_forced)),
        ("speculative_wasted", num(s.speculative_wasted)),
        ("write_throughs", num(s.write_throughs)),
        ("ms_dirty_evictions", num(s.ms_dirty_evictions)),
        ("tag_cache_lookups", num(s.tag_cache_lookups)),
        ("tag_cache_misses", num(s.tag_cache_misses)),
        ("metadata_cas", num(s.metadata_cas)),
        ("footprint_prefetches", num(s.footprint_prefetches)),
        ("l3_accesses", num(s.l3_accesses)),
        ("l3_misses", num(s.l3_misses)),
        ("read_latency_sum", num(s.read_latency_sum)),
        ("read_latency_count", num(s.read_latency_count)),
    ])
}

fn sim_stats_from_json(v: &Json) -> Option<SimStats> {
    let f = |k: &str| v.get(k)?.as_u64();
    Some(SimStats {
        demand_reads: f("demand_reads")?,
        demand_writes: f("demand_writes")?,
        ms_read_hits: f("ms_read_hits")?,
        ms_read_misses: f("ms_read_misses")?,
        ms_write_hits: f("ms_write_hits")?,
        ms_write_misses: f("ms_write_misses")?,
        ms_cas: f("ms_cas")?,
        mm_cas: f("mm_cas")?,
        fills: f("fills")?,
        fills_bypassed: f("fills_bypassed")?,
        writes_bypassed: f("writes_bypassed")?,
        forced_read_misses: f("forced_read_misses")?,
        speculative_forced: f("speculative_forced")?,
        speculative_wasted: f("speculative_wasted")?,
        write_throughs: f("write_throughs")?,
        ms_dirty_evictions: f("ms_dirty_evictions")?,
        tag_cache_lookups: f("tag_cache_lookups")?,
        tag_cache_misses: f("tag_cache_misses")?,
        metadata_cas: f("metadata_cas")?,
        footprint_prefetches: f("footprint_prefetches")?,
        l3_accesses: f("l3_accesses")?,
        l3_misses: f("l3_misses")?,
        read_latency_sum: f("read_latency_sum")?,
        read_latency_count: f("read_latency_count")?,
    })
}

fn decisions_to_json(d: &dap_core::DecisionStats) -> Json {
    obj([
        ("fwb", num(d.fwb)),
        ("wb", num(d.wb)),
        ("ifrm", num(d.ifrm)),
        ("sfrm", num(d.sfrm)),
        ("write_through", num(d.write_through)),
        ("windows_partitioned", num(d.windows_partitioned)),
        ("windows_total", num(d.windows_total)),
        ("bandwidth_resolves", num(d.bandwidth_resolves)),
    ])
}

fn decisions_from_json(v: &Json) -> Option<dap_core::DecisionStats> {
    let f = |k: &str| v.get(k)?.as_u64();
    Some(dap_core::DecisionStats {
        fwb: f("fwb")?,
        wb: f("wb")?,
        ifrm: f("ifrm")?,
        sfrm: f("sfrm")?,
        write_through: f("write_through")?,
        windows_partitioned: f("windows_partitioned")?,
        windows_total: f("windows_total")?,
        bandwidth_resolves: f("bandwidth_resolves")?,
    })
}

pub(crate) fn run_to_json(key: &str, run: &WorkloadRun) -> Json {
    obj([
        ("key", Json::Str(key.to_string())),
        ("weighted_speedup", Json::Num(run.weighted_speedup)),
        (
            "per_core",
            Json::Arr(
                run.result
                    .per_core
                    .iter()
                    .map(|c| {
                        obj([
                            ("instructions", num(c.instructions)),
                            ("cycles", num(c.cycles)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("stats", sim_stats_to_json(&run.result.stats)),
        (
            "dap",
            match &run.result.dap_decisions {
                Some(d) => decisions_to_json(d),
                None => Json::Null,
            },
        ),
    ])
}

pub(crate) fn run_from_json(v: &Json) -> Option<(String, WorkloadRun)> {
    let key = v.get("key")?.as_str()?.to_string();
    let weighted_speedup = v.get("weighted_speedup")?.as_f64()?;
    let per_core = v
        .get("per_core")?
        .as_arr()?
        .iter()
        .map(|c| {
            Some(CoreResult {
                instructions: c.get("instructions")?.as_u64()?,
                cycles: c.get("cycles")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let stats = sim_stats_from_json(v.get("stats")?)?;
    let dap_decisions = match v.get("dap")? {
        Json::Null => None,
        d => Some(decisions_from_json(d)?),
    };
    Some((
        key,
        WorkloadRun {
            result: RunResult {
                per_core,
                stats,
                dap_decisions,
            },
            weighted_speedup,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> WorkloadRun {
        // Every SimStats/DecisionStats field gets a distinct value so a
        // field dropped from the round trip fails the equality below.
        let mut stats = SimStats::default();
        let fields: [&mut u64; 24] = [
            &mut stats.demand_reads,
            &mut stats.demand_writes,
            &mut stats.ms_read_hits,
            &mut stats.ms_read_misses,
            &mut stats.ms_write_hits,
            &mut stats.ms_write_misses,
            &mut stats.ms_cas,
            &mut stats.mm_cas,
            &mut stats.fills,
            &mut stats.fills_bypassed,
            &mut stats.writes_bypassed,
            &mut stats.forced_read_misses,
            &mut stats.speculative_forced,
            &mut stats.speculative_wasted,
            &mut stats.write_throughs,
            &mut stats.ms_dirty_evictions,
            &mut stats.tag_cache_lookups,
            &mut stats.tag_cache_misses,
            &mut stats.metadata_cas,
            &mut stats.footprint_prefetches,
            &mut stats.l3_accesses,
            &mut stats.l3_misses,
            &mut stats.read_latency_sum,
            &mut stats.read_latency_count,
        ];
        for (i, f) in fields.into_iter().enumerate() {
            *f = 1000 + i as u64;
        }
        WorkloadRun {
            result: RunResult {
                per_core: vec![
                    CoreResult {
                        instructions: 5_000,
                        cycles: 9_123,
                    },
                    CoreResult {
                        instructions: 5_000,
                        cycles: 11_001,
                    },
                ],
                stats,
                dap_decisions: Some(dap_core::DecisionStats {
                    fwb: 1,
                    wb: 2,
                    ifrm: 3,
                    sfrm: 4,
                    write_through: 5,
                    windows_partitioned: 6,
                    windows_total: 7,
                    bandwidth_resolves: 8,
                }),
            },
            weighted_speedup: 1.8259023,
        }
    }

    fn assert_same(a: &WorkloadRun, b: &WorkloadRun) {
        assert_eq!(a.result.per_core, b.result.per_core);
        assert_eq!(a.result.stats, b.result.stats);
        assert_eq!(a.result.dap_decisions, b.result.dap_decisions);
        assert_eq!(a.weighted_speedup, b.weighted_speedup);
    }

    #[test]
    fn workload_run_round_trips_exactly() {
        let run = sample_run();
        let line = run_to_json("k1", &run).to_string_compact();
        let (key, back) = run_from_json(&parse(&line).unwrap()).unwrap();
        assert_eq!(key, "k1");
        assert_same(&run, &back);
    }

    #[test]
    fn baseline_run_without_dap_stats_round_trips() {
        let mut run = sample_run();
        run.result.dap_decisions = None;
        let line = run_to_json("k2", &run).to_string_compact();
        let (_, back) = run_from_json(&parse(&line).unwrap()).unwrap();
        assert!(back.result.dap_decisions.is_none());
    }

    #[test]
    fn in_memory_manifest_records_and_looks_up() {
        let m = CheckpointManifest::in_memory();
        assert!(m.is_empty());
        assert!(m.lookup("a").is_none());
        let run = sample_run();
        m.record("a", &run);
        assert_eq!(m.len(), 1);
        assert_same(&m.lookup("a").unwrap(), &run);
    }

    #[test]
    fn reloading_tracks_superseded_records_for_duplicate_keys() {
        let dir = std::env::temp_dir().join(format!("dap-ckpt-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dup.ckpt");
        let _ = std::fs::remove_file(&path);

        let run = sample_run();
        {
            let m = CheckpointManifest::open(&path).unwrap();
            m.record("cell-a", &run);
            m.record("cell-b", &run);
            m.record("cell-a", &run); // restart re-ran its own cell
        }
        let m = CheckpointManifest::open(&path).unwrap();
        assert_eq!(m.len(), 2);
        let superseded = m.superseded();
        assert_eq!(superseded.len(), 1);
        assert_eq!(superseded[0].0, "cell-a");
        assert_same(&superseded[0].1, &run);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_manifest_survives_reopen_and_truncated_tail() {
        let dir = std::env::temp_dir().join(format!("dap-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.ckpt");
        let _ = std::fs::remove_file(&path);

        let run = sample_run();
        {
            let m = CheckpointManifest::open(&path).unwrap();
            m.record("cell-a", &run);
            m.record("cell-b", &run);
        }
        // Simulate a crash mid-append: a truncated last line plus junk.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"key\":\"cell-c\",\"weighted_sp").unwrap();
        }
        let m = CheckpointManifest::open(&path).unwrap();
        assert_eq!(m.len(), 2, "both intact cells load");
        assert_eq!(m.parse_errors(), 1, "the torn line is counted, not fatal");
        assert_same(&m.lookup("cell-a").unwrap(), &run);
        // The reopened manifest still appends.
        m.record("cell-c", &run);
        let again = CheckpointManifest::open(&path).unwrap();
        assert_eq!(again.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    /// Exhaustive torn-tail repair: a crash can truncate the manifest at
    /// any byte of its final line. For every such cut point, reopening
    /// must recover all fully-written cells, count at most one parse
    /// error, and accept further appends that a second reopen then sees.
    #[test]
    fn torn_tail_repairs_at_every_byte_offset_of_the_final_line() {
        let dir = std::env::temp_dir().join(format!("dap-ckpt-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.ckpt");
        let _ = std::fs::remove_file(&path);

        let run = sample_run();
        {
            let m = CheckpointManifest::open(&path).unwrap();
            m.record("cell-a", &run);
            m.record("cell-b", &run);
        }
        let pristine = std::fs::read(&path).unwrap();
        // Start of the final line = one past the newline terminating the
        // first line (both lines end in '\n' after a clean close).
        let first_nl = pristine.iter().position(|&b| b == b'\n').unwrap();
        let last_line_start = first_nl + 1;
        assert!(last_line_start < pristine.len() - 1, "two-line fixture");

        for cut in last_line_start..=pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let m = CheckpointManifest::open(&path).unwrap();
            // Losing only the trailing newline still leaves a complete,
            // parseable JSON line.
            let whole_line_survived = cut >= pristine.len() - 1;
            let expected_cells = if whole_line_survived { 2 } else { 1 };
            assert_eq!(m.len(), expected_cells, "cut at byte {cut}");
            assert!(m.parse_errors() <= 1, "cut at byte {cut}");
            assert_same(&m.lookup("cell-a").unwrap(), &run);
            if whole_line_survived {
                assert_same(&m.lookup("cell-b").unwrap(), &run);
            }
            // The repaired manifest keeps appending on a fresh line.
            m.record("cell-c", &run);
            drop(m);
            let again = CheckpointManifest::open(&path).unwrap();
            assert_eq!(again.len(), expected_cells + 1, "cut at byte {cut}");
            assert_same(&again.lookup("cell-c").unwrap(), &run);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cell_keys_separate_configs_policies_and_faults() {
        use mem_sim::{FaultSchedule, FaultTarget};
        use workloads::{rate_mix, spec};

        let mix = rate_mix(spec("libquantum").unwrap(), 2);
        let base = SystemConfig::sectored_dram_cache(2);
        let faulted = SystemConfig::sectored_dram_cache(2)
            .with_faults(FaultSchedule::new(1).throttle(FaultTarget::Cache, 2, 1, 0, 1_000));
        let keys = [
            cell_key(&base, PolicyKind::Dap, &mix, 10_000),
            cell_key(&base, PolicyKind::Baseline, &mix, 10_000),
            cell_key(&base, PolicyKind::Dap, &mix, 20_000),
            cell_key(&faulted, PolicyKind::Dap, &mix, 10_000),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                assert_eq!(a == b, i == j, "keys {i} and {j}: {a} vs {b}");
            }
        }
        assert_eq!(
            cell_key(&base, PolicyKind::Dap, &mix, 10_000),
            keys[0],
            "keys are stable"
        );
    }
}
