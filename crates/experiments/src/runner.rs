//! Shared experiment machinery: policy construction, mix execution, and
//! weighted-speedup bookkeeping (with cached alone-run IPCs).

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use dap_core::DapConfig;
use mem_sim::clock::Cycle;
use mem_sim::{
    CacheKind, DapPolicy, NoPartitioning, Observation, Partitioner, ReadContext, ReadRoute,
    RunResult, System, SystemConfig, ThreadAwareDap, WriteRoute,
};
use policies::{Batman, Sbd, SbdVariant};
use workloads::{rate_mode, Mix};

use crate::exec::lock_unpoisoned;
use crate::fingerprint::ConfigFingerprint;

/// Which access-partitioning policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No partitioning (the optimized baseline).
    Baseline,
    /// Full DAP (FWB + WB + IFRM + SFRM / write-through).
    Dap,
    /// Full DAP that re-solves its window budget against measured
    /// per-source bandwidth when a fault schedule degrades a source
    /// (static Eq. 4 ratios otherwise — identical to [`Self::Dap`] on a
    /// healthy system).
    DapMeasured,
    /// DAP restricted to FWB and WB (the Fig. 8 ablation).
    DapFwbWbOnly,
    /// Thread-aware DAP: IFRM prefers latency-insensitive threads
    /// (the extension Section IV-A sketches).
    ThreadAwareDap,
    /// Self-balancing dispatch.
    Sbd,
    /// SBD without forced write-outs.
    SbdWt,
    /// BATMAN hit-rate modulation.
    Batman,
}

/// A policy was requested on an architecture that cannot host it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyBuildError {
    /// The policy that was requested.
    pub policy: &'static str,
    /// The architecture that cannot host it.
    pub architecture: &'static str,
}

impl fmt::Display for PolicyBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} needs a memory-side cache to steer accesses between; \
             the `{}` configuration has none",
            self.policy, self.architecture
        )
    }
}

impl std::error::Error for PolicyBuildError {}

fn architecture_name(cache: &CacheKind) -> &'static str {
    match cache {
        CacheKind::None => "no-cache",
        CacheKind::Sectored { .. } => "sectored",
        CacheKind::Alloy { .. } => "alloy",
        CacheKind::FlatTier { .. } => "flat-tier",
        CacheKind::Edram { .. } => "edram",
    }
}

/// Derives the DAP controller configuration implied by a system
/// configuration (architecture, bandwidths, CPU clock).
///
/// # Errors
///
/// [`PolicyBuildError`] if the system has no memory-side cache to
/// partition accesses against (`CacheKind::None`, `CacheKind::FlatTier`).
pub fn dap_config_for(
    config: &SystemConfig,
    window: u32,
    efficiency: f64,
) -> Result<DapConfig, PolicyBuildError> {
    let mm_gbps = config.mm.peak_gbps();
    let base = DapConfig {
        window_cycles: window,
        efficiency,
        mm_gbps,
        cpu_ghz: config.cpu_ghz(),
        ..DapConfig::hbm_ddr4()
    };
    match &config.cache {
        CacheKind::None | CacheKind::FlatTier { .. } => Err(PolicyBuildError {
            policy: "DAP request steering",
            architecture: architecture_name(&config.cache),
        }),
        CacheKind::Sectored { dram, .. } => Ok(DapConfig {
            architecture: dap_core::CacheArchitecture::SingleBus,
            cache_gbps: dram.peak_gbps(),
            split_channel_gbps: None,
            ..base
        }),
        CacheKind::Alloy { dram, .. } => Ok(DapConfig {
            architecture: dap_core::CacheArchitecture::Alloy,
            cache_gbps: dram.peak_gbps() * 2.0 / 3.0,
            split_channel_gbps: None,
            ..base
        }),
        CacheKind::Edram { direction, .. } => Ok(DapConfig {
            architecture: dap_core::CacheArchitecture::SplitChannel,
            cache_gbps: direction.peak_gbps(),
            split_channel_gbps: Some(direction.peak_gbps()),
            ..base
        }),
    }
}

/// DAP with IFRM/SFRM disabled (the paper's "FWB+WB" ablation bars).
#[derive(Debug, Clone)]
struct FwbWbOnly(DapPolicy);

impl Partitioner for FwbWbOnly {
    fn tick(&mut self, now: Cycle) {
        self.0.tick(now);
    }
    fn observe(&mut self, event: Observation, now: Cycle) {
        self.0.observe(event, now);
    }
    fn route_read(&mut self, _ctx: &ReadContext) -> ReadRoute {
        ReadRoute::Lookup
    }
    fn force_clean_hit(&mut self, _ctx: &ReadContext) -> bool {
        false
    }
    fn route_write(&mut self, block: u64, now: Cycle, hit: bool) -> WriteRoute {
        self.0.route_write(block, now, hit)
    }
    fn allow_fill(&mut self, block: u64, now: Cycle) -> bool {
        self.0.allow_fill(block, now)
    }
    fn dap_decisions(&self) -> Option<dap_core::DecisionStats> {
        self.0.dap_decisions()
    }
    fn attach_dap_sink(&mut self, sink: std::sync::Arc<dyn dap_core::TelemetrySink>) {
        self.0.attach_dap_sink(sink);
    }
}

/// Builds a policy instance for a system (default window 64, E = 0.75).
///
/// # Errors
///
/// [`PolicyBuildError`] if the policy needs a memory-side cache the
/// configuration lacks.
pub fn build_policy(
    kind: PolicyKind,
    config: &SystemConfig,
) -> Result<Box<dyn Partitioner>, PolicyBuildError> {
    build_policy_with(kind, config, 64, 0.75)
}

/// Builds a policy with explicit DAP window/efficiency parameters.
///
/// # Errors
///
/// [`PolicyBuildError`] if the policy needs a memory-side cache the
/// configuration lacks.
pub fn build_policy_with(
    kind: PolicyKind,
    config: &SystemConfig,
    window: u32,
    efficiency: f64,
) -> Result<Box<dyn Partitioner>, PolicyBuildError> {
    Ok(match kind {
        PolicyKind::Baseline => Box::new(NoPartitioning),
        PolicyKind::Dap => Box::new(DapPolicy::new(dap_config_for(config, window, efficiency)?)),
        PolicyKind::DapMeasured => Box::new(DapPolicy::with_measured_bandwidth(dap_config_for(
            config, window, efficiency,
        )?)),
        PolicyKind::DapFwbWbOnly => Box::new(FwbWbOnly(DapPolicy::new(dap_config_for(
            config, window, efficiency,
        )?))),
        PolicyKind::ThreadAwareDap => Box::new(ThreadAwareDap::new(
            dap_config_for(config, window, efficiency)?,
            config.cores,
        )),
        PolicyKind::Sbd => Box::new(Sbd::new(SbdVariant::Original)),
        PolicyKind::SbdWt => Box::new(Sbd::new(SbdVariant::WriteThroughOnly)),
        PolicyKind::Batman => {
            let (sets, cache_gbps) = match &config.cache {
                CacheKind::Sectored {
                    capacity_bytes,
                    sector_bytes,
                    ways,
                    dram,
                    ..
                } => (
                    capacity_bytes / sector_bytes / *ways as u64,
                    dram.peak_gbps(),
                ),
                CacheKind::Alloy {
                    capacity_bytes,
                    dram,
                    ..
                } => (capacity_bytes / 64, dram.peak_gbps()),
                CacheKind::Edram {
                    capacity_bytes,
                    sector_bytes,
                    ways,
                    direction,
                } => (
                    capacity_bytes / sector_bytes / *ways as u64,
                    direction.peak_gbps(),
                ),
                CacheKind::None | CacheKind::FlatTier { .. } => {
                    return Err(PolicyBuildError {
                        policy: "BATMAN",
                        architecture: architecture_name(&config.cache),
                    })
                }
            };
            Box::new(Batman::new(sets, cache_gbps, config.mm.peak_gbps()))
        }
    })
}

/// Runs one mix under one policy.
///
/// # Panics
///
/// Panics if the policy cannot run on the configuration's architecture —
/// figure code always pairs compatible ones; CLI callers should use
/// [`build_policy`] and report the error instead.
pub fn run_mix(config: &SystemConfig, kind: PolicyKind, mix: &Mix, instructions: u64) -> RunResult {
    let policy = build_policy(kind, config).unwrap_or_else(|e| panic!("{e}"));
    let mut system = System::with_policy(config.clone(), mix.traces(), policy);
    system.run(instructions)
}

/// A mix run together with its weighted speedup.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// The raw simulation outcome.
    pub result: RunResult,
    /// `sum_i(IPC_i / IPC_alone_i)` with alone runs on the same system
    /// configuration (baseline policy, one core).
    pub weighted_speedup: f64,
}

/// Thread-safe cache of alone-run IPCs keyed by
/// ([`ConfigFingerprint`], benchmark).
///
/// Shared by reference across [`ParallelExecutor`](crate::exec) workers.
/// Concurrent first touches of the same key may each simulate the alone
/// run, but the simulation is deterministic, so every thread computes the
/// same IPC and the first insert wins — results never depend on timing.
#[derive(Debug, Default)]
pub struct AloneIpcCache {
    map: Mutex<HashMap<(ConfigFingerprint, &'static str), f64>>,
}

impl AloneIpcCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct alone runs cached.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.map).len()
    }

    /// Whether no alone run has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The alone-run IPC for `bench` on `config`, simulating it on the
    /// first touch and answering from the cache afterwards.
    pub fn ipc(&self, config: &SystemConfig, bench: &'static str, instructions: u64) -> f64 {
        self.get(config, bench, instructions)
    }

    /// The cached alone IPC for `bench` on `config`, or `None` — never
    /// simulates. For publishing freshly computed entries to the shard
    /// explorer's fleet-shared alone store.
    pub fn peek(&self, config: &SystemConfig, bench: &'static str) -> Option<f64> {
        lock_unpoisoned(&self.map)
            .get(&(ConfigFingerprint::of(config), bench))
            .copied()
    }

    /// Seeds the cache with an alone IPC computed elsewhere (another
    /// worker process, via the shard explorer's shared alone store).
    /// The first value for a key wins, matching [`Self::ipc`]'s insert
    /// discipline — and the simulation is deterministic, so a racing
    /// seed and first-touch computation agree bit for bit anyway.
    pub fn seed(&self, config: &SystemConfig, bench: &'static str, ipc: f64) {
        lock_unpoisoned(&self.map)
            .entry((ConfigFingerprint::of(config), bench))
            .or_insert(ipc);
    }

    fn get(&self, config: &SystemConfig, bench: &'static str, instructions: u64) -> f64 {
        let key = (ConfigFingerprint::of(config), bench);
        if let Some(&v) = lock_unpoisoned(&self.map).get(&key) {
            return v;
        }
        // Simulate outside the lock so one slow alone run never serializes
        // the other workers.
        let mut alone_config = config.clone();
        alone_config.cores = 1;
        // invariant: `bench` comes from a Mix built over the in-tree
        // benchmark table, so the lookup cannot miss.
        let spec = workloads::spec(bench).expect("known benchmark");
        let mut system = System::new(alone_config, rate_mode(spec, 1));
        let ipc = system.run(instructions).per_core[0].ipc();
        *lock_unpoisoned(&self.map).entry(key).or_insert(ipc)
    }
}

/// Runs a mix and computes its weighted speedup, caching alone IPCs.
pub fn run_workload(
    config: &SystemConfig,
    kind: PolicyKind,
    mix: &Mix,
    instructions: u64,
    alone: &AloneIpcCache,
) -> WorkloadRun {
    let result = run_mix(config, kind, mix, instructions);
    let alone_ipcs: Vec<f64> = mix
        .specs
        .iter()
        .map(|s| alone.get(config, s.name, instructions))
        .collect();
    let weighted_speedup = result.weighted_speedup(&alone_ipcs);
    WorkloadRun {
        result,
        weighted_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{rate_mix, spec};

    const INSTR: u64 = 30_000;

    #[test]
    fn dap_config_matches_architecture() {
        let c = SystemConfig::sectored_dram_cache(8);
        let d = dap_config_for(&c, 64, 0.75).unwrap();
        assert_eq!(d.architecture, dap_core::CacheArchitecture::SingleBus);
        assert!((d.cache_gbps - 102.4).abs() < 1e-9);
        assert!((d.mm_gbps - 38.4).abs() < 1e-9);

        let e = dap_config_for(&SystemConfig::edram_cache(8, 256), 64, 0.75).unwrap();
        assert_eq!(e.architecture, dap_core::CacheArchitecture::SplitChannel);
        assert_eq!(e.split_channel_gbps, Some(51.2));

        let a = dap_config_for(&SystemConfig::alloy_cache(8), 64, 0.75).unwrap();
        assert_eq!(a.architecture, dap_core::CacheArchitecture::Alloy);
        assert!((a.cache_gbps - 102.4 * 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn cacheless_architectures_report_errors_instead_of_panicking() {
        let flat = SystemConfig::flat_tier(8, mem_sim::mscache::PlacementGoal::MaximizeFastHits);
        let none = SystemConfig::no_cache(8);
        for config in [&flat, &none] {
            let err = dap_config_for(config, 64, 0.75).unwrap_err();
            assert!(err.to_string().contains("memory-side cache"), "{err}");
            assert!(build_policy(PolicyKind::Dap, config).is_err());
            assert!(build_policy(PolicyKind::Batman, config).is_err());
            // Policies that do not steer into a cache still build.
            assert!(build_policy(PolicyKind::Baseline, config).is_ok());
            assert!(build_policy(PolicyKind::Sbd, config).is_ok());
        }
        let err = build_policy(PolicyKind::Batman, &none).err().unwrap();
        assert_eq!(err.architecture, "no-cache");
    }

    #[test]
    fn every_policy_kind_builds_and_runs() {
        let config = SystemConfig::sectored_dram_cache(2);
        let mix = rate_mix(spec("libquantum").unwrap(), 2);
        for kind in [
            PolicyKind::Baseline,
            PolicyKind::Dap,
            PolicyKind::DapMeasured,
            PolicyKind::DapFwbWbOnly,
            PolicyKind::Sbd,
            PolicyKind::SbdWt,
            PolicyKind::Batman,
        ] {
            let r = run_mix(&config, kind, &mix, INSTR);
            assert_eq!(r.per_core.len(), 2, "{kind:?}");
            assert!(
                r.per_core.iter().all(|c| c.instructions == INSTR),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn alone_cache_reuses_runs() {
        let config = SystemConfig::sectored_dram_cache(2);
        let mix = rate_mix(spec("libquantum").unwrap(), 2);
        let cache = AloneIpcCache::new();
        assert!(cache.is_empty());
        let a = run_workload(&config, PolicyKind::Baseline, &mix, INSTR, &cache);
        assert_eq!(cache.len(), 1, "one benchmark, one alone run");
        let b = run_workload(&config, PolicyKind::Baseline, &mix, INSTR, &cache);
        assert_eq!(cache.len(), 1);
        assert!(
            (a.weighted_speedup - b.weighted_speedup).abs() < 1e-12,
            "deterministic"
        );
        assert!(a.weighted_speedup > 0.0);
    }

    #[test]
    fn fwb_wb_only_never_forces_misses() {
        let config = SystemConfig::sectored_dram_cache(8);
        let mix = rate_mix(spec("libquantum").unwrap(), 8);
        let r = run_mix(&config, PolicyKind::DapFwbWbOnly, &mix, 60_000);
        let d = r.dap_decisions.expect("dap stats available");
        assert_eq!(d.ifrm, 0);
        assert_eq!(d.sfrm, 0);
    }
}
