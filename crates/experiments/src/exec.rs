//! Deterministic, crash-tolerant parallel execution of experiment grids.
//!
//! The paper's evaluation is a grid of mix × policy × architecture
//! simulations, each independent and deterministic. An [`ExperimentPlan`]
//! collects those simulations as closures; a [`ParallelExecutor`] drains
//! the plan over a shared work queue on `std::thread::scope`, returning
//! results **in plan order** regardless of which thread finished which
//! unit first. Because every unit is deterministic and results are
//! reassembled by index, the parallel output is bit-identical to running
//! the same plan on one thread (`crates/experiments/tests/determinism.rs`
//! proves this).
//!
//! Every unit runs under [`catch_unwind`], so one panicking cell cannot
//! take down its siblings: [`ParallelExecutor::try_run`] returns a
//! [`CellError`] (panic payload + cell identity) in that cell's slot and
//! every other result untouched, and [`ParallelExecutor::run_cells`]
//! additionally retries failed cells a bounded number of times.
//! Long grids can also checkpoint finished cells and resume after a crash
//! — see [`run_variant_grid_recovered`] and
//! [`CheckpointManifest`](crate::checkpoint::CheckpointManifest).
//!
//! Thread count comes from [`set_thread_override`] (the `--threads` CLI
//! flag) when set, else `DAP_THREADS`, else all available cores.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use mem_sim::SystemConfig;
use workloads::Mix;

use crate::checkpoint::{cell_key, CheckpointManifest};
use crate::runner::{run_workload, AloneIpcCache, PolicyKind, WorkloadRun};

type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Locks `mutex`, recovering the guard if another thread panicked while
/// holding it. Every value the executor guards stays consistent across a
/// panic (results are computed *before* the slot lock is taken, and the
/// alone-IPC cache only inserts finished entries), so the poison flag
/// carries no information here — a panicking cell must not wedge its
/// siblings.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A grid cell that panicked (through all of its permitted attempts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The cell's index in plan/cell order.
    pub index: usize,
    /// Human-readable cell identity (e.g. `"mix03/Dap"`).
    pub label: String,
    /// The cell's configuration fingerprint / checkpoint key, when known.
    pub fingerprint: Option<String>,
    /// The panic payload, when it was a string (panic messages are).
    pub message: String,
    /// How many times the cell was attempted.
    pub attempts: u32,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} ({}) panicked after {} attempt{}: {}",
            self.index,
            self.label,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )?;
        if let Some(fp) = &self.fingerprint {
            write!(f, " [{fp}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for CellError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Label of a cell the next matching [`run_cells`] /
/// [`run_variant_grid_recovered`] execution should panic in (fault
/// drills; consumed by the first attempt of the first matching cell).
///
/// [`run_cells`]: ParallelExecutor::run_cells
static PANIC_INJECTION: Mutex<Option<String>> = Mutex::new(None);

/// Arms a one-shot panic in the next cell whose label equals `label`
/// (exactly). Used by the CI fault-injection smoke run and the harness
/// tests to prove a crashing cell is isolated; pass `None`-like empty
/// string via [`clear_cell_panic`] instead to disarm.
pub fn inject_cell_panic(label: &str) {
    *lock_unpoisoned(&PANIC_INJECTION) = Some(label.to_string());
}

/// Disarms any pending [`inject_cell_panic`].
pub fn clear_cell_panic() {
    *lock_unpoisoned(&PANIC_INJECTION) = None;
}

/// Panics if a panic injection is armed for `label` (consuming it).
fn fire_injected_panic(label: &str) {
    let mut armed = lock_unpoisoned(&PANIC_INJECTION);
    if armed.as_deref() == Some(label) {
        *armed = None;
        drop(armed);
        panic!("injected panic in cell {label}");
    }
}

/// A named, re-runnable grid cell for [`ParallelExecutor::run_cells`].
pub struct CellSpec<'a, T> {
    label: String,
    fingerprint: Option<String>,
    run: Box<dyn Fn() -> T + Send + Sync + 'a>,
}

impl<'a, T> CellSpec<'a, T> {
    /// A cell running `run`, identified as `label` in errors.
    pub fn new(label: impl Into<String>, run: impl Fn() -> T + Send + Sync + 'a) -> Self {
        Self {
            label: label.into(),
            fingerprint: None,
            run: Box::new(run),
        }
    }

    /// Attaches a configuration fingerprint carried into [`CellError`].
    #[must_use]
    pub fn with_fingerprint(mut self, fingerprint: impl Into<String>) -> Self {
        self.fingerprint = Some(fingerprint.into());
        self
    }

    /// The cell's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// An ordered list of independent simulation units.
#[derive(Default)]
pub struct ExperimentPlan<'a, T> {
    tasks: Vec<Task<'a, T>>,
}

impl<'a, T: Send> ExperimentPlan<'a, T> {
    /// An empty plan.
    pub fn new() -> Self {
        Self { tasks: Vec::new() }
    }

    /// Appends a unit and returns its index in the result vector.
    pub fn add(&mut self, task: impl FnOnce() -> T + Send + 'a) -> usize {
        self.tasks.push(Box::new(task));
        self.tasks.len() - 1
    }

    /// Number of units in the plan.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the plan has no units.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// Process-wide thread-count override (0 = unset). Set by the `--threads`
/// CLI flag; takes precedence over `DAP_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the executor's worker-thread count for this process,
/// taking precedence over the `DAP_THREADS` environment variable.
/// `--threads N` on the CLI binaries calls this. A value of 0 clears
/// the override (callers validating user input should reject 0 before
/// calling — see `dap_bench::cli`).
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Runs work items over a fixed worker pool, depositing each result in
/// the slot matching the item's index so output order never depends on
/// scheduling. `run_one` must be safe to call concurrently.
fn run_indexed<T: Send>(threads: usize, n: usize, run_one: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if threads == 1 || n <= 1 {
        return (0..n).map(run_one).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = std::iter::repeat_with(|| Mutex::new(None))
        .take(n)
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Compute before taking the slot lock: a panicking unit
                // (caught by the caller's closure) never holds it.
                let result = run_one(i);
                *lock_unpoisoned(&slots[i]) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every unit ran")
        })
        .collect()
}

/// Runs an [`ExperimentPlan`] across a fixed number of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor with an explicit thread count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Thread count from [`set_thread_override`] (the `--threads` flag)
    /// when set, else the `DAP_THREADS` environment variable, falling
    /// back to the host's available parallelism.
    pub fn from_env() -> Self {
        let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
        if overridden > 0 {
            return Self::new(overridden);
        }
        let threads = std::env::var("DAP_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Self::new(threads)
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every unit and returns the results in plan order.
    ///
    /// Workers claim units from a shared atomic cursor (dynamic load
    /// balancing: units vary widely in cost). A panicking unit does not
    /// abort the grid — every other unit still runs and this method
    /// panics with the first [`CellError`] only after the grid drains
    /// (use [`Self::try_run`] to receive the errors instead).
    pub fn run<'a, T: Send>(&self, plan: ExperimentPlan<'a, T>) -> Vec<T> {
        self.try_run(plan)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// Runs every unit, isolating panics: each cell's slot holds either
    /// its result or the [`CellError`] describing its panic. Sibling
    /// cells and shared state (the alone-IPC cache) are unaffected by a
    /// crashing cell.
    pub fn try_run<'a, T: Send>(&self, plan: ExperimentPlan<'a, T>) -> Vec<Result<T, CellError>> {
        let queue: Vec<Mutex<Option<Task<'a, T>>>> = plan
            .tasks
            .into_iter()
            .map(|task| Mutex::new(Some(task)))
            .collect();
        run_indexed(self.threads, queue.len(), |i| {
            let task = lock_unpoisoned(&queue[i])
                .take()
                .expect("unit claimed once");
            catch_unwind(AssertUnwindSafe(task)).map_err(|payload| CellError {
                index: i,
                label: format!("unit {i}"),
                fingerprint: None,
                message: panic_message(payload),
                attempts: 1,
            })
        })
    }

    /// Runs named, re-runnable cells with bounded retry: a cell that
    /// panics is re-attempted up to `retries` more times (transient
    /// faults — e.g. an injected fault drill — clear on retry; a
    /// deterministic panic fails every attempt) and reports a
    /// [`CellError`] carrying its label, fingerprint, and attempt count
    /// if every attempt panicked.
    pub fn run_cells<'a, T: Send>(
        &self,
        cells: Vec<CellSpec<'a, T>>,
        retries: u32,
    ) -> Vec<Result<T, CellError>> {
        let cells = &cells;
        run_indexed(self.threads, cells.len(), move |i| {
            let cell = &cells[i];
            let attempts = retries.saturating_add(1);
            let mut message = String::new();
            for _ in 0..attempts {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    fire_injected_panic(&cell.label);
                    (cell.run)()
                }));
                match outcome {
                    Ok(value) => return Ok(value),
                    Err(payload) => message = panic_message(payload),
                }
            }
            Err(CellError {
                index: i,
                label: cell.label.clone(),
                fingerprint: cell.fingerprint.clone(),
                message,
                attempts,
            })
        })
    }
}

/// Runs `variants.len()` workload units per mix in parallel and returns,
/// per mix, the runs in variant order — the shape almost every figure
/// needs (N policy/architecture variants over a list of mixes).
pub fn run_variant_grid(
    variants: &[(&SystemConfig, PolicyKind)],
    mixes: &[Mix],
    instructions: u64,
    alone: &AloneIpcCache,
) -> Vec<Vec<WorkloadRun>> {
    let mut plan = ExperimentPlan::new();
    for mix in mixes {
        for &(config, kind) in variants {
            plan.add(move || run_workload(config, kind, mix, instructions, alone));
        }
    }
    let mut runs = ParallelExecutor::from_env().run(plan).into_iter();
    mixes
        .iter()
        .map(|_| (0..variants.len()).map(|_| runs.next().unwrap()).collect())
        .collect()
}

/// The outcome of a crash-tolerant grid: per-mix rows of per-variant
/// cells (`None` where the cell kept panicking), the errors themselves,
/// and how many cells were answered from the checkpoint without
/// simulating.
#[derive(Debug)]
pub struct RecoveredGrid {
    /// `runs[mix][variant]`; `None` exactly where `errors` has an entry.
    pub runs: Vec<Vec<Option<WorkloadRun>>>,
    /// Every cell that panicked through all its attempts, in cell order.
    pub errors: Vec<CellError>,
    /// Cells restored from the checkpoint manifest instead of simulated.
    pub resumed: usize,
}

impl RecoveredGrid {
    /// Whether every cell produced a result.
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }
}

/// The crash-tolerant sibling of [`run_variant_grid`]: every cell runs
/// under `catch_unwind` with `retries` extra attempts, finished cells are
/// recorded into `checkpoint` (when given) so an interrupted grid resumes
/// instead of recomputing — keyed by
/// [`cell_key`](crate::checkpoint::cell_key), which covers the full
/// system configuration (fault schedule included), policy, mix, and
/// instruction budget — and cells that keep panicking surface as
/// [`CellError`]s instead of aborting the grid.
pub fn run_variant_grid_recovered(
    variants: &[(&SystemConfig, PolicyKind)],
    mixes: &[Mix],
    instructions: u64,
    alone: &AloneIpcCache,
    checkpoint: Option<&CheckpointManifest>,
    retries: u32,
) -> RecoveredGrid {
    let total = mixes.len() * variants.len();
    let mut slots: Vec<Option<Result<WorkloadRun, CellError>>> = (0..total).map(|_| None).collect();
    let mut resumed = 0;
    let mut cells = Vec::new();
    let mut cell_slot = Vec::new();
    for (m, mix) in mixes.iter().enumerate() {
        for (v, &(config, kind)) in variants.iter().enumerate() {
            let slot = m * variants.len() + v;
            let key = cell_key(config, kind, mix, instructions);
            if let Some(manifest) = checkpoint {
                if let Some(run) = manifest.lookup(&key) {
                    slots[slot] = Some(Ok(run));
                    resumed += 1;
                    continue;
                }
            }
            let record_key = key.clone();
            cells.push(
                CellSpec::new(format!("{}/{kind:?}", mix.name), move || {
                    let run = run_workload(config, kind, mix, instructions, alone);
                    if let Some(manifest) = checkpoint {
                        manifest.record(&record_key, &run);
                    }
                    run
                })
                .with_fingerprint(key),
            );
            cell_slot.push(slot);
        }
    }
    let results = ParallelExecutor::from_env().run_cells(cells, retries);
    for (slot, result) in cell_slot.into_iter().zip(results) {
        slots[slot] = Some(result);
    }
    let mut errors = Vec::new();
    let mut runs = Vec::with_capacity(mixes.len());
    let mut it = slots.into_iter();
    for _ in mixes {
        let mut row = Vec::with_capacity(variants.len());
        for _ in variants {
            match it.next().unwrap().expect("every slot filled") {
                Ok(run) => row.push(Some(run)),
                Err(e) => {
                    errors.push(e);
                    row.push(None);
                }
            }
        }
        runs.push(row);
    }
    RecoveredGrid {
        runs,
        errors,
        resumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_plan_order() {
        let mut plan = ExperimentPlan::new();
        for i in 0..64u64 {
            // Uneven unit costs so threads finish out of submission order.
            plan.add(move || {
                let mut acc = i;
                for _ in 0..(i % 7) * 10_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                i
            });
        }
        let out = ParallelExecutor::new(4).run(plan);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut plan = ExperimentPlan::new();
        for _ in 0..37 {
            plan.add(|| counter.fetch_add(1, Ordering::Relaxed));
        }
        let out = ParallelExecutor::new(8).run(plan);
        assert_eq!(out.len(), 37);
        assert_eq!(counter.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut plan = ExperimentPlan::new();
        assert!(plan.is_empty());
        plan.add(|| 41);
        plan.add(|| 42);
        assert_eq!(plan.len(), 2);
        assert_eq!(ParallelExecutor::new(1).run(plan), vec![41, 42]);
    }

    #[test]
    fn executor_clamps_to_one_thread() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
        assert!(ParallelExecutor::from_env().threads() >= 1);
    }

    #[test]
    fn thread_override_beats_environment() {
        set_thread_override(3);
        assert_eq!(ParallelExecutor::from_env().threads(), 3);
        set_thread_override(0); // clear so other tests see the default
        assert!(ParallelExecutor::from_env().threads() >= 1);
    }

    #[test]
    fn panicking_unit_does_not_poison_siblings() {
        for threads in [1, 4] {
            let mut plan = ExperimentPlan::new();
            for i in 0..16u64 {
                plan.add(move || {
                    assert_ne!(i, 5, "unit 5 always crashes");
                    i * 10
                });
            }
            let out = ParallelExecutor::new(threads).try_run(plan);
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 5);
                    assert_eq!(e.attempts, 1);
                    assert!(e.message.contains("unit 5 always crashes"), "{e}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 10, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn run_panics_with_cell_error_after_draining() {
        let completed = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut plan = ExperimentPlan::new();
            plan.add(|| {
                completed.fetch_add(1, Ordering::Relaxed);
            });
            plan.add(|| panic!("boom"));
            plan.add(|| {
                completed.fetch_add(1, Ordering::Relaxed);
            });
            ParallelExecutor::new(2).run(plan)
        }));
        let message = panic_message(outcome.unwrap_err());
        assert!(message.contains("boom"), "{message}");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            2,
            "healthy units finish before the error propagates"
        );
    }

    #[test]
    fn retries_recover_transient_panics() {
        let failures_left = Mutex::new(2u32);
        let cells = vec![CellSpec::new("flaky", || {
            let mut left = lock_unpoisoned(&failures_left);
            if *left > 0 {
                *left -= 1;
                drop(left);
                panic!("transient");
            }
            7u32
        })];
        let out = ParallelExecutor::new(1).run_cells(cells, 2);
        assert_eq!(out[0].as_ref().unwrap(), &7);
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        let cells = vec![
            CellSpec::new("ok", || 1u32),
            CellSpec::new("doomed", || panic!("always")).with_fingerprint("cfg-beef"),
        ];
        let out = ParallelExecutor::new(2).run_cells(cells, 1);
        assert_eq!(out[0].as_ref().unwrap(), &1);
        let e = out[1].as_ref().unwrap_err();
        assert_eq!(e.attempts, 2);
        assert_eq!(e.label, "doomed");
        assert_eq!(e.fingerprint.as_deref(), Some("cfg-beef"));
        assert!(e.to_string().contains("cfg-beef"), "{e}");
    }

    #[test]
    fn injected_panic_fires_once_for_matching_label() {
        clear_cell_panic();
        inject_cell_panic("target");
        let cells = vec![
            CellSpec::new("other", || 0u32),
            CellSpec::new("target", || 1u32),
        ];
        let out = ParallelExecutor::new(1).run_cells(cells, 0);
        assert_eq!(out[0].as_ref().unwrap(), &0, "non-matching cell untouched");
        let e = out[1].as_ref().unwrap_err();
        assert!(e.message.contains("injected panic"), "{e}");
        // The injection is consumed: re-running the same cells succeeds.
        let cells = vec![CellSpec::new("target", || 1u32)];
        let out = ParallelExecutor::new(1).run_cells(cells, 0);
        assert_eq!(out[0].as_ref().unwrap(), &1);
    }
}
