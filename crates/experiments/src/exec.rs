//! Deterministic parallel execution of experiment grids.
//!
//! The paper's evaluation is a grid of mix × policy × architecture
//! simulations, each independent and deterministic. An [`ExperimentPlan`]
//! collects those simulations as closures; a [`ParallelExecutor`] drains
//! the plan over a shared work queue on `std::thread::scope`, returning
//! results **in plan order** regardless of which thread finished which
//! unit first. Because every unit is deterministic and results are
//! reassembled by index, the parallel output is bit-identical to running
//! the same plan on one thread (`crates/experiments/tests/determinism.rs`
//! proves this).
//!
//! Thread count comes from [`set_thread_override`] (the `--threads` CLI
//! flag) when set, else `DAP_THREADS`, else all available cores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mem_sim::SystemConfig;
use workloads::Mix;

use crate::runner::{run_workload, AloneIpcCache, PolicyKind, WorkloadRun};

type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// An ordered list of independent simulation units.
#[derive(Default)]
pub struct ExperimentPlan<'a, T> {
    tasks: Vec<Task<'a, T>>,
}

impl<'a, T: Send> ExperimentPlan<'a, T> {
    /// An empty plan.
    pub fn new() -> Self {
        Self { tasks: Vec::new() }
    }

    /// Appends a unit and returns its index in the result vector.
    pub fn add(&mut self, task: impl FnOnce() -> T + Send + 'a) -> usize {
        self.tasks.push(Box::new(task));
        self.tasks.len() - 1
    }

    /// Number of units in the plan.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the plan has no units.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// Process-wide thread-count override (0 = unset). Set by the `--threads`
/// CLI flag; takes precedence over `DAP_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the executor's worker-thread count for this process,
/// taking precedence over the `DAP_THREADS` environment variable.
/// `--threads N` on the CLI binaries calls this. A value of 0 clears
/// the override (callers validating user input should reject 0 before
/// calling — see `dap_bench::cli`).
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Runs an [`ExperimentPlan`] across a fixed number of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor with an explicit thread count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Thread count from [`set_thread_override`] (the `--threads` flag)
    /// when set, else the `DAP_THREADS` environment variable, falling
    /// back to the host's available parallelism.
    pub fn from_env() -> Self {
        let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
        if overridden > 0 {
            return Self::new(overridden);
        }
        let threads = std::env::var("DAP_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        Self::new(threads)
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every unit and returns the results in plan order.
    ///
    /// Workers claim units from a shared atomic cursor (dynamic load
    /// balancing: units vary widely in cost) and deposit each result in
    /// the slot matching the unit's plan index, so the output order never
    /// depends on scheduling.
    pub fn run<'a, T: Send>(&self, plan: ExperimentPlan<'a, T>) -> Vec<T> {
        let n = plan.tasks.len();
        if self.threads == 1 || n <= 1 {
            return plan.tasks.into_iter().map(|task| task()).collect();
        }
        let queue: Vec<Mutex<Option<Task<'a, T>>>> = plan
            .tasks
            .into_iter()
            .map(|task| Mutex::new(Some(task)))
            .collect();
        let slots: Vec<Mutex<Option<T>>> = std::iter::repeat_with(|| Mutex::new(None))
            .take(n)
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = queue[i].lock().unwrap().take().expect("unit claimed once");
                    *slots[i].lock().unwrap() = Some(task());
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("every unit ran"))
            .collect()
    }
}

/// Runs `variants.len()` workload units per mix in parallel and returns,
/// per mix, the runs in variant order — the shape almost every figure
/// needs (N policy/architecture variants over a list of mixes).
pub fn run_variant_grid(
    variants: &[(&SystemConfig, PolicyKind)],
    mixes: &[Mix],
    instructions: u64,
    alone: &AloneIpcCache,
) -> Vec<Vec<WorkloadRun>> {
    let mut plan = ExperimentPlan::new();
    for mix in mixes {
        for &(config, kind) in variants {
            plan.add(move || run_workload(config, kind, mix, instructions, alone));
        }
    }
    let mut runs = ParallelExecutor::from_env().run(plan).into_iter();
    mixes
        .iter()
        .map(|_| (0..variants.len()).map(|_| runs.next().unwrap()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_plan_order() {
        let mut plan = ExperimentPlan::new();
        for i in 0..64u64 {
            // Uneven unit costs so threads finish out of submission order.
            plan.add(move || {
                let mut acc = i;
                for _ in 0..(i % 7) * 10_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                i
            });
        }
        let out = ParallelExecutor::new(4).run(plan);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut plan = ExperimentPlan::new();
        for _ in 0..37 {
            plan.add(|| counter.fetch_add(1, Ordering::Relaxed));
        }
        let out = ParallelExecutor::new(8).run(plan);
        assert_eq!(out.len(), 37);
        assert_eq!(counter.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut plan = ExperimentPlan::new();
        assert!(plan.is_empty());
        plan.add(|| 41);
        plan.add(|| 42);
        assert_eq!(plan.len(), 2);
        assert_eq!(ParallelExecutor::new(1).run(plan), vec![41, 42]);
    }

    #[test]
    fn executor_clamps_to_one_thread() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
        assert!(ParallelExecutor::from_env().threads() >= 1);
    }

    #[test]
    fn thread_override_beats_environment() {
        set_thread_override(3);
        assert_eq!(ParallelExecutor::from_env().threads(), 3);
        set_thread_override(0); // clear so other tests see the default
        assert!(ParallelExecutor::from_env().threads() >= 1);
    }
}
