//! Deterministic, crash-tolerant parallel execution of experiment grids.
//!
//! The paper's evaluation is a grid of mix × policy × architecture
//! simulations, each independent and deterministic. An [`ExperimentPlan`]
//! collects those simulations as closures; a [`ParallelExecutor`] drains
//! the plan over a shared work queue on `std::thread::scope`, returning
//! results **in plan order** regardless of which thread finished which
//! unit first. Because every unit is deterministic and results are
//! reassembled by index, the parallel output is bit-identical to running
//! the same plan on one thread (`crates/experiments/tests/determinism.rs`
//! proves this).
//!
//! Every unit runs under [`catch_unwind`], so one panicking cell cannot
//! take down its siblings: [`ParallelExecutor::try_run`] returns a
//! [`CellError`] (panic payload + cell identity) in that cell's slot and
//! every other result untouched, and [`ParallelExecutor::run_cells`]
//! additionally retries failed cells a bounded number of times.
//! Long grids can also checkpoint finished cells and resume after a crash
//! — see [`run_variant_grid_recovered`] and
//! [`CheckpointManifest`](crate::checkpoint::CheckpointManifest).
//!
//! Thread count comes from [`set_thread_override`] (the `--threads` CLI
//! flag) when set, else `DAP_THREADS`, else all available cores.
//!
//! Grids stop gracefully, not only crash-tolerantly: a
//! [`CancelToken`](crate::cancel::CancelToken) (tripped by Ctrl-C or a
//! test hook) and a per-cell deadline watchdog (`DAP_CELL_DEADLINE_MS`)
//! are armed as [`mem_sim::ScopedStop`] flags around every cell attempt,
//! the simulator honors them at window granularity, and the resulting
//! [`CellError`]s carry a [`CellErrorKind`] so cancellation, deadline
//! overruns, and genuine panics stay distinguishable.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use mem_sim::{RunInterrupted, ScopedStop, StopCause, SystemConfig};
use workloads::Mix;

use crate::cancel::{global_cancel_token, CancelToken};
use crate::checkpoint::{cell_key, CheckpointManifest};
use crate::runner::{run_workload, AloneIpcCache, PolicyKind, WorkloadRun};

type Task<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Locks `mutex`, recovering the guard if another thread panicked while
/// holding it. Every value the executor guards stays consistent across a
/// panic (results are computed *before* the slot lock is taken, and the
/// alone-IPC cache only inserts finished entries), so the poison flag
/// carries no information here — a panicking cell must not wedge its
/// siblings.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a grid cell failed to produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellErrorKind {
    /// The cell's code panicked (a genuine bug or an injected fault).
    Panicked,
    /// The per-cell deadline watchdog (`DAP_CELL_DEADLINE_MS`) stopped
    /// it; retry-eligible — a transient stall clears on retry.
    DeadlineExceeded,
    /// The grid's [`CancelToken`] tripped; never retried.
    Cancelled,
}

/// A grid cell that failed to produce a result (through all of its
/// permitted attempts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellError {
    /// The cell's index in plan/cell order.
    pub index: usize,
    /// Human-readable cell identity (e.g. `"mix03/Dap"`).
    pub label: String,
    /// The cell's configuration fingerprint / checkpoint key, when known.
    pub fingerprint: Option<String>,
    /// The panic payload, when it was a string (panic messages are), or
    /// the interruption description.
    pub message: String,
    /// How many times the cell was attempted (0 = cancelled before its
    /// first attempt started).
    pub attempts: u32,
    /// What stopped the cell.
    pub kind: CellErrorKind,
}

impl CellError {
    /// A cell the executor never started because the grid was already
    /// cancelled when its turn came.
    fn cancelled_before_start(index: usize, label: String, fingerprint: Option<String>) -> Self {
        Self {
            index,
            label,
            fingerprint,
            message: "grid cancelled before this cell started".to_string(),
            attempts: 0,
            kind: CellErrorKind::Cancelled,
        }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            CellErrorKind::Panicked => "panicked",
            CellErrorKind::DeadlineExceeded => "exceeded its deadline",
            CellErrorKind::Cancelled => "was cancelled",
        };
        if self.attempts == 0 {
            write!(
                f,
                "cell {} ({}) {} before starting",
                self.index, self.label, what
            )?;
        } else {
            write!(
                f,
                "cell {} ({}) {} after {} attempt{}: {}",
                self.index,
                self.label,
                what,
                self.attempts,
                if self.attempts == 1 { "" } else { "s" },
                self.message
            )?;
        }
        if let Some(fp) = &self.fingerprint {
            write!(f, " [{fp}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for CellError {}

/// Distinguishes a cooperative interruption (the run loop's typed
/// [`RunInterrupted`] payload) from a genuine panic.
pub(crate) fn classify(payload: &(dyn std::any::Any + Send)) -> CellErrorKind {
    match payload.downcast_ref::<RunInterrupted>() {
        Some(interrupted) => match interrupted.cause {
            StopCause::Cancelled => CellErrorKind::Cancelled,
            StopCause::DeadlineExceeded => CellErrorKind::DeadlineExceeded,
        },
        None => CellErrorKind::Panicked,
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(interrupted) = payload.downcast_ref::<RunInterrupted>() {
        interrupted.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Label of a cell the next matching [`run_cells`] /
/// [`run_variant_grid_recovered`] execution should panic in (fault
/// drills; consumed by the first attempt of the first matching cell).
///
/// [`run_cells`]: ParallelExecutor::run_cells
static PANIC_INJECTION: Mutex<Option<String>> = Mutex::new(None);

/// Arms a one-shot panic in the next cell whose label equals `label`
/// (exactly). Used by the CI fault-injection smoke run and the harness
/// tests to prove a crashing cell is isolated; pass `None`-like empty
/// string via [`clear_cell_panic`] instead to disarm.
pub fn inject_cell_panic(label: &str) {
    *lock_unpoisoned(&PANIC_INJECTION) = Some(label.to_string());
}

/// Disarms any pending [`inject_cell_panic`].
pub fn clear_cell_panic() {
    *lock_unpoisoned(&PANIC_INJECTION) = None;
}

/// Panics if a panic injection is armed for `label` (consuming it).
fn fire_injected_panic(label: &str) {
    let mut armed = lock_unpoisoned(&PANIC_INJECTION);
    if armed.as_deref() == Some(label) {
        *armed = None;
        drop(armed);
        panic!("injected panic in cell {label}");
    }
}

/// A named, re-runnable grid cell for [`ParallelExecutor::run_cells`].
pub struct CellSpec<'a, T> {
    label: String,
    fingerprint: Option<String>,
    run: Box<dyn Fn() -> T + Send + Sync + 'a>,
}

impl<'a, T> CellSpec<'a, T> {
    /// A cell running `run`, identified as `label` in errors.
    pub fn new(label: impl Into<String>, run: impl Fn() -> T + Send + Sync + 'a) -> Self {
        Self {
            label: label.into(),
            fingerprint: None,
            run: Box::new(run),
        }
    }

    /// Attaches a configuration fingerprint carried into [`CellError`].
    #[must_use]
    pub fn with_fingerprint(mut self, fingerprint: impl Into<String>) -> Self {
        self.fingerprint = Some(fingerprint.into());
        self
    }

    /// The cell's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// An ordered list of independent simulation units.
#[derive(Default)]
pub struct ExperimentPlan<'a, T> {
    tasks: Vec<Task<'a, T>>,
}

impl<'a, T: Send> ExperimentPlan<'a, T> {
    /// An empty plan.
    pub fn new() -> Self {
        Self { tasks: Vec::new() }
    }

    /// Appends a unit and returns its index in the result vector.
    pub fn add(&mut self, task: impl FnOnce() -> T + Send + 'a) -> usize {
        self.tasks.push(Box::new(task));
        self.tasks.len() - 1
    }

    /// Number of units in the plan.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the plan has no units.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// Process-wide thread-count override (0 = unset). Set by the `--threads`
/// CLI flag; takes precedence over `DAP_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the executor's worker-thread count for this process,
/// taking precedence over the `DAP_THREADS` environment variable.
/// `--threads N` on the CLI binaries calls this. A value of 0 clears
/// the override (callers validating user input should reject 0 before
/// calling — see `dap_bench::cli`).
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Runs work items over a fixed worker pool, depositing each result in
/// the slot matching the item's index so output order never depends on
/// scheduling. `run_one` must be safe to call concurrently.
fn run_indexed<T: Send>(threads: usize, n: usize, run_one: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if threads == 1 || n <= 1 {
        return (0..n).map(run_one).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = std::iter::repeat_with(|| Mutex::new(None))
        .take(n)
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Compute before taking the slot lock: a panicking unit
                // (caught by the caller's closure) never holds it.
                let result = run_one(i);
                *lock_unpoisoned(&slots[i]) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // invariant: run_indexed hands every index in 0..units to
                // exactly one worker, and workers fill their slot before
                // returning.
                .expect("every unit ran")
        })
        .collect()
}

/// One watched cell's deadline state. The stop flag is only mutated
/// under the `started` lock (by both the worker arming the slot and the
/// watchdog tripping it), so a trip can never leak from an expired
/// attempt into a fresh one.
struct WatchSlot {
    /// When the current attempt started; `None` between attempts.
    started: Mutex<Option<Instant>>,
    /// The stop flag installed as the attempt's `ScopedStop` entry.
    stop: Arc<AtomicBool>,
}

/// A background thread enforcing the per-cell deadline: it polls every
/// armed [`WatchSlot`] and trips the slot's stop flag once the attempt
/// has run past the deadline. The simulation notices at its next window
/// boundary and unwinds with [`StopCause::DeadlineExceeded`].
struct Watchdog {
    slots: Arc<Vec<WatchSlot>>,
    done: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn new(cells: usize, deadline: Duration) -> Self {
        let slots: Arc<Vec<WatchSlot>> = Arc::new(
            std::iter::repeat_with(|| WatchSlot {
                started: Mutex::new(None),
                stop: Arc::new(AtomicBool::new(false)),
            })
            .take(cells)
            .collect(),
        );
        let done = Arc::new(AtomicBool::new(false));
        // Poll well inside the deadline so an overrun is caught promptly,
        // but never busier than every 5 ms.
        let poll = (deadline / 8).clamp(Duration::from_millis(5), Duration::from_millis(50));
        let handle = std::thread::spawn({
            let slots = Arc::clone(&slots);
            let done = Arc::clone(&done);
            move || {
                while !done.load(Ordering::Relaxed) {
                    for slot in slots.iter() {
                        let started = lock_unpoisoned(&slot.started);
                        if let Some(t0) = *started {
                            if t0.elapsed() >= deadline {
                                slot.stop.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    std::thread::park_timeout(poll);
                }
            }
        });
        Self {
            slots,
            done,
            handle: Some(handle),
        }
    }

    /// Arms cell `i`'s slot for a fresh attempt (resetting any trip left
    /// by a previous attempt) and returns its stop flag.
    fn arm(&self, i: usize) -> Arc<AtomicBool> {
        let slot = &self.slots[i];
        let mut started = lock_unpoisoned(&slot.started);
        slot.stop.store(false, Ordering::Relaxed);
        *started = Some(Instant::now());
        drop(started);
        Arc::clone(&slot.stop)
    }

    /// Disarms cell `i`'s slot after an attempt finishes.
    fn disarm(&self, i: usize) {
        *lock_unpoisoned(&self.slots[i].started) = None;
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// The `DAP_CELL_DEADLINE_MS` environment variable: per-cell deadline in
/// milliseconds for [`ParallelExecutor::from_env`] grids.
pub const CELL_DEADLINE_ENV: &str = "DAP_CELL_DEADLINE_MS";

/// Parses `DAP_CELL_DEADLINE_MS`; malformed or zero values are reported
/// once and ignored rather than aborting a multi-hour run.
fn deadline_from_env() -> Option<Duration> {
    let raw = std::env::var(CELL_DEADLINE_ENV).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return None;
    }
    match trimmed.parse::<u64>() {
        Ok(ms) if ms > 0 => Some(Duration::from_millis(ms)),
        _ => {
            eprintln!(
                "warning: ignoring invalid {CELL_DEADLINE_ENV}={raw:?} \
                 (expected a positive integer of milliseconds)"
            );
            None
        }
    }
}

/// Runs an [`ExperimentPlan`] across a fixed number of worker threads.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    threads: usize,
    cancel: Option<CancelToken>,
    deadline: Option<Duration>,
}

impl ParallelExecutor {
    /// An executor with an explicit thread count (clamped to at least 1)
    /// and no cancellation or deadline attached.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            cancel: None,
            deadline: None,
        }
    }

    /// Thread count from [`set_thread_override`] (the `--threads` flag)
    /// when set, else the `DAP_THREADS` environment variable, falling
    /// back to the host's available parallelism. The
    /// [`global_cancel_token`] is attached (so Ctrl-C stops the grid)
    /// along with any `DAP_CELL_DEADLINE_MS` per-cell deadline.
    pub fn from_env() -> Self {
        let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
        let threads = if overridden > 0 {
            overridden
        } else {
            std::env::var("DAP_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                })
        };
        let mut exec = Self::new(threads).with_cancel(global_cancel_token().clone());
        if let Some(deadline) = deadline_from_env() {
            exec = exec.with_deadline(deadline);
        }
        exec
    }

    /// Attaches a cancel token: tripping it stops in-flight cells at
    /// their next simulation window and keeps queued cells from starting.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a per-cell deadline: an attempt running longer is
    /// stopped by the watchdog and reported as
    /// [`CellErrorKind::DeadlineExceeded`] (retry-eligible in
    /// [`Self::run_cells`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every unit and returns the results in plan order.
    ///
    /// Workers claim units from a shared atomic cursor (dynamic load
    /// balancing: units vary widely in cost). A panicking unit does not
    /// abort the grid — every other unit still runs and this method
    /// panics with the first [`CellError`] only after the grid drains
    /// (use [`Self::try_run`] to receive the errors instead).
    pub fn run<'a, T: Send>(&self, plan: ExperimentPlan<'a, T>) -> Vec<T> {
        self.try_run(plan)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
            .collect()
    }

    /// Runs every unit, isolating panics: each cell's slot holds either
    /// its result or the [`CellError`] describing its panic. Sibling
    /// cells and shared state (the alone-IPC cache) are unaffected by a
    /// crashing cell.
    pub fn try_run<'a, T: Send>(&self, plan: ExperimentPlan<'a, T>) -> Vec<Result<T, CellError>> {
        let queue: Vec<Mutex<Option<Task<'a, T>>>> = plan
            .tasks
            .into_iter()
            .map(|task| Mutex::new(Some(task)))
            .collect();
        let cancel = self.cancel.as_ref();
        run_indexed(self.threads, queue.len(), |i| {
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(CellError::cancelled_before_start(
                        i,
                        format!("unit {i}"),
                        None,
                    ));
                }
            }
            let task = lock_unpoisoned(&queue[i])
                .take()
                // invariant: run_indexed dispatches each index once, so
                // no other worker can have taken this task.
                .expect("unit claimed once");
            let stop_flags: Vec<_> = cancel
                .map(|token| vec![(token.flag(), StopCause::Cancelled)])
                .unwrap_or_default();
            let _armed = ScopedStop::install(&stop_flags);
            catch_unwind(AssertUnwindSafe(task)).map_err(|payload| CellError {
                index: i,
                label: format!("unit {i}"),
                fingerprint: None,
                kind: classify(payload.as_ref()),
                message: panic_message(payload),
                attempts: 1,
            })
        })
    }

    /// Runs named, re-runnable cells with bounded retry: a cell that
    /// panics or exceeds its deadline is re-attempted up to `retries`
    /// more times (transient faults — e.g. an injected fault drill or a
    /// machine stall — clear on retry; a deterministic failure exhausts
    /// every attempt) and reports a [`CellError`] carrying its label,
    /// fingerprint, attempt count, and [`CellErrorKind`] if no attempt
    /// succeeded. A tripped cancel token is never retried, and cells
    /// whose turn comes after the trip are not started.
    pub fn run_cells<'a, T: Send>(
        &self,
        cells: Vec<CellSpec<'a, T>>,
        retries: u32,
    ) -> Vec<Result<T, CellError>> {
        let cells = &cells;
        let watchdog = self.deadline.map(|d| Watchdog::new(cells.len(), d));
        let watchdog = watchdog.as_ref();
        let cancel = self.cancel.as_ref();
        run_indexed(self.threads, cells.len(), move |i| {
            let cell = &cells[i];
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(CellError::cancelled_before_start(
                        i,
                        cell.label.clone(),
                        cell.fingerprint.clone(),
                    ));
                }
            }
            let attempts = retries.saturating_add(1);
            let mut message = String::new();
            let mut kind = CellErrorKind::Panicked;
            let mut attempted = 0;
            for _ in 0..attempts {
                attempted += 1;
                let mut stop_flags = Vec::new();
                if let Some(token) = cancel {
                    stop_flags.push((token.flag(), StopCause::Cancelled));
                }
                if let Some(dog) = watchdog {
                    stop_flags.push((dog.arm(i), StopCause::DeadlineExceeded));
                }
                let armed = ScopedStop::install(&stop_flags);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    fire_injected_panic(&cell.label);
                    (cell.run)()
                }));
                drop(armed);
                if let Some(dog) = watchdog {
                    dog.disarm(i);
                }
                match outcome {
                    Ok(value) => {
                        if let Some(token) = cancel {
                            token.note_completed();
                        }
                        return Ok(value);
                    }
                    Err(payload) => {
                        kind = classify(payload.as_ref());
                        message = panic_message(payload);
                        if kind == CellErrorKind::Cancelled {
                            break;
                        }
                    }
                }
            }
            Err(CellError {
                index: i,
                label: cell.label.clone(),
                fingerprint: cell.fingerprint.clone(),
                message,
                attempts: attempted,
                kind,
            })
        })
    }
}

/// Runs `variants.len()` workload units per mix in parallel and returns,
/// per mix, the runs in variant order — the shape almost every figure
/// needs (N policy/architecture variants over a list of mixes).
pub fn run_variant_grid(
    variants: &[(&SystemConfig, PolicyKind)],
    mixes: &[Mix],
    instructions: u64,
    alone: &AloneIpcCache,
) -> Vec<Vec<WorkloadRun>> {
    let _progress = crate::progress::grid_started(mixes.len() * variants.len());
    let mut plan = ExperimentPlan::new();
    for mix in mixes {
        for &(config, kind) in variants {
            plan.add(move || {
                let run = run_workload(config, kind, mix, instructions, alone);
                crate::progress::cell_finished(crate::progress::windows_of(&run));
                run
            });
        }
    }
    let mut runs = ParallelExecutor::from_env().run(plan).into_iter();
    mixes
        .iter()
        // invariant: run() returns exactly one result per added task, and
        // the plan added mixes.len() * variants.len() tasks above.
        .map(|_| (0..variants.len()).map(|_| runs.next().unwrap()).collect())
        .collect()
}

/// The outcome of a crash-tolerant grid: per-mix rows of per-variant
/// cells (`None` where the cell kept panicking), the errors themselves,
/// and how many cells were answered from the checkpoint without
/// simulating.
#[derive(Debug)]
pub struct RecoveredGrid {
    /// `runs[mix][variant]`; `None` exactly where `errors` has an entry.
    pub runs: Vec<Vec<Option<WorkloadRun>>>,
    /// Every cell that panicked through all its attempts, in cell order.
    pub errors: Vec<CellError>,
    /// Cells restored from the checkpoint manifest instead of simulated.
    pub resumed: usize,
}

impl RecoveredGrid {
    /// Whether every cell produced a result.
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }

    /// Whether the grid was stopped by cancellation (at least one cell
    /// was cancelled rather than failing on its own).
    pub fn cancelled(&self) -> bool {
        self.errors
            .iter()
            .any(|e| e.kind == CellErrorKind::Cancelled)
    }

    /// Converts the grid into the complete per-mix rows, or the
    /// [`ExecError`] describing why it is incomplete (cancellation wins
    /// over cell failures: an interrupted grid should be resumed, not
    /// diagnosed).
    pub fn into_result(self) -> Result<Vec<Vec<WorkloadRun>>, ExecError> {
        if self.cancelled() {
            let total: usize = self.runs.iter().map(Vec::len).sum();
            return Err(ExecError::Cancelled {
                completed: total - self.errors.len(),
                total,
            });
        }
        if !self.errors.is_empty() {
            return Err(ExecError::Failed(self.errors));
        }
        Ok(self
            .runs
            .into_iter()
            .map(|row| {
                row.into_iter()
                    // invariant: no errors means every slot holds a run.
                    .map(|cell| cell.expect("complete grid has every cell"))
                    .collect()
            })
            .collect())
    }
}

/// Why a crash-tolerant grid did not complete.
#[derive(Debug)]
pub enum ExecError {
    /// The grid's cancel token tripped mid-run. Finished cells are in
    /// the checkpoint manifest (when one was given); re-running with
    /// `DAP_RESUME` completes the grid bit-identically.
    Cancelled {
        /// Cells that finished (including checkpoint-resumed ones).
        completed: usize,
        /// Total cells in the grid.
        total: usize,
    },
    /// One or more cells failed through all their permitted attempts.
    Failed(Vec<CellError>),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cancelled { completed, total } => {
                write!(
                    f,
                    "grid cancelled after {completed}/{total} cells completed"
                )
            }
            Self::Failed(errors) => {
                write!(f, "{} cell(s) failed", errors.len())?;
                if let Some(first) = errors.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The crash-tolerant sibling of [`run_variant_grid`]: every cell runs
/// under `catch_unwind` with `retries` extra attempts, finished cells are
/// recorded into `checkpoint` (when given) so an interrupted grid resumes
/// instead of recomputing — keyed by
/// [`cell_key`](crate::checkpoint::cell_key), which covers the full
/// system configuration (fault schedule included), policy, mix, and
/// instruction budget — and cells that keep panicking surface as
/// [`CellError`]s instead of aborting the grid.
pub fn run_variant_grid_recovered(
    variants: &[(&SystemConfig, PolicyKind)],
    mixes: &[Mix],
    instructions: u64,
    alone: &AloneIpcCache,
    checkpoint: Option<&CheckpointManifest>,
    retries: u32,
) -> RecoveredGrid {
    run_variant_grid_recovered_with(
        variants,
        mixes,
        instructions,
        alone,
        checkpoint,
        retries,
        &ParallelExecutor::from_env(),
    )
}

/// [`run_variant_grid_recovered`] with an explicit executor, so callers
/// (and the cancellation tests) control the thread count, cancel token,
/// and per-cell deadline instead of inheriting the environment's.
#[allow(clippy::too_many_arguments)]
pub fn run_variant_grid_recovered_with(
    variants: &[(&SystemConfig, PolicyKind)],
    mixes: &[Mix],
    instructions: u64,
    alone: &AloneIpcCache,
    checkpoint: Option<&CheckpointManifest>,
    retries: u32,
    executor: &ParallelExecutor,
) -> RecoveredGrid {
    let total = mixes.len() * variants.len();
    if let Some(manifest) = checkpoint {
        let parse_errors = manifest.parse_errors();
        if parse_errors > 0 {
            // Skipping corrupt lines is the right recovery, but doing it
            // silently hides data loss: those cells will re-simulate, and
            // a manifest that keeps accumulating bad lines points at a
            // real problem (disk, concurrent writer without the lock).
            let path = manifest
                .path()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "<in-memory>".to_string());
            eprintln!(
                "warning: checkpoint manifest {path}: skipped {parse_errors} \
                 corrupt line(s) while loading; the affected cells will be re-simulated"
            );
        }
    }
    let mut slots: Vec<Option<Result<WorkloadRun, CellError>>> = (0..total).map(|_| None).collect();
    let mut resumed = 0;
    let mut cells = Vec::new();
    let mut cell_slot = Vec::new();
    for (m, mix) in mixes.iter().enumerate() {
        for (v, &(config, kind)) in variants.iter().enumerate() {
            let slot = m * variants.len() + v;
            let key = cell_key(config, kind, mix, instructions);
            if let Some(manifest) = checkpoint {
                if let Some(run) = manifest.lookup(&key) {
                    slots[slot] = Some(Ok(run));
                    resumed += 1;
                    continue;
                }
            }
            let record_key = key.clone();
            cells.push(
                CellSpec::new(format!("{}/{kind:?}", mix.name), move || {
                    let run = run_workload(config, kind, mix, instructions, alone);
                    if let Some(manifest) = checkpoint {
                        manifest.record(&record_key, &run);
                    }
                    crate::progress::cell_finished(crate::progress::windows_of(&run));
                    run
                })
                .with_fingerprint(key),
            );
            cell_slot.push(slot);
        }
    }
    let _progress = crate::progress::grid_started(cells.len());
    let results = executor.run_cells(cells, retries);
    for (slot, result) in cell_slot.into_iter().zip(results) {
        slots[slot] = Some(result);
    }
    let mut errors = Vec::new();
    let mut runs = Vec::with_capacity(mixes.len());
    let mut it = slots.into_iter();
    for _ in mixes {
        let mut row = Vec::with_capacity(variants.len());
        for _ in variants {
            // invariant: the loop above placed a result (resumed, run, or
            // error) into each of the mixes × variants slots.
            match it.next().unwrap().expect("every slot filled") {
                Ok(run) => row.push(Some(run)),
                Err(e) => {
                    errors.push(e);
                    row.push(None);
                }
            }
        }
        runs.push(row);
    }
    RecoveredGrid {
        runs,
        errors,
        resumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_plan_order() {
        let mut plan = ExperimentPlan::new();
        for i in 0..64u64 {
            // Uneven unit costs so threads finish out of submission order.
            plan.add(move || {
                let mut acc = i;
                for _ in 0..(i % 7) * 10_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                std::hint::black_box(acc);
                i
            });
        }
        let out = ParallelExecutor::new(4).run(plan);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn every_unit_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut plan = ExperimentPlan::new();
        for _ in 0..37 {
            plan.add(|| counter.fetch_add(1, Ordering::Relaxed));
        }
        let out = ParallelExecutor::new(8).run(plan);
        assert_eq!(out.len(), 37);
        assert_eq!(counter.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut plan = ExperimentPlan::new();
        assert!(plan.is_empty());
        plan.add(|| 41);
        plan.add(|| 42);
        assert_eq!(plan.len(), 2);
        assert_eq!(ParallelExecutor::new(1).run(plan), vec![41, 42]);
    }

    #[test]
    fn executor_clamps_to_one_thread() {
        assert_eq!(ParallelExecutor::new(0).threads(), 1);
        assert!(ParallelExecutor::from_env().threads() >= 1);
    }

    #[test]
    fn thread_override_beats_environment() {
        set_thread_override(3);
        assert_eq!(ParallelExecutor::from_env().threads(), 3);
        set_thread_override(0); // clear so other tests see the default
        assert!(ParallelExecutor::from_env().threads() >= 1);
    }

    #[test]
    fn panicking_unit_does_not_poison_siblings() {
        for threads in [1, 4] {
            let mut plan = ExperimentPlan::new();
            for i in 0..16u64 {
                plan.add(move || {
                    assert_ne!(i, 5, "unit 5 always crashes");
                    i * 10
                });
            }
            let out = ParallelExecutor::new(threads).try_run(plan);
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 5);
                    assert_eq!(e.attempts, 1);
                    assert!(e.message.contains("unit 5 always crashes"), "{e}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 10, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn run_panics_with_cell_error_after_draining() {
        let completed = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut plan = ExperimentPlan::new();
            plan.add(|| {
                completed.fetch_add(1, Ordering::Relaxed);
            });
            plan.add(|| panic!("boom"));
            plan.add(|| {
                completed.fetch_add(1, Ordering::Relaxed);
            });
            ParallelExecutor::new(2).run(plan)
        }));
        let message = panic_message(outcome.unwrap_err());
        assert!(message.contains("boom"), "{message}");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            2,
            "healthy units finish before the error propagates"
        );
    }

    #[test]
    fn retries_recover_transient_panics() {
        let failures_left = Mutex::new(2u32);
        let cells = vec![CellSpec::new("flaky", || {
            let mut left = lock_unpoisoned(&failures_left);
            if *left > 0 {
                *left -= 1;
                drop(left);
                panic!("transient");
            }
            7u32
        })];
        let out = ParallelExecutor::new(1).run_cells(cells, 2);
        assert_eq!(out[0].as_ref().unwrap(), &7);
    }

    #[test]
    fn exhausted_retries_report_attempt_count() {
        let cells = vec![
            CellSpec::new("ok", || 1u32),
            CellSpec::new("doomed", || panic!("always")).with_fingerprint("cfg-beef"),
        ];
        let out = ParallelExecutor::new(2).run_cells(cells, 1);
        assert_eq!(out[0].as_ref().unwrap(), &1);
        let e = out[1].as_ref().unwrap_err();
        assert_eq!(e.attempts, 2);
        assert_eq!(e.label, "doomed");
        assert_eq!(e.fingerprint.as_deref(), Some("cfg-beef"));
        assert!(e.to_string().contains("cfg-beef"), "{e}");
    }

    #[test]
    fn injected_panic_fires_once_for_matching_label() {
        clear_cell_panic();
        inject_cell_panic("target");
        let cells = vec![
            CellSpec::new("other", || 0u32),
            CellSpec::new("target", || 1u32),
        ];
        let out = ParallelExecutor::new(1).run_cells(cells, 0);
        assert_eq!(out[0].as_ref().unwrap(), &0, "non-matching cell untouched");
        let e = out[1].as_ref().unwrap_err();
        assert!(e.message.contains("injected panic"), "{e}");
        // The injection is consumed: re-running the same cells succeeds.
        let cells = vec![CellSpec::new("target", || 1u32)];
        let out = ParallelExecutor::new(1).run_cells(cells, 0);
        assert_eq!(out[0].as_ref().unwrap(), &1);
    }
}
