//! Live grid progress on stderr.
//!
//! A figure sweep is minutes of silence without this: the executor knows
//! how many cells exist and the runner knows how many DAP windows each
//! finished cell simulated, so between them a single process-global
//! reporter can print `cells done, windows/s, ETA`. The reporter is
//! deliberately conservative:
//!
//! * it writes only to **stderr**, never stdout (figure output is parsed
//!   and compared byte-for-byte by CI),
//! * it is **off** when stderr is not a terminal or `DAP_QUIET=1` is set,
//!   so CI logs and piped runs stay clean,
//! * emissions are rate-limited (at most ~5 lines/s, rewritten in place
//!   with `\r`), so the reporter never becomes the bottleneck it is
//!   supposed to diagnose.
//!
//! [`grid_started`] installs the reporter for one grid and returns a
//! guard; the grid helpers in [`crate::exec`] and [`crate::telemetry`]
//! call [`cell_finished`] as cells complete. Overlapping grids are not a
//! real workload (figures run sequentially) — a nested `grid_started`
//! simply replaces the active reporter.

use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::exec::lock_unpoisoned;
use crate::runner::WorkloadRun;

/// Environment variable that silences the progress reporter (set to `1`).
pub const QUIET_ENV: &str = "DAP_QUIET";

/// Minimum interval between stderr rewrites.
const EMIT_INTERVAL: Duration = Duration::from_millis(200);

struct Inner {
    total: usize,
    done: AtomicUsize,
    windows: AtomicU64,
    started: Instant,
    last_emit: Mutex<Instant>,
}

impl Inner {
    /// One status line (no carriage control); pure so tests can pin the
    /// format without a terminal.
    fn render(done: usize, total: usize, windows: u64, elapsed: Duration) -> String {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let rate = windows as f64 / secs;
        let eta = if done == 0 {
            "?".to_string()
        } else {
            let remaining = secs / done as f64 * (total - done) as f64;
            format!("{remaining:.0}s")
        };
        format!("{done}/{total} cells | {rate:.0} windows/s | ETA {eta}")
    }

    fn emit(&self, force: bool) {
        let now = Instant::now();
        {
            let mut last = lock_unpoisoned(&self.last_emit);
            if !force && now.duration_since(*last) < EMIT_INTERVAL {
                return;
            }
            *last = now;
        }
        let line = Self::render(
            self.done.load(Ordering::Relaxed),
            self.total,
            self.windows.load(Ordering::Relaxed),
            self.started.elapsed(),
        );
        // Rewrite in place; pad so a shorter line fully covers the
        // previous one.
        let _ = write!(std::io::stderr(), "\r{line:<60}");
    }
}

/// The active reporter, if a grid is running and reporting is enabled.
static ACTIVE: Mutex<Option<Arc<Inner>>> = Mutex::new(None);

/// Whether progress reporting is enabled in this environment: stderr is
/// a terminal and [`QUIET_ENV`] is not `1`.
fn reporting_enabled() -> bool {
    if std::env::var(QUIET_ENV).is_ok_and(|v| v.trim() == "1") {
        return false;
    }
    std::io::stderr().is_terminal()
}

/// Keeps the reporter alive for one grid; dropping it clears the status
/// line and deactivates reporting.
pub struct GridProgress {
    inner: Option<Arc<Inner>>,
}

impl Drop for GridProgress {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let mut active = lock_unpoisoned(&ACTIVE);
        // Only clear the slot if it is still ours (a nested grid may
        // have replaced the reporter).
        if active
            .as_ref()
            .is_some_and(|current| Arc::ptr_eq(current, &inner))
        {
            *active = None;
            drop(active);
            // Blank the in-place status line so the next output starts
            // on a clean column.
            let _ = write!(std::io::stderr(), "\r{:<60}\r", "");
        }
    }
}

/// Installs a progress reporter for a grid of `total_cells` cells.
/// Returns a no-op guard when reporting is disabled (non-TTY stderr,
/// `DAP_QUIET=1`, or an empty grid).
pub fn grid_started(total_cells: usize) -> GridProgress {
    if total_cells == 0 || !reporting_enabled() {
        return GridProgress { inner: None };
    }
    let inner = Arc::new(Inner {
        total: total_cells,
        done: AtomicUsize::new(0),
        windows: AtomicU64::new(0),
        started: Instant::now(),
        last_emit: Mutex::new(Instant::now() - EMIT_INTERVAL),
    });
    *lock_unpoisoned(&ACTIVE) = Some(inner.clone());
    inner.emit(true);
    GridProgress { inner: Some(inner) }
}

/// Reports one finished cell that simulated `windows` DAP windows.
/// No-op when no reporter is active.
pub fn cell_finished(windows: u64) {
    let inner = lock_unpoisoned(&ACTIVE).clone();
    let Some(inner) = inner else {
        return;
    };
    inner.done.fetch_add(1, Ordering::Relaxed);
    inner.windows.fetch_add(windows, Ordering::Relaxed);
    let done = inner.done.load(Ordering::Relaxed);
    inner.emit(done >= inner.total);
}

/// How many DAP windows a finished workload run simulated (the slowest
/// core's cycle count over the default 64-cycle window).
pub fn windows_of(run: &WorkloadRun) -> u64 {
    run.result
        .per_core
        .iter()
        .map(|core| core.cycles)
        .max()
        .unwrap_or(0)
        / 64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_cells_rate_and_eta() {
        let line = Inner::render(3, 10, 70_000, Duration::from_secs(7));
        assert_eq!(line, "3/10 cells | 10000 windows/s | ETA 16s");
        let unknown = Inner::render(0, 10, 0, Duration::from_secs(1));
        assert!(unknown.ends_with("ETA ?"), "{unknown}");
        let finished = Inner::render(10, 10, 100, Duration::from_secs(2));
        assert!(finished.contains("ETA 0s"), "{finished}");
    }

    #[test]
    fn inactive_reporter_ignores_cell_reports() {
        // No grid installed (tests run without a TTY anyway): must not
        // panic or print.
        cell_finished(123);
        let guard = grid_started(0);
        drop(guard);
        cell_finished(1);
    }

    #[test]
    fn windows_of_uses_slowest_core() {
        use mem_sim::{CoreResult, RunResult, SimStats};
        let run = WorkloadRun {
            result: RunResult {
                per_core: vec![
                    CoreResult {
                        instructions: 10,
                        cycles: 640,
                    },
                    CoreResult {
                        instructions: 10,
                        cycles: 6_400,
                    },
                ],
                stats: SimStats::default(),
                dap_decisions: None,
            },
            weighted_speedup: 1.0,
        };
        assert_eq!(windows_of(&run), 100);
    }
}
