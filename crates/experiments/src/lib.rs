//! # experiments — the paper's evaluation, experiment by experiment
//!
//! One function per figure/table of the paper's evaluation (Sections II,
//! V, VI). Each returns a [`FigureResult`]: named rows of named columns
//! plus summary statistics, with a `Display` implementation that prints
//! the same series the paper plots. The `dap-bench` crate exposes one
//! binary per experiment.
//!
//! All experiments take an `instructions` budget per core; larger budgets
//! reduce warmup bias. Each figure's grid of independent simulations runs
//! on the [`exec::ParallelExecutor`] (`DAP_THREADS` workers), and results
//! are bit-identical at any thread count — the deterministic workloads
//! and index-ordered result slots make every run reproducible.
//!
//! ```no_run
//! use experiments::figures;
//! // Regenerate Fig. 6 (DAP on the sectored DRAM cache) at a small budget:
//! let fig = figures::fig06_dap_sectored(100_000);
//! println!("{fig}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod cancel;
pub mod checkpoint;
pub mod exec;
pub mod extensions;
pub mod figures;
pub mod fingerprint;
pub mod metrics;
pub mod progress;
pub mod runner;
pub mod shard;
pub mod telemetry;

pub use cancel::{global_cancel_token, CancelToken, EXIT_INTERRUPTED};
pub use checkpoint::{cell_key, CheckpointManifest, RESUME_ENV};
pub use exec::{
    clear_cell_panic, inject_cell_panic, lock_unpoisoned, run_variant_grid,
    run_variant_grid_recovered, run_variant_grid_recovered_with, CellError, CellErrorKind,
    CellSpec, ExecError, ExperimentPlan, ParallelExecutor, RecoveredGrid,
};
pub use fingerprint::ConfigFingerprint;
pub use metrics::{geomean, FigureResult, Row};
pub use progress::{cell_finished, grid_started, GridProgress};
pub use runner::{run_mix, run_workload, AloneIpcCache, PolicyKind, WorkloadRun};
pub use shard::{
    explore_grid, live_fleet_exposition, merge_worker_manifests, pareto_points, pareto_report,
    run_worker, supervise, supervise_with_tick, write_merged_manifest, ClaimOutcome, ExploreCell,
    ExploreGrid, FleetOutcome, LeaseLog, LeaseSnapshot, MergeError, MergeReport, ParetoPoint,
    SupervisorConfig, WorkerConfig, WorkerSummary,
};
pub use telemetry::{
    artifact_dir_from_env, export_variant_traces, run_variant_grid_traced, run_workload_traced,
    TracedRun, VariantTelemetry,
};
