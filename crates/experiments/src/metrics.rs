//! Result containers and summary statistics.

use std::fmt;

/// One row of an experiment result (usually one benchmark or mix).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (benchmark name, mix name, parameter value).
    pub name: String,
    /// One value per column.
    pub values: Vec<f64>,
}

impl Row {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }
}

/// A reproduced figure or table: columns, per-benchmark rows, and summary
/// lines (means), printable as an aligned text table.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Paper identifier, e.g. "Fig. 6".
    pub id: &'static str,
    /// Human-readable description.
    pub title: String,
    /// Column headers (not counting the row-name column).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Summary lines, e.g. ("GMEAN", 1.15).
    pub summary: Vec<(String, Vec<f64>)>,
}

impl FigureResult {
    /// Appends the geometric-mean summary over all rows (per column).
    pub fn with_geomean(mut self) -> Self {
        let cols = self.columns.len();
        let gm: Vec<f64> = (0..cols)
            .map(|c| geomean(self.rows.iter().map(|r| r.values[c])))
            .collect();
        self.summary.push(("GMEAN".to_string(), gm));
        self
    }

    /// Appends the arithmetic-mean summary over all rows (per column).
    pub fn with_mean(mut self) -> Self {
        let cols = self.columns.len();
        let n = self.rows.len().max(1) as f64;
        let mean: Vec<f64> = (0..cols)
            .map(|c| self.rows.iter().map(|r| r.values[c]).sum::<f64>() / n)
            .collect();
        self.summary.push(("MEAN".to_string(), mean));
        self
    }

    /// Looks up a row by name.
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// A summary value by label and column.
    pub fn summary_value(&self, label: &str, column: usize) -> Option<f64> {
        self.summary
            .iter()
            .find(|(l, _)| l == label)
            .and_then(|(_, v)| v.get(column))
            .copied()
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — {}", self.id, self.title)?;
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(self.summary.iter().map(|(l, _)| l.len()))
            .chain(std::iter::once(9))
            .max()
            .unwrap_or(9);
        write!(f, "{:name_w$}", "workload")?;
        for c in &self.columns {
            write!(f, "  {c:>14}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:name_w$}", r.name)?;
            for v in &r.values {
                write!(f, "  {v:>14.4}")?;
            }
            writeln!(f)?;
        }
        for (label, values) in &self.summary {
            write!(f, "{label:name_w$}")?;
            for v in values {
                write!(f, "  {v:>14.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Geometric mean of an iterator of positive values (0.0 if empty).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        debug_assert!(v > 0.0, "geomean needs positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let g = geomean([2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean([]), 0.0);
    }

    #[test]
    fn figure_result_summaries() {
        let fig = FigureResult {
            id: "Fig. X",
            title: "test".into(),
            columns: vec!["a".into()],
            rows: vec![Row::new("w1", vec![2.0]), Row::new("w2", vec![8.0])],
            summary: vec![],
        }
        .with_geomean()
        .with_mean();
        assert!((fig.summary_value("GMEAN", 0).unwrap() - 4.0).abs() < 1e-12);
        assert!((fig.summary_value("MEAN", 0).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_all_rows() {
        let fig = FigureResult {
            id: "Fig. Y",
            title: "render".into(),
            columns: vec!["speedup".into()],
            rows: vec![Row::new("mcf", vec![1.25])],
            summary: vec![("GMEAN".into(), vec![1.25])],
        };
        let s = fig.to_string();
        assert!(s.contains("mcf"));
        assert!(s.contains("1.2500"));
        assert!(s.contains("GMEAN"));
    }

    #[test]
    fn row_lookup() {
        let fig = FigureResult {
            id: "Fig. Z",
            title: "lookup".into(),
            columns: vec![],
            rows: vec![Row::new("hpcg", vec![])],
            summary: vec![],
        };
        assert!(fig.row("hpcg").is_some());
        assert!(fig.row("absent").is_none());
    }
}
