//! The lease log: append-only, multi-process work claims.
//!
//! One JSONL file records every claim, heartbeat renewal, completion,
//! failure, and release for an exploration grid. Each operation holds an
//! exclusive `flock(2)` on the log across its whole
//! read-validate-append cycle, so claim arbitration is serialized
//! between processes even though every process keeps its own in-memory
//! replica of the state (caught up incrementally from its last read
//! offset while the lock is held).
//!
//! The record stream is designed so that **replaying it needs no wall
//! clock**: a claim is only ever appended after validation against the
//! live state under the lock, so a claim appearing over a still-held
//! lease *proves* that lease had expired — replay counts it as an
//! expiry + steal without consulting time. That keeps every reader
//! (workers, the merge step, tests with a [`ManualClock`]) in exact
//! agreement about steals and quarantine regardless of when they read.
//!
//! Torn tails (a writer killed mid-append) are repaired the way the
//! checkpoint manifest repairs them: the complete-but-unterminated line
//! is applied if it parses, counted as a parse error if not, and a
//! newline is appended under the lock so the next record starts fresh.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dap_flock::FlockGuard;
use dap_telemetry::json::{obj, parse, Json};

use crate::checkpoint::write_line_synced;
use crate::exec::lock_unpoisoned;

/// A millisecond time source for lease expiry.
///
/// Production uses [`WallClock`]; tests use [`ManualClock`] so expiry
/// and heartbeat races are exact, not timing-dependent. Only *live*
/// decisions (can I claim? is this lease expired?) consult the clock —
/// replaying the log never does.
pub trait Clock: Send + Sync {
    /// Milliseconds since some fixed origin (Unix epoch for wall time).
    fn now_ms(&self) -> u64;
}

/// [`Clock`] backed by [`std::time::SystemTime`].
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }
}

/// A hand-advanced [`Clock`] for deterministic lease-expiry tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock starting at `start_ms`.
    pub fn new(start_ms: u64) -> Self {
        Self {
            ms: AtomicU64::new(start_ms),
        }
    }

    /// Moves time forward by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.ms.fetch_add(delta_ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

/// Outcome of a claim attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The claim was appended; the caller owns the cell until
    /// `expires_ms` (renewable). `epoch` must accompany every later
    /// renew/done/fail/release for this claim.
    Won {
        /// This claim's epoch (strictly increasing per cell).
        epoch: u64,
        /// When the lease lapses without a renewal.
        expires_ms: u64,
    },
    /// Another worker holds a live lease on the cell.
    Held {
        /// When the holder's lease lapses without a renewal.
        expires_ms: u64,
    },
    /// The cell is already completed.
    Done,
    /// The cell failed `quarantine_k` times and is quarantined.
    Quarantined {
        /// Recorded failure count.
        fails: u32,
    },
}

/// Outcome of a heartbeat renewal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenewOutcome {
    /// Still the holder; the lease now expires at the returned time.
    Renewed {
        /// The pushed-out expiry.
        expires_ms: u64,
    },
    /// The lease was stolen (or completed/failed elsewhere): the caller
    /// must stop simulating the cell and must not record its result.
    Lost,
}

#[derive(Debug, Clone)]
struct Holder {
    worker: String,
    epoch: u64,
    expires_ms: u64,
}

/// Replayed per-cell state.
#[derive(Debug, Clone, Default)]
struct CellState {
    holder: Option<Holder>,
    /// Highest claim epoch seen.
    epoch: u64,
    done: bool,
    fails: u32,
    last_error: Option<String>,
}

/// One cell's state in a [`LeaseSnapshot`].
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// A completion was recorded.
    pub done: bool,
    /// Recorded failures so far.
    pub fails: u32,
    /// `fails` reached the log's quarantine threshold.
    pub quarantined: bool,
    /// Expiry of the current holder's lease, if a claim is outstanding.
    pub holder_expires_ms: Option<u64>,
    /// Message of the most recent recorded failure.
    pub last_error: Option<String>,
}

/// A point-in-time view of the whole lease log.
#[derive(Debug, Clone)]
pub struct LeaseSnapshot {
    /// Per-cell summaries for every key the log has seen.
    pub cells: HashMap<String, CellSummary>,
    /// Claims appended over a lease that was never completed, failed,
    /// or released — i.e. leases that expired under their holder.
    pub leases_expired: u64,
    /// Same events, counted as steals by the claiming side.
    pub steals: u64,
    /// Malformed log lines skipped during replay.
    pub parse_errors: u64,
    /// The clock reading the snapshot was taken at.
    pub now_ms: u64,
}

impl LeaseSnapshot {
    /// Whether `key` is finished with: completed or quarantined.
    pub fn resolved(&self, key: &str) -> bool {
        self.cells
            .get(key)
            .map(|c| c.done || c.quarantined)
            .unwrap_or(false)
    }

    /// Whether a claim for `key` could succeed right now (no live
    /// holder, not done, not quarantined). Advisory — the actual claim
    /// revalidates under the lock.
    pub fn claimable(&self, key: &str) -> bool {
        match self.cells.get(key) {
            None => true,
            Some(c) => {
                !c.done
                    && !c.quarantined
                    && c.holder_expires_ms
                        .map(|e| e <= self.now_ms)
                        .unwrap_or(true)
            }
        }
    }

    /// Every quarantined cell with its failure count and last error.
    pub fn quarantined(&self) -> Vec<(String, u32, Option<String>)> {
        let mut out: Vec<_> = self
            .cells
            .iter()
            .filter(|(_, c)| c.quarantined)
            .map(|(k, c)| (k.clone(), c.fails, c.last_error.clone()))
            .collect();
        out.sort();
        out
    }
}

struct LogInner {
    file: File,
    /// Byte offset of the first log byte this replica has not replayed.
    offset: u64,
    cells: HashMap<String, CellState>,
    leases_expired: u64,
    steals: u64,
    parse_errors: u64,
}

/// The append-only lease log. See the module docs for the protocol.
///
/// Clone-free by design: share it across threads with `Arc` (the
/// worker's heartbeat thread does). Multiple *processes* each open
/// their own `LeaseLog` on the same path.
pub struct LeaseLog {
    inner: Mutex<LogInner>,
    path: PathBuf,
    clock: Arc<dyn Clock>,
    ttl_ms: u64,
    quarantine_k: u32,
}

impl LeaseLog {
    /// Opens (creating if absent) the lease log at `path` with wall
    /// time. `ttl_ms` is how long a claim lives without a renewal;
    /// `quarantine_k` how many recorded failures quarantine a cell.
    ///
    /// # Errors
    ///
    /// I/O errors opening or replaying the file (malformed *content* is
    /// never an error — it is counted, see [`LeaseSnapshot::parse_errors`]).
    pub fn open(path: &Path, ttl_ms: u64, quarantine_k: u32) -> std::io::Result<Self> {
        Self::open_with_clock(path, ttl_ms, quarantine_k, Arc::new(WallClock))
    }

    /// [`Self::open`] with an explicit clock (tests use [`ManualClock`]).
    ///
    /// # Errors
    ///
    /// As [`Self::open`].
    pub fn open_with_clock(
        path: &Path,
        ttl_ms: u64,
        quarantine_k: u32,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let log = Self {
            inner: Mutex::new(LogInner {
                file,
                offset: 0,
                cells: HashMap::new(),
                leases_expired: 0,
                steals: 0,
                parse_errors: 0,
            }),
            path: path.to_path_buf(),
            clock,
            ttl_ms: ttl_ms.max(1),
            quarantine_k: quarantine_k.max(1),
        };
        // Replay eagerly so parse errors surface at open, not first use.
        log.with_locked_log(|_, _| Ok(()))?;
        Ok(log)
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The lease TTL granted to claims and renewals.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }

    /// Runs `f` with the log flocked and the in-memory replica caught
    /// up. THE one serialization point: every read and every append of
    /// this process goes through here.
    fn with_locked_log<R>(
        &self,
        f: impl FnOnce(&mut LogInner, u64) -> std::io::Result<R>,
    ) -> std::io::Result<R> {
        let mut inner = lock_unpoisoned(&self.inner);
        // Lock via a dup'd handle so the guard's borrow doesn't alias
        // the &mut we pass to `f`; dup shares the open file description,
        // which is exactly what flock locks.
        let lock_handle = inner.file.try_clone()?;
        let _guard = FlockGuard::exclusive(&lock_handle)?;
        catch_up(&mut inner)?;
        let now = self.clock.now_ms();
        f(&mut inner, now)
    }

    /// Attempts to claim `key` for `worker`.
    ///
    /// # Errors
    ///
    /// I/O errors reading or appending the log.
    pub fn try_claim(&self, key: &str, worker: &str, pid: u32) -> std::io::Result<ClaimOutcome> {
        let (ttl, k) = (self.ttl_ms, self.quarantine_k);
        self.with_locked_log(|inner, now| {
            if let Some(cell) = inner.cells.get(key) {
                if cell.done {
                    return Ok(ClaimOutcome::Done);
                }
                if cell.fails >= k {
                    return Ok(ClaimOutcome::Quarantined { fails: cell.fails });
                }
                if let Some(h) = &cell.holder {
                    if h.expires_ms > now {
                        return Ok(ClaimOutcome::Held {
                            expires_ms: h.expires_ms,
                        });
                    }
                }
            }
            let epoch = inner.cells.get(key).map(|c| c.epoch).unwrap_or(0) + 1;
            let expires_ms = now + ttl;
            let rec = obj([
                ("op", Json::Str("claim".into())),
                ("key", Json::Str(key.into())),
                ("worker", Json::Str(worker.into())),
                ("pid", Json::Num(f64::from(pid))),
                ("epoch", Json::Num(epoch as f64)),
                ("expires_ms", Json::Num(expires_ms as f64)),
            ]);
            append_record(inner, &rec)?;
            Ok(ClaimOutcome::Won { epoch, expires_ms })
        })
    }

    /// Heartbeat: pushes the expiry of `worker`'s claim on `key` out by
    /// one TTL — unless the claim was superseded, in which case the
    /// caller has lost the cell.
    ///
    /// # Errors
    ///
    /// I/O errors reading or appending the log.
    pub fn renew(&self, key: &str, worker: &str, epoch: u64) -> std::io::Result<RenewOutcome> {
        let ttl = self.ttl_ms;
        self.with_locked_log(|inner, now| {
            let holds = inner
                .cells
                .get(key)
                .and_then(|c| c.holder.as_ref())
                .map(|h| h.worker == worker && h.epoch == epoch)
                .unwrap_or(false);
            if !holds {
                return Ok(RenewOutcome::Lost);
            }
            let expires_ms = now + ttl;
            let rec = obj([
                ("op", Json::Str("renew".into())),
                ("key", Json::Str(key.into())),
                ("worker", Json::Str(worker.into())),
                ("epoch", Json::Num(epoch as f64)),
                ("expires_ms", Json::Num(expires_ms as f64)),
            ]);
            append_record(inner, &rec)?;
            Ok(RenewOutcome::Renewed { expires_ms })
        })
    }

    /// Records completion of `key`. Appended unconditionally: if the
    /// lease was stolen and both claimants finish, both completions land
    /// and the merge step reconciles them bit-identically — dropping a
    /// finished result would be worse than holding a duplicate.
    ///
    /// # Errors
    ///
    /// I/O errors reading or appending the log.
    pub fn complete(&self, key: &str, worker: &str, epoch: u64) -> std::io::Result<()> {
        self.with_locked_log(|inner, _| {
            let rec = obj([
                ("op", Json::Str("done".into())),
                ("key", Json::Str(key.into())),
                ("worker", Json::Str(worker.into())),
                ("epoch", Json::Num(epoch as f64)),
            ]);
            append_record(inner, &rec)
        })
    }

    /// Records a failure of `key` (a panicking cell). Returns the total
    /// recorded failures — once it reaches the quarantine threshold the
    /// cell stops being claimable.
    ///
    /// # Errors
    ///
    /// I/O errors reading or appending the log.
    pub fn fail(&self, key: &str, worker: &str, epoch: u64, error: &str) -> std::io::Result<u32> {
        self.with_locked_log(|inner, _| {
            let rec = obj([
                ("op", Json::Str("fail".into())),
                ("key", Json::Str(key.into())),
                ("worker", Json::Str(worker.into())),
                ("epoch", Json::Num(epoch as f64)),
                ("error", Json::Str(error.into())),
            ]);
            append_record(inner, &rec)?;
            Ok(inner.cells.get(key).map(|c| c.fails).unwrap_or(0))
        })
    }

    /// Gracefully releases `worker`'s claim on `key` (cooperative
    /// cancellation: the cell neither completed nor failed). No-op if
    /// the claim was already superseded.
    ///
    /// # Errors
    ///
    /// I/O errors reading or appending the log.
    pub fn release(&self, key: &str, worker: &str, epoch: u64) -> std::io::Result<()> {
        self.with_locked_log(|inner, _| {
            let holds = inner
                .cells
                .get(key)
                .and_then(|c| c.holder.as_ref())
                .map(|h| h.worker == worker && h.epoch == epoch)
                .unwrap_or(false);
            if !holds {
                return Ok(());
            }
            let rec = obj([
                ("op", Json::Str("release".into())),
                ("key", Json::Str(key.into())),
                ("worker", Json::Str(worker.into())),
                ("epoch", Json::Num(epoch as f64)),
            ]);
            append_record(inner, &rec)
        })
    }

    /// A caught-up view of every cell plus the fleet counters.
    ///
    /// # Errors
    ///
    /// I/O errors reading the log.
    pub fn snapshot(&self) -> std::io::Result<LeaseSnapshot> {
        let k = self.quarantine_k;
        self.with_locked_log(|inner, now| {
            let cells = inner
                .cells
                .iter()
                .map(|(key, c)| {
                    (
                        key.clone(),
                        CellSummary {
                            done: c.done,
                            fails: c.fails,
                            quarantined: !c.done && c.fails >= k,
                            holder_expires_ms: c.holder.as_ref().map(|h| h.expires_ms),
                            last_error: c.last_error.clone(),
                        },
                    )
                })
                .collect();
            Ok(LeaseSnapshot {
                cells,
                leases_expired: inner.leases_expired,
                steals: inner.steals,
                parse_errors: inner.parse_errors,
                now_ms: now,
            })
        })
    }
}

/// Appends `rec` (raw write — the caller holds the flock) and applies it
/// to the in-memory replica, keeping `offset` past the written bytes so
/// the next catch-up doesn't replay our own record.
fn append_record(inner: &mut LogInner, rec: &Json) -> std::io::Result<()> {
    let line = rec.to_string_compact();
    write_line_synced(&inner.file, &line)?;
    inner.offset += line.len() as u64 + 1;
    apply_record(inner, rec);
    Ok(())
}

/// Replays log bytes appended since this replica's last read. Must be
/// called with the flock held. Repairs a torn tail in place: the
/// unterminated line is applied if it parses (only its newline was
/// lost), counted as a parse error if not, and terminated either way.
fn catch_up(inner: &mut LogInner) -> std::io::Result<()> {
    let end = inner.file.seek(SeekFrom::End(0))?;
    if end <= inner.offset {
        return Ok(());
    }
    inner.file.seek(SeekFrom::Start(inner.offset))?;
    let mut buf = Vec::with_capacity((end - inner.offset) as usize);
    (&inner.file).read_to_end(&mut buf)?;
    let torn = buf.last().map(|&b| b != b'\n').unwrap_or(false);
    let text = String::from_utf8_lossy(&buf).into_owned();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line) {
            Ok(rec) => {
                if !apply_record(inner, &rec) {
                    inner.parse_errors += 1;
                }
            }
            Err(_) => inner.parse_errors += 1,
        }
    }
    inner.offset = end;
    if torn {
        // Terminate the torn line under the lock we already hold so the
        // next append starts on a fresh line. (If the tail parsed above
        // it was a complete record missing only its newline, and has
        // been applied; if not, it was counted as a parse error.)
        write_line_synced(&inner.file, "")?;
        inner.offset += 1;
    }
    Ok(())
}

/// Applies one parsed record to the replica. Returns `false` for a
/// structurally-valid JSON line that is not a lease record (counted as a
/// parse error by the caller).
///
/// Replay needs no clock: `claim` records were validated against the
/// live state at append time, so a claim arriving while a holder is
/// still registered proves that holder's lease expired — count it as an
/// expiry and a steal.
fn apply_record(inner: &mut LogInner, rec: &Json) -> bool {
    let (Some(op), Some(key), Some(worker)) = (
        rec.get("op").and_then(Json::as_str),
        rec.get("key").and_then(Json::as_str),
        rec.get("worker").and_then(Json::as_str),
    ) else {
        return false;
    };
    let epoch = rec.get("epoch").and_then(Json::as_u64).unwrap_or(0);
    match op {
        "claim" => {
            let Some(expires_ms) = rec.get("expires_ms").and_then(Json::as_u64) else {
                return false;
            };
            let cell = inner.cells.entry(key.to_string()).or_default();
            if cell.holder.is_some() {
                inner.leases_expired += 1;
                inner.steals += 1;
            }
            cell.holder = Some(Holder {
                worker: worker.to_string(),
                epoch,
                expires_ms,
            });
            cell.epoch = cell.epoch.max(epoch);
            true
        }
        "renew" => {
            let Some(expires_ms) = rec.get("expires_ms").and_then(Json::as_u64) else {
                return false;
            };
            if let Some(cell) = inner.cells.get_mut(key) {
                if let Some(h) = cell.holder.as_mut() {
                    if h.worker == worker && h.epoch == epoch {
                        h.expires_ms = expires_ms;
                    }
                }
            }
            true
        }
        "done" => {
            let cell = inner.cells.entry(key.to_string()).or_default();
            cell.done = true;
            cell.holder = None;
            true
        }
        "fail" => {
            let error = rec.get("error").and_then(Json::as_str).unwrap_or("");
            let cell = inner.cells.entry(key.to_string()).or_default();
            cell.fails += 1;
            cell.last_error = Some(error.to_string());
            if let Some(h) = &cell.holder {
                if h.worker == worker && h.epoch == epoch {
                    cell.holder = None;
                }
            }
            true
        }
        "release" => {
            if let Some(cell) = inner.cells.get_mut(key) {
                if let Some(h) = &cell.holder {
                    if h.worker == worker && h.epoch == epoch {
                        cell.holder = None;
                    }
                }
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::rng::SplitMix64;

    fn temp_log(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dap-lease-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lease.log");
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Two `LeaseLog` handles on one path stand in for two processes:
    /// each keeps its own replica and catches up under the flock.
    fn pair(path: &Path, ttl: u64, k: u32, clock: &Arc<ManualClock>) -> (LeaseLog, LeaseLog) {
        let a = LeaseLog::open_with_clock(path, ttl, k, clock.clone() as Arc<dyn Clock>).unwrap();
        let b = LeaseLog::open_with_clock(path, ttl, k, clock.clone() as Arc<dyn Clock>).unwrap();
        (a, b)
    }

    #[test]
    fn claim_renew_complete_lifecycle() {
        let path = temp_log("lifecycle");
        let clock = Arc::new(ManualClock::new(1_000));
        let (a, b) = pair(&path, 100, 3, &clock);

        let ClaimOutcome::Won { epoch, expires_ms } = a.try_claim("cell", "w0", 1).unwrap() else {
            panic!("first claim wins");
        };
        assert_eq!((epoch, expires_ms), (1, 1_100));
        // The other process sees the live lease.
        assert_eq!(
            b.try_claim("cell", "w1", 2).unwrap(),
            ClaimOutcome::Held { expires_ms: 1_100 }
        );
        // A renewal pushes the expiry out...
        clock.advance(60);
        assert_eq!(
            a.renew("cell", "w0", epoch).unwrap(),
            RenewOutcome::Renewed { expires_ms: 1_160 }
        );
        // ...which the rival observes.
        clock.advance(50); // 1110: past the original expiry, inside the renewed one
        assert_eq!(
            b.try_claim("cell", "w1", 2).unwrap(),
            ClaimOutcome::Held { expires_ms: 1_160 }
        );
        a.complete("cell", "w0", epoch).unwrap();
        assert_eq!(b.try_claim("cell", "w1", 2).unwrap(), ClaimOutcome::Done);
        let snap = b.snapshot().unwrap();
        assert!(snap.resolved("cell"));
        assert_eq!(snap.steals, 0);
        assert_eq!(snap.leases_expired, 0);
        assert_eq!(snap.parse_errors, 0);
    }

    #[test]
    fn steal_after_expiry_counts_and_old_holder_loses() {
        let path = temp_log("steal");
        let clock = Arc::new(ManualClock::new(0));
        let (a, b) = pair(&path, 100, 3, &clock);

        let ClaimOutcome::Won { epoch: e0, .. } = a.try_claim("cell", "w0", 1).unwrap() else {
            panic!("first claim wins");
        };
        clock.advance(101); // lease lapses un-renewed (SIGKILLed worker)
        let ClaimOutcome::Won { epoch: e1, .. } = b.try_claim("cell", "w1", 2).unwrap() else {
            panic!("expired lease is stealable");
        };
        assert_eq!(e1, e0 + 1);
        // The original holder's heartbeat now loses, and it must not
        // release the thief's claim either.
        assert_eq!(a.renew("cell", "w0", e0).unwrap(), RenewOutcome::Lost);
        a.release("cell", "w0", e0).unwrap();
        assert!(matches!(
            a.try_claim("cell", "w2", 3).unwrap(),
            ClaimOutcome::Held { .. }
        ));
        let snap = a.snapshot().unwrap();
        assert_eq!(snap.steals, 1);
        assert_eq!(snap.leases_expired, 1);
    }

    #[test]
    fn quarantine_after_k_fails() {
        let path = temp_log("quarantine");
        let clock = Arc::new(ManualClock::new(0));
        let (a, _b) = pair(&path, 100, 2, &clock);

        for attempt in 0..2u32 {
            let ClaimOutcome::Won { epoch, .. } = a.try_claim("bad", "w0", 1).unwrap() else {
                panic!("claim {attempt} should win");
            };
            let fails = a.fail("bad", "w0", epoch, "boom").unwrap();
            assert_eq!(fails, attempt + 1);
        }
        assert_eq!(
            a.try_claim("bad", "w0", 1).unwrap(),
            ClaimOutcome::Quarantined { fails: 2 }
        );
        let snap = a.snapshot().unwrap();
        let q = snap.quarantined();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0, "bad");
        assert_eq!(q[0].1, 2);
        assert_eq!(q[0].2.as_deref(), Some("boom"));
        assert!(snap.resolved("bad"));
    }

    #[test]
    fn duplicate_completions_are_tolerated() {
        // after-record crash story: w0 finishes the simulation and
        // records its manifest entry but dies before `done`; w1 steals,
        // re-runs, completes; then a hypothetical late `done` from w0
        // still lands. Both completions are fine — merge reconciles.
        let path = temp_log("dup");
        let clock = Arc::new(ManualClock::new(0));
        let (a, b) = pair(&path, 100, 3, &clock);

        let ClaimOutcome::Won { epoch: e0, .. } = a.try_claim("cell", "w0", 1).unwrap() else {
            panic!();
        };
        clock.advance(200);
        let ClaimOutcome::Won { epoch: e1, .. } = b.try_claim("cell", "w1", 2).unwrap() else {
            panic!();
        };
        b.complete("cell", "w1", e1).unwrap();
        a.complete("cell", "w0", e0).unwrap();
        let snap = a.snapshot().unwrap();
        assert!(snap.resolved("cell"));
        assert_eq!(snap.steals, 1);
    }

    /// Satellite: the lease-expiry property — across seeded random
    /// interleavings of heartbeats and clock advances, a steal attempt
    /// NEVER succeeds while the holder's (possibly renewed) lease is
    /// live, and ALWAYS succeeds once now >= expiry.
    #[test]
    fn property_steal_iff_lease_expired() {
        let ttl = 1_000u64;
        for seed in 0..64u64 {
            let path = temp_log(&format!("prop{seed}"));
            let clock = Arc::new(ManualClock::new(10_000));
            let (holder, thief) = pair(&path, ttl, 3, &clock);
            let mut rng = SplitMix64::new(0xDAB0 + seed);

            let ClaimOutcome::Won {
                epoch,
                mut expires_ms,
            } = holder.try_claim("cell", "holder", 1).unwrap()
            else {
                panic!("fresh cell claims");
            };
            for _ in 0..20 {
                match rng.below(3) {
                    // A live heartbeat: only possible while the lease
                    // holds; it pushes the expiry out.
                    0 if clock.now_ms() < expires_ms => {
                        match holder.renew("cell", "holder", epoch).unwrap() {
                            RenewOutcome::Renewed { expires_ms: e } => expires_ms = e,
                            RenewOutcome::Lost => panic!("live renew lost"),
                        }
                    }
                    0 => {}
                    // Time passes — sometimes past the expiry.
                    _ => clock.advance(rng.range_u64(1, ttl)),
                }
                let expired = clock.now_ms() >= expires_ms;
                match thief.try_claim("cell", "thief", 2).unwrap() {
                    ClaimOutcome::Won {
                        epoch: e,
                        expires_ms: until,
                    } => {
                        assert!(expired, "steal against a live lease (seed {seed})");
                        // Hand the cell back to the holder's role for the
                        // next iterations: the thief is now the holder.
                        // Simplest: stop this run, properties held.
                        let _ = (e, until);
                        break;
                    }
                    ClaimOutcome::Held { .. } => {
                        assert!(!expired, "live lease refused a due steal (seed {seed})");
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Satellite: torn-lease repair — truncate the log at every byte
    /// offset of its final record; a fresh open must recover without
    /// error, count at most one parse error, and the log must still
    /// arbitrate claims correctly afterwards.
    #[test]
    fn torn_tail_repairs_at_every_byte_offset_of_the_final_record() {
        let path = temp_log("torn");
        let clock = Arc::new(ManualClock::new(0));
        {
            let log =
                LeaseLog::open_with_clock(&path, 100, 3, clock.clone() as Arc<dyn Clock>).unwrap();
            let ClaimOutcome::Won { epoch, .. } = log.try_claim("a", "w0", 1).unwrap() else {
                panic!();
            };
            log.complete("a", "w0", epoch).unwrap();
            // Final record: an open claim on "b".
            assert!(matches!(
                log.try_claim("b", "w0", 1).unwrap(),
                ClaimOutcome::Won { .. }
            ));
        }
        let pristine = std::fs::read(&path).unwrap();
        let last_line_start = pristine[..pristine.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|p| p + 1)
            .unwrap();

        for cut in last_line_start..=pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            let log =
                LeaseLog::open_with_clock(&path, 100, 3, clock.clone() as Arc<dyn Clock>).unwrap();
            let snap = log.snapshot().unwrap();
            assert!(snap.parse_errors <= 1, "cut at byte {cut}");
            // "a" completed before the tail — always intact.
            assert!(snap.resolved("a"), "cut at byte {cut}");
            let whole_line_survived = cut >= pristine.len() - 1;
            match log.try_claim("b", "w1", 2).unwrap() {
                // Torn/lost claim: the cell is simply unclaimed again.
                ClaimOutcome::Won { .. } => {
                    assert!(!whole_line_survived, "cut at byte {cut}: claim was intact")
                }
                // Claim survived (only the newline was lost, or nothing).
                ClaimOutcome::Held { .. } => {
                    assert!(whole_line_survived, "cut at byte {cut}: claim was torn")
                }
                other => panic!("cut at byte {cut}: unexpected {other:?}"),
            }
            // Repair terminated the tail: a further append must land on
            // its own line and replay cleanly in a fresh replica.
            log.complete("c", "w1", 1).unwrap();
            drop(log);
            let reread =
                LeaseLog::open_with_clock(&path, 100, 3, clock.clone() as Arc<dyn Clock>).unwrap();
            let snap = reread.snapshot().unwrap();
            assert!(snap.resolved("c"), "cut at byte {cut}");
            assert!(snap.parse_errors <= 1, "cut at byte {cut}");
        }
        let _ = std::fs::remove_file(&path);
    }
}
