//! Fleet-shared cache of alone-run IPCs.
//!
//! Weighted speedup divides each core's IPC by the benchmark's *alone*
//! IPC on the same configuration — a one-core simulation that is pure
//! overhead to repeat. Within one process the
//! [`AloneIpcCache`](crate::runner::AloneIpcCache) deduplicates those
//! runs; across a worker fleet this store extends the same dedup to the
//! filesystem: every computed alone IPC is published to `alone.log`
//! (one JSONL line, appended under `flock`), and every worker seeds its
//! in-process cache from the file before simulating a cell. The fleet
//! then does the same total alone-run work as a serial run, instead of
//! up to N copies of it.
//!
//! IPCs are stored as exact `f64` bit patterns (hex), not decimal text:
//! the merged results must be bit-identical between a fleet run and a
//! serial reference, and a decimal round-trip could perturb the last
//! ulp of a weighted speedup. Duplicate keys are benign — simulations
//! are deterministic, so racing writers publish identical bits.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

use dap_telemetry::json::{obj, parse, Json};
use mem_sim::SystemConfig;

use crate::checkpoint::append_line_synced;
use crate::fingerprint::ConfigFingerprint;

/// The stable identity of one alone run: FNV-1a over the configuration
/// fingerprint, the benchmark name, and the instruction budget —
/// `cell_key`'s scheme, minus the policy and mix (an alone run has
/// neither).
pub(crate) fn alone_key(config: &SystemConfig, bench: &str, instructions: u64) -> String {
    let mut hash = 0xcbf29ce484222325u64;
    let mut eat = |w: u64| {
        for b in w.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
    };
    for &w in ConfigFingerprint::of(config).words() {
        eat(w);
    }
    for b in bench.bytes() {
        eat(u64::from(b));
    }
    eat(instructions);
    format!("{bench}-{hash:016x}")
}

/// Append-only, flock-guarded store of alone-run IPC bit patterns.
pub(crate) struct AloneStore {
    path: PathBuf,
}

impl AloneStore {
    /// Opens (creating if needed) the store at `path`.
    pub(crate) fn open(path: &Path) -> std::io::Result<Self> {
        OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            path: path.to_path_buf(),
        })
    }

    /// Reads every entry. Lenient: a line torn by a dying writer (or a
    /// racing read of an in-flight append) is skipped — the entry will
    /// be whole on the next load, and a missing entry only costs one
    /// redundant alone simulation.
    pub(crate) fn load(&self) -> std::io::Result<HashMap<String, f64>> {
        let text = std::fs::read_to_string(&self.path)?;
        let mut map = HashMap::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(rec) = parse(line) else { continue };
            let (Some(key), Some(bits)) = (
                rec.get("key").and_then(Json::as_str),
                rec.get("ipc_bits").and_then(Json::as_str),
            ) else {
                continue;
            };
            let Ok(bits) = u64::from_str_radix(bits, 16) else {
                continue;
            };
            map.insert(key.to_string(), f64::from_bits(bits));
        }
        Ok(map)
    }

    /// Publishes one alone IPC. Duplicate publications of the same key
    /// are harmless (identical bits); the append is flock-guarded and
    /// synced like every shared-file write in the shard module.
    pub(crate) fn record(&self, key: &str, ipc: f64) -> std::io::Result<()> {
        let file = OpenOptions::new().append(true).open(&self.path)?;
        let rec = obj([
            ("key", Json::Str(key.into())),
            ("ipc_bits", Json::Str(format!("{:016x}", ipc.to_bits()))),
        ]);
        append_line_synced(&file, &rec.to_string_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dap-alone-{}-{tag}.log", std::process::id()))
    }

    #[test]
    fn round_trips_exact_bits_and_tolerates_corruption() {
        let path = temp_path("bits");
        let _ = std::fs::remove_file(&path);
        let store = AloneStore::open(&path).unwrap();
        let awkward = [0.1f64 + 0.2, f64::MIN_POSITIVE, 1.0 / 3.0, 2.5e-17];
        for (i, &v) in awkward.iter().enumerate() {
            store.record(&format!("k{i}"), v).unwrap();
        }
        // Corrupt interior line + torn tail: both are skipped, the rest
        // survive.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{garbage\n{\"key\":\"torn\",\"ipc_bits\":\"3ff")
                .unwrap();
        }
        let map = store.load().unwrap();
        assert_eq!(map.len(), awkward.len());
        for (i, &v) in awkward.iter().enumerate() {
            assert_eq!(map[&format!("k{i}")].to_bits(), v.to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn alone_keys_separate_config_bench_and_budget() {
        let a = SystemConfig::sectored_dram_cache(2);
        let b = SystemConfig::alloy_cache(2);
        assert_ne!(alone_key(&a, "mcf", 1000), alone_key(&b, "mcf", 1000));
        assert_ne!(alone_key(&a, "mcf", 1000), alone_key(&a, "milc", 1000));
        assert_ne!(alone_key(&a, "mcf", 1000), alone_key(&a, "mcf", 2000));
        assert_eq!(alone_key(&a, "mcf", 1000), alone_key(&a, "mcf", 1000));
    }
}
