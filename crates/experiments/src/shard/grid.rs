//! Named design-space exploration grids.
//!
//! A grid is a flat list of cells — {architecture, sector size, channel
//! count, capacity, policy} × workload — each with the stable
//! [`cell_key`] the lease log and checkpoint manifests coordinate on.
//! Every worker process builds the grid independently from its name, so
//! the only things on disk are the two coordination files; there is no
//! serialized grid to version or corrupt.

use mem_sim::dram::DramConfig;
use mem_sim::{CacheKind, SystemConfig};
use workloads::{rate_mix, spec, Mix};

use crate::checkpoint::cell_key;
use crate::runner::PolicyKind;

/// One cell of an exploration grid.
#[derive(Clone)]
pub struct ExploreCell {
    /// Position in the grid's cell list.
    pub index: usize,
    /// Human-readable coordinates, e.g. `"mcf/sectored-1k-2ch/Dap"`.
    pub label: String,
    /// The [`cell_key`] identifying this cell in the lease log and
    /// checkpoint manifests.
    pub key: String,
    /// The system to simulate.
    pub config: SystemConfig,
    /// The partitioning policy.
    pub policy: PolicyKind,
    /// The workload mix.
    pub mix: Mix,
    /// DRAM-cache data capacity in bytes (0 when no cache) — one axis
    /// of the Pareto report.
    pub capacity_bytes: u64,
}

/// A named grid plus the per-core instruction budget it runs at.
#[derive(Clone)]
pub struct ExploreGrid {
    /// The grid's name (`smoke`, `std`).
    pub name: String,
    /// Per-core instruction budget for every cell.
    pub instructions: u64,
    /// The cells, in a deterministic order shared by every worker.
    pub cells: Vec<ExploreCell>,
}

impl ExploreGrid {
    /// Every cell key, in cell order.
    pub fn keys(&self) -> Vec<String> {
        self.cells.iter().map(|c| c.key.clone()).collect()
    }

    /// The cell recorded under `key`, if any.
    pub fn cell(&self, key: &str) -> Option<&ExploreCell> {
        self.cells.iter().find(|c| c.key == key)
    }
}

/// The available grid names, for CLI help and validation.
pub fn grid_names() -> &'static [&'static str] {
    &["smoke", "std"]
}

fn cache_capacity(config: &SystemConfig) -> u64 {
    match &config.cache {
        CacheKind::None => 0,
        CacheKind::Sectored { capacity_bytes, .. }
        | CacheKind::Alloy { capacity_bytes, .. }
        | CacheKind::FlatTier { capacity_bytes, .. }
        | CacheKind::Edram { capacity_bytes, .. } => *capacity_bytes,
    }
}

fn sectored_variant(cores: usize, sector_bytes: u64, channels: u32) -> SystemConfig {
    let mut dram = DramConfig::hbm_102();
    dram.channels = channels;
    SystemConfig::sectored_dram_cache(cores).with_cache(CacheKind::Sectored {
        capacity_bytes: (4u64 << 30) / mem_sim::CAPACITY_SCALE,
        sector_bytes,
        ways: 4,
        dram,
        tag_cache: true,
    })
}

/// Builds the named grid, or `None` for an unknown name (see
/// [`grid_names`]).
///
/// - `smoke`: 3 two-core rate mixes × 4 {config, policy} variants =
///   12 cells. Small enough for tests and the CI explore smoke.
/// - `std`: 4 two-core rate mixes × 7 cache configurations (sectored
///   with sector ∈ {1 KB, 4 KB} × HBM channels ∈ {2, 4}, Alloy, eDRAM
///   ∈ {128, 256} MB) × 3 policies = 84 cells — the ≥64-cell
///   exploration `dapctl explore` defaults to.
pub fn explore_grid(name: &str, instructions: u64) -> Option<ExploreGrid> {
    let cores = 2;
    let mut variants: Vec<(String, SystemConfig, Vec<PolicyKind>)> = Vec::new();
    let benches: &[&str] = match name {
        "smoke" => {
            let sectored = SystemConfig::sectored_dram_cache(cores);
            variants.push((
                "sectored-4k".into(),
                sectored.clone(),
                vec![PolicyKind::Baseline, PolicyKind::Dap],
            ));
            variants.push((
                "alloy".into(),
                SystemConfig::alloy_cache(cores),
                vec![PolicyKind::Dap],
            ));
            variants.push((
                "edram-256".into(),
                SystemConfig::edram_cache(cores, 256),
                vec![PolicyKind::Dap],
            ));
            &["libquantum", "mcf", "milc"]
        }
        "std" => {
            let policies = vec![
                PolicyKind::Baseline,
                PolicyKind::Dap,
                PolicyKind::DapMeasured,
            ];
            for (tag, sector) in [("4k", 4096u64), ("1k", 1024)] {
                for channels in [4u32, 2] {
                    variants.push((
                        format!("sectored-{tag}-{channels}ch"),
                        sectored_variant(cores, sector, channels),
                        policies.clone(),
                    ));
                }
            }
            variants.push((
                "alloy".into(),
                SystemConfig::alloy_cache(cores),
                policies.clone(),
            ));
            for mb in [128u64, 256] {
                variants.push((
                    format!("edram-{mb}"),
                    SystemConfig::edram_cache(cores, mb),
                    policies.clone(),
                ));
            }
            &["libquantum", "mcf", "milc", "omnetpp"]
        }
        _ => return None,
    };

    let mut cells = Vec::new();
    for bench in benches {
        let mix = rate_mix(spec(bench).expect("known benchmark"), cores);
        for (tag, config, policies) in &variants {
            for &policy in policies {
                let index = cells.len();
                cells.push(ExploreCell {
                    index,
                    label: format!("{}/{tag}/{policy:?}", mix.name),
                    key: cell_key(config, policy, &mix, instructions),
                    config: config.clone(),
                    policy,
                    mix: mix.clone(),
                    capacity_bytes: cache_capacity(config),
                });
            }
        }
    }
    Some(ExploreGrid {
        name: name.to_string(),
        instructions,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grids_have_distinct_keys_and_expected_sizes() {
        let smoke = explore_grid("smoke", 10_000).unwrap();
        assert_eq!(smoke.cells.len(), 12);
        let std_grid = explore_grid("std", 10_000).unwrap();
        assert_eq!(std_grid.cells.len(), 84);
        assert!(std_grid.cells.len() >= 64, "acceptance floor");
        for grid in [&smoke, &std_grid] {
            let keys: HashSet<_> = grid.keys().into_iter().collect();
            assert_eq!(keys.len(), grid.cells.len(), "{}: key collision", grid.name);
            let labels: HashSet<_> = grid.cells.iter().map(|c| c.label.clone()).collect();
            assert_eq!(
                labels.len(),
                grid.cells.len(),
                "{}: label collision",
                grid.name
            );
        }
        assert!(explore_grid("nope", 10_000).is_none());
    }

    #[test]
    fn grid_construction_is_deterministic_across_processes() {
        // Workers rebuild the grid independently; same name + budget
        // must give identical keys in identical order.
        let a = explore_grid("smoke", 8_000).unwrap();
        let b = explore_grid("smoke", 8_000).unwrap();
        assert_eq!(a.keys(), b.keys());
        // The budget is part of the key (a cell at another budget is
        // a different simulation).
        let c = explore_grid("smoke", 9_000).unwrap();
        assert_ne!(a.keys(), c.keys());
    }
}
